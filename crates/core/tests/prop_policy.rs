//! The decision layer's correctness contract: scoring is the boolean
//! engine plus calibration — a [`HardThreshold`](DecisionPolicy) deployment
//! is bit-identical to the legacy `decide` path on random tables, through
//! the batch API, and on every trained LOOCV fold across every registry
//! machine, learner backend, and scheduling scope.

use proptest::prelude::*;
use wts_core::{
    filtered_schedule_pass, filtered_schedule_pass_with, DecisionPolicy, Experiment, FeatureBatch, Filter, Learner,
    LearnerKind, ScopeKind, TimingMode, TraceOptions, UnitEconomics,
};
use wts_features::{FeatureKind, FeatureVector};
use wts_ripper::{Condition, Op, Rule, RuleSet, RuleStats};

fn arb_condition() -> impl Strategy<Value = Condition> {
    (0usize..FeatureKind::COUNT, prop::bool::ANY, 0u32..40).prop_map(|(attr, ge, t)| Condition {
        attr,
        op: if ge { Op::Ge } else { Op::Le },
        threshold: t as f64 / 8.0,
    })
}

/// Random rule sets *with* random coverage statistics, so scores span
/// the whole calibration range instead of sitting on the empty-stats
/// default of one half.
fn arb_statted_rule_set() -> impl Strategy<Value = RuleSet> {
    // One (conditions, stats) pair per rule, so the stats vector always
    // matches the rule count.
    let rules = prop::collection::vec((prop::collection::vec(arb_condition(), 0..5), 0usize..500, 0usize..500), 0..5);
    (rules, (0usize..500, 0usize..500)).prop_map(|(rules, default)| {
        let attr_names: Vec<String> = FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect();
        let stats = rules.iter().map(|&(_, hits, misses)| RuleStats { hits, misses }).collect();
        RuleSet::new(
            attr_names,
            "list",
            "orig",
            rules.into_iter().map(|(conds, _, _)| Rule::from_conditions(conds)).collect(),
            stats,
            RuleStats { hits: default.0, misses: default.1 },
        )
    })
}

fn arb_vector() -> impl Strategy<Value = FeatureVector> {
    let fracs = prop::collection::vec(0u32..17, FeatureKind::CATEGORY_COUNT..FeatureKind::CATEGORY_COUNT + 1);
    (0u32..200, fracs).prop_map(|(bb_len, fracs)| {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = bb_len as f64;
        for (i, f) in fracs.iter().enumerate() {
            v[i + 1] = *f as f64 / 16.0;
        }
        FeatureVector::from_values(v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scoring_never_changes_the_decision_or_the_work(rs in arb_statted_rule_set(),
                                                      vectors in prop::collection::vec(arb_vector(), 1..20)) {
        let compiled = wts_core::CompiledFilter::from_rule_set(&rs, "L/N");
        let hard = DecisionPolicy::HardThreshold;
        for v in &vectors {
            let (decision, work) = compiled.decide_counted(v.as_slice());
            let (score, score_work) = compiled.score_counted(v.as_slice());
            prop_assert_eq!(work, score_work, "scoring rides the same short-circuit walk");
            prop_assert_eq!(decision, score.decision());
            prop_assert_eq!(decision, compiled.score(v.as_slice()).decision());
            // The hard policy ignores the economics entirely.
            let unit = UnitEconomics { insts: 1, exec_count: u64::MAX, filter_work: work, extraction_work: 0 };
            prop_assert_eq!(decision, hard.decide(score, &unit));
            prop_assert!((0.0..=1.0).contains(&score.probability), "calibrated score out of range: {}", score.probability);
        }
    }

    #[test]
    fn score_batch_matches_scalar_at_any_thread_count(rs in arb_statted_rule_set(),
                                                      vectors in prop::collection::vec(arb_vector(), 0..40),
                                                      threads in 1usize..8) {
        let compiled = wts_core::CompiledFilter::from_rule_set(&rs, "L/N");
        let batch = FeatureBatch::from_vectors(vectors.iter());
        let batched = compiled.score_batch(&batch, threads);
        prop_assert_eq!(batched.len(), vectors.len());
        for (s, v) in batched.iter().zip(&vectors) {
            prop_assert_eq!(*s, compiled.score(v.as_slice()));
            prop_assert_eq!(s.decision(), compiled.decide(v.as_slice()));
        }
    }
}

/// One deterministic pass-channel comparison: the policy-aware pass
/// under [`DecisionPolicy::HardThreshold`] against the legacy pass, on
/// every deterministic channel.
fn assert_pass_pinned(
    program: &wts_ir::Program,
    machine: &wts_machine::MachineConfig,
    filter: &dyn Filter,
    scope: ScopeKind,
    context: &str,
) {
    let options = TraceOptions { timing: TimingMode::Deterministic, scope, ..TraceOptions::default() };
    let compiled = filter.compile();
    let legacy = filtered_schedule_pass(program, machine, &compiled, &options);
    let hard = filtered_schedule_pass_with(program, machine, &compiled, &DecisionPolicy::HardThreshold, &options);
    assert_eq!(legacy.total_blocks, hard.total_blocks, "{context}: total units");
    assert_eq!(legacy.scheduled_blocks, hard.scheduled_blocks, "{context}: scheduled units");
    assert_eq!(legacy.conditions_evaluated, hard.conditions_evaluated, "{context}: filter work");
    assert_eq!(legacy.extraction_work, hard.extraction_work, "{context}: extraction work");
    assert_eq!(legacy.sched_work, hard.sched_work, "{context}: scheduling work");
}

/// The acceptance bar: on every registry machine and every portfolio
/// backend, a hard-threshold deployment of each block-scope LOOCV fold
/// is bit-identical to the legacy boolean filter — per-record decisions,
/// batch scores, and the deployed pass's work channels.
#[test]
fn hard_threshold_deployments_pin_the_boolean_seam_at_block_scope() {
    let programs = wts_core::testutil::learnable_suite(5);
    for machine in wts_machine::registry() {
        let run = Experiment::new(machine.clone()).with_timing(TimingMode::Deterministic).run(programs.clone());
        for learner in LearnerKind::portfolio() {
            for (bench, learned) in run.loocv_filters_for(0, &learner).iter() {
                let compiled = learned.compile();
                for r in run.all_traces() {
                    let (decision, work) = compiled.decide_counted(r.features.as_slice());
                    let (score, score_work) = compiled.score_counted(r.features.as_slice());
                    assert_eq!(decision, score.decision(), "{}/{}/{bench}", machine.name(), learner.name());
                    assert_eq!(work, score_work, "{}/{}/{bench}", machine.name(), learner.name());
                    assert!((0.0..=1.0).contains(&score.probability));
                }
                let batch = FeatureBatch::from_traces(run.all_traces());
                let scored: Vec<bool> = compiled.score_batch(&batch, 4).iter().map(|s| s.decision()).collect();
                assert_eq!(scored, compiled.classify_batch(&batch, 4), "{}/{}/{bench}", machine.name(), learner.name());
                for program in run.programs() {
                    assert_pass_pinned(
                        program,
                        &machine,
                        learned,
                        ScopeKind::Block,
                        &format!("{}/{}/{bench}/{}", machine.name(), learner.name(), program.name()),
                    );
                }
            }
        }
    }
}

/// The same bar at superblock scope: the policy-aware pass under the
/// hard policy stays pinned to the legacy pass when the decision unit is
/// a formed trace, for every registry machine and backend.
#[test]
fn hard_threshold_deployments_pin_the_boolean_seam_at_superblock_scope() {
    let programs = wts_core::testutil::mergeable_suite(4);
    let scope = ScopeKind::Superblock(70);
    for machine in wts_machine::registry() {
        let run = Experiment::new(machine.clone())
            .with_timing(TimingMode::Deterministic)
            .with_scope(scope)
            .run(programs.clone());
        assert!(
            run.all_traces().iter().any(|r| r.features.get(FeatureKind::TraceWidth) > 1.0),
            "{}: the corpus must contain genuinely merged traces",
            machine.name()
        );
        for learner in LearnerKind::portfolio() {
            for (bench, learned) in run.loocv_filters_for(0, &learner).iter() {
                for program in run.programs() {
                    assert_pass_pinned(
                        program,
                        &machine,
                        learned,
                        scope,
                        &format!("{}/{}/{bench}/{}", machine.name(), learner.name(), program.name()),
                    );
                }
            }
        }
    }
}

/// Fixed strategies score their beliefs but decide exactly as before —
/// including through the pass — and an `ExpectedBenefit` pass can only
/// schedule a subset of what an always-fired filter would (sanity: the
/// graded policy is actually wired through the deployed pass).
#[test]
fn fixed_filters_stay_pinned_and_expected_benefit_reaches_the_pass() {
    use wts_core::{AlwaysSchedule, BenefitModel, NeverSchedule, SizeThresholdFilter};
    let programs = wts_core::testutil::learnable_suite(3);
    let machine = wts_machine::MachineConfig::ppc7410();
    for f in [&AlwaysSchedule as &dyn Filter, &NeverSchedule, &SizeThresholdFilter::new(5)] {
        assert_pass_pinned(&programs[0], &machine, f, ScopeKind::Block, &f.name());
    }
    let options = TraceOptions { timing: TimingMode::Deterministic, ..TraceOptions::default() };
    let compiled = AlwaysSchedule.compile();
    let hard = filtered_schedule_pass(&programs[0], &machine, &compiled, &options);
    let stingy = DecisionPolicy::ExpectedBenefit(BenefitModel { saved_per_inst: 0.0, cycles_per_work: 1.0 });
    let none = filtered_schedule_pass_with(&programs[0], &machine, &compiled, &stingy, &options);
    assert_eq!(none.scheduled_blocks, 0, "a zero-rate model schedules nothing");
    assert_eq!(none.total_blocks, hard.total_blocks);
    assert!(none.sched_work < hard.sched_work, "skipping everything must shed the scheduling work");
}
