//! Property-based tests for labeling and evaluation semantics.

use proptest::prelude::*;
use wts_core::{
    app_time_ratio, build_dataset, predicted_time_ratio, runtime_classification, sched_time_ratio, AlwaysSchedule,
    Filter, LabelConfig, NeverSchedule, SizeThresholdFilter, TraceRecord,
};
use wts_features::{FeatureKind, FeatureVector};
use wts_ir::{BlockId, MethodId};

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (1u64..200, 0u64..200, 1u64..1000, 1usize..40, 0u64..50).prop_map(|(unsched, delta, exec, bb_len, bench)| {
        let sched = unsched.saturating_sub(delta.min(unsched - 1));
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = bb_len as f64;
        TraceRecord {
            benchmark: format!("b{}", bench % 4),
            method: MethodId(0),
            block: BlockId(0),
            exec_count: exec,
            features: FeatureVector::from_values(v),
            est_unsched: unsched,
            est_sched: sched,
            hw_unsched: unsched + 2,
            hw_sched: sched + 2,
            sched_ns: 1000,
            feature_ns: 100,
            sched_work: (bb_len * bb_len + 16) as u64,
            feature_work: bb_len as u64,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn label_semantics_match_the_paper(rec in arb_record(), t in 0u32..=50) {
        let label = LabelConfig::new(t).label(&rec);
        let imp = rec.est_improvement();
        match label {
            Some(true) => prop_assert!(imp > t as f64 / 100.0, "LS requires > t% improvement"),
            Some(false) => prop_assert!(imp <= 0.0, "NS requires no improvement at all"),
            None => prop_assert!(imp > 0.0 && imp <= t as f64 / 100.0, "dropped iff in (0, t]"),
        }
    }

    #[test]
    fn higher_thresholds_only_shrink_the_ls_class(recs in prop::collection::vec(arb_record(), 1..60)) {
        let (d0, _) = build_dataset(&recs, LabelConfig::new(0));
        let (d25, _) = build_dataset(&recs, LabelConfig::new(25));
        let (d50, _) = build_dataset(&recs, LabelConfig::new(50));
        prop_assert!(d25.positives() <= d0.positives());
        prop_assert!(d50.positives() <= d25.positives());
        // NS never changes (Table 5's constant column).
        prop_assert_eq!(d25.negatives(), d0.negatives());
        prop_assert_eq!(d50.negatives(), d0.negatives());
    }

    #[test]
    fn fixed_strategies_bound_every_filter(recs in prop::collection::vec(arb_record(), 1..60), min_len in 0usize..40) {
        // est_sched <= est_unsched in this corpus, so LS is optimal and NS
        // is pessimal; any filter lands between them.
        let filter = SizeThresholdFilter::new(min_len);
        let f = predicted_time_ratio(&recs, &filter);
        let ls = predicted_time_ratio(&recs, &AlwaysSchedule);
        let ns = predicted_time_ratio(&recs, &NeverSchedule);
        prop_assert!(ls <= f + 1e-9 && f <= ns + 1e-9, "{ls} <= {f} <= {ns}");
        let fa = app_time_ratio(&recs, &filter);
        let lsa = app_time_ratio(&recs, &AlwaysSchedule);
        prop_assert!(lsa <= fa + 1e-9 && fa <= 1.0 + 1e-9);
    }

    #[test]
    fn runtime_classification_partitions(recs in prop::collection::vec(arb_record(), 0..60), min_len in 0usize..40) {
        let filter = SizeThresholdFilter::new(min_len);
        let c = runtime_classification(&recs, &filter);
        prop_assert_eq!(c.total(), recs.len());
        let ls_direct = recs.iter().filter(|r| filter.should_schedule(&r.features)).count();
        prop_assert_eq!(c.ls, ls_direct);
    }

    #[test]
    fn sched_time_work_is_linear_in_decisions(recs in prop::collection::vec(arb_record(), 1..60)) {
        let always = sched_time_ratio(&recs, &AlwaysSchedule);
        let never = sched_time_ratio(&recs, &NeverSchedule);
        prop_assert_eq!(always.scheduled_blocks, recs.len());
        prop_assert_eq!(never.scheduled_blocks, 0);
        prop_assert!(never.filtered_work < always.filtered_work);
        // The fixed strategies consult no features and evaluate no
        // conditions, so their honest work is exactly the scheduling
        // they trigger: all of it (LS) or none of it (NS).
        prop_assert_eq!(always.filter_work + always.feature_work, 0);
        prop_assert!((always.work_ratio() - 1.0).abs() < 1e-12);
        prop_assert_eq!(never.filtered_work, 0);
        prop_assert_eq!(never.work_ratio(), 0.0);
        // A real filter pays per condition: its work sits strictly
        // between NS and LS-plus-overhead.
        let sized = sched_time_ratio(&recs, &SizeThresholdFilter::new(20));
        prop_assert_eq!(sized.filter_work, recs.len() as u64, "one condition per block");
        prop_assert!(sized.filtered_work > never.filtered_work);
        prop_assert!(sized.overhead_fraction() > 0.0);
    }

    #[test]
    fn dataset_groups_partition_by_benchmark(recs in prop::collection::vec(arb_record(), 1..60)) {
        let (data, groups) = build_dataset(&recs, LabelConfig::new(0));
        prop_assert!(groups.len() <= 4);
        for inst in data.instances() {
            prop_assert!((inst.group as usize) < groups.len());
        }
    }
}
