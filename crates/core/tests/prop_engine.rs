//! The compiled filter engine's correctness contract: bit-identical to
//! the interpreted rule-set path — on random rule sets and feature
//! vectors, through the batch API at any thread count, and on every
//! trained LOOCV fold across every registry machine.

use proptest::prelude::*;
use wts_core::{CompiledFilter, Experiment, FeatureBatch, Filter, LearnedFilter, Learner, LearnerKind, TimingMode};
use wts_features::{FeatureKind, FeatureMask, FeatureVector};
use wts_ir::{BasicBlock, Inst, MemRef, MemSpace, Opcode, Program, Reg};
use wts_ripper::{Condition, Dataset, Op, Rule, RuleSet, RuleStats};

fn arb_condition() -> impl Strategy<Value = Condition> {
    (0usize..FeatureKind::COUNT, prop::bool::ANY, 0u32..40).prop_map(|(attr, ge, t)| Condition {
        attr,
        op: if ge { Op::Ge } else { Op::Le },
        // Thresholds straddle both the bbLen scale and the fraction
        // scale so conditions on either kind of feature can go both ways.
        threshold: t as f64 / 8.0,
    })
}

fn arb_rule_set() -> impl Strategy<Value = RuleSet> {
    prop::collection::vec(prop::collection::vec(arb_condition(), 0..5), 0..5).prop_map(|rules| {
        let attr_names: Vec<String> = FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect();
        RuleSet::new(
            attr_names,
            "list",
            "orig",
            rules.into_iter().map(Rule::from_conditions).collect(),
            vec![],
            RuleStats::default(),
        )
    })
}

fn arb_vector() -> impl Strategy<Value = FeatureVector> {
    let fracs = prop::collection::vec(0u32..17, FeatureKind::CATEGORY_COUNT..FeatureKind::CATEGORY_COUNT + 1);
    (0u32..200, fracs).prop_map(|(bb_len, fracs)| {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = bb_len as f64;
        for (i, f) in fracs.iter().enumerate() {
            v[i + 1] = *f as f64 / 16.0;
        }
        FeatureVector::from_values(v)
    })
}

/// A random labeled dataset over the full feature vocabulary: the
/// label is a threshold on block length with a sprinkle of label noise,
/// so every backend has signal to find and noise to cope with.
fn arb_labeled_dataset() -> impl Strategy<Value = Dataset> {
    (prop::collection::vec(arb_vector(), 8..40), 0u32..150, prop::bool::ANY).prop_map(|(vectors, cut, flip)| {
        let attr_names: Vec<String> = FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect();
        let mut d = Dataset::new(attr_names, "list", "orig");
        for (i, v) in vectors.iter().enumerate() {
            let noisy = flip && i % 7 == 0;
            let label = (v.as_slice()[FeatureKind::BbLen.index()] >= cut as f64) != noisy;
            d.push(v.as_slice().to_vec(), label, u32::try_from(i % 3).expect("a residue mod 3 fits u32"));
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_decisions_equal_interpreted_predict(rs in arb_rule_set(),
                                                    vectors in prop::collection::vec(arb_vector(), 1..20)) {
        let compiled = CompiledFilter::from_rule_set(&rs, "L/N");
        for v in &vectors {
            prop_assert_eq!(compiled.decide(v.as_slice()), rs.predict(v.as_slice()), "{}", v);
        }
    }

    #[test]
    fn batch_classification_is_thread_invariant_and_matches_scalar(rs in arb_rule_set(),
                                                                   vectors in prop::collection::vec(arb_vector(), 0..40),
                                                                   threads in 1usize..8) {
        let compiled = CompiledFilter::from_rule_set(&rs, "L/N");
        let batch = FeatureBatch::from_vectors(vectors.iter());
        let batched = compiled.classify_batch(&batch, threads);
        let scalar: Vec<bool> = vectors.iter().map(|v| compiled.decide(v.as_slice())).collect();
        prop_assert_eq!(batched, scalar);
    }

    #[test]
    fn eval_work_agrees_between_interpreted_and_compiled(rs in arb_rule_set(), v in arb_vector()) {
        let learned = LearnedFilter::new(rs, 0);
        let compiled = learned.compile();
        prop_assert_eq!(learned.eval_work(&v), compiled.eval_work(&v));
        // Work is bounded by the model size and by what a decision can
        // possibly cost.
        prop_assert!(compiled.eval_work(&v) <= compiled.condition_count() as u64);
    }

    #[test]
    fn demand_mask_covers_exactly_the_referenced_attributes(rs in arb_rule_set()) {
        let compiled = CompiledFilter::from_rule_set(&rs, "L/N");
        let referenced = rs.referenced_attrs();
        for kind in FeatureKind::ALL {
            prop_assert_eq!(compiled.demand().contains(kind), referenced.contains(&kind.index()));
        }
    }

    #[test]
    fn every_backend_lowers_to_the_engine_faithfully(data in arb_labeled_dataset(),
                                                     probes in prop::collection::vec(arb_vector(), 1..20)) {
        // The portfolio contract: whatever a backend induces from a
        // random dataset, its compiled form decides exactly like the
        // interpreted rule set — on the training points and on fresh
        // probe vectors.
        for kind in LearnerKind::portfolio() {
            let rules = kind.fit(&data);
            let learned = LearnedFilter::with_learner(rules.clone(), 0, kind.filter_tag());
            let compiled = learned.compile();
            for inst in data.instances() {
                prop_assert_eq!(compiled.decide(&inst.values), rules.predict(&inst.values), "{}", kind.name());
                prop_assert_eq!(compiled.eval_work(&FeatureVector::from_slice(&inst.values)),
                                learned.eval_work(&FeatureVector::from_slice(&inst.values)), "{}", kind.name());
            }
            for v in &probes {
                prop_assert_eq!(compiled.decide(v.as_slice()), rules.predict(v.as_slice()), "{}", kind.name());
            }
        }
    }

    #[test]
    fn masked_extraction_preserves_decisions(rs in arb_rule_set(), lens in prop::collection::vec(1usize..12, 1..6)) {
        // Decisions over demand-masked vectors must equal decisions over
        // fully extracted ones: the mask covers everything the table reads.
        let compiled = CompiledFilter::from_rule_set(&rs, "L/N");
        for (i, len) in lens.iter().enumerate() {
            let mut b = BasicBlock::new(u32::try_from(i).expect("generated block counts fit u32"));
            for k in 0..*len {
                let kr = u16::try_from(k).expect("generated block lengths fit u16");
                let slot = u32::try_from(k).expect("generated block lengths fit u32");
                if k % 3 == 0 {
                    b.push(
                        Inst::new(Opcode::Lwz)
                            .def(Reg::gpr(1 + kr))
                            .use_(Reg::gpr(9))
                            .mem(MemRef::slot(MemSpace::Heap, slot)),
                    );
                } else {
                    b.push(Inst::new(Opcode::Add).def(Reg::gpr(1 + kr)).use_(Reg::gpr(9)).use_(Reg::gpr(9)));
                }
            }
            let full = FeatureVector::extract(&b);
            let masked = FeatureVector::extract_masked(&b, compiled.demand());
            prop_assert_eq!(compiled.decide(masked.as_slice()), compiled.decide(full.as_slice()));
            prop_assert_eq!(compiled.classify_block(&b), compiled.decide(full.as_slice()));
        }
    }
}

/// The shared learnable three-benchmark suite the core pipeline tests use.
fn suite() -> Vec<Program> {
    wts_core::testutil::learnable_suite(5)
}

/// The acceptance bar: on every registry machine, every trained LOOCV
/// fold's compiled form is bit-identical to the interpreted filter — on
/// every trace record, through the batch API, and with demand-masked
/// extraction straight off the blocks.
#[test]
fn compiled_loocv_folds_match_interpreted_on_all_registry_machines() {
    let programs = suite();
    for machine in wts_machine::registry() {
        let run = Experiment::new(machine.clone()).with_timing(TimingMode::Deterministic).run(programs.clone());
        for t in [0, 20] {
            for (bench, learned) in run.loocv_filters(t).iter() {
                let compiled = run.compiled_filter_for(t, bench);
                assert_eq!(compiled, learned.compile());
                // Per-record decisions and work, interpreted vs compiled.
                for r in run.all_traces() {
                    assert_eq!(
                        compiled.decide(r.features.as_slice()),
                        learned.should_schedule(&r.features),
                        "{}/{bench}/t={t}: decision mismatch on {}",
                        machine.name(),
                        r.features
                    );
                    assert_eq!(compiled.eval_work(&r.features), learned.eval_work(&r.features));
                }
                // Batch decisions, across thread counts.
                let batch = FeatureBatch::from_traces(run.all_traces());
                let scalar: Vec<bool> = run.all_traces().iter().map(|r| learned.should_schedule(&r.features)).collect();
                for threads in [1, 4] {
                    assert_eq!(compiled.classify_batch(&batch, threads), scalar, "{}/{bench}", machine.name());
                }
                // Demand-masked extraction straight off the IR agrees
                // with full extraction + the interpreted filter.
                let demand = compiled.demand();
                assert!(demand.count() <= FeatureKind::COUNT);
                for p in run.programs() {
                    for (_, block) in p.iter_blocks() {
                        let full = FeatureVector::extract(block);
                        let masked = FeatureVector::extract_masked(block, demand);
                        assert_eq!(
                            compiled.decide(masked.as_slice()),
                            learned.should_schedule(&full),
                            "{}/{bench}: masked extraction changed a decision",
                            machine.name()
                        );
                    }
                }
            }
        }
    }
}

/// The superblock-scope acceptance bar: on every registry machine, the
/// trace-scope pipeline's LOOCV folds pin compiled ≡ interpreted ≡
/// native-predict for all three portfolio backends — the engine, the
/// ordered-rule interpretation, and each backend's *native* model
/// (RIPPER's rule set itself, the stump's own threshold, the tree's own
/// recursive predict) agree bit for bit on every trace record of every
/// fold, trace-shape features included.
#[test]
fn superblock_loocv_folds_pin_compiled_interpreted_native_on_all_registry_machines() {
    use wts_ripper::{leave_one_group_out, Classifier, DecisionStump, RipperConfig, ShallowTree};
    let programs = wts_core::testutil::mergeable_suite(4);
    for machine in wts_machine::registry() {
        let run = Experiment::new(machine.clone())
            .with_timing(TimingMode::Deterministic)
            .with_scope(wts_core::ScopeKind::Superblock(70))
            .run(programs.clone());
        assert!(
            run.all_traces().iter().any(|r| r.features.get(FeatureKind::TraceWidth) > 1.0),
            "{}: the corpus must contain genuinely merged traces",
            machine.name()
        );
        // Compiled vs interpreted, per trained fold filter.
        for learner in LearnerKind::portfolio() {
            for (bench, learned) in run.loocv_filters_for(0, &learner).iter() {
                let compiled = learned.compile();
                for r in run.all_traces() {
                    assert_eq!(
                        compiled.decide(r.features.as_slice()),
                        learned.should_schedule(&r.features),
                        "{}/{}/{bench}: compiled vs interpreted",
                        machine.name(),
                        learner.name()
                    );
                    assert_eq!(compiled.eval_work(&r.features), learned.eval_work(&r.features));
                }
            }
        }
        // Lowered rules vs each backend's native model, per fold.
        let (data, _) = run.dataset(0);
        for fold in leave_one_group_out(&data) {
            let probes = fold.train.instances().iter().chain(fold.test.instances());
            let ripper_rules = RipperConfig::default().fit(&fold.train);
            let stump_rules = LearnerKind::Stump.fit(&fold.train);
            let tree_rules = LearnerKind::tree().fit(&fold.train);
            let native_stump = (!fold.train.is_empty()).then(|| DecisionStump::fit(&fold.train));
            let native_tree = (!fold.train.is_empty()).then(|| ShallowTree::fit(&fold.train, 4, 8));
            for inst in probes {
                let v = &inst.values;
                assert_eq!(
                    CompiledFilter::from_rule_set(&ripper_rules, "r").decide(v),
                    ripper_rules.predict(v),
                    "{}: ripper is its own native model",
                    machine.name()
                );
                if let Some(native) = &native_stump {
                    assert_eq!(stump_rules.predict(v), native.predict(v), "{}: stump native", machine.name());
                    assert_eq!(CompiledFilter::from_rule_set(&stump_rules, "s").decide(v), native.predict(v));
                }
                if let Some(native) = &native_tree {
                    assert_eq!(tree_rules.predict(v), native.predict(v), "{}: tree native", machine.name());
                    assert_eq!(CompiledFilter::from_rule_set(&tree_rules, "t").decide(v), native.predict(v));
                }
            }
        }
    }
}

/// The fixed strategies and the size baseline also lower correctly —
/// the engine serves every filter kind, not just learned ones.
#[test]
fn fixed_and_baseline_filters_lower_faithfully() {
    use wts_core::{AlwaysSchedule, NeverSchedule, SizeThresholdFilter};
    let machine = wts_machine::MachineConfig::ppc7410();
    let run = Experiment::new(machine).with_timing(TimingMode::Deterministic).run(suite());
    let filters: Vec<Box<dyn Filter>> =
        vec![Box::new(AlwaysSchedule), Box::new(NeverSchedule), Box::new(SizeThresholdFilter::new(5))];
    for f in &filters {
        let compiled = f.compile();
        for r in run.all_traces() {
            assert_eq!(compiled.decide(r.features.as_slice()), f.should_schedule(&r.features), "{}", f.name());
            assert_eq!(compiled.eval_work(&r.features), f.eval_work(&r.features), "{}", f.name());
        }
    }
}

/// The masked work model never exceeds the full-extraction model, so
/// demand-driven extraction can only make the accounting cheaper.
#[test]
fn demand_masked_extraction_work_is_bounded_by_full() {
    for bb_len in [0u64, 1, 7, 100] {
        let full = FeatureMask::ALL.extraction_work(bb_len);
        for kinds in [
            FeatureMask::EMPTY,
            FeatureMask::of([FeatureKind::BbLen]),
            FeatureMask::of([FeatureKind::BbLen, FeatureKind::Loads, FeatureKind::Calls]),
        ] {
            assert!(kinds.extraction_work(bb_len) <= full);
        }
    }
}
