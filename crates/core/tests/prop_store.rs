//! The store's hot-swap atomicity contract: a snapshot is one coherent
//! `(epoch, filter)` pair, so every decision made against it is
//! attributable to exactly one epoch — under concurrent swaps there is
//! no interleaving where a reader sees epoch `n` paired with epoch
//! `m`'s rules.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wts_core::{FilterKey, FilterStore, LearnedFilter, LearnerKind, ScopeKind};
use wts_features::FeatureKind;
use wts_ripper::{Condition, Op, Rule, RuleSet, RuleStats};

/// A filter whose decision reveals which cut it was built with:
/// schedule iff `bbLen >= cut`. The cut doubles as the filter's
/// threshold tag, so source and engine can be cross-checked too.
fn filter_with_cut(cut: u32) -> LearnedFilter {
    let attr_names: Vec<String> = FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect();
    let rule =
        Rule::from_conditions(vec![Condition { attr: FeatureKind::BbLen.index(), op: Op::Ge, threshold: cut as f64 }]);
    LearnedFilter::new(RuleSet::new(attr_names, "list", "orig", vec![rule], vec![], RuleStats::default()), cut)
}

fn probe_values(bb_len: u32) -> [f64; FeatureKind::COUNT] {
    let mut v = [0.0; FeatureKind::COUNT];
    v[FeatureKind::BbLen.index()] = bb_len as f64;
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One writer hot-swaps a generated sequence of distinguishable
    /// filters while readers concurrently classify probe vectors off
    /// whatever snapshot they grab. Because the single writer makes
    /// epoch `e` correspond to exactly `cuts[e-1]`, every observed
    /// `(epoch, probe, decision)` triple must match that epoch's filter
    /// — a torn read (new epoch, old rules, or vice versa) would
    /// produce a decision no single epoch explains.
    #[test]
    fn every_decision_is_attributable_to_exactly_one_epoch(
        cuts in prop::collection::vec(0u32..60, 2..16),
        probes in prop::collection::vec(0u32..60, 1..6),
    ) {
        let store = FilterStore::shared();
        let key = FilterKey::new("m", &LearnerKind::Stump, ScopeKind::Block, 0);
        store.swap(key.clone(), filter_with_cut(cuts[0]));
        let done = Arc::new(AtomicBool::new(false));

        let observed: Vec<Vec<(u64, u32, bool)>> = std::thread::scope(|s| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let store = Arc::clone(&store);
                    let key = key.clone();
                    let done = Arc::clone(&done);
                    let probes = probes.clone();
                    s.spawn(move || {
                        // Sample at least once even if the writer wins
                        // the race outright, then keep sampling until
                        // the swaps are done.
                        let mut seen = Vec::new();
                        loop {
                            let snap = store.get(&key).expect("slot stays populated");
                            for &p in &probes {
                                let decision = snap.compiled().decide(&probe_values(p));
                                seen.push((snap.epoch(), p, decision));
                            }
                            if done.load(Ordering::Acquire) {
                                return seen;
                            }
                        }
                    })
                })
                .collect();
            for &cut in &cuts[1..] {
                store.swap(key.clone(), filter_with_cut(cut));
            }
            done.store(true, Ordering::Release);
            readers.into_iter().map(|r| r.join().expect("reader panicked")).collect()
        });

        prop_assert_eq!(store.epoch(&key), Some(cuts.len() as u64));
        for seen in &observed {
            prop_assert!(!seen.is_empty(), "readers observed at least one snapshot");
            for &(epoch, probe, decision) in seen {
                prop_assert!(epoch >= 1 && epoch <= cuts.len() as u64, "epoch {} out of range", epoch);
                let cut = cuts[usize::try_from(epoch - 1).expect("epoch counts fit usize")];
                prop_assert_eq!(
                    decision,
                    probe >= cut,
                    "epoch {} carries cut {}, but probe {} decided {}: the snapshot was torn",
                    epoch, cut, probe, decision
                );
            }
        }
    }

    /// The source rule set and the compiled engine inside one snapshot
    /// always agree — swap never pairs epoch-tagged metadata with a
    /// stale engine.
    #[test]
    fn snapshot_source_and_engine_are_the_same_filter(cuts in prop::collection::vec(0u32..60, 1..10)) {
        let store = FilterStore::new();
        let key = FilterKey::new("m", &LearnerKind::Stump, ScopeKind::Block, 0);
        for (i, &cut) in cuts.iter().enumerate() {
            let snap = store.swap(key.clone(), filter_with_cut(cut));
            prop_assert_eq!(snap.epoch(), (i + 1) as u64);
            prop_assert_eq!(snap.source().threshold_percent(), cut);
            for probe in [cut.saturating_sub(1), cut, cut + 1] {
                prop_assert_eq!(snap.compiled().decide(&probe_values(probe)), probe >= cut);
            }
        }
    }
}
