//! Property-based round-trips of the trace format against hostile
//! files: boundary ids, ids wide enough to wrap, shuffled or renamed
//! header columns, and non-finite feature values. Pins the PR's
//! hardening fixes — every mutation below used to parse into a
//! valid-looking but wrong record set.

use proptest::prelude::*;
use wts_core::{
    read_trace, read_trace_auto, read_trace_binary, write_trace, write_trace_binary, BinaryTraceError, TraceRecord,
};
use wts_features::{FeatureKind, FeatureVector};
use wts_ir::{BlockId, MethodId};

/// A valid record with ids spanning the full `u32` range (both
/// boundaries included) and fraction features exactly representable so
/// text round-trips compare equal.
fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..4,
        0u32..=u32::MAX,
        0u32..=u32::MAX,
        0u64..u64::MAX,
        0u32..2000,
        prop::collection::vec(0u32..=1000, FeatureKind::COUNT..FeatureKind::COUNT + 1),
    )
        .prop_map(|(bench, method, block, exec, bb_len, fracs)| {
            let mut v = [0.0; FeatureKind::COUNT];
            for (k, f) in fracs.iter().enumerate() {
                v[k] = *f as f64 / 1000.0;
            }
            v[FeatureKind::BbLen.index()] = bb_len as f64;
            TraceRecord {
                benchmark: format!("bench{bench}"),
                method: MethodId(method),
                block: BlockId(block),
                exec_count: exec,
                features: FeatureVector::from_values(v),
                est_unsched: exec.rotate_left(7),
                est_sched: exec.rotate_left(11),
                hw_unsched: exec.rotate_left(13),
                hw_sched: exec.rotate_left(17),
                sched_ns: u64::from(bb_len) * 3,
                feature_ns: u64::from(bb_len),
                sched_work: u64::from(bb_len) * 2,
                feature_work: u64::from(bb_len) / 2,
            }
        })
}

/// Replaces tab-separated column `col` of line `line` (0 = header).
fn patch_column(text: &str, line: usize, col: usize, value: &str) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let mut cols: Vec<&str> = lines[line].split('\t').collect();
    cols[col] = value;
    lines[line] = cols.join("\t");
    lines.join("\n") + "\n"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn valid_records_round_trip_exactly(recs in prop::collection::vec(arb_record(), 0..20)) {
        let text = write_trace(&recs).unwrap();
        prop_assert_eq!(read_trace(&text).unwrap(), recs);
    }

    #[test]
    fn out_of_range_ids_are_rejected_not_truncated(recs in prop::collection::vec(arb_record(), 1..12),
                                                   pick in 0usize..1_000_000,
                                                   offset in 0u64..1_000_000,
                                                   method_field in prop::bool::ANY) {
        // Any id in (u32::MAX, u64::MAX] used to wrap via `as u32` into a
        // valid-looking record with the wrong identity.
        let target = pick % recs.len();
        let wide = u64::from(u32::MAX) + 1 + offset;
        let text = write_trace(&recs).unwrap();
        let (col, field) = if method_field { (2, "method id") } else { (3, "block id") };
        let bad = patch_column(&text, target + 1, col, &wide.to_string());
        let err = read_trace(&bad).expect_err("wide id must not parse");
        prop_assert_eq!(err.line(), target + 2, "record {} lives on line {}", target, target + 2);
        prop_assert!(err.to_string().contains(field), "field named: {}", err);
        prop_assert!(err.to_string().contains("out of range"), "cause named: {}", err);
    }

    #[test]
    fn shuffled_header_columns_are_rejected(recs in prop::collection::vec(arb_record(), 1..6),
                                            a in 0usize..1_000_000,
                                            b in 0usize..1_000_000) {
        // Swapping any two header columns (the magic tag included) must
        // fail up front — the old prefix-only check accepted reordered
        // feature columns and silently permuted every vector.
        let text = write_trace(&recs).unwrap();
        let header_len = text.lines().next().unwrap().split('\t').count();
        let (a, b) = (a % header_len, b % header_len);
        prop_assume!(a != b);
        let cols: Vec<&str> = text.lines().next().unwrap().split('\t').collect();
        let swapped = patch_column(&patch_column(&text, 0, a, cols[b]), 0, b, cols[a]);
        prop_assume!(swapped.lines().next() != text.lines().next()); // distinct names
        let err = read_trace(&swapped).expect_err("permuted header must not parse");
        prop_assert_eq!(err.line(), 0, "header errors are line 0: {}", err);
        let msg = err.to_string();
        prop_assert!(msg.contains("bad magic") || msg.contains("header column"), "got: {}", msg);
    }

    #[test]
    fn renamed_header_columns_are_rejected(recs in prop::collection::vec(arb_record(), 1..6),
                                           col in 0usize..1_000_000) {
        let text = write_trace(&recs).unwrap();
        let header_len = text.lines().next().unwrap().split('\t').count();
        let col = 1 + col % (header_len - 1); // keep the magic tag; rename any other column
        let renamed = patch_column(&text, 0, col, "impostor");
        let err = read_trace(&renamed).expect_err("renamed column must not parse");
        prop_assert_eq!(err.line(), 0);
        prop_assert!(err.to_string().contains("found 'impostor'"), "got: {}", err);
    }

    #[test]
    fn non_finite_features_are_rejected_on_read(recs in prop::collection::vec(arb_record(), 1..12),
                                                pick in 0usize..1_000_000,
                                                feature in 0usize..FeatureKind::COUNT,
                                                hostile in prop::sample::select(vec!["NaN", "inf", "-inf", "infinity"])) {
        // A hand-edited NaN/±inf round-trips through a bare f64 parse,
        // then every rule condition on it compares false — the record
        // silently classifies NS under any learned filter.
        let target = pick % recs.len();
        let text = write_trace(&recs).unwrap();
        let bad = patch_column(&text, target + 1, 5 + feature, hostile);
        let err = read_trace(&bad).expect_err("non-finite feature must not parse");
        prop_assert_eq!(err.line(), target + 2);
        let name = FeatureKind::ALL[feature].rule_name();
        prop_assert!(err.to_string().contains(&format!("non-finite feature {name}")), "got: {}", err);
    }

    /// Both encodings carry the same records: binary round-trips exactly,
    /// agrees with the text round-trip, and auto-detection dispatches
    /// each encoding to the right reader.
    #[test]
    fn binary_and_text_encodings_agree(recs in prop::collection::vec(arb_record(), 0..20)) {
        let bin = write_trace_binary(&recs).unwrap();
        let text = write_trace(&recs).unwrap();
        prop_assert_eq!(read_trace_binary(&bin).unwrap(), recs.clone());
        prop_assert_eq!(read_trace_auto(&bin).unwrap(), read_trace(&text).unwrap());
        prop_assert_eq!(read_trace_auto(text.as_bytes()).unwrap(), recs);
    }

    /// Chopping a valid binary file at any interior length must fail with
    /// a *named* error — never a panic, never a silently short record set.
    #[test]
    fn truncated_binary_is_rejected_with_named_errors(recs in prop::collection::vec(arb_record(), 0..12),
                                                      cut in 0usize..1_000_000) {
        let full = write_trace_binary(&recs).unwrap();
        let cut = cut % full.len();
        match read_trace_binary(&full[..cut]) {
            Err(BinaryTraceError::BadMagic)
            | Err(BinaryTraceError::Truncated { .. })
            | Err(BinaryTraceError::HostileHeader { .. }) => {}
            other => prop_assert!(false, "truncation at {} must name the failure, got {:?}", cut, other),
        }
    }

    /// Corrupting any byte of the fixed header — magic, feature count,
    /// name length prefixes or name bytes — must be rejected by name.
    /// (Benchmark names are free-form, so the mutation range stops at the
    /// benchmark table.)
    #[test]
    fn hostile_binary_header_is_rejected_with_named_errors(recs in prop::collection::vec(arb_record(), 1..12),
                                                           pos in 0usize..1_000_000,
                                                           flip in 1u8..=255) {
        let mut bytes = write_trace_binary(&recs).unwrap();
        let feature_table_end: usize =
            24 + 4 + FeatureKind::ALL.iter().map(|k| 2 + k.rule_name().len()).sum::<usize>();
        let pos = pos % feature_table_end;
        bytes[pos] ^= flip;
        match read_trace_binary(&bytes) {
            Err(BinaryTraceError::BadMagic)
            | Err(BinaryTraceError::Truncated { .. })
            | Err(BinaryTraceError::HostileHeader { .. }) => {}
            other => prop_assert!(false, "flipping byte {} must name the failure, got {:?}", pos, other),
        }
    }
}
