//! The scope axis's degeneracy contract: a superblock-scope pipeline
//! whose formation produced only width-1 traces is *bit-identical* to
//! the block-scope pipeline — traces, labels, and deployed schedules —
//! on every registry machine.
//!
//! Formation at ratio 100% merges only exactly-equal execution counts,
//! so programs with strictly distinct consecutive counts are the
//! degenerate case by construction.

use proptest::prelude::*;
use wts_core::{
    build_dataset, filtered_schedule_pass, AlwaysSchedule, Experiment, Filter, LabelConfig, ScopeKind,
    SizeThresholdFilter, TimingMode, TraceOptions,
};
use wts_features::FeatureKind;
use wts_ir::{form_superblocks, BasicBlock, Inst, MemRef, MemSpace, Method, Opcode, Program, Reg};

/// One generated block body: a few instructions from a small pool, with
/// an optional terminator.
fn arb_block(len: std::ops::Range<usize>) -> impl Strategy<Value = (Vec<u8>, u8)> {
    (prop::collection::vec(0u8..5, len), 0u8..4)
}

fn build_block(id: u32, exec: u64, body: &[u8], term: u8) -> BasicBlock {
    let mut b = BasicBlock::new(id);
    for (k, &code) in body.iter().enumerate() {
        let r = 1 + u16::try_from(k % 20).expect("a residue mod 20 fits u16");
        let slot = u32::try_from(k).expect("generated block lengths fit u32");
        let inst = match code {
            0 => Inst::new(Opcode::Add).def(Reg::gpr(r)).use_(Reg::gpr(r + 1)).use_(Reg::gpr(r + 2)),
            1 => Inst::new(Opcode::Lwz).def(Reg::gpr(r)).use_(Reg::gpr(30)).mem(MemRef::slot(MemSpace::Heap, slot)),
            2 => Inst::new(Opcode::Stw).use_(Reg::gpr(r)).use_(Reg::gpr(30)).mem(MemRef::slot(MemSpace::Heap, slot)),
            3 => Inst::new(Opcode::Fadd).def(Reg::fpr(r)).use_(Reg::fpr(r + 1)).use_(Reg::fpr(r + 1)),
            _ => Inst::new(Opcode::Mullw).def(Reg::gpr(r)).use_(Reg::gpr(r + 1)).use_(Reg::gpr(r + 2)),
        };
        b.push(inst);
    }
    match term {
        0 => {}
        1 => b.push(Inst::new(Opcode::Bc).use_(Reg::cr(0))),
        2 => b.push(Inst::new(Opcode::B)),
        _ => b.push(Inst::new(Opcode::Blr).use_(Reg::lr())),
    }
    b.set_exec_count(exec);
    b
}

/// A program whose consecutive block exec counts are strictly
/// increasing (hence pairwise distinct), so ratio-100% formation cannot
/// merge anything.
fn arb_degenerate_program() -> impl Strategy<Value = Program> {
    prop::collection::vec((prop::collection::vec(arb_block(1..5), 1..4), prop::collection::vec(1u64..40, 1..4)), 1..3)
        .prop_map(|methods| {
            let mut p = Program::new("p0");
            let mut exec = 1u64;
            let mut block_id = 0u32;
            for (mi, (blocks, deltas)) in methods.into_iter().enumerate() {
                let mut m = Method::new(u32::try_from(mi).expect("method counts fit u32"), format!("m{mi}"));
                for (bi, (body, term)) in blocks.iter().enumerate() {
                    exec += deltas[bi % deltas.len()];
                    m.push_block(build_block(block_id, exec, body, *term));
                    block_id += 1;
                }
                p.push_method(m);
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn degenerate_superblock_pipeline_is_bit_identical_to_block_pipeline(p in arb_degenerate_program()) {
        // The generator guarantees degeneracy; assert it anyway so a
        // generator regression fails loudly here, not downstream.
        for method in p.methods() {
            for sb in form_superblocks(method, 100) {
                prop_assert_eq!(sb.width(), 1, "distinct counts must not merge at ratio 100%");
            }
        }
        for machine in wts_machine::registry() {
            let block = Experiment::new(machine.clone())
                .with_timing(TimingMode::Deterministic)
                .run(vec![p.clone()]);
            let sb = Experiment::new(machine.clone())
                .with_timing(TimingMode::Deterministic)
                .with_scope(ScopeKind::Superblock(100))
                .run(vec![p.clone()]);

            // Traces: every record, every channel, bit for bit — width-1
            // units take the exact block path (same features, same
            // scheduler entry point, same work proxies).
            prop_assert_eq!(block.all_traces(), sb.all_traces(), "{}: traces diverged", machine.name());
            for r in sb.all_traces() {
                prop_assert_eq!(r.features.get(FeatureKind::TraceWidth), 1.0);
                prop_assert_eq!(r.features.get(FeatureKind::SideExits), 0.0);
            }

            // Labels: the threshold-labeled datasets agree at several
            // thresholds (instances, values, labels, groups).
            for t in [0, 20] {
                let (a, ga) = build_dataset(block.all_traces(), LabelConfig::new(t));
                let (b, gb) = build_dataset(sb.all_traces(), LabelConfig::new(t));
                prop_assert_eq!(a, b, "{}: t={} datasets diverged", machine.name(), t);
                prop_assert_eq!(ga, gb);
            }

            // Trained rules: identical per fold (the filter *tag* names
            // the scope, the induced model must not differ).
            let fa = block.loocv_filters(0);
            let fb = sb.loocv_filters(0);
            prop_assert_eq!(fa.len(), fb.len());
            for ((na, a), (nb, b)) in fa.iter().zip(fb.iter()) {
                prop_assert_eq!(na, nb);
                prop_assert_eq!(a.rules(), b.rules(), "{}: induced rules diverged", machine.name());
            }

            // Deployed schedules: the filtered pass spends identical
            // work at both scopes, for the fixed strategy and a
            // feature-reading filter alike.
            let opts = TraceOptions { timing: TimingMode::Deterministic, ..Default::default() };
            let sb_opts = TraceOptions { scope: ScopeKind::Superblock(100), ..opts };
            for filter in [AlwaysSchedule.compile(), SizeThresholdFilter::new(3).compile()] {
                let pa = filtered_schedule_pass(&p, &machine, &filter, &opts);
                let pb = filtered_schedule_pass(&p, &machine, &filter, &sb_opts);
                prop_assert_eq!(
                    (pa.total_blocks, pa.scheduled_blocks, pa.conditions_evaluated, pa.extraction_work, pa.sched_work),
                    (pb.total_blocks, pb.scheduled_blocks, pb.conditions_evaluated, pb.extraction_work, pb.sched_work),
                    "{}/{}: deployed pass diverged", machine.name(), filter.name()
                );
            }
        }
    }
}
