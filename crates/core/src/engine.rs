//! The compiled filter engine.
//!
//! The paper's economics only work if evaluating the filter is *vastly*
//! cheaper than running the scheduler (§3.1); related selector work
//! (Chmiela et al. on scheduling heuristics in branch-and-bound,
//! Streeter & Smith on portfolios) makes the same point — the selector's
//! own overhead is a first-class term of the objective. This module is
//! the engineering half of that argument:
//!
//! * [`CompiledFilter`] lowers any filter — an induced
//!   [`RuleSet`](wts_ripper::RuleSet), the fixed LS/NS strategies, or
//!   the size-threshold baseline — into one flat, cache-friendly
//!   condition table walked with short-circuit evaluation. No rule or
//!   condition objects are chased at decision time.
//! * Every compiled filter carries a [`FeatureMask`] *demand mask*: the
//!   features its conditions actually read (via
//!   [`RuleSet::referenced_attrs`](wts_ripper::RuleSet::referenced_attrs)),
//!   which drives demand-driven extraction
//!   ([`FeatureVector::extract_masked`]) — induced rule sets typically
//!   consult two or three of the seventeen features (Table 1 plus the
//!   trace-shape features of the superblock scope).
//! * [`FeatureBatch`] lays feature vectors out as contiguous
//!   structure-of-arrays columns so batch classification
//!   ([`CompiledFilter::classify_batch`]) streams each demanded column,
//!   sharded across cores with [`shard_map`](crate::parallel::shard_map).
//! * Decision *work* is observable: [`CompiledFilter::decide_counted`]
//!   reports the number of conditions actually evaluated before the
//!   decision (short-circuit aware), which
//!   [`sched_time_ratio`](crate::sched_time_ratio) charges instead of a
//!   flat constant.
//!
//! Compiled decisions are bit-identical to the interpreted path
//! ([`RuleSet::predict`](wts_ripper::RuleSet::predict)); a property
//! suite pins that on random rule sets and on every trained LOOCV fold
//! across the machine registry.
//!
//! # Examples
//!
//! ```
//! use wts_core::{CompiledFilter, Filter, SizeThresholdFilter};
//! use wts_features::{FeatureKind, FeatureMask};
//!
//! let compiled = SizeThresholdFilter::new(5).compile();
//! assert_eq!(compiled.demand(), FeatureMask::of([FeatureKind::BbLen]));
//! assert_eq!(compiled.condition_count(), 1);
//! let mut v = [0.0; FeatureKind::COUNT];
//! v[FeatureKind::BbLen.index()] = 8.0;
//! assert!(compiled.decide(&v));
//! ```

use crate::filter::Filter;
use crate::trace::TraceRecord;
use std::fmt;
use wts_features::{FeatureKind, FeatureMask, FeatureVector};
use wts_ir::BasicBlock;
use wts_ripper::{Op, RuleSet};

/// One lowered condition: `values[attr] <op> threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CompiledCond {
    attr: u32,
    op: Op,
    threshold: f64,
}

impl CompiledCond {
    #[inline]
    fn holds(&self, v: f64) -> bool {
        match self.op {
            Op::Le => v <= self.threshold,
            Op::Ge => v >= self.threshold,
        }
    }
}

/// A filter lowered to a flat condition table plus a feature demand mask.
///
/// Semantics mirror the interpreted ordered rule set exactly: the block
/// is scheduled iff some rule's conditions all hold; rules are tried in
/// order and each rule short-circuits on its first failing condition.
/// The fixed strategies compile to degenerate tables (LS = one empty
/// rule that always fires, NS = no rules), so one engine serves every
/// filter kind in trace collection, evaluation and the benches.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFilter {
    name: String,
    /// All rules' conditions, concatenated in firing order.
    conds: Vec<CompiledCond>,
    /// Exclusive end offset of each rule's conditions within `conds`.
    rule_ends: Vec<u32>,
    /// Per-rule calibrated confidence (Laplace-smoothed training
    /// precision), indexed like `rule_ends`.
    scores: Vec<f64>,
    /// Calibrated P(positive) of the reject region — the score emitted
    /// when no rule fires.
    default_score: f64,
    demand: FeatureMask,
}

/// One unit's calibrated verdict: which rule fired (if any) and the
/// Laplace-smoothed probability that scheduling the unit pays off.
///
/// The boolean the legacy seam exposed is [`fired`](FilterScore::fired)
/// `.is_some()` — [`decision`](FilterScore::decision) — and is computed
/// from exactly the same short-circuit walk, so a
/// [`DecisionPolicy::HardThreshold`](crate::DecisionPolicy::HardThreshold)
/// deployment is bit-identical to the pre-score engine. The probability
/// rides along for the cost-sensitive policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterScore {
    /// Index of the first rule whose conditions all held, if any.
    pub fired: Option<u32>,
    /// Calibrated P(scheduling improves this unit): the firing rule's
    /// confidence, or the reject region's residual positive rate.
    pub probability: f64,
}

impl FilterScore {
    /// The legacy boolean decision: did any rule fire?
    #[inline]
    pub fn decision(&self) -> bool {
        self.fired.is_some()
    }
}

/// Why a rule set cannot be lowered into a [`CompiledFilter`]: the
/// lint's error classes enforced at construction time, so a deployed
/// table is coherent *by construction* rather than by later audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompiledFilterError {
    /// A condition references an attribute outside the feature
    /// vocabulary (Table 1 plus the trace-shape features).
    UnknownAttribute {
        /// Rule index in firing order.
        rule: usize,
        /// The out-of-vocabulary attribute index.
        attr: usize,
    },
    /// A condition threshold is NaN or infinite: comparisons against it
    /// are vacuous or always-false and the table no longer means what
    /// the source rules said.
    NonFiniteThreshold {
        /// Rule index in firing order.
        rule: usize,
        /// The condition's attribute index.
        attr: usize,
        /// The offending threshold.
        threshold: f64,
    },
    /// A calibrated score is not a probability in `[0, 1]` (`None` names
    /// the default row).
    ScoreOutOfRange {
        /// Rule index, or `None` for the default row.
        rule: Option<usize>,
        /// The offending score.
        score: f64,
    },
}

impl fmt::Display for CompiledFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompiledFilterError::UnknownAttribute { rule, attr } => {
                write!(f, "rule {rule} attribute {attr} is not a known feature")
            }
            CompiledFilterError::NonFiniteThreshold { rule, attr, threshold } => {
                write!(f, "rule {rule} condition on attribute {attr} has a non-finite threshold {threshold}")
            }
            CompiledFilterError::ScoreOutOfRange { rule: Some(k), score } => {
                write!(f, "rule {k} calibrated score {score} is outside [0, 1]")
            }
            CompiledFilterError::ScoreOutOfRange { rule: None, score } => {
                write!(f, "default calibrated score {score} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for CompiledFilterError {}

/// Rejects lowered parts the lint would flag as errors: unknown
/// attributes, non-finite thresholds, non-probability scores.
fn validate_table(
    conds: &[CompiledCond],
    rule_ends: &[u32],
    scores: &[f64],
    default_score: f64,
) -> Result<(), CompiledFilterError> {
    let rule_of = |i: usize| rule_ends.iter().position(|&end| i < end as usize).unwrap_or(rule_ends.len());
    for (i, c) in conds.iter().enumerate() {
        let attr = c.attr as usize;
        if attr >= FeatureKind::COUNT {
            return Err(CompiledFilterError::UnknownAttribute { rule: rule_of(i), attr });
        }
        if !c.threshold.is_finite() {
            return Err(CompiledFilterError::NonFiniteThreshold { rule: rule_of(i), attr, threshold: c.threshold });
        }
    }
    for (k, &s) in scores.iter().enumerate() {
        if !s.is_finite() || !(0.0..=1.0).contains(&s) {
            return Err(CompiledFilterError::ScoreOutOfRange { rule: Some(k), score: s });
        }
    }
    if !default_score.is_finite() || !(0.0..=1.0).contains(&default_score) {
        return Err(CompiledFilterError::ScoreOutOfRange { rule: None, score: default_score });
    }
    Ok(())
}

impl CompiledFilter {
    /// Lowers an induced rule set. The demand mask is derived from the
    /// attributes the rules actually reference.
    ///
    /// # Panics
    ///
    /// Panics on any [`CompiledFilterError`] — see
    /// [`try_from_rule_set`](CompiledFilter::try_from_rule_set) for the
    /// non-panicking form.
    pub fn from_rule_set(rules: &RuleSet, name: impl Into<String>) -> CompiledFilter {
        CompiledFilter::try_from_rule_set(rules, name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Lowers an induced rule set, rejecting incoherent tables with a
    /// named error: unknown attributes, non-finite thresholds and
    /// out-of-`[0, 1]` calibrated scores are construction-time failures,
    /// not latent artifacts for the model lint to find in production.
    pub fn try_from_rule_set(rules: &RuleSet, name: impl Into<String>) -> Result<CompiledFilter, CompiledFilterError> {
        let mut conds = Vec::with_capacity(rules.condition_count());
        let mut rule_ends = Vec::with_capacity(rules.len());
        let mut scores = Vec::with_capacity(rules.len());
        for (k, rule) in rules.rules().iter().enumerate() {
            for c in rule.conditions() {
                let attr = u32::try_from(c.attr)
                    .map_err(|_| CompiledFilterError::UnknownAttribute { rule: k, attr: c.attr })?;
                conds.push(CompiledCond { attr, op: c.op, threshold: c.threshold });
            }
            rule_ends.push(u32::try_from(conds.len()).expect("condition count fits u32"));
            scores.push(rules.rule_confidence(k));
        }
        let default_score = rules.default_confidence();
        validate_table(&conds, &rule_ends, &scores, default_score)?;
        let demand = FeatureMask::of(rules.referenced_attrs().into_iter().filter_map(FeatureKind::from_index));
        Ok(CompiledFilter { name: name.into(), conds, rule_ends, scores, default_score, demand })
    }

    /// The fixed LS strategy: a single empty rule that always fires,
    /// with full confidence.
    pub fn always() -> CompiledFilter {
        CompiledFilter {
            name: "LS".into(),
            conds: Vec::new(),
            rule_ends: vec![0],
            scores: vec![1.0],
            default_score: 0.0,
            demand: FeatureMask::EMPTY,
        }
    }

    /// The fixed NS strategy: no rules, nothing ever fires, nothing is
    /// ever believed schedulable.
    pub fn never() -> CompiledFilter {
        CompiledFilter {
            name: "NS".into(),
            conds: Vec::new(),
            rule_ends: Vec::new(),
            scores: Vec::new(),
            default_score: 0.0,
            demand: FeatureMask::EMPTY,
        }
    }

    /// The size-threshold baseline: one rule, `bbLen >= min_len`. A
    /// hand-written heuristic has no training record, so both regions
    /// score the uninformed 0.5.
    pub fn size_threshold(min_len: usize) -> CompiledFilter {
        CompiledFilter {
            name: format!("size>={min_len}"),
            conds: vec![CompiledCond {
                attr: u32::try_from(FeatureKind::BbLen.index()).expect("feature indices fit u32"),
                op: Op::Ge,
                threshold: min_len as f64,
            }],
            rule_ends: vec![1],
            scores: vec![0.5],
            default_score: 0.5,
            demand: FeatureMask::of([FeatureKind::BbLen]),
        }
    }

    /// The features this filter's conditions read. Extraction only needs
    /// to materialize these ([`FeatureVector::extract_masked`]).
    pub fn demand(&self) -> FeatureMask {
        self.demand
    }

    /// Number of rules in the table.
    pub fn rule_count(&self) -> usize {
        self.rule_ends.len()
    }

    /// Total number of lowered conditions (model size).
    pub fn condition_count(&self) -> usize {
        self.conds.len()
    }

    /// The conditions of rule `k` as `(attr, op, threshold)` triples —
    /// read-only introspection for the model lint, which rebuilds the
    /// table in its own plain-data shape.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn rule_conditions(&self, k: usize) -> impl Iterator<Item = (usize, Op, f64)> + '_ {
        let start = if k == 0 { 0 } else { self.rule_ends[k - 1] as usize };
        let end = self.rule_ends[k] as usize;
        self.conds[start..end].iter().map(|c| (c.attr as usize, c.op, c.threshold))
    }

    /// The calibrated score emitted when rule `k` fires first.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn rule_score(&self, k: usize) -> f64 {
        self.scores[k]
    }

    /// The calibrated score emitted when no rule fires.
    pub fn default_score(&self) -> f64 {
        self.default_score
    }

    /// The decision for one feature vector (dense Table 1 layout).
    #[inline]
    pub fn decide(&self, values: &[f64]) -> bool {
        self.decide_counted(values).0
    }

    /// The decision plus the number of conditions actually evaluated
    /// before it was reached — the filter's honest per-block cost, with
    /// short-circuiting accounted for.
    #[inline]
    pub fn decide_counted(&self, values: &[f64]) -> (bool, u64) {
        let (fired, evaluated) = self.walk(|attr| values[attr]);
        (fired.is_some(), evaluated)
    }

    /// The calibrated score for one feature vector.
    #[inline]
    pub fn score(&self, values: &[f64]) -> FilterScore {
        self.score_counted(values).0
    }

    /// The calibrated score plus the conditions evaluated to reach it —
    /// the same short-circuit walk as [`decide_counted`], so scoring
    /// costs exactly what deciding costs; only the table lookup of the
    /// firing rule's confidence is added.
    ///
    /// [`decide_counted`]: CompiledFilter::decide_counted
    #[inline]
    pub fn score_counted(&self, values: &[f64]) -> (FilterScore, u64) {
        let (fired, evaluated) = self.walk(|attr| values[attr]);
        (self.score_of(fired), evaluated)
    }

    /// Scores every row of a batch against the SoA columns, sharded like
    /// [`classify_batch`](CompiledFilter::classify_batch); row `i`'s
    /// `decision()` equals `classify_batch`'s row `i` for every thread
    /// count.
    pub fn score_batch(&self, batch: &FeatureBatch, threads: usize) -> Vec<FilterScore> {
        let rows: Vec<u32> = (0..u32::try_from(batch.len()).expect("batch sizes fit u32")).collect();
        let shards = crate::parallel::shard_map(&rows, threads, |slice| {
            slice
                .iter()
                .map(|&row| self.score_of(self.walk(|attr| batch.value(attr, row as usize)).0))
                .collect::<Vec<FilterScore>>()
        });
        shards.into_iter().flatten().collect()
    }

    /// Resolves a walk's fired-rule index into the calibrated score.
    #[inline]
    fn score_of(&self, fired: Option<u32>) -> FilterScore {
        let probability = match fired {
            Some(k) => self.scores[k as usize],
            None => self.default_score,
        };
        FilterScore { fired, probability }
    }

    /// The one rule-table walk every path shares — boolean decisions,
    /// counted work, calibrated scores, scalar and batch alike —
    /// parameterized over how a feature value is fetched (dense slice or
    /// SoA column) so the short-circuit and firing-order semantics
    /// cannot diverge between any two of them. Returns the index of the
    /// first rule that fired (the decision is its presence) and the
    /// number of conditions evaluated.
    #[inline]
    fn walk(&self, mut value: impl FnMut(usize) -> f64) -> (Option<u32>, u64) {
        let mut evaluated = 0u64;
        let mut start = 0u32;
        for (k, &end) in self.rule_ends.iter().enumerate() {
            let mut fired = true;
            for cond in &self.conds[start as usize..end as usize] {
                evaluated += 1;
                if !cond.holds(value(cond.attr as usize)) {
                    fired = false;
                    break;
                }
            }
            if fired {
                return (Some(u32::try_from(k).expect("rule indices fit u32")), evaluated);
            }
            start = end;
        }
        (None, evaluated)
    }

    /// Conditions evaluated for one feature vector (the
    /// [`Filter::eval_work`] hook, on raw values).
    pub fn eval_work_values(&self, values: &[f64]) -> u64 {
        self.decide_counted(values).1
    }

    /// Deterministic work proxy for demand-masked feature extraction on
    /// a block of `bb_len` instructions (see
    /// [`FeatureMask::extraction_work`]).
    pub fn extraction_work(&self, bb_len: u64) -> u64 {
        self.demand.extraction_work(bb_len)
    }

    /// Extracts exactly the demanded features of `block` and decides —
    /// the deployed fast path: one masked pass, then the flat table.
    pub fn classify_block(&self, block: &BasicBlock) -> bool {
        self.decide(FeatureVector::extract_masked(block, self.demand).as_slice())
    }

    /// Classifies every row of a batch, sharding rows across `threads`
    /// scoped workers (`0` = one per core, `1` = serial) with
    /// [`shard_map`](crate::parallel::shard_map). Output order matches
    /// the batch; the result is identical for every thread count.
    pub fn classify_batch(&self, batch: &FeatureBatch, threads: usize) -> Vec<bool> {
        let rows: Vec<u32> = (0..u32::try_from(batch.len()).expect("batch sizes fit u32")).collect();
        let shards = crate::parallel::shard_map(&rows, threads, |slice| {
            slice.iter().map(|&row| self.decide_row(batch, row as usize)).collect::<Vec<bool>>()
        });
        shards.into_iter().flatten().collect()
    }

    /// One row's decision against the SoA columns.
    #[inline]
    fn decide_row(&self, batch: &FeatureBatch, row: usize) -> bool {
        self.walk(|attr| batch.value(attr, row)).0.is_some()
    }
}

impl Filter for CompiledFilter {
    fn should_schedule(&self, features: &FeatureVector) -> bool {
        self.decide(features.as_slice())
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn compile(&self) -> CompiledFilter {
        self.clone()
    }

    fn eval_work(&self, features: &FeatureVector) -> u64 {
        self.eval_work_values(features.as_slice())
    }
}

impl fmt::Display for CompiledFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} rules, {} conditions, demand {}]",
            self.name,
            self.rule_count(),
            self.condition_count(),
            self.demand
        )
    }
}

/// Feature vectors in structure-of-arrays layout: one contiguous column
/// per Table 1 feature, so batch classification streams only the
/// demanded columns instead of striding through per-record structs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureBatch {
    /// Column-major values: column `a` occupies `data[a*len .. (a+1)*len]`.
    data: Vec<f64>,
    len: usize,
}

impl FeatureBatch {
    /// Packs feature vectors into columns.
    pub fn from_vectors<'a>(vectors: impl IntoIterator<Item = &'a FeatureVector>) -> FeatureBatch {
        let rows: Vec<&FeatureVector> = vectors.into_iter().collect();
        let len = rows.len();
        let mut data = vec![0.0; FeatureKind::COUNT * len];
        for (row, fv) in rows.iter().enumerate() {
            for (attr, &v) in fv.as_slice().iter().enumerate() {
                data[attr * len + row] = v;
            }
        }
        FeatureBatch { data, len }
    }

    /// Packs the feature vectors of a trace.
    pub fn from_traces(traces: &[TraceRecord]) -> FeatureBatch {
        FeatureBatch::from_vectors(traces.iter().map(|r| &r.features))
    }

    /// Number of rows (feature vectors).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value of feature `attr` in row `row`.
    #[inline]
    pub fn value(&self, attr: usize, row: usize) -> f64 {
        self.data[attr * self.len + row]
    }

    /// One feature's contiguous column.
    pub fn column(&self, kind: FeatureKind) -> &[f64] {
        let a = kind.index();
        &self.data[a * self.len..(a + 1) * self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlwaysSchedule, LearnedFilter, NeverSchedule, SizeThresholdFilter};
    use wts_ripper::{Condition, Rule, RuleStats};

    fn fv(bb_len: f64, loads: f64, calls: f64) -> FeatureVector {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = bb_len;
        v[FeatureKind::Loads.index()] = loads;
        v[FeatureKind::Calls.index()] = calls;
        FeatureVector::from_values(v)
    }

    fn two_rule_set() -> RuleSet {
        let attr_names: Vec<String> = FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect();
        RuleSet::new(
            attr_names,
            "list",
            "orig",
            vec![
                Rule::from_conditions(vec![
                    Condition { attr: FeatureKind::BbLen.index(), op: Op::Ge, threshold: 7.0 },
                    Condition { attr: FeatureKind::Loads.index(), op: Op::Ge, threshold: 0.3 },
                ]),
                Rule::from_conditions(vec![Condition { attr: FeatureKind::Calls.index(), op: Op::Le, threshold: 0.1 }]),
            ],
            vec![],
            RuleStats::default(),
        )
    }

    #[test]
    fn compiled_matches_interpreted_on_the_sample_set() {
        let rs = two_rule_set();
        let compiled = CompiledFilter::from_rule_set(&rs, "L/N");
        for v in [fv(8.0, 0.5, 0.9), fv(8.0, 0.1, 0.05), fv(3.0, 0.9, 0.9), fv(0.0, 0.0, 0.0)] {
            assert_eq!(compiled.decide(v.as_slice()), rs.predict(v.as_slice()), "{v}");
        }
        assert_eq!(compiled.rule_count(), 2);
        assert_eq!(compiled.condition_count(), 3);
        assert_eq!(compiled.demand(), FeatureMask::of([FeatureKind::BbLen, FeatureKind::Loads, FeatureKind::Calls]));
    }

    #[test]
    fn condition_counting_is_short_circuit_aware() {
        let compiled = CompiledFilter::from_rule_set(&two_rule_set(), "L/N");
        // Rule 1 fires on its 2 conditions: stop there.
        assert_eq!(compiled.decide_counted(fv(8.0, 0.5, 0.9).as_slice()), (true, 2));
        // Rule 1 fails at its first condition; rule 2 fires: 1 + 1.
        assert_eq!(compiled.decide_counted(fv(3.0, 0.9, 0.05).as_slice()), (true, 2));
        // Rule 1 fails at its second condition; rule 2 fails: 2 + 1.
        assert_eq!(compiled.decide_counted(fv(8.0, 0.1, 0.9).as_slice()), (false, 3));
    }

    #[test]
    fn fixed_strategies_compile_to_degenerate_tables() {
        let always = CompiledFilter::always();
        assert_eq!(always.decide_counted(fv(0.0, 0.0, 0.0).as_slice()), (true, 0));
        assert!(always.demand().is_empty());
        let never = CompiledFilter::never();
        assert_eq!(never.decide_counted(fv(99.0, 1.0, 0.0).as_slice()), (false, 0));
        assert_eq!(never.extraction_work(1000), 0, "NS never touches the block");
    }

    #[test]
    fn size_threshold_lowering() {
        let c = CompiledFilter::size_threshold(5);
        assert!(c.decide(fv(5.0, 0.0, 0.0).as_slice()));
        assert!(!c.decide(fv(4.0, 0.0, 0.0).as_slice()));
        assert_eq!(c.eval_work_values(fv(4.0, 0.0, 0.0).as_slice()), 1);
        assert_eq!(c.extraction_work(1000), 0, "bbLen is known without an instruction pass");
    }

    #[test]
    fn trait_compile_hooks_agree_with_the_interpreted_filters() {
        let learned = LearnedFilter::new(two_rule_set(), 20);
        let compiled = learned.compile();
        for v in [fv(8.0, 0.5, 0.9), fv(8.0, 0.1, 0.9), fv(3.0, 0.0, 0.05)] {
            assert_eq!(compiled.should_schedule(&v), learned.should_schedule(&v));
            assert_eq!(compiled.eval_work(&v), learned.eval_work(&v));
        }
        assert_eq!(compiled.name(), learned.name());
        assert_eq!(AlwaysSchedule.compile().name(), "LS");
        assert_eq!(NeverSchedule.compile().name(), "NS");
        assert_eq!(SizeThresholdFilter::new(9).compile().name(), "size>=9");
        assert_eq!(compiled.compile(), compiled, "recompiling is the identity");
    }

    #[test]
    fn batch_layout_is_columnar_and_decisions_match_scalar() {
        let vectors = [fv(8.0, 0.5, 0.9), fv(3.0, 0.9, 0.05), fv(8.0, 0.1, 0.9), fv(1.0, 0.0, 0.5)];
        let batch = FeatureBatch::from_vectors(vectors.iter());
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.column(FeatureKind::BbLen), &[8.0, 3.0, 8.0, 1.0]);
        let compiled = CompiledFilter::from_rule_set(&two_rule_set(), "L/N");
        for threads in [1, 2, 7] {
            let decisions = compiled.classify_batch(&batch, threads);
            let scalar: Vec<bool> = vectors.iter().map(|v| compiled.decide(v.as_slice())).collect();
            assert_eq!(decisions, scalar, "{threads} threads");
        }
        assert!(FeatureBatch::from_traces(&[]).is_empty());
        assert!(compiled.classify_batch(&FeatureBatch::default(), 4).is_empty());
    }

    fn statted_rule_set() -> RuleSet {
        let attr_names: Vec<String> = FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect();
        RuleSet::new(
            attr_names,
            "list",
            "orig",
            vec![
                Rule::from_conditions(vec![
                    Condition { attr: FeatureKind::BbLen.index(), op: Op::Ge, threshold: 7.0 },
                    Condition { attr: FeatureKind::Loads.index(), op: Op::Ge, threshold: 0.3 },
                ]),
                Rule::from_conditions(vec![Condition { attr: FeatureKind::Calls.index(), op: Op::Le, threshold: 0.1 }]),
            ],
            vec![RuleStats { hits: 924, misses: 12 }, RuleStats { hits: 10, misses: 30 }],
            RuleStats { hits: 27476, misses: 1946 },
        )
    }

    #[test]
    fn scores_lower_the_laplace_confidences() {
        let rs = statted_rule_set();
        let compiled = CompiledFilter::from_rule_set(&rs, "L/N");
        // Rule 0 fires: high confidence.
        let (s, n) = compiled.score_counted(fv(8.0, 0.5, 0.9).as_slice());
        assert_eq!(s.fired, Some(0));
        assert!((s.probability - rs.rule_confidence(0)).abs() < 1e-12);
        assert!(s.probability > 0.9);
        // Rule 1 fires: a weak rule stays weak.
        let (s, _) = compiled.score_counted(fv(3.0, 0.9, 0.05).as_slice());
        assert_eq!(s.fired, Some(1));
        assert!((s.probability - rs.rule_confidence(1)).abs() < 1e-12);
        assert!(s.probability < 0.5);
        // Nothing fires: the reject region's residual positive rate.
        let (s, _) = compiled.score_counted(fv(3.0, 0.0, 0.9).as_slice());
        assert_eq!(s.fired, None);
        assert!(!s.decision());
        assert!((s.probability - rs.default_confidence()).abs() < 1e-12);
        // Work accounting is unchanged by scoring.
        assert_eq!(n, compiled.decide_counted(fv(8.0, 0.5, 0.9).as_slice()).1);
    }

    #[test]
    fn score_decisions_are_bit_identical_to_decide_everywhere() {
        let compiled = CompiledFilter::from_rule_set(&statted_rule_set(), "L/N");
        let vectors = [fv(8.0, 0.5, 0.9), fv(3.0, 0.9, 0.05), fv(8.0, 0.1, 0.9), fv(1.0, 0.0, 0.5)];
        for v in &vectors {
            let (score, work) = compiled.score_counted(v.as_slice());
            assert_eq!(score.decision(), compiled.decide(v.as_slice()), "{v}");
            assert_eq!(work, compiled.decide_counted(v.as_slice()).1, "{v}");
            assert_eq!(compiled.score(v.as_slice()), score);
        }
        let batch = FeatureBatch::from_vectors(vectors.iter());
        for threads in [1, 2, 7] {
            let scores = compiled.score_batch(&batch, threads);
            let decisions = compiled.classify_batch(&batch, threads);
            assert_eq!(scores.len(), decisions.len());
            for (s, d) in scores.iter().zip(&decisions) {
                assert_eq!(s.decision(), *d, "{threads} threads");
            }
            let scalar: Vec<FilterScore> = vectors.iter().map(|v| compiled.score(v.as_slice())).collect();
            assert_eq!(scores, scalar, "{threads} threads");
        }
    }

    #[test]
    fn degenerate_tables_score_their_beliefs() {
        let always = CompiledFilter::always();
        let s = always.score(fv(0.0, 0.0, 0.0).as_slice());
        assert_eq!((s.fired, s.probability), (Some(0), 1.0));
        let never = CompiledFilter::never();
        let s = never.score(fv(99.0, 1.0, 0.0).as_slice());
        assert_eq!((s.fired, s.probability), (None, 0.0));
        let size = CompiledFilter::size_threshold(5);
        assert_eq!(size.score(fv(8.0, 0.0, 0.0).as_slice()).probability, 0.5);
        assert_eq!(size.score(fv(3.0, 0.0, 0.0).as_slice()).probability, 0.5);
        // Un-statted rule sets fall back to the uninformed 0.5 too.
        let unstatted = CompiledFilter::from_rule_set(&two_rule_set(), "L/N");
        assert_eq!(unstatted.score(fv(8.0, 0.5, 0.9).as_slice()).probability, 0.5);
    }

    #[test]
    #[should_panic(expected = "not a known feature")]
    fn out_of_range_attribute_rejected() {
        let rs = RuleSet::new(
            vec!["a".into()],
            "p",
            "n",
            vec![Rule::from_conditions(vec![Condition { attr: 40, op: Op::Ge, threshold: 0.0 }])],
            vec![],
            RuleStats::default(),
        );
        CompiledFilter::from_rule_set(&rs, "bad");
    }

    #[test]
    fn try_from_rule_set_names_the_unknown_attribute() {
        let rs = RuleSet::new(
            vec!["a".into()],
            "p",
            "n",
            vec![Rule::new(), Rule::from_conditions(vec![Condition { attr: 40, op: Op::Ge, threshold: 0.0 }])],
            vec![],
            RuleStats::default(),
        );
        let err = CompiledFilter::try_from_rule_set(&rs, "bad").unwrap_err();
        assert_eq!(err, CompiledFilterError::UnknownAttribute { rule: 1, attr: 40 });
        assert!(err.to_string().contains("not a known feature"));
    }

    #[test]
    fn non_finite_thresholds_are_rejected_at_lowering_time() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let rs = RuleSet::new(
                FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect(),
                "list",
                "orig",
                vec![
                    Rule::from_conditions(vec![Condition {
                        attr: FeatureKind::BbLen.index(),
                        op: Op::Ge,
                        threshold: 7.0,
                    }]),
                    Rule::from_conditions(vec![Condition {
                        attr: FeatureKind::Loads.index(),
                        op: Op::Le,
                        threshold: bad,
                    }]),
                ],
                vec![],
                RuleStats::default(),
            );
            match CompiledFilter::try_from_rule_set(&rs, "bad") {
                Err(CompiledFilterError::NonFiniteThreshold { rule: 1, attr, threshold }) => {
                    assert_eq!(attr, FeatureKind::Loads.index());
                    assert!(!threshold.is_finite());
                }
                other => panic!("expected NonFiniteThreshold, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-finite threshold")]
    fn from_rule_set_panics_on_non_finite_thresholds() {
        let rs = RuleSet::new(
            vec!["bbLen".into()],
            "p",
            "n",
            vec![Rule::from_conditions(vec![Condition { attr: 0, op: Op::Ge, threshold: f64::NAN }])],
            vec![],
            RuleStats::default(),
        );
        CompiledFilter::from_rule_set(&rs, "bad");
    }

    #[test]
    fn score_validation_rejects_non_probabilities() {
        // RuleSet confidences are Laplace-smoothed and always land in
        // (0, 1); the validator is exercised on raw lowered parts.
        let conds = vec![CompiledCond { attr: 0, op: Op::Ge, threshold: 7.0 }];
        let ends = vec![1u32];
        assert_eq!(
            validate_table(&conds, &ends, &[1.5], 0.1),
            Err(CompiledFilterError::ScoreOutOfRange { rule: Some(0), score: 1.5 })
        );
        assert!(validate_table(&conds, &ends, &[0.9], f64::NAN).unwrap_err().to_string().contains("default"));
        assert_eq!(validate_table(&conds, &ends, &[0.9], 0.1), Ok(()));
        let err = CompiledFilterError::ScoreOutOfRange { rule: None, score: -0.5 };
        assert!(err.to_string().contains("default calibrated score -0.5"));
    }

    #[test]
    fn introspection_accessors_expose_the_lowered_table() {
        let rs = statted_rule_set();
        let compiled = CompiledFilter::from_rule_set(&rs, "L/N");
        let r0: Vec<(usize, Op, f64)> = compiled.rule_conditions(0).collect();
        assert_eq!(r0, vec![(FeatureKind::BbLen.index(), Op::Ge, 7.0), (FeatureKind::Loads.index(), Op::Ge, 0.3),]);
        let r1: Vec<(usize, Op, f64)> = compiled.rule_conditions(1).collect();
        assert_eq!(r1, vec![(FeatureKind::Calls.index(), Op::Le, 0.1)]);
        assert!((compiled.rule_score(0) - rs.rule_confidence(0)).abs() < 1e-12);
        assert!((compiled.rule_score(1) - rs.rule_confidence(1)).abs() < 1e-12);
        assert!((compiled.default_score() - rs.default_confidence()).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes_the_table() {
        let s = CompiledFilter::from_rule_set(&two_rule_set(), "L/N(t=20)").to_string();
        assert!(s.contains("2 rules") && s.contains("3 conditions") && s.contains("bbLen"), "got: {s}");
    }
}
