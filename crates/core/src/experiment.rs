//! The unified §2.2 pipeline: **trace → label → train → evaluate** as
//! one composable, parallelizable unit.
//!
//! The seed wired these four stages by hand at every call site —
//! [`collect_trace`](crate::collect_trace), then
//! [`build_dataset`](crate::build_dataset), then
//! [`train_filter`](crate::train_filter) /
//! [`train_loocv`](crate::train_loocv), then the eval functions — and
//! each of the table/figure regenerators re-plumbed the same steps.
//! [`Experiment`] owns the sequence end to end:
//!
//! 1. **Trace** maps to §2.2's instrumented scheduling pass: every block
//!    of every benchmark program is feature-extracted and list-scheduled,
//!    with cycle counts from a configurable pair of
//!    [`CostProvider`](wts_machine::CostProvider)s (the "simplified
//!    simulator" for labeling, the detailed model standing in for
//!    hardware). Collection shards across methods with scoped threads
//!    and is bit-identical to the serial path.
//! 2. **Label** maps to §2.2's thresholding: an instance is `LS` when
//!    scheduling improved the estimate by more than `t`%, `NS` when it
//!    did not improve at all, and dropped in between (§4.4's
//!    noise-reduction trick).
//! 3. **Train** maps to §2.3: RIPPER induces an if-then rule set; the
//!    paper's evaluation protocol is leave-one-benchmark-out
//!    cross-validation, sharded across folds.
//! 4. **Evaluate** maps to §3: classification accuracy (Table 3),
//!    predicted times (Table 4), run-time classification (Table 6),
//!    scheduling-time and application-time ratios (Figures 1–3).
//!
//! ```
//! use wts_core::Experiment;
//! use wts_ir::{BasicBlock, Inst, MemRef, MemSpace, Method, Opcode, Program, Reg};
//! use wts_machine::MachineConfig;
//!
//! let mut p = Program::new("demo");
//! let mut m = Method::new(0, "m0");
//! let mut b = BasicBlock::new(0);
//! b.push(Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9))
//!     .mem(MemRef::slot(MemSpace::Heap, 0)));
//! b.push(Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)));
//! b.push(Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(8)).use_(Reg::gpr(8)));
//! m.push_block(b);
//! p.push_method(m);
//!
//! let run = Experiment::new(MachineConfig::ppc7410()).run(vec![p]);
//! assert_eq!(run.names(), ["demo"]);
//! assert_eq!(run.all_traces().len(), 1);
//! ```

use crate::eval::{
    app_time_ratio, classification_matrix, predicted_time_ratio, runtime_classification, sched_time_policy,
    sched_time_ratio, ClassCounts, EvalTimes,
};
use crate::label::{build_dataset, LabelConfig};
use crate::learner::{Learner, LearnerKind};
use crate::matrix::PortfolioEntry;
use crate::store::{FilterKey, FilterStore};
use crate::trace::{collect_trace_with, TimingMode, TraceOptions, TraceRecord};
use crate::train::{train_loocv_sharded, TrainConfig};
use crate::{Filter, LearnedFilter};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;
use wts_ir::{Program, ScopeKind};
use wts_machine::{EstimatorKind, MachineConfig};
use wts_ripper::{geometric_mean, ConfusionMatrix, Dataset, RipperConfig};
use wts_sched::SchedulePolicy;

/// Name-sorted `(benchmark, filter)` pairs from one LOOCV training run.
/// `Arc`'d so a fold set published in the [`FilterStore`] can be shared
/// across threads (a serving retrainer, the sharded matrix).
pub type LoocvFilters = Arc<Vec<(String, LearnedFilter)>>;

/// Configuration of the whole trace→label→train→evaluate pipeline.
///
/// Build one with [`Experiment::new`] and the `with_*` methods, then
/// [`run`](Experiment::run) it over a suite of programs. Scheduler
/// policy selection lives here — not at the call sites — so an ablation
/// swaps policies by building a second `Experiment`, nothing else.
#[derive(Debug, Clone)]
pub struct Experiment {
    machine: MachineConfig,
    policy: SchedulePolicy,
    learner: LearnerKind,
    trace_threads: usize,
    train_threads: usize,
    timing: TimingMode,
    estimated: EstimatorKind,
    measured: EstimatorKind,
    scope: ScopeKind,
}

impl Experiment {
    /// A pipeline over `machine` with the paper's defaults: CPS
    /// scheduling, cheap estimator for labels, detailed simulator as the
    /// hardware stand-in, default RIPPER settings, one worker thread per
    /// available core, wall-clock timing.
    pub fn new(machine: MachineConfig) -> Experiment {
        Experiment {
            machine,
            policy: SchedulePolicy::CriticalPath,
            learner: LearnerKind::default(),
            trace_threads: 0,
            train_threads: 0,
            timing: TimingMode::WallClock,
            estimated: EstimatorKind::Cheap,
            measured: EstimatorKind::Detailed,
            scope: ScopeKind::Block,
        }
    }

    /// Retargets the pipeline at a different machine, keeping every other
    /// setting. The cross-machine [`ExperimentMatrix`](crate::ExperimentMatrix)
    /// stamps one pipeline per registry machine out of a single template
    /// this way.
    pub fn with_machine(mut self, machine: MachineConfig) -> Experiment {
        self.machine = machine;
        self
    }

    /// Selects the scheduler policy the instrumented pass runs.
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Experiment {
        self.policy = policy;
        self
    }

    /// Overrides the RIPPER settings (and selects the RIPPER backend).
    pub fn with_ripper(mut self, ripper: RipperConfig) -> Experiment {
        self.learner = LearnerKind::Ripper(ripper);
        self
    }

    /// Selects the induction backend the training stage runs (RIPPER by
    /// default). Per-learner artifacts ([`ExperimentRun::loocv_filters_for`],
    /// [`MatrixRun::portfolio`](crate::MatrixRun::portfolio)) can query
    /// other backends on the same run without re-tracing.
    pub fn with_learner(mut self, learner: LearnerKind) -> Experiment {
        self.learner = learner;
        self
    }

    /// Sets the worker-thread count for tracing and LOOCV training
    /// (`0` = one per available core, `1` = fully serial).
    pub fn with_threads(mut self, threads: usize) -> Experiment {
        self.trace_threads = threads;
        self.train_threads = threads;
        self
    }

    /// Sets the trace-stage worker count alone. Serial tracing keeps the
    /// wall-clock `*_ns` channels free of multi-worker cache contention,
    /// which matters when those channels feed published timing artifacts;
    /// the cycle-count channels are thread-count invariant either way.
    pub fn with_trace_threads(mut self, threads: usize) -> Experiment {
        self.trace_threads = threads;
        self
    }

    /// Sets the LOOCV-training worker count alone (no wall-clock channel
    /// is involved in training, so sharding it is always safe).
    pub fn with_train_threads(mut self, threads: usize) -> Experiment {
        self.train_threads = threads;
        self
    }

    /// Switches the `*_ns` channels to the deterministic work proxies,
    /// making traces byte-identical run to run.
    pub fn with_timing(mut self, timing: TimingMode) -> Experiment {
        self.timing = timing;
        self
    }

    /// Selects which provider supplies the estimated (labeling) and
    /// measured (hardware stand-in) cycle channels.
    pub fn with_estimators(mut self, estimated: EstimatorKind, measured: EstimatorKind) -> Experiment {
        self.estimated = estimated;
        self.measured = measured;
        self
    }

    /// Selects the scheduling scope: per basic block (the paper's
    /// scenario, the default) or per formed superblock trace (the §3.1
    /// extension). The whole pipeline follows — tracing collects one
    /// record per scope unit, labeling thresholds the (speculative)
    /// trace schedules against the cheap estimator, training induces
    /// "should I schedule this trace?" filters, and the deployed
    /// [`filtered_schedule_pass`](crate::filtered_schedule_pass)
    /// decides per unit.
    pub fn with_scope(mut self, scope: ScopeKind) -> Experiment {
        self.scope = scope;
        self
    }

    /// The modelled machine.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The scheduler policy the pipeline runs.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// The scheduling scope the pipeline operates on.
    pub fn scope(&self) -> ScopeKind {
        self.scope
    }

    /// The trace-stage options this configuration denotes.
    pub fn trace_options(&self) -> TraceOptions {
        TraceOptions {
            policy: self.policy,
            threads: self.trace_threads,
            timing: self.timing,
            estimated: self.estimated,
            measured: self.measured,
            scope: self.scope,
        }
    }

    /// Stage 1 alone: the instrumented scheduling pass over one program,
    /// sharded across its methods.
    pub fn trace(&self, program: &Program) -> Vec<TraceRecord> {
        collect_trace_with(program, &self.machine, &self.trace_options())
    }

    /// Runs the trace stage over a whole suite and packages the result
    /// as an [`ExperimentRun`], from which labeled datasets, trained
    /// filters and every paper artifact derive on demand.
    pub fn run(&self, programs: Vec<Program>) -> ExperimentRun {
        let traces: Vec<Vec<TraceRecord>> = programs.iter().map(|p| self.trace(p)).collect();
        self.run_precomputed(Rc::new(programs), traces)
    }

    /// Rebuilds an [`ExperimentRun`] from a serialized trace corpus
    /// instead of re-tracing — the "ship training sets to end users"
    /// workflow of footnote 4. The bytes can be either trace encoding
    /// ([`read_trace_auto`](crate::read_trace_auto) dispatches on the
    /// magic); records regroup onto `programs` by benchmark name, in
    /// program order, exactly undoing
    /// [`ExperimentRun::serialize_traces`].
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Read`] when the bytes fail to parse, and
    /// [`CorpusError::Mismatch`] when the records do not line up with
    /// `programs` (an unknown benchmark, or records out of program
    /// order).
    pub fn run_from_serialized(&self, programs: Vec<Program>, bytes: &[u8]) -> Result<ExperimentRun, CorpusError> {
        let records = crate::read_trace_auto(bytes).map_err(CorpusError::Read)?;
        let mut traces: Vec<Vec<TraceRecord>> = programs.iter().map(|_| Vec::new()).collect();
        let mut it = records.into_iter().peekable();
        for (slot, program) in traces.iter_mut().zip(&programs) {
            while it.peek().is_some_and(|r| r.benchmark == program.name()) {
                slot.push(it.next().expect("peeked"));
            }
        }
        if let Some(r) = it.next() {
            let known = programs.iter().any(|p| p.name() == r.benchmark);
            return Err(CorpusError::Mismatch {
                benchmark: r.benchmark,
                detail: if known {
                    "records are not grouped in program order".to_string()
                } else {
                    "no such program in this run's suite".to_string()
                },
            });
        }
        Ok(self.run_precomputed(Rc::new(programs), traces))
    }

    /// Packages already-collected per-program traces as an
    /// [`ExperimentRun`] under this configuration, backed by a fresh
    /// private [`FilterStore`]. The matrix runner shards trace
    /// collection itself (over machines×methods) and hands the
    /// reassembled pieces here; the shared `Rc` lets every per-machine
    /// run borrow one corpus instead of deep-copying it.
    pub(crate) fn run_precomputed(&self, programs: Rc<Vec<Program>>, traces: Vec<Vec<TraceRecord>>) -> ExperimentRun {
        self.run_precomputed_in(FilterStore::shared(), programs, traces)
    }

    /// [`run_precomputed`](Experiment::run_precomputed) against a caller
    /// supplied store. Runs sharing one store must differ in at least
    /// one [`FilterKey`] component — the matrix qualifies because every
    /// per-machine run keys by its own machine name.
    pub(crate) fn run_precomputed_in(
        &self,
        store: Arc<FilterStore>,
        programs: Rc<Vec<Program>>,
        traces: Vec<Vec<TraceRecord>>,
    ) -> ExperimentRun {
        debug_assert_eq!(programs.len(), traces.len(), "one trace vector per program");
        let names: Vec<String> = programs.iter().map(|p| p.name().to_string()).collect();
        let all_traces: Vec<TraceRecord> = traces.iter().flat_map(|t| t.iter().cloned()).collect();
        ExperimentRun {
            learner: self.learner.clone(),
            scope: self.scope,
            threads: self.train_threads,
            machine_name: self.machine.name().to_string(),
            names,
            programs,
            traces,
            all_traces,
            store,
        }
    }
}

/// An error rebuilding a run from serialized traces
/// ([`Experiment::run_from_serialized`]).
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusError {
    /// The bytes failed to parse in either trace encoding.
    Read(crate::TraceReadError),
    /// The parsed records do not line up with the supplied programs.
    Mismatch {
        /// Benchmark name of the first record that failed to place.
        benchmark: String,
        /// Why it failed to place.
        detail: String,
    },
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Read(e) => write!(f, "{e}"),
            CorpusError::Mismatch { benchmark, detail } => {
                write!(f, "trace corpus does not match the program suite at benchmark {benchmark:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Read(e) => Some(e),
            CorpusError::Mismatch { .. } => None,
        }
    }
}

/// The output of the trace stage plus lazily computed label / train /
/// evaluate stages. Trained filters live in the run's [`FilterStore`]
/// — keyed per `(machine, learner, scope, threshold)` — rather than in
/// private caches, so the same filters the tables report are the ones
/// a JIT session or a serving daemon deploys.
pub struct ExperimentRun {
    learner: LearnerKind,
    scope: ScopeKind,
    threads: usize,
    machine_name: String,
    names: Vec<String>,
    programs: Rc<Vec<Program>>,
    traces: Vec<Vec<TraceRecord>>,
    all_traces: Vec<TraceRecord>,
    store: Arc<FilterStore>,
}

impl ExperimentRun {
    /// Benchmark names, in program order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The traced programs, in the order given to [`Experiment::run`].
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// Per-benchmark traces, parallel to [`names`](ExperimentRun::names).
    pub fn traces(&self) -> &[Vec<TraceRecord>] {
        &self.traces
    }

    /// All benchmarks' traces, concatenated in program order.
    pub fn all_traces(&self) -> &[TraceRecord] {
        &self.all_traces
    }

    /// Serializes the whole trace corpus in the binary
    /// `schedfilter-trace-bin-v1` encoding
    /// ([`write_trace_binary`](crate::write_trace_binary)), ready to be
    /// reloaded with [`Experiment::run_from_serialized`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceWriteError`](crate::TraceWriteError) when a
    /// record carries a non-finite feature value.
    pub fn serialize_traces(&self) -> Result<Vec<u8>, crate::TraceWriteError> {
        crate::write_trace_binary(&self.all_traces)
    }

    /// One benchmark's trace, by name.
    ///
    /// # Panics
    ///
    /// Panics if `bench` is not one of the run's benchmarks.
    pub fn trace_for(&self, bench: &str) -> &[TraceRecord] {
        let i = self.index_of(bench);
        &self.traces[i]
    }

    fn index_of(&self, bench: &str) -> usize {
        self.names.iter().position(|n| n == bench).unwrap_or_else(|| panic!("no benchmark {bench} in this run"))
    }

    /// The train config this run uses at threshold `t`, with the run's
    /// configured backend and scope.
    pub fn train_config(&self, t: u32) -> TrainConfig {
        TrainConfig { label: LabelConfig::new(t), learner: self.learner.clone(), scope: self.scope }
    }

    /// The run's configured induction backend.
    pub fn learner(&self) -> &LearnerKind {
        &self.learner
    }

    /// The scheduling scope this run's traces were collected at.
    pub fn scope(&self) -> ScopeKind {
        self.scope
    }

    /// Stage 2: the labeled RIPPER dataset at threshold `t`, grouped by
    /// benchmark for leave-one-benchmark-out CV.
    pub fn dataset(&self, t: u32) -> (Dataset, BTreeMap<String, u32>) {
        build_dataset(&self.all_traces, LabelConfig::new(t))
    }

    /// Stage 3 (evaluation protocol): leave-one-benchmark-out filters at
    /// threshold `t` under the run's configured backend, cached across
    /// artifacts, trained with folds sharded across the configured
    /// worker threads.
    pub fn loocv_filters(&self, t: u32) -> LoocvFilters {
        self.loocv_filters_for(t, &self.learner)
    }

    /// [`loocv_filters`](ExperimentRun::loocv_filters) under an explicit
    /// backend — the portfolio path: the traced corpus is shared, only
    /// the training stage re-runs, and each `(learner, threshold)` pair
    /// occupies its own [`FilterStore`] fold slot.
    pub fn loocv_filters_for(&self, t: u32, learner: &LearnerKind) -> LoocvFilters {
        let config = TrainConfig { label: LabelConfig::new(t), learner: learner.clone(), scope: self.scope };
        self.store.loocv_or_train(self.filter_key(t, learner), || {
            train_loocv_sharded(&self.all_traces, &config, self.threads)
        })
    }

    /// The filter trained for (i.e. *excluding*) the named benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `bench` is not one of the run's benchmarks.
    pub fn filter_for(&self, t: u32, bench: &str) -> LearnedFilter {
        let filters = self.loocv_filters(t);
        filters
            .iter()
            .find(|(n, _)| n == bench)
            .map(|(_, f)| f.clone())
            .unwrap_or_else(|| panic!("no filter for benchmark {bench}"))
    }

    /// Stage 3 ("at the factory", §3): one filter trained on the whole
    /// corpus at threshold `t` under the run's configured backend,
    /// published in the run's [`FilterStore`] (the cross-machine
    /// transfer table queries it repeatedly; a retrainer may later
    /// [`swap`](FilterStore::swap) the same slot).
    pub fn factory_filter(&self, t: u32) -> LearnedFilter {
        self.factory_filter_for(t, &self.learner)
    }

    /// [`factory_filter`](ExperimentRun::factory_filter) under an
    /// explicit backend, published per `(machine, learner, scope,
    /// threshold)`.
    pub fn factory_filter_for(&self, t: u32, learner: &LearnerKind) -> LearnedFilter {
        let config = TrainConfig { label: LabelConfig::new(t), learner: learner.clone(), scope: self.scope };
        self.store
            .deployed_or_train(self.filter_key(t, learner), || crate::train_filter(&self.all_traces, &config))
            .source()
            .clone()
    }

    /// The machine name this run's filters are keyed under.
    pub fn machine_name(&self) -> &str {
        &self.machine_name
    }

    /// The [`FilterKey`] this run files threshold-`t` filters of
    /// `learner` under: its machine, the backend's canonical tag, and
    /// the run's scope.
    pub fn filter_key(&self, t: u32, learner: &LearnerKind) -> FilterKey {
        FilterKey::new(&self.machine_name, learner, self.scope, t)
    }

    /// The run's backing [`FilterStore`]. Each run gets a private store
    /// by default; the cross-machine matrix shares one across its
    /// per-machine runs, and a serving daemon can deploy (and hot-swap)
    /// straight out of it.
    pub fn store(&self) -> &Arc<FilterStore> {
        &self.store
    }

    /// One learner's full portfolio row on this run: aggregate LOOCV
    /// classification error over every benchmark's held-out fold,
    /// geometric-mean predicted/app time ratios, and the accumulated
    /// honest filter + extraction overhead
    /// ([`EvalTimes`](crate::EvalTimes)) of its compiled filters.
    pub fn learner_eval(&self, t: u32, learner: &LearnerKind) -> PortfolioEntry {
        let filters = self.loocv_filters_for(t, learner);
        let label = LabelConfig::new(t);
        let mut confusion = ConfusionMatrix::default();
        let mut pred = Vec::new();
        let mut app = Vec::new();
        let mut times = EvalTimes::default();
        let mut conditions = 0usize;
        for (bench, filter) in filters.iter() {
            let tr = self.trace_for(bench);
            let m = classification_matrix(tr, filter, label);
            confusion.accumulate(&m);
            pred.push(predicted_time_ratio(tr, filter));
            app.push(app_time_ratio(tr, filter));
            times.accumulate(&sched_time_ratio(tr, filter));
            conditions += filter.rules().condition_count();
        }
        PortfolioEntry {
            learner: learner.name(),
            error_percent: confusion.error_percent(),
            predicted_percent: geometric_mean(&pred),
            app_ratio: geometric_mean(&app),
            conditions,
            times,
        }
    }

    /// Stage 4, Table 3: confusion of `bench`'s own LOOCV filter against
    /// its threshold-`t` labels.
    pub fn classification(&self, t: u32, bench: &str) -> ConfusionMatrix {
        classification_matrix(self.trace_for(bench), &self.filter_for(t, bench), LabelConfig::new(t))
    }

    /// Stage 4, Table 4: predicted (cheap-estimator) execution time under
    /// `bench`'s LOOCV filter, percent of never-scheduling.
    pub fn predicted_time(&self, t: u32, bench: &str) -> f64 {
        predicted_time_ratio(self.trace_for(bench), &self.filter_for(t, bench))
    }

    /// Stage 4, Figures 1b/2b/3b: measured application-time ratio under
    /// `bench`'s LOOCV filter (fraction of never-scheduling).
    pub fn app_time(&self, t: u32, bench: &str) -> f64 {
        app_time_ratio(self.trace_for(bench), &self.filter_for(t, bench))
    }

    /// Figures 1b/2b/3b reference rows: application-time ratio of an
    /// arbitrary fixed strategy over one benchmark.
    pub fn app_time_with(&self, bench: &str, filter: &dyn Filter) -> f64 {
        app_time_ratio(self.trace_for(bench), filter)
    }

    /// Stage 4, Figures 1a/2a/3a: scheduling-time measurement of
    /// `bench`'s LOOCV filter versus always-scheduling.
    pub fn sched_time(&self, t: u32, bench: &str) -> EvalTimes {
        sched_time_ratio(self.trace_for(bench), &self.filter_for(t, bench))
    }

    /// The compiled engine form of `bench`'s LOOCV filter — flat
    /// condition table plus feature demand mask, ready for the deployed
    /// fast path ([`filtered_schedule_pass`](crate::filtered_schedule_pass))
    /// or batch classification.
    pub fn compiled_filter_for(&self, t: u32, bench: &str) -> crate::CompiledFilter {
        self.filter_for(t, bench).compile()
    }

    /// Aggregate scheduling-time measurement of the threshold-`t` LOOCV
    /// filters over *all* benchmarks — the per-machine row of the
    /// filter-cost table: how much work the filters themselves add
    /// (`filter_work` + `feature_work`) against the full always-schedule
    /// cost.
    pub fn sched_time_total(&self, t: u32) -> EvalTimes {
        let mut total = EvalTimes::default();
        for bench in &self.names {
            total.accumulate(&self.sched_time(t, bench));
        }
        total
    }

    /// The leave-one-out calibrated expected-benefit policy for `bench`:
    /// the savings rate comes from every *other* benchmark's traces,
    /// mirroring the LOOCV training protocol — the held-out fold never
    /// calibrates its own model, just as it never trains its own filter.
    pub fn policy_for(&self, bench: &str, cycles_per_work: f64) -> crate::DecisionPolicy {
        let i = self.index_of(bench);
        let others = self.traces.iter().enumerate().filter(|&(j, _)| j != i).flat_map(|(_, t)| t);
        crate::DecisionPolicy::expected_benefit(others, cycles_per_work)
    }

    /// [`sched_time`](ExperimentRun::sched_time) with the schedule/skip
    /// call delegated to an explicit [`DecisionPolicy`](crate::DecisionPolicy).
    pub fn sched_time_with_policy(&self, t: u32, bench: &str, policy: &crate::DecisionPolicy) -> EvalTimes {
        sched_time_policy(self.trace_for(bench), &self.filter_for(t, bench), policy)
    }

    /// [`sched_time_total`](ExperimentRun::sched_time_total) under the
    /// per-fold expected-benefit policy at operating point
    /// `cycles_per_work`: each benchmark is evaluated with a
    /// [`BenefitModel`](crate::BenefitModel) calibrated on the other
    /// benchmarks' traces ([`policy_for`](ExperimentRun::policy_for)),
    /// so the aggregate is as honest as the LOOCV error numbers.
    pub fn sched_time_expected_benefit(&self, t: u32, cycles_per_work: f64) -> EvalTimes {
        let mut total = EvalTimes::default();
        for bench in &self.names {
            let policy = self.policy_for(bench, cycles_per_work);
            total.accumulate(&self.sched_time_with_policy(t, bench, &policy));
        }
        total
    }

    /// Stage 4, Table 6: run-time LS/NS classification counts of
    /// `bench`'s LOOCV filter over all its blocks.
    pub fn runtime_counts(&self, t: u32, bench: &str) -> ClassCounts {
        runtime_classification(self.trace_for(bench), &self.filter_for(t, bench))
    }

    /// Count of trace records labeled `LS` at threshold `t` (Table 5).
    pub fn ls_instances(&self, t: u32) -> usize {
        let label = LabelConfig::new(t);
        self.all_traces.iter().filter(|r| label.label(r) == Some(true)).count()
    }

    /// Count of trace records labeled `NS` (constant across thresholds).
    pub fn ns_instances(&self) -> usize {
        let label = LabelConfig::new(0);
        self.all_traces.iter().filter(|r| label.label(r) == Some(false)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlwaysSchedule, NeverSchedule};

    /// The shared learnable three-benchmark suite, at six methods per
    /// program.
    fn suite() -> Vec<Program> {
        crate::testutil::learnable_suite(6)
    }

    fn run() -> ExperimentRun {
        Experiment::new(MachineConfig::ppc7410()).with_timing(TimingMode::Deterministic).run(suite())
    }

    #[test]
    fn run_preserves_program_order_and_counts() {
        let r = run();
        assert_eq!(r.names(), ["alpha", "beta", "gamma"]);
        assert_eq!(r.programs().len(), 3);
        assert_eq!(r.traces().len(), 3);
        assert_eq!(r.all_traces().len(), 3 * 6 * 3);
        assert_eq!(r.trace_for("beta").len(), 18);
    }

    #[test]
    fn loocv_filters_are_cached_and_named() {
        let r = run();
        let a = r.loocv_filters(0);
        let b = r.loocv_filters(0);
        assert!(Arc::ptr_eq(&a, &b));
        let names: Vec<&str> = a.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
    }

    #[test]
    fn factory_filters_are_published_in_the_store() {
        let r = run();
        let f = r.factory_filter(0);
        let key = r.filter_key(0, r.learner());
        assert_eq!(key.machine(), "ppc7410");
        let snap = r.store().get(&key).expect("factory filter published");
        assert_eq!(snap.epoch(), 1, "first publication of this key");
        assert_eq!(*snap.source(), f);
        assert_eq!(*snap.compiled(), f.compile(), "snapshot carries the lowered engine");
        // A second request is a store hit, not a retrain.
        let again = r.factory_filter(0);
        assert_eq!(again, f);
        assert_eq!(r.store().epoch(&key), Some(1), "cache hits do not advance the epoch");
    }

    #[test]
    fn pipeline_stages_compose() {
        let r = run();
        let (data, groups) = r.dataset(0);
        assert_eq!(groups.len(), 3);
        assert_eq!(data.len(), r.all_traces().len(), "t=0 labels every record");
        let m = r.classification(0, "alpha");
        assert!(m.total() > 0);
        let counts = r.runtime_counts(0, "alpha");
        assert_eq!(counts.total(), r.trace_for("alpha").len());
        assert!(r.app_time(0, "alpha") <= 1.0 + 1e-9);
        assert_eq!(r.app_time_with("alpha", &NeverSchedule), 1.0);
        // The OoO hardware stand-in recovers these blocks' stalls, so the
        // measured channel only guarantees "no worse"; the benefit shows
        // on the estimated (cheap, in-order) channel.
        assert!(r.app_time_with("alpha", &AlwaysSchedule) <= 1.0);
        assert!(predicted_time_ratio(r.trace_for("alpha"), &AlwaysSchedule) < 100.0);
    }

    #[test]
    fn ls_instances_shrink_with_threshold_ns_constant() {
        let r = run();
        assert!(r.ls_instances(0) >= r.ls_instances(25));
        assert!(r.ls_instances(25) >= r.ls_instances(50));
        assert_eq!(
            r.ns_instances() + r.ls_instances(0),
            r.all_traces().len(),
            "t=0 partitions all records into LS and NS"
        );
    }

    #[test]
    fn deterministic_runs_are_identical_across_thread_counts() {
        let serial = Experiment::new(MachineConfig::ppc7410())
            .with_threads(1)
            .with_timing(TimingMode::Deterministic)
            .run(suite());
        let sharded = Experiment::new(MachineConfig::ppc7410())
            .with_threads(7)
            .with_timing(TimingMode::Deterministic)
            .run(suite());
        assert_eq!(serial.all_traces(), sharded.all_traces());
        let a = serial.loocv_filters(10);
        let b = sharded.loocv_filters(10);
        assert_eq!(*a, *b, "fold-sharded training must match serial training");
    }

    #[test]
    fn policy_lives_in_the_pipeline_config() {
        let cps = Experiment::new(MachineConfig::ppc7410()).with_timing(TimingMode::Deterministic);
        let rand = cps.clone().with_policy(SchedulePolicy::Random(7));
        assert_eq!(rand.policy(), SchedulePolicy::Random(7));
        let p = &suite()[0];
        let a = cps.trace(p);
        let b = rand.trace(p);
        let est_a: u64 = a.iter().map(|r| r.est_sched).sum();
        let est_b: u64 = b.iter().map(|r| r.est_sched).sum();
        assert!(est_a <= est_b, "CPS must not lose to the random policy");
    }

    #[test]
    #[should_panic(expected = "no benchmark nope")]
    fn unknown_benchmark_panics() {
        run().trace_for("nope");
    }

    #[test]
    fn serialized_corpus_round_trips_through_the_pipeline() {
        let exp = Experiment::new(MachineConfig::ppc7410()).with_timing(TimingMode::Deterministic);
        let original = exp.run(suite());
        let bytes = original.serialize_traces().expect("generated corpus is finite");
        let reloaded = exp.run_from_serialized(suite(), &bytes).expect("own corpus reloads");
        assert_eq!(reloaded.names(), original.names());
        assert_eq!(reloaded.all_traces(), original.all_traces());
        assert_eq!(reloaded.traces(), original.traces(), "per-benchmark grouping survives");
        // Downstream stages agree: same filters without re-tracing.
        assert_eq!(*reloaded.loocv_filters(10), *original.loocv_filters(10));
        // The text encoding loads through the same entry point.
        let text = crate::write_trace(original.all_traces()).unwrap();
        let from_text = exp.run_from_serialized(suite(), text.as_bytes()).expect("text corpus reloads");
        assert_eq!(from_text.all_traces(), original.all_traces());
    }

    #[test]
    fn mismatched_corpus_is_rejected_by_name() {
        let exp = Experiment::new(MachineConfig::ppc7410()).with_timing(TimingMode::Deterministic);
        let bytes = exp.run(suite()).serialize_traces().unwrap();
        // Drop a program from the suite: its records no longer place.
        let mut short = suite();
        short.remove(1);
        let err = match exp.run_from_serialized(short, &bytes) {
            Err(e) => e,
            Ok(_) => panic!("orphan records must be rejected"),
        };
        match err {
            CorpusError::Mismatch { benchmark, detail } => {
                assert_eq!(benchmark, "beta");
                assert!(detail.contains("no such program"), "got: {detail}");
            }
            other => panic!("expected Mismatch, got {other:?}"),
        }
        // Garbage bytes surface the reader's named error.
        let err = match exp.run_from_serialized(suite(), b"not a trace") {
            Err(e) => e,
            Ok(_) => panic!("garbage must be rejected"),
        };
        assert!(matches!(err, CorpusError::Read(crate::TraceReadError::UnknownFormat)), "got {err:?}");
    }

    #[test]
    fn superblock_scope_flows_through_the_whole_pipeline() {
        let programs = crate::testutil::mergeable_suite(4);
        let sb = Experiment::new(MachineConfig::ppc7410())
            .with_timing(TimingMode::Deterministic)
            .with_scope(ScopeKind::Superblock(70))
            .run(programs.clone());
        assert_eq!(sb.scope(), ScopeKind::Superblock(70));
        assert_eq!(sb.train_config(10).scope, ScopeKind::Superblock(70));
        // Traces are per scope unit: 2 per method (merged + cold).
        assert_eq!(sb.all_traces().len(), 3 * 4 * 2);
        // The LOOCV filters carry the scope tag and classify the traces.
        let filters = sb.loocv_filters(0);
        assert_eq!(filters.len(), 3);
        for (bench, f) in filters.iter() {
            assert_eq!(f.learner(), "L/N@sb70");
            let m = sb.classification(0, bench);
            assert!(m.total() > 0);
        }
        // Scope is a real scenario axis: the block pipeline over the
        // same corpus sees more (finer) decision units.
        let block = Experiment::new(MachineConfig::ppc7410()).with_timing(TimingMode::Deterministic).run(programs);
        assert_eq!(block.all_traces().len(), 3 * 4 * 4);
        assert!(block.all_traces().len() > sb.all_traces().len());
    }
}
