//! The decision layer: from calibrated scores to schedule/skip calls.
//!
//! The paper's filter commits to a *hard* operating point: a unit is
//! scheduled iff some induced rule fires, with the labeling threshold
//! `t` swept offline. Its own threshold-sensitivity observations (§4.4)
//! show the operating point matters, and the fuzzy-scheduling and
//! portfolio-design lines of work argue for graded, cost-aware
//! decisions. This module is that seam, refactored out of the boolean
//! `decide` call:
//!
//! * the compiled engine emits a calibrated
//!   [`FilterScore`](crate::FilterScore) per unit — which rule fired and
//!   the Laplace-smoothed probability that scheduling pays off;
//! * a [`DecisionPolicy`] turns the score plus the unit's *economics*
//!   ([`UnitEconomics`]: size, hotness, and the compile-time work
//!   already sunk into deciding) into the schedule/skip call.
//!
//! [`DecisionPolicy::HardThreshold`] reproduces the legacy boolean seam
//! bit-for-bit — it looks only at whether a rule fired, never at the
//! probability — so every pinned compiled≡interpreted property keeps
//! holding. [`DecisionPolicy::ExpectedBenefit`] weighs
//! `P(improvement) × estimated cycles saved` against the measured
//! filter + extraction + scheduling spend, converted through the
//! deploy-time tunable operating point
//! [`BenefitModel::cycles_per_work`].

use crate::engine::FilterScore;
use crate::trace::TraceRecord;
use std::fmt;

/// The calibrated cycle economics of scheduling on one machine: how
/// many estimator cycles one execution of one scheduled instruction
/// saves on average, and what one unit of compile-time work is worth in
/// application cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenefitModel {
    /// Estimator cycles saved per instruction per execution, averaged
    /// over the training units scheduling actually improved. Calibrated
    /// per machine by [`BenefitModel::calibrate`].
    pub saved_per_inst: f64,
    /// The operating point: application cycles one unit of compile-time
    /// work (filter conditions, masked extraction, scheduling proxy) is
    /// worth. Larger values make the policy stingier — a JIT under
    /// compile-time pressure deploys a higher value than an ahead-of-time
    /// build. Tunable at deploy time without retraining anything.
    pub cycles_per_work: f64,
}

impl BenefitModel {
    /// Calibrates the per-machine savings rate from training traces:
    /// `saved_per_inst` is total estimator cycles recovered over total
    /// instructions, summed across the units list scheduling improved.
    /// Traces from the held-out benchmark must be excluded by the caller
    /// (the LOOCV protocol), which is why this takes an iterator.
    ///
    /// A corpus where scheduling never helps calibrates to a zero rate —
    /// the policy then schedules nothing, which is exactly right.
    pub fn calibrate<'a>(traces: impl IntoIterator<Item = &'a TraceRecord>, cycles_per_work: f64) -> BenefitModel {
        let mut saved = 0u64;
        let mut insts = 0u64;
        for r in traces {
            if r.est_sched < r.est_unsched {
                saved += r.est_unsched - r.est_sched;
                insts += r.features.bb_len() as u64;
            }
        }
        let saved_per_inst = if insts == 0 { 0.0 } else { saved as f64 / insts as f64 };
        BenefitModel { saved_per_inst, cycles_per_work }
    }

    /// Deployable estimate of the scheduler's work on a unit of `insts`
    /// instructions: the deterministic scheduling proxy
    /// (`16 + 2·(n + edges) + n²`) with the dependence-edge count
    /// approximated as `2n`, since the real DAG is not built until the
    /// unit is already being scheduled.
    pub fn estimated_sched_work(insts: u64) -> u64 {
        16 + 6 * insts + insts * insts
    }

    /// Expected net application cycles of scheduling this unit:
    /// `P(improvement) × saved_per_inst × insts × exec_count` minus the
    /// compile spend (filter conditions + masked extraction + estimated
    /// scheduling work) priced at `cycles_per_work`.
    pub fn expected_net(&self, probability: f64, unit: &UnitEconomics) -> f64 {
        let gain = probability * self.saved_per_inst * unit.insts as f64 * unit.exec_count as f64;
        let work = unit.filter_work + unit.extraction_work + BenefitModel::estimated_sched_work(unit.insts);
        gain - self.cycles_per_work * work as f64
    }
}

/// What a deployed pass knows about one unit at decision time — all of
/// it available *before* the scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitEconomics {
    /// Instructions in the unit (the `bbLen` feature; total trace length
    /// at superblock scope).
    pub insts: u64,
    /// Profile execution count (trace weight at superblock scope).
    pub exec_count: u64,
    /// Filter conditions actually evaluated for this unit
    /// (short-circuit aware).
    pub filter_work: u64,
    /// Demand-masked feature-extraction work already spent.
    pub extraction_work: u64,
}

/// How a deployment turns a unit's [`FilterScore`] into the
/// schedule/skip call.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DecisionPolicy {
    /// The paper's operating point: schedule iff a rule fired. Looks
    /// only at [`FilterScore::fired`] — never at the probability — so a
    /// deployment under this policy is bit-identical to the pre-score
    /// boolean engine, pinned by the property suites.
    #[default]
    HardThreshold,
    /// Schedule iff the expected net benefit is positive:
    /// `P(improvement) × estimated cycles saved` beats the measured
    /// filter + extraction + scheduling spend at the model's operating
    /// point. Uses the calibrated probability whether or not a rule
    /// fired, so a hot unit in the reject region can still be scheduled
    /// on its residual positive rate, and a cold unit a weak rule fired
    /// on can be skipped.
    ExpectedBenefit(BenefitModel),
}

impl DecisionPolicy {
    /// The standard expected-benefit policy: calibrate the savings rate
    /// on `traces` at operating point `cycles_per_work`.
    pub fn expected_benefit<'a>(
        traces: impl IntoIterator<Item = &'a TraceRecord>,
        cycles_per_work: f64,
    ) -> DecisionPolicy {
        DecisionPolicy::ExpectedBenefit(BenefitModel::calibrate(traces, cycles_per_work))
    }

    /// The schedule/skip call for one unit.
    #[inline]
    pub fn decide(&self, score: FilterScore, unit: &UnitEconomics) -> bool {
        match self {
            DecisionPolicy::HardThreshold => score.decision(),
            DecisionPolicy::ExpectedBenefit(model) => model.expected_net(score.probability, unit) > 0.0,
        }
    }
}

impl fmt::Display for DecisionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionPolicy::HardThreshold => write!(f, "hard"),
            DecisionPolicy::ExpectedBenefit(m) => {
                write!(f, "eb(rate={:.3}, c={})", m.saved_per_inst, m.cycles_per_work)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_features::{FeatureKind, FeatureVector};
    use wts_ir::{BlockId, MethodId};

    fn rec(bb_len: f64, exec: u64, est: (u64, u64)) -> TraceRecord {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = bb_len;
        TraceRecord {
            benchmark: "b".into(),
            method: MethodId(0),
            block: BlockId(0),
            exec_count: exec,
            features: FeatureVector::from_values(v),
            est_unsched: est.0,
            est_sched: est.1,
            hw_unsched: est.0,
            hw_sched: est.1,
            sched_ns: 0,
            feature_ns: 0,
            sched_work: 0,
            feature_work: 0,
        }
    }

    fn fired(p: f64) -> FilterScore {
        FilterScore { fired: Some(0), probability: p }
    }

    fn rejected(p: f64) -> FilterScore {
        FilterScore { fired: None, probability: p }
    }

    fn unit(insts: u64, exec: u64) -> UnitEconomics {
        UnitEconomics { insts, exec_count: exec, filter_work: 2, extraction_work: insts }
    }

    #[test]
    fn calibrate_averages_only_improved_units() {
        let t = vec![rec(10.0, 1, (100, 80)), rec(5.0, 1, (50, 50)), rec(10.0, 1, (100, 90))];
        let m = BenefitModel::calibrate(&t, 1.0);
        // (20 + 10) cycles recovered over (10 + 10) instructions.
        assert!((m.saved_per_inst - 1.5).abs() < 1e-12);
        assert_eq!(m.cycles_per_work, 1.0);
        let none = BenefitModel::calibrate(&[rec(5.0, 1, (50, 50))], 1.0);
        assert_eq!(none.saved_per_inst, 0.0);
        let empty: Vec<TraceRecord> = Vec::new();
        assert_eq!(BenefitModel::calibrate(&empty, 2.0).saved_per_inst, 0.0);
    }

    #[test]
    fn hard_threshold_follows_the_fired_rule_only() {
        let p = DecisionPolicy::HardThreshold;
        let u = unit(10, 1000);
        // Probability is ignored in both directions.
        assert!(p.decide(fired(0.01), &u));
        assert!(!p.decide(rejected(0.99), &u));
    }

    #[test]
    fn expected_benefit_weighs_hotness_against_spend() {
        let model = BenefitModel { saved_per_inst: 1.0, cycles_per_work: 1.0 };
        let p = DecisionPolicy::ExpectedBenefit(model);
        // Hot unit, confident rule: gain 0.9·1.0·10·1000 = 9000 dwarfs
        // the ~188-unit spend.
        assert!(p.decide(fired(0.9), &unit(10, 1000)));
        // The same unit executed once: gain 9 < spend.
        assert!(!p.decide(fired(0.9), &unit(10, 1)));
        // A hot unit no rule fired on is scheduled off its residual
        // positive rate — the graded behaviour the hard policy cannot
        // express.
        assert!(p.decide(rejected(0.2), &unit(10, 1000)));
        assert!(!p.decide(rejected(0.2), &unit(10, 1)));
    }

    #[test]
    fn operating_point_tunes_stinginess_monotonically() {
        let u = unit(8, 40);
        let s = fired(0.6);
        let mut last = true;
        for c in [0.0, 0.5, 1.0, 2.0, 8.0, 64.0] {
            let p = DecisionPolicy::ExpectedBenefit(BenefitModel { saved_per_inst: 1.0, cycles_per_work: c });
            let d = p.decide(s, &u);
            assert!(last || !d, "raising cycles_per_work can only flip schedule -> skip");
            last = d;
        }
        assert!(!last, "a punitive operating point schedules nothing");
    }

    #[test]
    fn zero_rate_schedules_nothing() {
        let p = DecisionPolicy::expected_benefit(&[rec(5.0, 1, (50, 50))], 1.0);
        assert!(!p.decide(fired(0.99), &unit(50, 1_000_000)));
    }

    #[test]
    fn display_names_the_operating_point() {
        assert_eq!(DecisionPolicy::HardThreshold.to_string(), "hard");
        let eb = DecisionPolicy::ExpectedBenefit(BenefitModel { saved_per_inst: 1.5, cycles_per_work: 2.0 });
        assert_eq!(eb.to_string(), "eb(rate=1.500, c=2)");
    }

    #[test]
    fn estimated_sched_work_mirrors_the_proxy_shape() {
        assert_eq!(BenefitModel::estimated_sched_work(0), 16);
        assert_eq!(BenefitModel::estimated_sched_work(10), 16 + 60 + 100);
        // Quadratic: big units are expensive to schedule.
        assert!(BenefitModel::estimated_sched_work(100) > 50 * BenefitModel::estimated_sched_work(4));
    }
}
