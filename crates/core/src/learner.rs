//! The learner abstraction: induction backends behind one trait.
//!
//! The paper induces its LS/NS filter with exactly one learner — RIPPER
//! (§2.3). Its own argument, though — cheap *induced* heuristics beat
//! hand-tuned ones — is strongest when several induction backends
//! compete per target machine: the portfolio question of Streeter &
//! Smith ("New Techniques for Algorithm Portfolio Design"), revisited
//! for scheduling heuristics by Chmiela et al. ("Learning to Schedule
//! Heuristics in Branch-and-Bound"). This module is that layer:
//!
//! * [`Learner`] is the trait every backend implements: fit a labeled
//!   [`Dataset`] and return an ordered [`RuleSet`] — the one model
//!   vocabulary the compiled engine
//!   ([`CompiledFilter`](crate::CompiledFilter)) lowers, so every
//!   backend inherits the pinned compiled≡interpreted property and the
//!   honest per-condition work accounting for free.
//! * [`LearnerKind`] is the closed, cloneable configuration enum the
//!   pipeline plumbing ([`TrainConfig`](crate::TrainConfig),
//!   [`Experiment`](crate::Experiment)) carries: RIPPER, a one-feature
//!   decision-stump sweep (the learned generalization of
//!   [`SizeThresholdFilter`](crate::SizeThresholdFilter)), and a greedy
//!   top-down decision tree with depth/leaf-support caps whose
//!   positive-leaf paths lower to flat condition tables exactly like
//!   RIPPER rules.
//!
//! Adding a backend means producing a `RuleSet` whose `predict` is
//! bit-identical to the native model on finite inputs — strict
//! comparisons are lowered via next-representable-`f64` thresholds (see
//! `DecisionStump::to_rules` / `ShallowTree::to_rules` in `wts_ripper`)
//! — and extending [`LearnerKind`] (plus
//! [`LearnerKind::portfolio`]) so the cross-machine portfolio table
//! picks it up.

use wts_ripper::{Dataset, DecisionStump, RipperConfig, RuleSet, ShallowTree};

/// An induction backend: fits a labeled dataset into an ordered rule
/// set, the common form every filter lowers to the compiled engine
/// from.
///
/// Implementations must be deterministic — LOOCV training is sharded
/// across folds and pinned bit-identical to the serial path — and
/// `Send + Sync` so folds can train concurrently.
pub trait Learner: Send + Sync {
    /// Induces a rule set from the labeled data. The returned set's
    /// `predict` must be bit-identical to the backend's native model on
    /// finite inputs.
    fn fit(&self, data: &Dataset) -> RuleSet;

    /// Short name for reports (`ripper`, `stump`, `tree(d=4)`, …).
    fn name(&self) -> String;
}

/// The built-in induction backends, as cloneable pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnerKind {
    /// RIPPER rule induction (the paper's learner).
    Ripper(RipperConfig),
    /// A single learned threshold on a single feature — the best stump
    /// over all seventeen features by exhaustive sweep. The natural
    /// generalization of the hand-picked
    /// [`SizeThresholdFilter`](crate::SizeThresholdFilter).
    Stump,
    /// A greedy top-down entropy tree; positive-leaf paths lower to
    /// conjunctive rules.
    Tree {
        /// Maximum number of splits on any root-to-leaf path.
        max_depth: usize,
        /// Minimum instances per leaf (leaf-support cap).
        min_leaf: usize,
    },
}

impl Default for LearnerKind {
    fn default() -> LearnerKind {
        LearnerKind::Ripper(RipperConfig::default())
    }
}

impl LearnerKind {
    /// The default tree backend: depth 4, at least 8 instances per leaf.
    pub fn tree() -> LearnerKind {
        LearnerKind::Tree { max_depth: 4, min_leaf: 8 }
    }

    /// The standard portfolio the cross-machine comparison sweeps:
    /// RIPPER, the stump and the capped tree, in report order.
    pub fn portfolio() -> Vec<LearnerKind> {
        vec![LearnerKind::default(), LearnerKind::Stump, LearnerKind::tree()]
    }

    /// The tag a trained filter displays: `L/N` (the paper's name) for
    /// RIPPER, the learner name otherwise — so `L/N(t=20)` stays the
    /// label of the paper's artifact and `stump(t=20)` / `tree(d=4)(t=20)`
    /// name the portfolio alternatives.
    pub fn filter_tag(&self) -> String {
        match self {
            LearnerKind::Ripper(_) => "L/N".into(),
            other => other.name(),
        }
    }

    /// A cache key unique per configuration (not just per variant).
    pub(crate) fn cache_key(&self) -> String {
        format!("{self:?}")
    }
}

impl Learner for LearnerKind {
    fn fit(&self, data: &Dataset) -> RuleSet {
        // The stump/tree backends lower through the same stats
        // attribution RIPPER's finish pass uses, so their rules carry
        // honest leaf class frequencies: each lowered rule's
        // (hits/misses) record is the training composition of the
        // instances it fires on first, and the default record is the
        // reject region's. The calibrated scores the compiled engine
        // emits are Laplace-smoothed from exactly these counts.
        let lowered = |rules: Vec<wts_ripper::Rule>| {
            let (stats, default_stats) = wts_ripper::attribute_stats(&rules, data);
            RuleSet::new(data.attr_names().to_vec(), data.pos_label(), data.neg_label(), rules, stats, default_stats)
        };
        match self {
            LearnerKind::Ripper(config) => config.fit(data),
            // The sweeps need at least one instance; an empty fold
            // lowers to the empty rule set (predict-all-negative),
            // matching RIPPER's behaviour on no data.
            LearnerKind::Stump if data.is_empty() => lowered(vec![]),
            LearnerKind::Stump => lowered(DecisionStump::fit(data).to_rules()),
            LearnerKind::Tree { .. } if data.is_empty() => lowered(vec![]),
            LearnerKind::Tree { max_depth, min_leaf } => {
                lowered(ShallowTree::fit(data, *max_depth, *min_leaf).to_rules())
            }
        }
    }

    fn name(&self) -> String {
        match self {
            LearnerKind::Ripper(_) => "ripper".into(),
            LearnerKind::Stump => "stump".into(),
            LearnerKind::Tree { max_depth, .. } => format!("tree(d={max_depth})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ripper::Classifier;

    fn dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "y".into()], "list", "orig");
        for i in 0..120 {
            let x = (i % 40) as f64 / 40.0;
            let y = (i % 7) as f64 / 7.0;
            d.push(vec![x, y], x >= 0.4, u32::try_from(i % 3).expect("a residue mod 3 fits u32"));
        }
        d
    }

    #[test]
    fn every_backend_fits_a_consistent_rule_set() {
        let d = dataset();
        for kind in LearnerKind::portfolio() {
            let rules = kind.fit(&d);
            assert_eq!(rules.attr_names(), d.attr_names(), "{}", kind.name());
            assert_eq!(rules.pos_label(), "list");
            assert!(rules.predict(&[0.9, 0.1]), "{}: clear positive", kind.name());
            assert!(!rules.predict(&[0.0, 0.1]), "{}: clear negative", kind.name());
        }
    }

    #[test]
    fn stump_rule_set_matches_native_stump() {
        let d = dataset();
        let native = DecisionStump::fit(&d);
        let rules = LearnerKind::Stump.fit(&d);
        for inst in d.instances() {
            assert_eq!(rules.predict(&inst.values), native.predict(&inst.values));
        }
    }

    #[test]
    fn tree_rule_set_matches_native_tree() {
        let d = dataset();
        let native = ShallowTree::fit(&d, 4, 8);
        let rules = LearnerKind::tree().fit(&d);
        for inst in d.instances() {
            assert_eq!(rules.predict(&inst.values), native.predict(&inst.values));
        }
    }

    #[test]
    fn empty_folds_yield_the_empty_rule_set() {
        let d = Dataset::new(vec!["x".into()], "list", "orig");
        for kind in [LearnerKind::Stump, LearnerKind::tree()] {
            let rules = kind.fit(&d);
            assert!(rules.is_empty(), "{}: empty data must not invent rules", kind.name());
            assert!(!rules.predict(&[5.0]));
        }
    }

    #[test]
    fn stump_and_tree_rules_carry_leaf_class_frequencies() {
        let d = dataset();
        for kind in [LearnerKind::Stump, LearnerKind::tree()] {
            let rules = kind.fit(&d);
            assert!(!rules.is_empty(), "{}: the separable dataset must induce rules", kind.name());
            let fired: usize = rules.stats().iter().map(|s| s.hits + s.misses).sum();
            let defaulted = rules.default_stats().hits + rules.default_stats().misses;
            assert_eq!(fired + defaulted, d.len(), "{}: every instance attributed exactly once", kind.name());
            assert!(fired > 0, "{}: some instances must fire a rule", kind.name());
            // x >= 0.4 is learnable here, so firing regions are mostly
            // positive and the reject region mostly negative.
            for (k, s) in rules.stats().iter().enumerate() {
                assert!(rules.rule_confidence(k) > 0.5, "{}: rule {k} {s:?} should be positive-leaning", kind.name());
            }
            assert!(rules.default_confidence() < 0.5, "{}: reject region should be negative-leaning", kind.name());
        }
    }

    #[test]
    fn names_and_tags() {
        assert_eq!(LearnerKind::default().name(), "ripper");
        assert_eq!(LearnerKind::default().filter_tag(), "L/N");
        assert_eq!(LearnerKind::Stump.filter_tag(), "stump");
        assert_eq!(LearnerKind::tree().name(), "tree(d=4)");
        let keys: Vec<String> = LearnerKind::portfolio().iter().map(|k| k.cache_key()).collect();
        let mut unique = keys.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), keys.len(), "cache keys must be distinct");
    }

    #[test]
    fn portfolio_covers_three_backends_with_ripper_first() {
        let p = LearnerKind::portfolio();
        assert_eq!(p.len(), 3);
        assert!(matches!(p[0], LearnerKind::Ripper(_)));
        assert!(p.contains(&LearnerKind::Stump));
    }
}
