//! Filter training: any [`Learner`] backend over labeled traces, with
//! the paper's leave-one-benchmark-out protocol.

use crate::learner::{Learner, LearnerKind};
use crate::{build_dataset, LabelConfig, LearnedFilter, TraceRecord};
use wts_ir::ScopeKind;
use wts_ripper::{leave_one_group_out, RipperConfig};

/// Training configuration: labeling threshold + induction backend +
/// scheduling scope.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainConfig {
    /// Labeling threshold.
    pub label: LabelConfig,
    /// The induction backend (RIPPER by default, the paper's learner).
    pub learner: LearnerKind,
    /// The scope the traces were collected at. Purely descriptive for
    /// training itself (the instances already carry the scope's
    /// features), but stamped into the trained filter's tag so a
    /// superblock-scope filter is never mistaken for a block one.
    pub scope: ScopeKind,
}

impl TrainConfig {
    /// A config with the given threshold and the default RIPPER backend.
    pub fn with_threshold(threshold_percent: u32) -> TrainConfig {
        TrainConfig { label: LabelConfig::new(threshold_percent), ..Default::default() }
    }

    /// A config with the given threshold and backend.
    pub fn with_learner(threshold_percent: u32, learner: LearnerKind) -> TrainConfig {
        TrainConfig { label: LabelConfig::new(threshold_percent), learner, ..Default::default() }
    }

    /// Overrides the RIPPER settings (and selects the RIPPER backend).
    pub fn with_ripper(mut self, ripper: RipperConfig) -> TrainConfig {
        self.learner = LearnerKind::Ripper(ripper);
        self
    }

    /// Sets the scheduling scope the trained filter is tagged with.
    pub fn with_scope(mut self, scope: ScopeKind) -> TrainConfig {
        self.scope = scope;
        self
    }

    /// The filter tag this config stamps: the backend's tag, suffixed
    /// with `@sb<ratio>` at superblock scope (`L/N@sb70(t=0)` names the
    /// paper's learner retrained on ratio-70% traces).
    fn filter_tag(&self) -> String {
        match self.scope {
            ScopeKind::Block => self.learner.filter_tag(),
            ScopeKind::Superblock(p) => format!("{}@sb{p}", self.learner.filter_tag()),
        }
    }
}

/// Trains a single filter on *all* the given traces ("at the factory",
/// §3). Use [`train_loocv`] for the evaluation protocol.
///
/// With the `verify` feature in a debug build, every trained artifact is
/// run through the `wts-verify` model lint before it is returned — an
/// incoherent rule set (shadowed rules, contradictory conjunctions,
/// non-finite thresholds, demand-mask drift) panics here instead of
/// misdeciding silently in production.
pub fn train_filter(traces: &[TraceRecord], config: &TrainConfig) -> LearnedFilter {
    let (data, _) = build_dataset(traces, config.label);
    let rules = config.learner.fit(&data);
    let filter = LearnedFilter::with_learner(rules, config.label.threshold_percent, config.filter_tag());
    #[cfg(all(feature = "verify", debug_assertions))]
    {
        use crate::Filter;
        let compiled = filter.compile();
        let table = wts_verify::ModelTable::from_rule_set(filter.rules(), compiled.demand(), filter.name());
        let diags = wts_verify::lint_model(&table);
        assert!(
            diags.is_empty(),
            "train_filter produced an incoherent model for {}:\n{}",
            filter.name(),
            wts_verify::render(&diags)
        );
    }
    filter
}

/// Leave-one-benchmark-out cross-validation: for each benchmark in the
/// traces, trains a filter on the other benchmarks' instances and pairs
/// it with the held-out benchmark's name.
///
/// Returns `(benchmark, filter)` pairs in benchmark-name order.
pub fn train_loocv(traces: &[TraceRecord], config: &TrainConfig) -> Vec<(String, LearnedFilter)> {
    train_loocv_sharded(traces, config, 1)
}

/// [`train_loocv`] with the independent folds sharded across `threads`
/// scoped worker threads (`0` = one per available core, `1` = serial).
///
/// Every [`Learner`] backend is deterministic and folds share nothing,
/// so the result is identical to the serial path in every mode.
pub fn train_loocv_sharded(
    traces: &[TraceRecord],
    config: &TrainConfig,
    threads: usize,
) -> Vec<(String, LearnedFilter)> {
    let (data, groups) = build_dataset(traces, config.label);
    let mut by_id: Vec<(u32, String)> = groups.iter().map(|(n, &g)| (g, n.clone())).collect();
    by_id.sort_unstable();
    let folds = leave_one_group_out(&data);

    let fit_fold = |fold: &wts_ripper::GroupFold| {
        let name =
            by_id.iter().find(|(g, _)| *g == fold.held_out).map(|(_, n)| n.clone()).expect("fold group must exist");
        let rules = config.learner.fit(&fold.train);
        (name, LearnedFilter::with_learner(rules, config.label.threshold_percent, config.filter_tag()))
    };

    let shards = crate::parallel::shard_map(&folds, threads, |slice| slice.iter().map(&fit_fold).collect::<Vec<_>>());
    let mut out: Vec<(String, LearnedFilter)> = shards.into_iter().flatten().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Filter;
    use wts_features::{FeatureKind, FeatureVector};
    use wts_ir::{BlockId, MethodId};

    /// Synthetic traces where big loady blocks benefit and small ones do
    /// not — across three "benchmarks".
    fn traces() -> Vec<TraceRecord> {
        let mut out = Vec::new();
        let mut k = 0u32;
        for bench in ["alpha", "beta", "gamma"] {
            for i in 0..120 {
                let big = i % 3 == 0;
                let bb_len = if big { 10.0 + (i % 7) as f64 } else { 2.0 + (i % 3) as f64 };
                let loads = if big { 0.4 } else { 0.05 };
                let mut v = [0.0; FeatureKind::COUNT];
                v[FeatureKind::BbLen.index()] = bb_len;
                v[FeatureKind::Loads.index()] = loads;
                v[FeatureKind::Integers.index()] = 0.5;
                let (unsched, sched) = if big { (100, 60) } else { (10, 10) };
                out.push(TraceRecord {
                    benchmark: bench.to_string(),
                    method: MethodId(k),
                    block: BlockId(k),
                    exec_count: 1,
                    features: FeatureVector::from_values(v),
                    est_unsched: unsched,
                    est_sched: sched,
                    hw_unsched: unsched,
                    hw_sched: sched,
                    sched_ns: 100,
                    feature_ns: 10,
                    sched_work: 20,
                    feature_work: 5,
                });
                k += 1;
            }
        }
        out
    }

    #[test]
    fn trained_filter_separates_big_loady_blocks() {
        let f = train_filter(&traces(), &TrainConfig::with_threshold(0));
        let mut big = [0.0; FeatureKind::COUNT];
        big[FeatureKind::BbLen.index()] = 12.0;
        big[FeatureKind::Loads.index()] = 0.4;
        big[FeatureKind::Integers.index()] = 0.5;
        let mut small = [0.0; FeatureKind::COUNT];
        small[FeatureKind::BbLen.index()] = 2.0;
        small[FeatureKind::Loads.index()] = 0.05;
        small[FeatureKind::Integers.index()] = 0.5;
        assert!(f.should_schedule(&FeatureVector::from_values(big)));
        assert!(!f.should_schedule(&FeatureVector::from_values(small)));
    }

    #[test]
    fn loocv_yields_one_filter_per_benchmark() {
        let folds = train_loocv(&traces(), &TrainConfig::with_threshold(0));
        let names: Vec<&str> = folds.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
        for (_, f) in &folds {
            assert_eq!(f.threshold_percent(), 0);
            assert!(!f.rules().is_empty(), "learnable structure should produce rules");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let t = traces();
        let c = TrainConfig::with_threshold(0);
        assert_eq!(train_filter(&t, &c), train_filter(&t, &c));
    }

    #[test]
    fn threshold_is_recorded() {
        let f = train_filter(&traces(), &TrainConfig::with_threshold(25));
        assert_eq!(f.threshold_percent(), 25);
    }

    #[test]
    fn every_portfolio_backend_separates_big_loady_blocks() {
        let t = traces();
        let mut big = [0.0; FeatureKind::COUNT];
        big[FeatureKind::BbLen.index()] = 12.0;
        big[FeatureKind::Loads.index()] = 0.4;
        big[FeatureKind::Integers.index()] = 0.5;
        let mut small = [0.0; FeatureKind::COUNT];
        small[FeatureKind::BbLen.index()] = 2.0;
        small[FeatureKind::Loads.index()] = 0.05;
        small[FeatureKind::Integers.index()] = 0.5;
        for learner in LearnerKind::portfolio() {
            let name = learner.name();
            let f = train_filter(&t, &TrainConfig::with_learner(0, learner));
            assert!(f.should_schedule(&FeatureVector::from_values(big)), "{name}");
            assert!(!f.should_schedule(&FeatureVector::from_values(small)), "{name}");
        }
    }

    #[test]
    fn filter_names_carry_the_backend_tag() {
        let t = traces();
        let stump = train_filter(&t, &TrainConfig::with_learner(10, LearnerKind::Stump));
        assert_eq!(stump.name(), "stump(t=10)");
        let tree = train_filter(&t, &TrainConfig::with_learner(10, LearnerKind::tree()));
        assert_eq!(tree.name(), "tree(d=4)(t=10)");
        let ripper = train_filter(&t, &TrainConfig::with_threshold(10));
        assert_eq!(ripper.name(), "L/N(t=10)", "the paper's artifact keeps its name");
    }

    #[test]
    fn superblock_scope_is_stamped_into_the_filter_tag() {
        use wts_ir::ScopeKind;
        let t = traces();
        let sb = train_filter(&t, &TrainConfig::with_threshold(10).with_scope(ScopeKind::Superblock(70)));
        assert_eq!(sb.name(), "L/N@sb70(t=10)");
        let block = train_filter(&t, &TrainConfig::with_threshold(10).with_scope(ScopeKind::Block));
        assert_eq!(block.name(), "L/N(t=10)", "block scope keeps the paper's name");
        // Same traces, same labels: scope tagging never changes the rules.
        assert_eq!(sb.rules(), block.rules());
        let folds = train_loocv(&t, &TrainConfig::with_threshold(0).with_scope(ScopeKind::Superblock(85)));
        for (_, f) in &folds {
            assert_eq!(f.learner(), "L/N@sb85");
        }
    }

    #[test]
    fn sharded_loocv_is_identical_to_serial_for_every_backend() {
        let t = traces();
        for learner in LearnerKind::portfolio() {
            let config = TrainConfig::with_learner(0, learner);
            let serial = train_loocv_sharded(&t, &config, 1);
            let sharded = train_loocv_sharded(&t, &config, 7);
            assert_eq!(serial, sharded, "{}", config.learner.name());
        }
    }
}
