//! The filter abstraction and its implementations.

use crate::engine::CompiledFilter;
use std::fmt;
use wts_features::{FeatureKind, FeatureVector};
use wts_ripper::RuleSet;

/// A *filter* decides, from a block's static features alone, whether the
/// scheduler should run on that block (the paper's L/N protocol chooses
/// between List scheduling and No scheduling).
///
/// Filters are immutable once built, and `Send + Sync` so one filter can
/// serve every shard of a parallel compile or trace collection.
pub trait Filter: Send + Sync {
    /// True when the block should be list-scheduled.
    fn should_schedule(&self, features: &FeatureVector) -> bool;

    /// Short name for reports.
    fn name(&self) -> String;

    /// Lowers this filter into the [`CompiledFilter`] engine: a flat
    /// condition table plus the feature demand mask. Decisions are
    /// bit-identical to [`should_schedule`](Filter::should_schedule).
    fn compile(&self) -> CompiledFilter;

    /// Work units (conditions actually evaluated, short-circuit aware)
    /// this filter spends deciding `features` — the honest per-block
    /// cost [`sched_time_ratio`](crate::sched_time_ratio) charges.
    fn eval_work(&self, features: &FeatureVector) -> u64 {
        self.compile().eval_work_values(features.as_slice())
    }
}

/// The fixed `LS` strategy: schedule every block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlwaysSchedule;

impl Filter for AlwaysSchedule {
    fn should_schedule(&self, _features: &FeatureVector) -> bool {
        true
    }

    fn name(&self) -> String {
        "LS".into()
    }

    fn compile(&self) -> CompiledFilter {
        CompiledFilter::always()
    }

    fn eval_work(&self, _features: &FeatureVector) -> u64 {
        0
    }
}

/// The fixed `NS` strategy: never schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NeverSchedule;

impl Filter for NeverSchedule {
    fn should_schedule(&self, _features: &FeatureVector) -> bool {
        false
    }

    fn name(&self) -> String {
        "NS".into()
    }

    fn compile(&self) -> CompiledFilter {
        CompiledFilter::never()
    }

    fn eval_work(&self, _features: &FeatureVector) -> u64 {
        0
    }
}

/// A hand-written baseline: schedule blocks of at least `min_len`
/// instructions. The simplest plausible manual heuristic — tiny blocks
/// have nothing to reorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeThresholdFilter {
    min_len: usize,
}

impl SizeThresholdFilter {
    /// Schedule blocks with `bbLen >= min_len`.
    pub fn new(min_len: usize) -> SizeThresholdFilter {
        SizeThresholdFilter { min_len }
    }

    /// The size threshold.
    pub fn min_len(&self) -> usize {
        self.min_len
    }
}

impl Filter for SizeThresholdFilter {
    fn should_schedule(&self, features: &FeatureVector) -> bool {
        features.get(FeatureKind::BbLen) >= self.min_len as f64
    }

    fn name(&self) -> String {
        format!("size>={}", self.min_len)
    }

    fn compile(&self) -> CompiledFilter {
        CompiledFilter::size_threshold(self.min_len)
    }

    fn eval_work(&self, _features: &FeatureVector) -> u64 {
        1
    }
}

/// A filter backed by an induced rule set — the paper's L/N filter when
/// trained by RIPPER, or any other [`Learner`](crate::Learner) backend's
/// model lowered to the same ordered-rule vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedFilter {
    rules: RuleSet,
    threshold_percent: u32,
    learner: String,
}

impl LearnedFilter {
    /// Wraps a trained rule set; `threshold_percent` records the labeling
    /// threshold it was trained at (for display only). The filter is
    /// tagged `L/N`, the paper's name for the RIPPER-induced filter; use
    /// [`with_learner`](LearnedFilter::with_learner) for other backends.
    pub fn new(rules: RuleSet, threshold_percent: u32) -> LearnedFilter {
        LearnedFilter::with_learner(rules, threshold_percent, "L/N")
    }

    /// Wraps a trained rule set, tagged with the inducing backend's name
    /// (shown in [`name`](Filter::name) as `<learner>(t=<threshold>)`).
    pub fn with_learner(rules: RuleSet, threshold_percent: u32, learner: impl Into<String>) -> LearnedFilter {
        LearnedFilter { rules, threshold_percent, learner: learner.into() }
    }

    /// The underlying rule set (e.g. for printing Figure 4).
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The labeling threshold this filter was trained at.
    pub fn threshold_percent(&self) -> u32 {
        self.threshold_percent
    }

    /// The tag of the backend that induced the rule set (`L/N` for
    /// RIPPER).
    pub fn learner(&self) -> &str {
        &self.learner
    }
}

impl Filter for LearnedFilter {
    fn should_schedule(&self, features: &FeatureVector) -> bool {
        self.rules.predict(features.as_slice())
    }

    fn name(&self) -> String {
        format!("{}(t={})", self.learner, self.threshold_percent)
    }

    fn compile(&self) -> CompiledFilter {
        CompiledFilter::from_rule_set(&self.rules, self.name())
    }

    /// Conditions evaluated by the interpreted walk — identical to the
    /// compiled engine's count (both short-circuit per rule and stop at
    /// the first firing rule), which the engine property suite pins.
    fn eval_work(&self, features: &FeatureVector) -> u64 {
        let values = features.as_slice();
        let mut evaluated = 0u64;
        for rule in self.rules.rules() {
            let mut fired = true;
            for c in rule.conditions() {
                evaluated += 1;
                if !c.matches(values) {
                    fired = false;
                    break;
                }
            }
            if fired {
                break;
            }
        }
        evaluated
    }
}

impl fmt::Display for LearnedFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ripper::{Condition, Op, Rule};

    fn fv(bb_len: f64, loads: f64) -> FeatureVector {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = bb_len;
        v[FeatureKind::Loads.index()] = loads;
        FeatureVector::from_values(v)
    }

    #[test]
    fn fixed_strategies() {
        assert!(AlwaysSchedule.should_schedule(&fv(1.0, 0.0)));
        assert!(!NeverSchedule.should_schedule(&fv(100.0, 1.0)));
        assert_eq!(AlwaysSchedule.name(), "LS");
        assert_eq!(NeverSchedule.name(), "NS");
    }

    #[test]
    fn size_threshold() {
        let f = SizeThresholdFilter::new(5);
        assert!(!f.should_schedule(&fv(4.0, 0.0)));
        assert!(f.should_schedule(&fv(5.0, 0.0)));
        assert_eq!(f.name(), "size>=5");
        assert_eq!(f.min_len(), 5);
    }

    #[test]
    fn learned_filter_delegates_to_rules() {
        let attr_names: Vec<String> = FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect();
        let rules = RuleSet::new(
            attr_names,
            "list",
            "orig",
            vec![Rule::from_conditions(vec![
                Condition { attr: FeatureKind::BbLen.index(), op: Op::Ge, threshold: 7.0 },
                Condition { attr: FeatureKind::Loads.index(), op: Op::Ge, threshold: 0.3 },
            ])],
            vec![],
            Default::default(),
        );
        let f = LearnedFilter::new(rules, 20);
        assert!(f.should_schedule(&fv(8.0, 0.5)));
        assert!(!f.should_schedule(&fv(8.0, 0.1)));
        assert!(!f.should_schedule(&fv(3.0, 0.5)));
        assert_eq!(f.name(), "L/N(t=20)");
        assert_eq!(f.threshold_percent(), 20);
        assert_eq!(f.learner(), "L/N");
        assert!(f.to_string().contains("list :-"));
    }

    #[test]
    fn learner_tag_names_the_backend() {
        let attr_names: Vec<String> = FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect();
        let rules = RuleSet::new(attr_names, "list", "orig", vec![], vec![], Default::default());
        let f = LearnedFilter::with_learner(rules, 10, "stump");
        assert_eq!(f.name(), "stump(t=10)");
        assert_eq!(f.learner(), "stump");
        assert_eq!(f.compile().name(), "stump(t=10)", "the tag survives lowering");
    }
}
