//! Trace-file serialization.
//!
//! The paper's pipeline writes "into a trace file raw data for forming
//! instances" (§2.2) and contemplates shipping "tools to end users so
//! that they could develop their own training sets and retrain"
//! (footnote 4). This module is that interchange format, in two
//! encodings that round-trip [`TraceRecord`]s exactly (wall-clock
//! fields included, since they are data about the traced run):
//!
//! * a tab-separated, header-checked **text** file (`read_trace` /
//!   `write_trace`) — the human-inspectable debug format, and
//! * a length-prefixed little-endian **binary** file (`read_trace_binary`
//!   / `write_trace_binary`) with fixed-stride records after the header,
//!   built for large corpora: no float formatting or parsing, and the
//!   record section can be walked (or mmapped) at a constant 224-byte
//!   stride.
//!
//! [`read_trace_auto`] dispatches on the leading magic so callers never
//! have to know which encoding a file uses.

use crate::TraceRecord;
use std::fmt::Write as _;
use wts_features::{FeatureKind, FeatureVector};
use wts_ir::{BlockId, MethodId};

/// Format version tag written as the first header column. v2 appended
/// the four trace-shape feature columns (`traceWidth`, `sideExits`,
/// `specInsts`, `traceLen`) of the superblock scope; v1 files fail the
/// magic check instead of silently mis-slotting features.
const MAGIC: &str = "schedfilter-trace-v2";

/// Every header column in order: the magic tag, the record key columns,
/// the seventeen features (Table 1 + trace shape), then the cycle and
/// timing channels.
/// The reader validates the *full* list — a reordered or renamed column
/// would otherwise silently permute features into the wrong slots.
fn expected_columns() -> Vec<&'static str> {
    let mut cols = vec![MAGIC, "benchmark", "method", "block", "exec"];
    cols.extend(FeatureKind::ALL.iter().map(|k| k.rule_name()));
    cols.extend([
        "est_unsched",
        "est_sched",
        "hw_unsched",
        "hw_sched",
        "sched_ns",
        "feature_ns",
        "sched_work",
        "feature_work",
    ]);
    cols
}

/// The exact header line [`write_trace`] emits.
fn expected_header() -> String {
    expected_columns().join("\t")
}

/// An error produced while reading a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> ParseTraceError {
        ParseTraceError { line, message: message.into() }
    }

    /// 1-based line number of the offending line (0 for the header).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// An error produced while writing a trace file: a record that would
/// corrupt the tab-separated format or silently change meaning when
/// read back.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWriteError {
    benchmark: String,
    kind: WriteErrorKind,
}

#[derive(Debug, Clone, PartialEq)]
enum WriteErrorKind {
    /// The benchmark name contains `\t`, `\n` or `\r`.
    BadName,
    /// A feature value is NaN or ±infinity.
    NonFinite { feature: &'static str, value: f64 },
}

impl TraceWriteError {
    /// The benchmark of the offending record.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }
}

impl std::fmt::Display for TraceWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            WriteErrorKind::BadName => write!(
                f,
                "benchmark name {:?} contains a tab, newline or carriage return and would corrupt the \
                 tab-separated trace format; rename the benchmark before tracing",
                self.benchmark
            ),
            WriteErrorKind::NonFinite { feature, value } => write!(
                f,
                "benchmark {:?}: feature {feature} is {value}, which is not finite; every rule condition \
                 on a non-finite value compares false, so the record would silently classify NS under any \
                 learned filter — fix the extraction instead of serializing it",
                self.benchmark
            ),
        }
    }
}

impl std::error::Error for TraceWriteError {}

/// Serializes records to the trace-file text format.
///
/// The first line is a header naming every column; one record per line
/// follows, tab-separated. Feature values are printed with full
/// precision (`{:?}` on `f64` round-trips exactly).
///
/// # Errors
///
/// Returns a [`TraceWriteError`] naming the offending benchmark when a
/// record's benchmark name contains `\t`, `\n` or `\r` — written as-is
/// those would silently split the line, and the reader would only fail
/// much later with an opaque column-count error — or when a feature
/// value is NaN or ±infinity, which would round-trip fine but silently
/// classify NS under every learned filter (each condition on a
/// non-finite value compares false).
pub fn write_trace(records: &[TraceRecord]) -> Result<String, TraceWriteError> {
    if let Some(r) = records.iter().find(|r| r.benchmark.contains(['\t', '\n', '\r'])) {
        return Err(TraceWriteError { benchmark: r.benchmark.clone(), kind: WriteErrorKind::BadName });
    }
    for r in records {
        for k in FeatureKind::ALL {
            let value = r.features.get(k);
            if !value.is_finite() {
                return Err(TraceWriteError {
                    benchmark: r.benchmark.clone(),
                    kind: WriteErrorKind::NonFinite { feature: k.rule_name(), value },
                });
            }
        }
    }
    let mut out = String::new();
    out.push_str(&expected_header());
    out.push('\n');
    for r in records {
        let _ = write!(out, "rec\t{}\t{}\t{}\t{}", r.benchmark, r.method.0, r.block.0, r.exec_count);
        for k in FeatureKind::ALL {
            let _ = write!(out, "\t{:?}", r.features.get(k));
        }
        let _ = writeln!(
            out,
            "\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.est_unsched,
            r.est_sched,
            r.hw_unsched,
            r.hw_sched,
            r.sched_ns,
            r.feature_ns,
            r.sched_work,
            r.feature_work
        );
    }
    Ok(out)
}

/// Parses a trace file written by [`write_trace`].
///
/// # Errors
///
/// Returns a [`ParseTraceError`] for a bad header (every column name is
/// checked against the writer's layout — a reordered or renamed column
/// would otherwise silently permute features), wrong column count,
/// malformed field, out-of-range method/block id, or a non-finite
/// feature value.
pub fn read_trace(text: &str) -> Result<Vec<TraceRecord>, ParseTraceError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ParseTraceError::new(0, "empty trace file"))?;
    if !header.starts_with(MAGIC) {
        return Err(ParseTraceError::new(0, format!("bad magic, expected '{MAGIC}'")));
    }
    let expected = expected_columns();
    let header_cols: Vec<&str> = header.split('\t').collect();
    for (i, (got, want)) in header_cols.iter().zip(&expected).enumerate() {
        if got != want {
            return Err(ParseTraceError::new(0, format!("header column {i}: expected '{want}', found '{got}'")));
        }
    }
    if header_cols.len() != expected.len() {
        return Err(ParseTraceError::new(
            0,
            format!("header has {} columns, expected {}", header_cols.len(), expected.len()),
        ));
    }
    let expected_cols = expected.len();
    let mut out = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != expected_cols {
            return Err(ParseTraceError::new(
                lineno,
                format!("expected {expected_cols} columns, found {}", cols.len()),
            ));
        }
        if cols[0] != "rec" {
            return Err(ParseTraceError::new(lineno, "record lines must start with 'rec'"));
        }
        let int = |s: &str, what: &str| {
            s.parse::<u64>().map_err(|_| ParseTraceError::new(lineno, format!("bad {what}: '{s}'")))
        };
        // Ids are 32-bit; a wider value must not wrap into a
        // valid-looking record.
        let id = |s: &str, what: &str| {
            let wide = int(s, what)?;
            u32::try_from(wide)
                .map_err(|_| ParseTraceError::new(lineno, format!("{what} {wide} out of range (max {})", u32::MAX)))
        };
        let mut values = [0.0f64; FeatureKind::COUNT];
        for (k, slot) in values.iter_mut().enumerate() {
            let s = cols[5 + k];
            let v = s.parse::<f64>().map_err(|_| ParseTraceError::new(lineno, format!("bad feature value '{s}'")))?;
            let kind = FeatureKind::ALL[k];
            if !v.is_finite() {
                return Err(ParseTraceError::new(
                    lineno,
                    format!(
                        "non-finite feature {}: '{s}' (every rule condition on it would compare false)",
                        kind.rule_name()
                    ),
                ));
            }
            // Range-check here so a hostile file surfaces as a named
            // parse error; handing the raw value to
            // `FeatureVector::from_values` would panic instead.
            if kind.is_count() && v < 0.0 {
                return Err(ParseTraceError::new(
                    lineno,
                    format!("feature {} is a count and cannot be negative: '{s}'", kind.rule_name()),
                ));
            }
            if !kind.is_count() && !(0.0..=1.0).contains(&v) {
                return Err(ParseTraceError::new(
                    lineno,
                    format!("feature {} is a fraction and must lie in [0,1]: '{s}'", kind.rule_name()),
                ));
            }
            *slot = v;
        }
        let base = 5 + FeatureKind::COUNT;
        out.push(TraceRecord {
            benchmark: cols[1].to_string(),
            method: MethodId(id(cols[2], "method id")?),
            block: BlockId(id(cols[3], "block id")?),
            exec_count: int(cols[4], "exec count")?,
            features: FeatureVector::from_values(values),
            est_unsched: int(cols[base], "est_unsched")?,
            est_sched: int(cols[base + 1], "est_sched")?,
            hw_unsched: int(cols[base + 2], "hw_unsched")?,
            hw_sched: int(cols[base + 3], "hw_sched")?,
            sched_ns: int(cols[base + 4], "sched_ns")?,
            feature_ns: int(cols[base + 5], "feature_ns")?,
            sched_work: int(cols[base + 6], "sched_work")?,
            feature_work: int(cols[base + 7], "feature_work")?,
        });
    }
    Ok(out)
}

/// Format magic opening every binary trace file (24 bytes, no
/// terminator). v1 carries the same seventeen features and eight cycle /
/// timing channels as the `schedfilter-trace-v2` text format.
const BIN_MAGIC: &[u8; 24] = b"schedfilter-trace-bin-v1";

/// Fixed byte size of one binary record: benchmark index, method id,
/// block id, reserved word (16), exec count (8), seventeen `f64`
/// features (136), eight `u64` channels (64).
const BIN_RECORD_BYTES: usize = 16 + 8 + 8 * FeatureKind::COUNT + 8 * 8;

/// An error produced while reading a binary trace file. Every variant
/// names what was wrong and where, so a truncated download or a hostile
/// header surfaces as a diagnosis instead of a panic or garbage records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryTraceError {
    /// The file does not begin with the `schedfilter-trace-bin-v1` magic.
    BadMagic,
    /// The file ends in the middle of `section` (at byte `offset`).
    Truncated {
        /// Which part of the layout was cut short.
        section: &'static str,
        /// Byte offset where the reader ran out of input.
        offset: usize,
    },
    /// A header field is structurally invalid: wrong feature table,
    /// non-UTF-8 name, impossible count, trailing bytes.
    HostileHeader {
        /// Which part of the header failed validation.
        section: &'static str,
        /// What exactly was wrong.
        detail: String,
    },
    /// Record `index` (0-based) carries an invalid field.
    BadRecord {
        /// Index of the offending record.
        index: usize,
        /// What exactly was wrong.
        detail: String,
    },
}

impl std::fmt::Display for BinaryTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryTraceError::BadMagic => {
                write!(f, "bad magic: not a '{}' file", String::from_utf8_lossy(BIN_MAGIC))
            }
            BinaryTraceError::Truncated { section, offset } => {
                write!(f, "binary trace truncated in {section} at byte {offset}")
            }
            BinaryTraceError::HostileHeader { section, detail } => {
                write!(f, "invalid binary trace header ({section}): {detail}")
            }
            BinaryTraceError::BadRecord { index, detail } => {
                write!(f, "binary trace record {index}: {detail}")
            }
        }
    }
}

impl std::error::Error for BinaryTraceError {}

/// Serializes records to the binary trace format.
///
/// Layout (all integers and floats little-endian):
///
/// ```text
/// magic            24 bytes  "schedfilter-trace-bin-v1"
/// feature count    u32       must equal 17
/// feature names    17 × (u16 length + UTF-8 bytes), in column order
/// benchmark count  u32
/// benchmark names  count × (u32 length + UTF-8 bytes)
/// record count     u64
/// records          count × 224 bytes, each:
///   benchmark index u32 · method id u32 · block id u32 · reserved u32 (0)
///   exec count u64 · 17 × feature f64 · 8 × channel u64
/// ```
///
/// Benchmark names are interned into the header table (first-appearance
/// order) so records are fixed-stride. Unlike the text format, names
/// containing tabs or newlines are fine — every string is
/// length-prefixed.
///
/// # Errors
///
/// Returns a [`TraceWriteError`] when a feature value is NaN or
/// ±infinity, for the same reason the text writer does: the record would
/// round-trip but silently classify NS under every learned filter.
pub fn write_trace_binary(records: &[TraceRecord]) -> Result<Vec<u8>, TraceWriteError> {
    for r in records {
        for k in FeatureKind::ALL {
            let value = r.features.get(k);
            if !value.is_finite() {
                return Err(TraceWriteError {
                    benchmark: r.benchmark.clone(),
                    kind: WriteErrorKind::NonFinite { feature: k.rule_name(), value },
                });
            }
        }
    }

    // Intern benchmark names in first-appearance order (deterministic).
    let mut names: Vec<&str> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    let bench_index: Vec<u32> = records
        .iter()
        .map(|r| {
            *index_of.entry(r.benchmark.as_str()).or_insert_with(|| {
                names.push(r.benchmark.as_str());
                u32::try_from(names.len() - 1).expect("benchmark counts fit u32")
            })
        })
        .collect();

    let mut out =
        Vec::with_capacity(64 + names.iter().map(|n| n.len() + 4).sum::<usize>() + records.len() * BIN_RECORD_BYTES);
    out.extend_from_slice(BIN_MAGIC);
    out.extend_from_slice(&u32::try_from(FeatureKind::COUNT).expect("the vocabulary fits u32").to_le_bytes());
    for k in FeatureKind::ALL {
        let name = k.rule_name();
        out.extend_from_slice(&u16::try_from(name.len()).expect("feature names fit u16").to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    out.extend_from_slice(&u32::try_from(names.len()).expect("benchmark counts fit u32").to_le_bytes());
    for name in &names {
        out.extend_from_slice(&u32::try_from(name.len()).expect("benchmark names fit u32").to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for (r, &bi) in records.iter().zip(&bench_index) {
        out.extend_from_slice(&bi.to_le_bytes());
        out.extend_from_slice(&r.method.0.to_le_bytes());
        out.extend_from_slice(&r.block.0.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&r.exec_count.to_le_bytes());
        for k in FeatureKind::ALL {
            out.extend_from_slice(&r.features.get(k).to_le_bytes());
        }
        for v in [
            r.est_unsched,
            r.est_sched,
            r.hw_unsched,
            r.hw_sched,
            r.sched_ns,
            r.feature_ns,
            r.sched_work,
            r.feature_work,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(out)
}

/// Bounds-checked little-endian reader over a binary layout; every
/// failed read names the section that was cut short.
///
/// This is the decode half of the `schedfilter-trace-bin-v1` idiom —
/// length prefixes validated before use, truncation reported at the
/// offset where the claim broke down — shared by the trace reader and
/// the `wts-serve` wire protocol. The fixed-width accessors all route
/// through [`take_array`](BinCursor::take_array), so the bounds check
/// happens exactly once per read and the slice-to-array conversion is
/// infallible by construction.
#[derive(Debug)]
pub struct BinCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BinCursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> BinCursor<'a> {
        BinCursor { bytes, pos: 0 }
    }

    /// The current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads the next `len` bytes as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`BinaryTraceError::Truncated`] naming `section` when
    /// fewer than `len` bytes remain (or `len` overflows the offset).
    pub fn take(&mut self, len: usize, section: &'static str) -> Result<&'a [u8], BinaryTraceError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(BinaryTraceError::Truncated { section, offset: self.pos })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads the next `N` bytes as a fixed-size array — one bounds
    /// check, no fallible slice conversion.
    ///
    /// # Errors
    ///
    /// Returns [`BinaryTraceError::Truncated`] naming `section` when
    /// fewer than `N` bytes remain.
    pub fn take_array<const N: usize>(&mut self, section: &'static str) -> Result<[u8; N], BinaryTraceError> {
        let end = self
            .pos
            .checked_add(N)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(BinaryTraceError::Truncated { section, offset: self.pos })?;
        let mut array = [0u8; N];
        array.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(array)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`BinaryTraceError::Truncated`] when the input is spent.
    pub fn u8(&mut self, section: &'static str) -> Result<u8, BinaryTraceError> {
        Ok(self.take_array::<1>(section)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`BinaryTraceError::Truncated`] when fewer than 2 bytes remain.
    pub fn u16(&mut self, section: &'static str) -> Result<u16, BinaryTraceError> {
        Ok(u16::from_le_bytes(self.take_array(section)?))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`BinaryTraceError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self, section: &'static str) -> Result<u32, BinaryTraceError> {
        Ok(u32::from_le_bytes(self.take_array(section)?))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`BinaryTraceError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self, section: &'static str) -> Result<u64, BinaryTraceError> {
        Ok(u64::from_le_bytes(self.take_array(section)?))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`BinaryTraceError::Truncated`] when fewer than 8 bytes remain.
    pub fn i64(&mut self, section: &'static str) -> Result<i64, BinaryTraceError> {
        Ok(i64::from_le_bytes(self.take_array(section)?))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`BinaryTraceError::Truncated`] when fewer than 8 bytes remain.
    pub fn f64(&mut self, section: &'static str) -> Result<f64, BinaryTraceError> {
        Ok(f64::from_le_bytes(self.take_array(section)?))
    }

    /// Reads `len` bytes as UTF-8.
    ///
    /// # Errors
    ///
    /// Returns [`BinaryTraceError::Truncated`] when fewer than `len`
    /// bytes remain, and [`BinaryTraceError::HostileHeader`] when the
    /// bytes are not valid UTF-8.
    pub fn str(&mut self, len: usize, section: &'static str) -> Result<&'a str, BinaryTraceError> {
        std::str::from_utf8(self.take(len, section)?)
            .map_err(|_| BinaryTraceError::HostileHeader { section, detail: "name is not valid UTF-8".to_string() })
    }
}

/// Parses a binary trace file written by [`write_trace_binary`].
///
/// # Errors
///
/// Returns a [`BinaryTraceError`] naming the failure: wrong magic, a
/// file cut short in any section (hostile length prefixes land here too
/// — a length running past the end of input is reported as truncation at
/// the offset where the claim broke down), a feature-name table that
/// does not match this build's seventeen columns, trailing bytes after
/// the last record, an out-of-table benchmark index, a nonzero reserved
/// word, or a non-finite / out-of-range feature value.
pub fn read_trace_binary(bytes: &[u8]) -> Result<Vec<TraceRecord>, BinaryTraceError> {
    if bytes.len() < BIN_MAGIC.len() || &bytes[..BIN_MAGIC.len()] != BIN_MAGIC {
        return Err(BinaryTraceError::BadMagic);
    }
    let mut cur = BinCursor::new(bytes);
    cur.take(BIN_MAGIC.len(), "magic")?;

    let feature_count = cur.u32("feature table")? as usize;
    if feature_count != FeatureKind::COUNT {
        return Err(BinaryTraceError::HostileHeader {
            section: "feature table",
            detail: format!("file declares {feature_count} features, this build has {}", FeatureKind::COUNT),
        });
    }
    for (i, kind) in FeatureKind::ALL.iter().enumerate() {
        let len = cur.u16("feature table")? as usize;
        let name = cur.str(len, "feature table")?;
        if name != kind.rule_name() {
            return Err(BinaryTraceError::HostileHeader {
                section: "feature table",
                detail: format!("feature column {i}: expected '{}', found '{name}'", kind.rule_name()),
            });
        }
    }

    let bench_count = cur.u32("benchmark table")? as usize;
    let mut benchmarks = Vec::with_capacity(bench_count.min(1024));
    for _ in 0..bench_count {
        let len = cur.u32("benchmark table")? as usize;
        benchmarks.push(cur.str(len, "benchmark table")?.to_string());
    }

    let record_count = cur.u64("record count")?;
    let body = bytes.len() - cur.pos;
    // A hostile count that does not even fit the address space is the
    // same header lie as one whose byte total overflows it.
    let needed = usize::try_from(record_count).ok().and_then(|c| c.checked_mul(BIN_RECORD_BYTES)).ok_or_else(|| {
        BinaryTraceError::HostileHeader {
            section: "record count",
            detail: format!("record count {record_count} overflows the address space"),
        }
    })?;
    if body < needed {
        return Err(BinaryTraceError::Truncated { section: "records", offset: cur.pos + body });
    }
    if body > needed {
        return Err(BinaryTraceError::HostileHeader {
            section: "records",
            detail: format!("{} trailing bytes after the last record", body - needed),
        });
    }

    let record_count = needed / BIN_RECORD_BYTES;
    let mut out = Vec::with_capacity(record_count);
    for index in 0..record_count {
        let bi = cur.u32("records")? as usize;
        let benchmark = benchmarks.get(bi).ok_or_else(|| BinaryTraceError::BadRecord {
            index,
            detail: format!("benchmark index {bi} out of table range (table has {})", benchmarks.len()),
        })?;
        let method = MethodId(cur.u32("records")?);
        let block = BlockId(cur.u32("records")?);
        let reserved = cur.u32("records")?;
        if reserved != 0 {
            return Err(BinaryTraceError::BadRecord {
                index,
                detail: format!("reserved word is {reserved:#x}, must be zero"),
            });
        }
        let exec_count = cur.u64("records")?;
        let mut values = [0.0f64; FeatureKind::COUNT];
        for (k, slot) in values.iter_mut().enumerate() {
            let v = cur.f64("records")?;
            let kind = FeatureKind::ALL[k];
            if !v.is_finite() {
                return Err(BinaryTraceError::BadRecord {
                    index,
                    detail: format!("non-finite feature {}: {v}", kind.rule_name()),
                });
            }
            if kind.is_count() && v < 0.0 {
                return Err(BinaryTraceError::BadRecord {
                    index,
                    detail: format!("feature {} is a count and cannot be negative: {v}", kind.rule_name()),
                });
            }
            if !kind.is_count() && !(0.0..=1.0).contains(&v) {
                return Err(BinaryTraceError::BadRecord {
                    index,
                    detail: format!("feature {} is a fraction and must lie in [0,1]: {v}", kind.rule_name()),
                });
            }
            *slot = v;
        }
        let est_unsched = cur.u64("records")?;
        let est_sched = cur.u64("records")?;
        let hw_unsched = cur.u64("records")?;
        let hw_sched = cur.u64("records")?;
        let sched_ns = cur.u64("records")?;
        let feature_ns = cur.u64("records")?;
        let sched_work = cur.u64("records")?;
        let feature_work = cur.u64("records")?;
        out.push(TraceRecord {
            benchmark: benchmark.clone(),
            method,
            block,
            exec_count,
            features: FeatureVector::from_values(values),
            est_unsched,
            est_sched,
            hw_unsched,
            hw_sched,
            sched_ns,
            feature_ns,
            sched_work,
            feature_work,
        });
    }
    Ok(out)
}

/// An error from the format-dispatching [`read_trace_auto`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceReadError {
    /// The input opened with the text magic but failed to parse.
    Text(ParseTraceError),
    /// The input opened with the binary magic but failed to parse.
    Binary(BinaryTraceError),
    /// The input starts with neither format's magic.
    UnknownFormat,
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Text(e) => write!(f, "{e}"),
            TraceReadError::Binary(e) => write!(f, "{e}"),
            TraceReadError::UnknownFormat => write!(
                f,
                "unrecognized trace file: expected it to open with '{MAGIC}' (text) or '{}' (binary)",
                String::from_utf8_lossy(BIN_MAGIC)
            ),
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Text(e) => Some(e),
            TraceReadError::Binary(e) => Some(e),
            TraceReadError::UnknownFormat => None,
        }
    }
}

impl From<ParseTraceError> for TraceReadError {
    fn from(e: ParseTraceError) -> TraceReadError {
        TraceReadError::Text(e)
    }
}

impl From<BinaryTraceError> for TraceReadError {
    fn from(e: BinaryTraceError) -> TraceReadError {
        TraceReadError::Binary(e)
    }
}

/// Parses a trace file in either encoding, dispatching on the leading
/// magic: [`read_trace_binary`] for `schedfilter-trace-bin-v1` input,
/// [`read_trace`] for UTF-8 input opening with the text magic.
///
/// # Errors
///
/// Returns the dispatched reader's error, or
/// [`TraceReadError::UnknownFormat`] when the input starts with neither
/// magic.
pub fn read_trace_auto(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceReadError> {
    if bytes.starts_with(BIN_MAGIC) {
        return Ok(read_trace_binary(bytes)?);
    }
    if let Ok(text) = std::str::from_utf8(bytes) {
        if text.starts_with(MAGIC) {
            return Ok(read_trace(text)?);
        }
    }
    Err(TraceReadError::UnknownFormat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(bench: &str, unsched: u64, sched: u64) -> TraceRecord {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = 7.0;
        v[FeatureKind::Loads.index()] = 1.0 / 3.0; // non-terminating decimal
        TraceRecord {
            benchmark: bench.to_string(),
            method: MethodId(3),
            block: BlockId(9),
            exec_count: 42,
            features: FeatureVector::from_values(v),
            est_unsched: unsched,
            est_sched: sched,
            hw_unsched: unsched + 1,
            hw_sched: sched + 1,
            sched_ns: 1234,
            feature_ns: 56,
            sched_work: 99,
            feature_work: 7,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let records = vec![record("compress", 100, 80), record("jess", 10, 10)];
        let text = write_trace(&records).expect("plain names serialize");
        let back = read_trace(&text).expect("own output must parse");
        assert_eq!(back, records);
    }

    #[test]
    fn empty_record_list_round_trips() {
        let text = write_trace(&[]).unwrap();
        assert_eq!(read_trace(&text).unwrap(), Vec::new());
    }

    #[test]
    fn hostile_but_legal_names_round_trip() {
        // Spaces, quotes, unicode, backslashes and separators other than
        // tabs are all fine — the format only splits on '\t'.
        for name in ["with space", "quo\"te", "naïve-β", r"back\slash", "semi;colon,comma"] {
            let records = vec![record(name, 9, 7)];
            let text = write_trace(&records).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(read_trace(&text).expect("parses"), records, "{name}");
        }
    }

    #[test]
    fn names_that_would_corrupt_the_format_are_rejected_by_name() {
        for name in ["tab\tseparated", "new\nline", "carriage\rreturn"] {
            let err = write_trace(&[record("ok", 5, 4), record(name, 5, 4)])
                .expect_err("corrupting name must be rejected at write time");
            assert_eq!(err.benchmark(), name);
            assert!(err.to_string().contains("benchmark name"), "got: {err}");
            // The message must identify the culprit (escaped, so it is
            // printable even with the control character inside).
            assert!(err.to_string().contains("tab") || !name.contains('\t'), "got: {err}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace("nonsense\n").unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        assert_eq!(err.line(), 0);
    }

    #[test]
    fn rejects_out_of_range_ids_instead_of_truncating() {
        // 2^32 used to wrap to method/block id 0 via `as u32` — a
        // valid-looking record with the wrong identity.
        let good = write_trace(&[record("a", 5, 4)]).unwrap();
        for (field, column_value) in [("method id", "\t3\t"), ("block id", "\t9\t")] {
            let too_big = (u64::from(u32::MAX) + 1).to_string();
            let bad = good.replacen(column_value, &format!("\t{too_big}\t"), 1);
            assert_ne!(bad, good, "{field}: substitution must hit");
            let err = read_trace(&bad).unwrap_err();
            assert!(err.to_string().contains(field), "{field}: got {err}");
            assert!(err.to_string().contains("out of range"), "{field}: got {err}");
            assert_eq!(err.line(), 2, "{field}: the offending record line is named");
        }
        // The largest representable id still round-trips.
        let mut boundary = record("a", 5, 4);
        boundary.method = MethodId(u32::MAX);
        boundary.block = BlockId(u32::MAX);
        let text = write_trace(&[boundary.clone()]).unwrap();
        assert_eq!(read_trace(&text).unwrap(), vec![boundary]);
    }

    #[test]
    fn rejects_shuffled_or_renamed_header_columns() {
        let good = write_trace(&[record("a", 5, 4)]).unwrap();
        // Swap two feature columns: same names, wrong order — the old
        // prefix-only magic check accepted this and permuted features.
        let shuffled = good.replacen("\tbranches\tcalls\t", "\tcalls\tbranches\t", 1);
        assert_ne!(shuffled, good);
        let err = read_trace(&shuffled).unwrap_err();
        assert_eq!(err.line(), 0, "header errors are line 0");
        assert!(err.to_string().contains("expected 'branches', found 'calls'"), "got: {err}");

        // Renamed column: the first mismatch is named with its position.
        let renamed = good.replacen("\tloads\t", "\tld\t", 1);
        let err = read_trace(&renamed).unwrap_err();
        assert!(err.to_string().contains("expected 'loads', found 'ld'"), "got: {err}");

        // A truncated header fails on the count.
        let truncated = good.replacen("\tfeature_work\n", "\n", 1);
        let err = read_trace(&truncated).unwrap_err();
        assert!(err.to_string().contains("header has"), "got: {err}");
    }

    #[test]
    fn rejects_non_finite_feature_values_on_read() {
        let good = write_trace(&[record("a", 5, 4)]).unwrap();
        // bbLen is 7.0 in the fixture; swap it for hostile values a bare
        // f64 parse would happily accept.
        for hostile in ["NaN", "inf", "-inf"] {
            let bad = good.replacen("\t7.0\t", &format!("\t{hostile}\t"), 1);
            assert_ne!(bad, good, "{hostile}: substitution must hit");
            let err = read_trace(&bad).unwrap_err();
            assert!(err.to_string().contains("non-finite feature bbLen"), "{hostile}: got {err}");
            assert_eq!(err.line(), 2, "{hostile}: the offending line is named");
        }
    }

    /// Regression (PR 5 review): a *finite* but out-of-range feature
    /// value used to sail past the finiteness check straight into
    /// `FeatureVector::from_values`, whose range assert aborted the
    /// process — a hostile file must surface as a named parse error,
    /// never a panic.
    #[test]
    fn rejects_out_of_range_feature_values_on_read() {
        let good = write_trace(&[record("a", 5, 4)]).unwrap();
        // The fixture's loads fraction is 1/3; a fraction above 1 (or
        // below 0) is a named error.
        for (hostile, what) in [("1.5", "[0,1]"), ("-0.25", "[0,1]")] {
            let bad = good.replacen("\t0.3333333333333333\t", &format!("\t{hostile}\t"), 1);
            assert_ne!(bad, good, "{hostile}: substitution must hit");
            let err = read_trace(&bad).unwrap_err();
            assert!(err.to_string().contains("feature loads is a fraction"), "{hostile}: got {err}");
            assert!(err.to_string().contains(what), "{hostile}: got {err}");
            assert_eq!(err.line(), 2);
        }
        // Counts (bbLen and the trace-shape features) reject negatives.
        let bad = good.replacen("\t7.0\t", "\t-7.0\t", 1);
        assert_ne!(bad, good);
        let err = read_trace(&bad).unwrap_err();
        assert!(err.to_string().contains("feature bbLen is a count"), "got {err}");
    }

    #[test]
    fn rejects_non_finite_feature_values_on_write() {
        // NaN and -inf cannot even be constructed through the validating
        // `FeatureVector::from_values` API; `bbLen = +inf` can (it is
        // only checked non-negative), so the writer must catch it before
        // it round-trips into a record that silently classifies NS.
        let mut r = record("photon", 5, 4);
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = f64::INFINITY;
        r.features = FeatureVector::from_values(v);
        let err = write_trace(&[record("ok", 5, 4), r]).expect_err("non-finite feature must be rejected");
        assert_eq!(err.benchmark(), "photon");
        assert!(err.to_string().contains("feature bbLen"), "got: {err}");
        assert!(err.to_string().contains("not finite"), "got: {err}");
        assert!(!err.to_string().contains("tab"), "wrong error kind: {err}");
    }

    #[test]
    fn rejects_wrong_column_count() {
        let mut text = write_trace(&[record("a", 5, 4)]).unwrap();
        text.push_str("rec\tonly\tthree\n");
        let err = read_trace(&text).unwrap_err();
        assert!(err.to_string().contains("columns"));
        assert_eq!(err.line(), 3, "header is line 1, record line 2, bad line 3");
    }

    #[test]
    fn rejects_malformed_numbers() {
        let good = write_trace(&[record("a", 5, 4)]).unwrap();
        let bad = good.replace("\t42\t", "\tforty-two\t");
        assert!(read_trace(&bad).is_err());
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let mut text = write_trace(&[record("a", 5, 4)]).unwrap();
        text.push('\n');
        assert_eq!(read_trace(&text).unwrap().len(), 1);
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let records = vec![record("compress", 100, 80), record("jess", 10, 10), record("compress", 7, 7)];
        let bytes = write_trace_binary(&records).expect("finite features serialize");
        let back = read_trace_binary(&bytes).expect("own output must parse");
        assert_eq!(back, records);
        // Interned names: "compress" appears once in the header.
        let hits = bytes.windows(b"compress".len()).filter(|w| *w == b"compress").count();
        assert_eq!(hits, 1, "benchmark names are interned");
    }

    #[test]
    fn binary_empty_record_list_round_trips() {
        let bytes = write_trace_binary(&[]).unwrap();
        assert_eq!(read_trace_binary(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn binary_accepts_names_the_text_format_cannot() {
        // Length-prefixed strings make tabs and newlines legal here.
        for name in ["tab\tseparated", "new\nline", "naïve-β"] {
            let records = vec![record(name, 9, 7)];
            let bytes = write_trace_binary(&records).unwrap();
            assert_eq!(read_trace_binary(&bytes).unwrap(), records, "{name:?}");
        }
    }

    #[test]
    fn binary_record_stride_is_fixed() {
        let one = write_trace_binary(&[record("a", 5, 4)]).unwrap();
        let two = write_trace_binary(&[record("a", 5, 4), record("a", 6, 5)]).unwrap();
        assert_eq!(two.len() - one.len(), BIN_RECORD_BYTES, "each extra record costs exactly one stride");
    }

    #[test]
    fn binary_rejects_bad_magic() {
        assert_eq!(read_trace_binary(b"nonsense"), Err(BinaryTraceError::BadMagic));
        // A text trace handed to the binary reader is a magic error too.
        let text = write_trace(&[record("a", 5, 4)]).unwrap();
        assert_eq!(read_trace_binary(text.as_bytes()), Err(BinaryTraceError::BadMagic));
    }

    #[test]
    fn binary_rejects_truncation_in_every_section() {
        let full = write_trace_binary(&[record("bench", 5, 4)]).unwrap();
        // Chopping the file anywhere after the magic must produce a
        // *named* error — never a panic, never records.
        for len in BIN_MAGIC.len()..full.len() {
            let err = read_trace_binary(&full[..len]).expect_err("truncated file must not parse");
            match err {
                BinaryTraceError::Truncated { .. } | BinaryTraceError::HostileHeader { .. } => {}
                other => panic!("truncation at {len} produced {other:?}"),
            }
        }
    }

    #[test]
    fn binary_rejects_hostile_length_prefixes() {
        let mut bytes = write_trace_binary(&[record("bench", 5, 4)]).unwrap();
        // The benchmark-name length prefix sits right after the feature
        // table and the u32 benchmark count; claim 4 GiB of name.
        let name_len_at = bytes.windows(b"bench".len()).position(|w| w == b"bench").unwrap() - 4;
        bytes[name_len_at..name_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_trace_binary(&bytes).expect_err("hostile length must not parse");
        assert!(matches!(err, BinaryTraceError::Truncated { section: "benchmark table", .. }), "got {err:?}");
        assert!(err.to_string().contains("benchmark table"), "got: {err}");
    }

    #[test]
    fn binary_rejects_wrong_feature_table() {
        let good = write_trace_binary(&[record("a", 5, 4)]).unwrap();
        // Claim 16 features instead of 17.
        let mut wrong_count = good.clone();
        wrong_count[BIN_MAGIC.len()..BIN_MAGIC.len() + 4].copy_from_slice(&16u32.to_le_bytes());
        let err = read_trace_binary(&wrong_count).unwrap_err();
        assert!(matches!(err, BinaryTraceError::HostileHeader { section: "feature table", .. }), "got {err:?}");
        assert!(err.to_string().contains("16 features"), "got: {err}");
        // Rename a feature column in place (same length).
        let pos = good.windows(b"bbLen".len()).position(|w| w == b"bbLen").unwrap();
        let mut renamed = good.clone();
        renamed[pos..pos + 5].copy_from_slice(b"bbXXX");
        let err = read_trace_binary(&renamed).unwrap_err();
        assert!(err.to_string().contains("expected 'bbLen', found 'bbXXX'"), "got: {err}");
    }

    #[test]
    fn binary_rejects_trailing_bytes_and_bad_indices() {
        let good = write_trace_binary(&[record("a", 5, 4)]).unwrap();
        let mut padded = good.clone();
        padded.extend_from_slice(&[0u8; 3]);
        let err = read_trace_binary(&padded).unwrap_err();
        assert!(err.to_string().contains("3 trailing bytes"), "got: {err}");
        // Point the record at benchmark index 7 of a 1-entry table. The
        // first record starts right after the u64 record count.
        let mut bad_index = good.clone();
        let rec_at = good.len() - BIN_RECORD_BYTES;
        bad_index[rec_at..rec_at + 4].copy_from_slice(&7u32.to_le_bytes());
        let err = read_trace_binary(&bad_index).unwrap_err();
        assert!(matches!(err, BinaryTraceError::BadRecord { index: 0, .. }), "got {err:?}");
        assert!(err.to_string().contains("benchmark index 7"), "got: {err}");
        // A nonzero reserved word is named too.
        let mut bad_reserved = good;
        bad_reserved[rec_at + 12..rec_at + 16].copy_from_slice(&1u32.to_le_bytes());
        let err = read_trace_binary(&bad_reserved).unwrap_err();
        assert!(err.to_string().contains("reserved word"), "got: {err}");
    }

    #[test]
    fn binary_rejects_non_finite_and_out_of_range_features() {
        let good = write_trace_binary(&[record("a", 5, 4)]).unwrap();
        let rec_at = good.len() - BIN_RECORD_BYTES;
        let bblen_at = rec_at + 16 + 8 + 8 * FeatureKind::BbLen.index();
        for (hostile, what) in
            [(f64::NAN, "non-finite feature bbLen"), (f64::INFINITY, "non-finite"), (-7.0, "cannot be negative")]
        {
            let mut bad = good.clone();
            bad[bblen_at..bblen_at + 8].copy_from_slice(&hostile.to_le_bytes());
            let err = read_trace_binary(&bad).expect_err("hostile feature must not parse");
            assert!(err.to_string().contains(what), "{hostile}: got {err}");
        }
        // Fractions outside [0,1] are named as well.
        let loads_at = rec_at + 16 + 8 + 8 * FeatureKind::Loads.index();
        let mut bad = good.clone();
        bad[loads_at..loads_at + 8].copy_from_slice(&1.5f64.to_le_bytes());
        let err = read_trace_binary(&bad).unwrap_err();
        assert!(err.to_string().contains("must lie in [0,1]"), "got: {err}");
    }

    #[test]
    fn binary_writer_rejects_non_finite_features() {
        let mut r = record("photon", 5, 4);
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = f64::INFINITY;
        r.features = FeatureVector::from_values(v);
        let err = write_trace_binary(&[r]).expect_err("non-finite feature must be rejected");
        assert_eq!(err.benchmark(), "photon");
        assert!(err.to_string().contains("not finite"), "got: {err}");
    }

    #[test]
    fn auto_detect_dispatches_on_magic() {
        let records = vec![record("compress", 100, 80)];
        let text = write_trace(&records).unwrap();
        let bin = write_trace_binary(&records).unwrap();
        assert_eq!(read_trace_auto(text.as_bytes()).unwrap(), records);
        assert_eq!(read_trace_auto(&bin).unwrap(), records);
        // Neither magic: a named unknown-format error.
        let err = read_trace_auto(b"something else entirely").unwrap_err();
        assert_eq!(err, TraceReadError::UnknownFormat);
        assert!(err.to_string().contains(MAGIC) && err.to_string().contains("bin-v1"), "got: {err}");
        // Dispatched errors keep their diagnosis.
        let err = read_trace_auto(&bin[..bin.len() - 1]).unwrap_err();
        assert!(matches!(err, TraceReadError::Binary(BinaryTraceError::Truncated { .. })), "got {err:?}");
    }
}
