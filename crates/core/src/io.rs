//! Trace-file serialization.
//!
//! The paper's pipeline writes "into a trace file raw data for forming
//! instances" (§2.2) and contemplates shipping "tools to end users so
//! that they could develop their own training sets and retrain"
//! (footnote 4). This module is that interchange format: a
//! tab-separated, header-checked text file that round-trips
//! [`TraceRecord`]s exactly (wall-clock fields included, since they are
//! data about the traced run).

use crate::TraceRecord;
use std::fmt::Write as _;
use wts_features::{FeatureKind, FeatureVector};
use wts_ir::{BlockId, MethodId};

/// Format version tag written as the first header column.
const MAGIC: &str = "schedfilter-trace-v1";

/// An error produced while reading a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> ParseTraceError {
        ParseTraceError { line, message: message.into() }
    }

    /// 1-based line number of the offending line (0 for the header).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// An error produced while writing a trace file: a benchmark name that
/// would corrupt the tab-separated format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceWriteError {
    benchmark: String,
}

impl TraceWriteError {
    /// The offending benchmark name.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }
}

impl std::fmt::Display for TraceWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "benchmark name {:?} contains a tab, newline or carriage return and would corrupt the \
             tab-separated trace format; rename the benchmark before tracing",
            self.benchmark
        )
    }
}

impl std::error::Error for TraceWriteError {}

/// Serializes records to the trace-file text format.
///
/// The first line is a header naming every column; one record per line
/// follows, tab-separated. Feature values are printed with full
/// precision (`{:?}` on `f64` round-trips exactly).
///
/// # Errors
///
/// Returns a [`TraceWriteError`] naming the offending benchmark when a
/// record's benchmark name contains `\t`, `\n` or `\r` — written as-is
/// those would silently split the line, and the reader would only fail
/// much later with an opaque column-count error.
pub fn write_trace(records: &[TraceRecord]) -> Result<String, TraceWriteError> {
    if let Some(r) = records.iter().find(|r| r.benchmark.contains(['\t', '\n', '\r'])) {
        return Err(TraceWriteError { benchmark: r.benchmark.clone() });
    }
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push_str("\tbenchmark\tmethod\tblock\texec");
    for k in FeatureKind::ALL {
        let _ = write!(out, "\t{k}");
    }
    out.push_str("\test_unsched\test_sched\thw_unsched\thw_sched\tsched_ns\tfeature_ns\tsched_work\tfeature_work\n");
    for r in records {
        let _ = write!(out, "rec\t{}\t{}\t{}\t{}", r.benchmark, r.method.0, r.block.0, r.exec_count);
        for k in FeatureKind::ALL {
            let _ = write!(out, "\t{:?}", r.features.get(k));
        }
        let _ = writeln!(
            out,
            "\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.est_unsched,
            r.est_sched,
            r.hw_unsched,
            r.hw_sched,
            r.sched_ns,
            r.feature_ns,
            r.sched_work,
            r.feature_work
        );
    }
    Ok(out)
}

/// Parses a trace file written by [`write_trace`].
///
/// # Errors
///
/// Returns a [`ParseTraceError`] for a bad header, wrong column count,
/// or malformed field.
pub fn read_trace(text: &str) -> Result<Vec<TraceRecord>, ParseTraceError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ParseTraceError::new(0, "empty trace file"))?;
    if !header.starts_with(MAGIC) {
        return Err(ParseTraceError::new(0, format!("bad magic, expected '{MAGIC}'")));
    }
    let expected_cols = 5 + FeatureKind::COUNT + 8;
    let mut out = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != expected_cols {
            return Err(ParseTraceError::new(
                lineno,
                format!("expected {expected_cols} columns, found {}", cols.len()),
            ));
        }
        if cols[0] != "rec" {
            return Err(ParseTraceError::new(lineno, "record lines must start with 'rec'"));
        }
        let int = |s: &str, what: &str| {
            s.parse::<u64>().map_err(|_| ParseTraceError::new(lineno, format!("bad {what}: '{s}'")))
        };
        let mut values = [0.0f64; FeatureKind::COUNT];
        for (k, slot) in values.iter_mut().enumerate() {
            let s = cols[5 + k];
            *slot = s.parse::<f64>().map_err(|_| ParseTraceError::new(lineno, format!("bad feature value '{s}'")))?;
        }
        let base = 5 + FeatureKind::COUNT;
        out.push(TraceRecord {
            benchmark: cols[1].to_string(),
            method: MethodId(int(cols[2], "method id")? as u32),
            block: BlockId(int(cols[3], "block id")? as u32),
            exec_count: int(cols[4], "exec count")?,
            features: FeatureVector::from_values(values),
            est_unsched: int(cols[base], "est_unsched")?,
            est_sched: int(cols[base + 1], "est_sched")?,
            hw_unsched: int(cols[base + 2], "hw_unsched")?,
            hw_sched: int(cols[base + 3], "hw_sched")?,
            sched_ns: int(cols[base + 4], "sched_ns")?,
            feature_ns: int(cols[base + 5], "feature_ns")?,
            sched_work: int(cols[base + 6], "sched_work")?,
            feature_work: int(cols[base + 7], "feature_work")?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(bench: &str, unsched: u64, sched: u64) -> TraceRecord {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = 7.0;
        v[FeatureKind::Loads.index()] = 1.0 / 3.0; // non-terminating decimal
        TraceRecord {
            benchmark: bench.to_string(),
            method: MethodId(3),
            block: BlockId(9),
            exec_count: 42,
            features: FeatureVector::from_values(v),
            est_unsched: unsched,
            est_sched: sched,
            hw_unsched: unsched + 1,
            hw_sched: sched + 1,
            sched_ns: 1234,
            feature_ns: 56,
            sched_work: 99,
            feature_work: 7,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let records = vec![record("compress", 100, 80), record("jess", 10, 10)];
        let text = write_trace(&records).expect("plain names serialize");
        let back = read_trace(&text).expect("own output must parse");
        assert_eq!(back, records);
    }

    #[test]
    fn empty_record_list_round_trips() {
        let text = write_trace(&[]).unwrap();
        assert_eq!(read_trace(&text).unwrap(), Vec::new());
    }

    #[test]
    fn hostile_but_legal_names_round_trip() {
        // Spaces, quotes, unicode, backslashes and separators other than
        // tabs are all fine — the format only splits on '\t'.
        for name in ["with space", "quo\"te", "naïve-β", r"back\slash", "semi;colon,comma"] {
            let records = vec![record(name, 9, 7)];
            let text = write_trace(&records).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(read_trace(&text).expect("parses"), records, "{name}");
        }
    }

    #[test]
    fn names_that_would_corrupt_the_format_are_rejected_by_name() {
        for name in ["tab\tseparated", "new\nline", "carriage\rreturn"] {
            let err = write_trace(&[record("ok", 5, 4), record(name, 5, 4)])
                .expect_err("corrupting name must be rejected at write time");
            assert_eq!(err.benchmark(), name);
            assert!(err.to_string().contains("benchmark name"), "got: {err}");
            // The message must identify the culprit (escaped, so it is
            // printable even with the control character inside).
            assert!(err.to_string().contains("tab") || !name.contains('\t'), "got: {err}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace("nonsense\n").unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        assert_eq!(err.line(), 0);
    }

    #[test]
    fn rejects_wrong_column_count() {
        let mut text = write_trace(&[record("a", 5, 4)]).unwrap();
        text.push_str("rec\tonly\tthree\n");
        let err = read_trace(&text).unwrap_err();
        assert!(err.to_string().contains("columns"));
        assert_eq!(err.line(), 3, "header is line 1, record line 2, bad line 3");
    }

    #[test]
    fn rejects_malformed_numbers() {
        let good = write_trace(&[record("a", 5, 4)]).unwrap();
        let bad = good.replace("\t42\t", "\tforty-two\t");
        assert!(read_trace(&bad).is_err());
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let mut text = write_trace(&[record("a", 5, 4)]).unwrap();
        text.push('\n');
        assert_eq!(read_trace(&text).unwrap().len(), 1);
    }
}
