//! Trace-file serialization.
//!
//! The paper's pipeline writes "into a trace file raw data for forming
//! instances" (§2.2) and contemplates shipping "tools to end users so
//! that they could develop their own training sets and retrain"
//! (footnote 4). This module is that interchange format: a
//! tab-separated, header-checked text file that round-trips
//! [`TraceRecord`]s exactly (wall-clock fields included, since they are
//! data about the traced run).

use crate::TraceRecord;
use std::fmt::Write as _;
use wts_features::{FeatureKind, FeatureVector};
use wts_ir::{BlockId, MethodId};

/// Format version tag written as the first header column. v2 appended
/// the four trace-shape feature columns (`traceWidth`, `sideExits`,
/// `specInsts`, `traceLen`) of the superblock scope; v1 files fail the
/// magic check instead of silently mis-slotting features.
const MAGIC: &str = "schedfilter-trace-v2";

/// Every header column in order: the magic tag, the record key columns,
/// the seventeen features (Table 1 + trace shape), then the cycle and
/// timing channels.
/// The reader validates the *full* list — a reordered or renamed column
/// would otherwise silently permute features into the wrong slots.
fn expected_columns() -> Vec<&'static str> {
    let mut cols = vec![MAGIC, "benchmark", "method", "block", "exec"];
    cols.extend(FeatureKind::ALL.iter().map(|k| k.rule_name()));
    cols.extend([
        "est_unsched",
        "est_sched",
        "hw_unsched",
        "hw_sched",
        "sched_ns",
        "feature_ns",
        "sched_work",
        "feature_work",
    ]);
    cols
}

/// The exact header line [`write_trace`] emits.
fn expected_header() -> String {
    expected_columns().join("\t")
}

/// An error produced while reading a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> ParseTraceError {
        ParseTraceError { line, message: message.into() }
    }

    /// 1-based line number of the offending line (0 for the header).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// An error produced while writing a trace file: a record that would
/// corrupt the tab-separated format or silently change meaning when
/// read back.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWriteError {
    benchmark: String,
    kind: WriteErrorKind,
}

#[derive(Debug, Clone, PartialEq)]
enum WriteErrorKind {
    /// The benchmark name contains `\t`, `\n` or `\r`.
    BadName,
    /// A feature value is NaN or ±infinity.
    NonFinite { feature: &'static str, value: f64 },
}

impl TraceWriteError {
    /// The benchmark of the offending record.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }
}

impl std::fmt::Display for TraceWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            WriteErrorKind::BadName => write!(
                f,
                "benchmark name {:?} contains a tab, newline or carriage return and would corrupt the \
                 tab-separated trace format; rename the benchmark before tracing",
                self.benchmark
            ),
            WriteErrorKind::NonFinite { feature, value } => write!(
                f,
                "benchmark {:?}: feature {feature} is {value}, which is not finite; every rule condition \
                 on a non-finite value compares false, so the record would silently classify NS under any \
                 learned filter — fix the extraction instead of serializing it",
                self.benchmark
            ),
        }
    }
}

impl std::error::Error for TraceWriteError {}

/// Serializes records to the trace-file text format.
///
/// The first line is a header naming every column; one record per line
/// follows, tab-separated. Feature values are printed with full
/// precision (`{:?}` on `f64` round-trips exactly).
///
/// # Errors
///
/// Returns a [`TraceWriteError`] naming the offending benchmark when a
/// record's benchmark name contains `\t`, `\n` or `\r` — written as-is
/// those would silently split the line, and the reader would only fail
/// much later with an opaque column-count error — or when a feature
/// value is NaN or ±infinity, which would round-trip fine but silently
/// classify NS under every learned filter (each condition on a
/// non-finite value compares false).
pub fn write_trace(records: &[TraceRecord]) -> Result<String, TraceWriteError> {
    if let Some(r) = records.iter().find(|r| r.benchmark.contains(['\t', '\n', '\r'])) {
        return Err(TraceWriteError { benchmark: r.benchmark.clone(), kind: WriteErrorKind::BadName });
    }
    for r in records {
        for k in FeatureKind::ALL {
            let value = r.features.get(k);
            if !value.is_finite() {
                return Err(TraceWriteError {
                    benchmark: r.benchmark.clone(),
                    kind: WriteErrorKind::NonFinite { feature: k.rule_name(), value },
                });
            }
        }
    }
    let mut out = String::new();
    out.push_str(&expected_header());
    out.push('\n');
    for r in records {
        let _ = write!(out, "rec\t{}\t{}\t{}\t{}", r.benchmark, r.method.0, r.block.0, r.exec_count);
        for k in FeatureKind::ALL {
            let _ = write!(out, "\t{:?}", r.features.get(k));
        }
        let _ = writeln!(
            out,
            "\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.est_unsched,
            r.est_sched,
            r.hw_unsched,
            r.hw_sched,
            r.sched_ns,
            r.feature_ns,
            r.sched_work,
            r.feature_work
        );
    }
    Ok(out)
}

/// Parses a trace file written by [`write_trace`].
///
/// # Errors
///
/// Returns a [`ParseTraceError`] for a bad header (every column name is
/// checked against the writer's layout — a reordered or renamed column
/// would otherwise silently permute features), wrong column count,
/// malformed field, out-of-range method/block id, or a non-finite
/// feature value.
pub fn read_trace(text: &str) -> Result<Vec<TraceRecord>, ParseTraceError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ParseTraceError::new(0, "empty trace file"))?;
    if !header.starts_with(MAGIC) {
        return Err(ParseTraceError::new(0, format!("bad magic, expected '{MAGIC}'")));
    }
    let expected = expected_columns();
    let header_cols: Vec<&str> = header.split('\t').collect();
    for (i, (got, want)) in header_cols.iter().zip(&expected).enumerate() {
        if got != want {
            return Err(ParseTraceError::new(0, format!("header column {i}: expected '{want}', found '{got}'")));
        }
    }
    if header_cols.len() != expected.len() {
        return Err(ParseTraceError::new(
            0,
            format!("header has {} columns, expected {}", header_cols.len(), expected.len()),
        ));
    }
    let expected_cols = expected.len();
    let mut out = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != expected_cols {
            return Err(ParseTraceError::new(
                lineno,
                format!("expected {expected_cols} columns, found {}", cols.len()),
            ));
        }
        if cols[0] != "rec" {
            return Err(ParseTraceError::new(lineno, "record lines must start with 'rec'"));
        }
        let int = |s: &str, what: &str| {
            s.parse::<u64>().map_err(|_| ParseTraceError::new(lineno, format!("bad {what}: '{s}'")))
        };
        // Ids are 32-bit; a wider value must not wrap into a
        // valid-looking record.
        let id = |s: &str, what: &str| {
            let wide = int(s, what)?;
            u32::try_from(wide)
                .map_err(|_| ParseTraceError::new(lineno, format!("{what} {wide} out of range (max {})", u32::MAX)))
        };
        let mut values = [0.0f64; FeatureKind::COUNT];
        for (k, slot) in values.iter_mut().enumerate() {
            let s = cols[5 + k];
            let v = s.parse::<f64>().map_err(|_| ParseTraceError::new(lineno, format!("bad feature value '{s}'")))?;
            let kind = FeatureKind::ALL[k];
            if !v.is_finite() {
                return Err(ParseTraceError::new(
                    lineno,
                    format!(
                        "non-finite feature {}: '{s}' (every rule condition on it would compare false)",
                        kind.rule_name()
                    ),
                ));
            }
            // Range-check here so a hostile file surfaces as a named
            // parse error; handing the raw value to
            // `FeatureVector::from_values` would panic instead.
            if kind.is_count() && v < 0.0 {
                return Err(ParseTraceError::new(
                    lineno,
                    format!("feature {} is a count and cannot be negative: '{s}'", kind.rule_name()),
                ));
            }
            if !kind.is_count() && !(0.0..=1.0).contains(&v) {
                return Err(ParseTraceError::new(
                    lineno,
                    format!("feature {} is a fraction and must lie in [0,1]: '{s}'", kind.rule_name()),
                ));
            }
            *slot = v;
        }
        let base = 5 + FeatureKind::COUNT;
        out.push(TraceRecord {
            benchmark: cols[1].to_string(),
            method: MethodId(id(cols[2], "method id")?),
            block: BlockId(id(cols[3], "block id")?),
            exec_count: int(cols[4], "exec count")?,
            features: FeatureVector::from_values(values),
            est_unsched: int(cols[base], "est_unsched")?,
            est_sched: int(cols[base + 1], "est_sched")?,
            hw_unsched: int(cols[base + 2], "hw_unsched")?,
            hw_sched: int(cols[base + 3], "hw_sched")?,
            sched_ns: int(cols[base + 4], "sched_ns")?,
            feature_ns: int(cols[base + 5], "feature_ns")?,
            sched_work: int(cols[base + 6], "sched_work")?,
            feature_work: int(cols[base + 7], "feature_work")?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(bench: &str, unsched: u64, sched: u64) -> TraceRecord {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = 7.0;
        v[FeatureKind::Loads.index()] = 1.0 / 3.0; // non-terminating decimal
        TraceRecord {
            benchmark: bench.to_string(),
            method: MethodId(3),
            block: BlockId(9),
            exec_count: 42,
            features: FeatureVector::from_values(v),
            est_unsched: unsched,
            est_sched: sched,
            hw_unsched: unsched + 1,
            hw_sched: sched + 1,
            sched_ns: 1234,
            feature_ns: 56,
            sched_work: 99,
            feature_work: 7,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let records = vec![record("compress", 100, 80), record("jess", 10, 10)];
        let text = write_trace(&records).expect("plain names serialize");
        let back = read_trace(&text).expect("own output must parse");
        assert_eq!(back, records);
    }

    #[test]
    fn empty_record_list_round_trips() {
        let text = write_trace(&[]).unwrap();
        assert_eq!(read_trace(&text).unwrap(), Vec::new());
    }

    #[test]
    fn hostile_but_legal_names_round_trip() {
        // Spaces, quotes, unicode, backslashes and separators other than
        // tabs are all fine — the format only splits on '\t'.
        for name in ["with space", "quo\"te", "naïve-β", r"back\slash", "semi;colon,comma"] {
            let records = vec![record(name, 9, 7)];
            let text = write_trace(&records).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(read_trace(&text).expect("parses"), records, "{name}");
        }
    }

    #[test]
    fn names_that_would_corrupt_the_format_are_rejected_by_name() {
        for name in ["tab\tseparated", "new\nline", "carriage\rreturn"] {
            let err = write_trace(&[record("ok", 5, 4), record(name, 5, 4)])
                .expect_err("corrupting name must be rejected at write time");
            assert_eq!(err.benchmark(), name);
            assert!(err.to_string().contains("benchmark name"), "got: {err}");
            // The message must identify the culprit (escaped, so it is
            // printable even with the control character inside).
            assert!(err.to_string().contains("tab") || !name.contains('\t'), "got: {err}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace("nonsense\n").unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        assert_eq!(err.line(), 0);
    }

    #[test]
    fn rejects_out_of_range_ids_instead_of_truncating() {
        // 2^32 used to wrap to method/block id 0 via `as u32` — a
        // valid-looking record with the wrong identity.
        let good = write_trace(&[record("a", 5, 4)]).unwrap();
        for (field, column_value) in [("method id", "\t3\t"), ("block id", "\t9\t")] {
            let too_big = (u64::from(u32::MAX) + 1).to_string();
            let bad = good.replacen(column_value, &format!("\t{too_big}\t"), 1);
            assert_ne!(bad, good, "{field}: substitution must hit");
            let err = read_trace(&bad).unwrap_err();
            assert!(err.to_string().contains(field), "{field}: got {err}");
            assert!(err.to_string().contains("out of range"), "{field}: got {err}");
            assert_eq!(err.line(), 2, "{field}: the offending record line is named");
        }
        // The largest representable id still round-trips.
        let mut boundary = record("a", 5, 4);
        boundary.method = MethodId(u32::MAX);
        boundary.block = BlockId(u32::MAX);
        let text = write_trace(&[boundary.clone()]).unwrap();
        assert_eq!(read_trace(&text).unwrap(), vec![boundary]);
    }

    #[test]
    fn rejects_shuffled_or_renamed_header_columns() {
        let good = write_trace(&[record("a", 5, 4)]).unwrap();
        // Swap two feature columns: same names, wrong order — the old
        // prefix-only magic check accepted this and permuted features.
        let shuffled = good.replacen("\tbranches\tcalls\t", "\tcalls\tbranches\t", 1);
        assert_ne!(shuffled, good);
        let err = read_trace(&shuffled).unwrap_err();
        assert_eq!(err.line(), 0, "header errors are line 0");
        assert!(err.to_string().contains("expected 'branches', found 'calls'"), "got: {err}");

        // Renamed column: the first mismatch is named with its position.
        let renamed = good.replacen("\tloads\t", "\tld\t", 1);
        let err = read_trace(&renamed).unwrap_err();
        assert!(err.to_string().contains("expected 'loads', found 'ld'"), "got: {err}");

        // A truncated header fails on the count.
        let truncated = good.replacen("\tfeature_work\n", "\n", 1);
        let err = read_trace(&truncated).unwrap_err();
        assert!(err.to_string().contains("header has"), "got: {err}");
    }

    #[test]
    fn rejects_non_finite_feature_values_on_read() {
        let good = write_trace(&[record("a", 5, 4)]).unwrap();
        // bbLen is 7.0 in the fixture; swap it for hostile values a bare
        // f64 parse would happily accept.
        for hostile in ["NaN", "inf", "-inf"] {
            let bad = good.replacen("\t7.0\t", &format!("\t{hostile}\t"), 1);
            assert_ne!(bad, good, "{hostile}: substitution must hit");
            let err = read_trace(&bad).unwrap_err();
            assert!(err.to_string().contains("non-finite feature bbLen"), "{hostile}: got {err}");
            assert_eq!(err.line(), 2, "{hostile}: the offending line is named");
        }
    }

    /// Regression (PR 5 review): a *finite* but out-of-range feature
    /// value used to sail past the finiteness check straight into
    /// `FeatureVector::from_values`, whose range assert aborted the
    /// process — a hostile file must surface as a named parse error,
    /// never a panic.
    #[test]
    fn rejects_out_of_range_feature_values_on_read() {
        let good = write_trace(&[record("a", 5, 4)]).unwrap();
        // The fixture's loads fraction is 1/3; a fraction above 1 (or
        // below 0) is a named error.
        for (hostile, what) in [("1.5", "[0,1]"), ("-0.25", "[0,1]")] {
            let bad = good.replacen("\t0.3333333333333333\t", &format!("\t{hostile}\t"), 1);
            assert_ne!(bad, good, "{hostile}: substitution must hit");
            let err = read_trace(&bad).unwrap_err();
            assert!(err.to_string().contains("feature loads is a fraction"), "{hostile}: got {err}");
            assert!(err.to_string().contains(what), "{hostile}: got {err}");
            assert_eq!(err.line(), 2);
        }
        // Counts (bbLen and the trace-shape features) reject negatives.
        let bad = good.replacen("\t7.0\t", "\t-7.0\t", 1);
        assert_ne!(bad, good);
        let err = read_trace(&bad).unwrap_err();
        assert!(err.to_string().contains("feature bbLen is a count"), "got {err}");
    }

    #[test]
    fn rejects_non_finite_feature_values_on_write() {
        // NaN and -inf cannot even be constructed through the validating
        // `FeatureVector::from_values` API; `bbLen = +inf` can (it is
        // only checked non-negative), so the writer must catch it before
        // it round-trips into a record that silently classifies NS.
        let mut r = record("photon", 5, 4);
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = f64::INFINITY;
        r.features = FeatureVector::from_values(v);
        let err = write_trace(&[record("ok", 5, 4), r]).expect_err("non-finite feature must be rejected");
        assert_eq!(err.benchmark(), "photon");
        assert!(err.to_string().contains("feature bbLen"), "got: {err}");
        assert!(err.to_string().contains("not finite"), "got: {err}");
        assert!(!err.to_string().contains("tab"), "wrong error kind: {err}");
    }

    #[test]
    fn rejects_wrong_column_count() {
        let mut text = write_trace(&[record("a", 5, 4)]).unwrap();
        text.push_str("rec\tonly\tthree\n");
        let err = read_trace(&text).unwrap_err();
        assert!(err.to_string().contains("columns"));
        assert_eq!(err.line(), 3, "header is line 1, record line 2, bad line 3");
    }

    #[test]
    fn rejects_malformed_numbers() {
        let good = write_trace(&[record("a", 5, 4)]).unwrap();
        let bad = good.replace("\t42\t", "\tforty-two\t");
        assert!(read_trace(&bad).is_err());
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let mut text = write_trace(&[record("a", 5, 4)]).unwrap();
        text.push('\n');
        assert_eq!(read_trace(&text).unwrap().len(), 1);
    }
}
