//! Threshold labeling of trace records (the noise-reduction trick).

use crate::TraceRecord;
use std::collections::BTreeMap;
use wts_features::FeatureKind;
use wts_ripper::Dataset;

/// Labeling configuration: the paper's threshold `t`, in percent.
///
/// A record is labeled `LS` (schedule) when the estimated time after list
/// scheduling is more than `t`% less than before; `NS` (don't schedule)
/// when scheduling is not better at all; and *no instance is produced*
/// when the benefit lies strictly between 0 and `t`% (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LabelConfig {
    /// Threshold in percent (the paper sweeps 0..=50 in steps of 5).
    pub threshold_percent: u32,
}

impl LabelConfig {
    /// A config with the given threshold.
    pub fn new(threshold_percent: u32) -> LabelConfig {
        LabelConfig { threshold_percent }
    }

    /// Labels one record: `Some(true)` = LS, `Some(false)` = NS, `None` =
    /// dropped (benefit within `(0, t]`%).
    pub fn label(&self, rec: &TraceRecord) -> Option<bool> {
        let imp = rec.est_improvement();
        if imp <= 0.0 {
            return Some(false);
        }
        let t = self.threshold_percent as f64 / 100.0;
        if imp > t {
            Some(true)
        } else {
            None
        }
    }
}

/// Builds a learner dataset from trace records at threshold `t`,
/// grouping instances by benchmark (for leave-one-benchmark-out CV).
///
/// Returns the dataset and the `benchmark name -> group id` mapping.
/// Group ids are assigned in *first-seen trace order*, not in the
/// iteration order of the returned map: the `BTreeMap` iterates
/// alphabetically by name, so for a corpus traced as `jess, compress`
/// the map yields `compress -> 1` before `jess -> 0`. Consumers that
/// need the numeric order (fold sharding, group-indexed tables) must
/// read the ids, not the map position.
pub fn build_dataset(traces: &[TraceRecord], config: LabelConfig) -> (Dataset, BTreeMap<String, u32>) {
    let mut groups: BTreeMap<String, u32> = BTreeMap::new();
    for r in traces {
        let next = u32::try_from(groups.len()).expect("benchmark counts fit u32");
        groups.entry(r.benchmark.clone()).or_insert(next);
    }
    let attr_names: Vec<String> = FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect();
    let mut data = Dataset::new(attr_names, "list", "orig");
    for r in traces {
        if let Some(positive) = config.label(r) {
            data.push(r.features.as_slice().to_vec(), positive, groups[&r.benchmark]);
        }
    }
    (data, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_features::FeatureVector;
    use wts_ir::{BlockId, MethodId};

    fn record(bench: &str, unsched: u64, sched: u64) -> TraceRecord {
        TraceRecord {
            benchmark: bench.to_string(),
            method: MethodId(0),
            block: BlockId(0),
            exec_count: 1,
            features: FeatureVector::default(),
            est_unsched: unsched,
            est_sched: sched,
            hw_unsched: unsched,
            hw_sched: sched,
            sched_ns: 100,
            feature_ns: 10,
            sched_work: 10,
            feature_work: 2,
        }
    }

    #[test]
    fn zero_threshold_labels_everything() {
        let c = LabelConfig::new(0);
        assert_eq!(c.label(&record("a", 100, 99)), Some(true), "any improvement is LS");
        assert_eq!(c.label(&record("a", 100, 100)), Some(false), "no improvement is NS");
        assert_eq!(c.label(&record("a", 100, 120)), Some(false), "degradation is NS");
    }

    #[test]
    fn positive_threshold_drops_marginal_wins() {
        let c = LabelConfig::new(20);
        assert_eq!(c.label(&record("a", 100, 70)), Some(true), "30% > 20%");
        assert_eq!(c.label(&record("a", 100, 85)), None, "15% benefit is dropped");
        assert_eq!(c.label(&record("a", 100, 80)), None, "exactly t% is dropped");
        assert_eq!(c.label(&record("a", 100, 100)), Some(false));
    }

    #[test]
    fn empty_blocks_are_ns() {
        let c = LabelConfig::new(0);
        assert_eq!(c.label(&record("a", 0, 0)), Some(false));
    }

    #[test]
    fn dataset_grouping_is_stable() {
        let traces = vec![record("jess", 10, 8), record("compress", 10, 10), record("jess", 10, 10)];
        let (data, groups) = build_dataset(&traces, LabelConfig::new(0));
        assert_eq!(data.len(), 3);
        assert_eq!(groups.len(), 2);
        // First-seen order: jess=0, compress=1.
        assert_eq!(groups["jess"], 0);
        assert_eq!(groups["compress"], 1);
        // The map iterates *alphabetically*, which is NOT the id order:
        // ids follow first-seen trace order. Pin the distinction so the
        // doc contract stays honest.
        let iteration: Vec<(&str, u32)> = groups.iter().map(|(n, &g)| (n.as_str(), g)).collect();
        assert_eq!(iteration, vec![("compress", 1), ("jess", 0)]);
        assert_eq!(data.instances()[0].group, 0);
        assert_eq!(data.instances()[1].group, 1);
        assert_eq!(data.pos_label(), "list");
        assert_eq!(data.neg_label(), "orig");
    }

    #[test]
    fn higher_threshold_shrinks_ls_not_ns() {
        let traces: Vec<TraceRecord> = (1..=10)
            .map(|i| record("b", 100, 100 - i * 5)) // improvements 5%..50%
            .chain((0..5).map(|_| record("b", 100, 100)))
            .collect();
        let (d0, _) = build_dataset(&traces, LabelConfig::new(0));
        let (d20, _) = build_dataset(&traces, LabelConfig::new(20));
        assert_eq!(d0.positives(), 10);
        assert_eq!(d0.negatives(), 5);
        assert_eq!(d20.positives(), 6, "only improvements > 20% stay LS");
        assert_eq!(d20.negatives(), 5, "NS count is constant, as in Table 5");
    }

    #[test]
    fn attr_names_are_the_full_feature_vocabulary() {
        let (data, _) = build_dataset(&[record("x", 10, 9)], LabelConfig::new(0));
        assert_eq!(data.attr_count(), 17, "Table 1 plus the four trace-shape features");
        assert_eq!(data.attr_names()[0], "bbLen");
        assert_eq!(data.attr_names()[16], "traceLen");
    }
}
