//! Shared deterministic test corpora.
//!
//! Hidden from the public API docs: these exist so the crate's unit
//! tests and the workspace's integration/property suites exercise the
//! *same* corpus instead of hand-synchronized copies.

use wts_ir::{BasicBlock, Inst, MemRef, MemSpace, Method, Opcode, Program, Reg};

/// A small three-benchmark suite with learnable structure: alternating
/// blocks either carry load-use stalls worth scheduling (twelve
/// instructions, longer than the 7410's out-of-order window) or are
/// single adds with nothing to reorder. RIPPER reliably separates the
/// two from the Table 1 features, so pipelines trained on it produce
/// non-trivial rule sets.
pub fn learnable_suite(methods: u32) -> Vec<Program> {
    ["alpha", "beta", "gamma"]
        .iter()
        .enumerate()
        .map(|(pi, name)| {
            let mut p = Program::new(*name);
            for mi in 0..methods {
                let mut m = Method::new(mi, format!("m{mi}"));
                for bi in 0..3u32 {
                    let mut b = BasicBlock::new(bi);
                    if (mi + bi) % 2 == 0 {
                        for k in 0..6u32 {
                            b.push(
                                Inst::new(Opcode::Lwz)
                                    .def(Reg::gpr(10 + k as u16))
                                    .use_(Reg::gpr(3))
                                    .mem(MemRef::slot(MemSpace::Heap, k + bi)),
                            );
                            b.push(
                                Inst::new(Opcode::Add)
                                    .def(Reg::gpr(20 + k as u16))
                                    .use_(Reg::gpr(10 + k as u16))
                                    .use_(Reg::gpr(10 + k as u16)),
                            );
                        }
                    } else {
                        b.push(Inst::new(Opcode::Add).def(Reg::gpr(4)).use_(Reg::gpr(5)).use_(Reg::gpr(6)));
                    }
                    b.set_exec_count((pi as u64 + 1) * (bi as u64 + 1));
                    m.push_block(b);
                }
                p.push_method(m);
            }
            p
        })
        .collect()
}
