//! Shared deterministic test corpora.
//!
//! Hidden from the public API docs: these exist so the crate's unit
//! tests and the workspace's integration/property suites exercise the
//! *same* corpus instead of hand-synchronized copies.

use wts_ir::{BasicBlock, Inst, MemRef, MemSpace, Method, Opcode, Program, Reg};

/// A three-benchmark suite whose methods contain *mergeable* superblock
/// chains: three equal-weight blocks ending in conditional branches
/// (formation at any ratio merges them into one width-3 trace) plus one
/// cold single-instruction block that always stays its own trace.
/// Alternate methods carry load-use stalls worth scheduling versus
/// nothing to reorder, so superblock-scope pipelines trained on it
/// learn non-trivial "schedule this trace?" rules.
pub fn mergeable_suite(methods: u32) -> Vec<Program> {
    ["alpha", "beta", "gamma"]
        .iter()
        .enumerate()
        .map(|(pi, name)| {
            let mut p = Program::new(*name);
            for mi in 0..methods {
                let hot = mi % 2 == 0;
                let exec = 10 * (pi as u64 + 1) + mi as u64;
                let mut m = Method::new(mi, format!("m{mi}"));
                for bi in 0..3u32 {
                    let mut b = BasicBlock::new(bi);
                    if hot {
                        for k in 0..4u32 {
                            let kr = u16::try_from(k).expect("unroll counts fit u16");
                            b.push(
                                Inst::new(Opcode::Lwz)
                                    .def(Reg::gpr(10 + kr))
                                    .use_(Reg::gpr(3))
                                    .mem(MemRef::slot(MemSpace::Heap, 4 * bi + k)),
                            );
                            b.push(
                                Inst::new(Opcode::Add)
                                    .def(Reg::gpr(20 + kr))
                                    .use_(Reg::gpr(10 + kr))
                                    .use_(Reg::gpr(10 + kr)),
                            );
                        }
                    } else {
                        b.push(Inst::new(Opcode::Add).def(Reg::gpr(4)).use_(Reg::gpr(5)).use_(Reg::gpr(6)));
                    }
                    if bi < 2 {
                        b.push(Inst::new(Opcode::Bc).use_(Reg::cr(0)));
                    } else {
                        b.push(Inst::new(Opcode::Blr).use_(Reg::lr()));
                    }
                    b.set_exec_count(exec);
                    m.push_block(b);
                }
                let mut cold = BasicBlock::new(3);
                cold.push(Inst::new(Opcode::Add).def(Reg::gpr(7)).use_(Reg::gpr(8)).use_(Reg::gpr(9)));
                cold.set_exec_count(1);
                m.push_block(cold);
                p.push_method(m);
            }
            p
        })
        .collect()
}

/// A small three-benchmark suite with learnable structure: alternating
/// blocks either carry load-use stalls worth scheduling (twelve
/// instructions, longer than the 7410's out-of-order window) or are
/// single adds with nothing to reorder. RIPPER reliably separates the
/// two from the Table 1 features, so pipelines trained on it produce
/// non-trivial rule sets.
pub fn learnable_suite(methods: u32) -> Vec<Program> {
    ["alpha", "beta", "gamma"]
        .iter()
        .enumerate()
        .map(|(pi, name)| {
            let mut p = Program::new(*name);
            for mi in 0..methods {
                let mut m = Method::new(mi, format!("m{mi}"));
                for bi in 0..3u32 {
                    let mut b = BasicBlock::new(bi);
                    if (mi + bi) % 2 == 0 {
                        for k in 0..6u32 {
                            let kr = u16::try_from(k).expect("unroll counts fit u16");
                            b.push(
                                Inst::new(Opcode::Lwz)
                                    .def(Reg::gpr(10 + kr))
                                    .use_(Reg::gpr(3))
                                    .mem(MemRef::slot(MemSpace::Heap, k + bi)),
                            );
                            b.push(
                                Inst::new(Opcode::Add)
                                    .def(Reg::gpr(20 + kr))
                                    .use_(Reg::gpr(10 + kr))
                                    .use_(Reg::gpr(10 + kr)),
                            );
                        }
                    } else {
                        b.push(Inst::new(Opcode::Add).def(Reg::gpr(4)).use_(Reg::gpr(5)).use_(Reg::gpr(6)));
                    }
                    b.set_exec_count((pi as u64 + 1) * (bi as u64 + 1));
                    m.push_block(b);
                }
                p.push_method(m);
            }
            p
        })
        .collect()
}
