//! The cross-machine experiment matrix: one full trace→label→train→
//! evaluate [`Experiment`] per registered machine model, sharded as a
//! single machines×methods work list.
//!
//! The paper argues induced filters are cheap to re-derive when the
//! target machine changes (§4); checking that claim needs the *same*
//! corpus pushed through the pipeline on several machine descriptions
//! and the induced rule sets compared side by side. [`ExperimentMatrix`]
//! owns that sweep:
//!
//! * **Sharding.** The unit of work is one `(machine, method)` pair —
//!   the whole cross product is flattened into one task list and pushed
//!   through [`shard_map`](crate::parallel::shard_map), so a 6-machine
//!   sweep saturates the cores even when one machine's corpus alone
//!   would not. Pieces are reassembled positionally, which keeps the
//!   sharded output bit-identical to running each machine serially
//!   (under [`TimingMode::Deterministic`](crate::TimingMode)).
//! * **Per-machine runs.** Each machine gets its own
//!   [`ExperimentRun`], so every artifact the single-machine pipeline
//!   offers (LOOCV filters, factory rule sets, threshold sweeps) is
//!   available per machine.
//! * **Transfer.** [`MatrixRun::transfer_errors`] trains a factory
//!   filter on machine A's labels and scores it against machine B's —
//!   the "does the rule set transfer?" table of the reproduction.
//!
//! # Examples
//!
//! ```
//! use wts_core::{ExperimentMatrix, TimingMode, Experiment};
//! use wts_ir::{BasicBlock, Inst, MemRef, MemSpace, Method, Opcode, Program, Reg};
//! use wts_machine::MachineConfig;
//!
//! let mut p = Program::new("demo");
//! let mut m = Method::new(0, "m0");
//! let mut b = BasicBlock::new(0);
//! b.push(Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9))
//!     .mem(MemRef::slot(MemSpace::Heap, 0)));
//! b.push(Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)));
//! b.push(Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(8)).use_(Reg::gpr(8)));
//! m.push_block(b);
//! p.push_method(m);
//!
//! let machines = vec![MachineConfig::ppc7410(), MachineConfig::embedded()];
//! let matrix = ExperimentMatrix::new(machines).run(&[p]);
//! assert_eq!(matrix.machine_names(), ["ppc7410", "embedded"]);
//! assert_eq!(matrix.run_for("embedded").all_traces().len(), 1);
//! ```

use crate::eval::{classification_matrix, oracle_times};
use crate::experiment::{Experiment, ExperimentRun};
use crate::label::LabelConfig;
use crate::learner::LearnerKind;
use crate::policy::BenefitModel;
use crate::trace::{collect_method_trace, TraceRecord};
use crate::{EvalTimes, LearnedFilter};
use wts_ir::Program;
use wts_machine::MachineConfig;

/// Configuration of a cross-machine sweep: one pipeline template (policy,
/// learner, timing, estimators) applied to every machine in the list.
#[derive(Debug, Clone)]
pub struct ExperimentMatrix {
    template: Experiment,
    machines: Vec<MachineConfig>,
    threads: usize,
}

impl ExperimentMatrix {
    /// A matrix over the given machines with the paper's default pipeline
    /// settings and one worker per core.
    ///
    /// # Panics
    ///
    /// Panics if `machines` is empty.
    pub fn new(machines: Vec<MachineConfig>) -> ExperimentMatrix {
        assert!(!machines.is_empty(), "matrix needs at least one machine");
        let template = Experiment::new(machines[0].clone());
        ExperimentMatrix { template, machines, threads: 0 }
    }

    /// A matrix over every machine in the
    /// [`wts_machine::registry`](fn@wts_machine::registry) — the
    /// standard cross-machine sweep.
    pub fn over_registry() -> ExperimentMatrix {
        ExperimentMatrix::new(wts_machine::registry())
    }

    /// Replaces the pipeline template (policy, learner settings, timing,
    /// estimators, scope). The template's own machine is ignored — it
    /// is restamped per matrix machine.
    pub fn with_template(mut self, template: Experiment) -> ExperimentMatrix {
        self.template = template;
        self
    }

    /// Sets the scheduling scope on the template: the whole sweep then
    /// traces, labels, trains and evaluates per basic block or per
    /// formed superblock trace on every registry machine. This is the
    /// scenario axis of the matrix — scopes multiply with
    /// machines×learners×thresholds exactly as the machine registry
    /// multiplied the hardware axis.
    pub fn with_scope(mut self, scope: wts_ir::ScopeKind) -> ExperimentMatrix {
        self.template = self.template.with_scope(scope);
        self
    }

    /// The scheduling scope the sweep runs at.
    pub fn scope(&self) -> wts_ir::ScopeKind {
        self.template.scope()
    }

    /// Worker threads for the machines×methods sharding (`0` = one per
    /// core, `1` = fully serial).
    pub fn with_threads(mut self, threads: usize) -> ExperimentMatrix {
        self.threads = threads;
        self
    }

    /// The machines this matrix sweeps, in run order.
    pub fn machines(&self) -> &[MachineConfig] {
        &self.machines
    }

    /// Runs the full pipeline's trace stage for every machine over the
    /// same programs, sharding the flattened machines×methods work list
    /// across scoped worker threads, and packages one [`ExperimentRun`]
    /// per machine. Label/train/evaluate stages stay lazy inside each
    /// run, exactly as in the single-machine pipeline.
    pub fn run(&self, programs: &[Program]) -> MatrixRun {
        let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
        for mi in 0..self.machines.len() {
            for (pi, p) in programs.iter().enumerate() {
                for ki in 0..p.methods().len() {
                    tasks.push((mi, pi, ki));
                }
            }
        }
        // Workers trace one method serially; all parallelism comes from
        // sharding the outer machines×methods product.
        let mut options = self.template.trace_options();
        options.threads = 1;
        let shards = crate::parallel::shard_map(&tasks, self.threads, |slice| {
            slice
                .iter()
                .map(|&(mi, pi, ki)| {
                    let p = &programs[pi];
                    collect_method_trace(p.name(), &p.methods()[ki], &self.machines[mi], &options)
                })
                .collect::<Vec<_>>()
        });
        // Tasks were emitted machine-major, then program, then method;
        // consuming the flattened pieces in the same order reassembles
        // each machine's per-program traces positionally. Every run
        // shares one Rc'd corpus rather than deep-copying it per machine,
        // and one FilterStore — per-machine keys cannot collide because
        // every run keys by its own machine name.
        let shared: std::rc::Rc<Vec<Program>> = std::rc::Rc::new(programs.to_vec());
        let store = crate::FilterStore::shared();
        let mut pieces = shards.into_iter().flatten();
        let runs: Vec<ExperimentRun> = self
            .machines
            .iter()
            .map(|machine| {
                let traces: Vec<Vec<TraceRecord>> = programs
                    .iter()
                    .map(|p| {
                        let mut t = Vec::with_capacity(p.block_count());
                        for _ in 0..p.methods().len() {
                            t.extend(pieces.next().expect("one trace piece per task"));
                        }
                        t
                    })
                    .collect();
                self.template.clone().with_machine(machine.clone()).run_precomputed_in(
                    std::sync::Arc::clone(&store),
                    shared.clone(),
                    traces,
                )
            })
            .collect();
        MatrixRun { machines: self.machines.clone(), runs, scope: self.template.scope(), store }
    }
}

/// The completed sweep: one [`ExperimentRun`] per machine, plus the
/// cross-machine comparisons built on top of them. All per-machine
/// filters live in one shared [`FilterStore`](crate::FilterStore),
/// keyed by machine name.
pub struct MatrixRun {
    machines: Vec<MachineConfig>,
    runs: Vec<ExperimentRun>,
    scope: wts_ir::ScopeKind,
    store: std::sync::Arc<crate::FilterStore>,
}

impl MatrixRun {
    /// The machines, in run order.
    pub fn machines(&self) -> &[MachineConfig] {
        &self.machines
    }

    /// The store every per-machine run publishes its filters into —
    /// the deployment surface a serving daemon or JIT session shares
    /// with the sweep.
    pub fn store(&self) -> &std::sync::Arc<crate::FilterStore> {
        &self.store
    }

    /// The scheduling scope every run in this sweep was traced at.
    pub fn scope(&self) -> wts_ir::ScopeKind {
        self.scope
    }

    /// Machine names, in run order.
    pub fn machine_names(&self) -> Vec<&str> {
        self.machines.iter().map(|m| m.name()).collect()
    }

    /// Per-machine pipeline runs, parallel to [`machines`](MatrixRun::machines).
    pub fn runs(&self) -> &[ExperimentRun] {
        &self.runs
    }

    /// One machine's pipeline run, by machine name.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is not part of this matrix.
    pub fn run_for(&self, machine: &str) -> &ExperimentRun {
        let i = self
            .machines
            .iter()
            .position(|m| m.name() == machine)
            .unwrap_or_else(|| panic!("no machine {machine} in this matrix"));
        &self.runs[i]
    }

    /// The per-machine induced rule sets: one factory filter (trained on
    /// the whole corpus, §3's "at the factory") per machine at threshold
    /// `t`, paired with the machine name.
    pub fn factory_filters(&self, t: u32) -> Vec<(String, LearnedFilter)> {
        self.machines.iter().zip(&self.runs).map(|(m, run)| (m.name().to_string(), run.factory_filter(t))).collect()
    }

    /// The transfer table: cell `[i][j]` is the classification error
    /// (percent) of the filter trained on machine `i`'s labels when
    /// scored against machine `j`'s labels, both at threshold `t`. The
    /// diagonal is self-error; a row whose off-diagonal cells stay close
    /// to the diagonal transfers well.
    pub fn transfer_errors(&self, t: u32) -> Vec<Vec<f64>> {
        let label = LabelConfig::new(t);
        let filters: Vec<LearnedFilter> = self.runs.iter().map(|run| run.factory_filter(t)).collect();
        filters
            .iter()
            .map(|filter| {
                self.runs
                    .iter()
                    .map(|eval| classification_matrix(eval.all_traces(), filter, label).error_percent())
                    .collect()
            })
            .collect()
    }

    /// The filter-cost table's rows: for each machine, the aggregate
    /// [`EvalTimes`](crate::EvalTimes) of its threshold-`t` LOOCV
    /// filters over the whole corpus — honest per-condition filter work
    /// and demand-masked extraction work against the machine's full
    /// always-schedule cost
    /// ([`overhead_fraction`](crate::EvalTimes::overhead_fraction) is
    /// the headline number; the paper's premise is that it stays near
    /// zero on every target).
    pub fn filter_cost(&self, t: u32) -> Vec<(String, crate::EvalTimes)> {
        self.machines.iter().zip(&self.runs).map(|(m, run)| (m.name().to_string(), run.sched_time_total(t))).collect()
    }

    /// Threshold sweep, side by side: for each machine, the LS instance
    /// count at every threshold in `thresholds` (Table 5, per machine).
    pub fn ls_sweep(&self, thresholds: &[u32]) -> Vec<(String, Vec<usize>)> {
        self.machines
            .iter()
            .zip(&self.runs)
            .map(|(m, run)| (m.name().to_string(), thresholds.iter().map(|&t| run.ls_instances(t)).collect()))
            .collect()
    }

    /// The learner portfolio: for each machine, every backend's LOOCV
    /// classification error, predicted/app time ratios and honest
    /// filter + extraction overhead at threshold `t`, plus the
    /// portfolio-best pick — the *cheapest* backend (by its own
    /// filter + extraction work) whose error stays within
    /// `tolerance_percent` points of the machine's best error. That is
    /// the Streeter/Chmiela-style selection rule: accuracy buys nothing
    /// once errors are indistinguishable, so spend as little of the
    /// compile-time budget on the selector as possible.
    ///
    /// The traced corpus is shared across backends — only the training
    /// stage re-runs per learner.
    ///
    /// # Panics
    ///
    /// Panics if `learners` is empty.
    pub fn portfolio(&self, t: u32, learners: &[LearnerKind], tolerance_percent: f64) -> Vec<MachinePortfolio> {
        assert!(!learners.is_empty(), "portfolio needs at least one learner");
        self.machines
            .iter()
            .zip(&self.runs)
            .map(|(m, run)| {
                let entries: Vec<PortfolioEntry> = learners.iter().map(|l| run.learner_eval(t, l)).collect();
                let best_error = entries.iter().map(|e| e.error_percent).fold(f64::INFINITY, f64::min);
                let best = entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.error_percent <= best_error + tolerance_percent)
                    .min_by_key(|(_, e)| e.overhead_work())
                    .map(|(i, _)| i)
                    .expect("at least one entry is within tolerance of the best");
                MachinePortfolio { machine: m.name().to_string(), entries, best }
            })
            .collect()
    }
}

/// The calibration table: how each decision policy spends and recovers
/// cycles on each machine, at one labeling threshold and operating
/// point.
impl MatrixRun {
    /// One [`CalibrationRow`] per machine at threshold `t` and operating
    /// point `cycles_per_work`:
    ///
    /// * **baseline** — the threshold-`t` LOOCV filters under the
    ///   paper's hard policy (schedule iff a rule fired);
    /// * **expected_benefit** — the same filters, with the schedule/skip
    ///   call made by a per-fold
    ///   [`BenefitModel`] calibrated on the *other* benchmarks' traces;
    /// * **oracle** — the non-deployable upper bound that schedules
    ///   exactly the units whose measured benefit beats their scheduling
    ///   spend, charging no filter or extraction work.
    ///
    /// The headline comparison is
    /// [`net_cycles`](crate::EvalTimes::net_cycles) at the same
    /// operating point: estimator cycles recovered minus compile-time
    /// work priced in application cycles.
    pub fn calibration(&self, t: u32, cycles_per_work: f64) -> Vec<CalibrationRow> {
        self.machines
            .iter()
            .zip(&self.runs)
            .map(|(m, run)| CalibrationRow {
                machine: m.name().to_string(),
                model: BenefitModel::calibrate(run.all_traces(), cycles_per_work),
                baseline: run.sched_time_total(t),
                expected_benefit: run.sched_time_expected_benefit(t, cycles_per_work),
                oracle: oracle_times(run.all_traces(), cycles_per_work),
            })
            .collect()
    }
}

/// One machine's row of the calibration table: the same LOOCV filters
/// evaluated under the hard policy and the expected-benefit policy,
/// bracketed by the per-unit oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationRow {
    /// Machine name.
    pub machine: String,
    /// The whole-corpus savings rate at the chosen operating point —
    /// the display model; each fold's decisions use a leave-one-out
    /// calibration of the same shape.
    pub model: BenefitModel,
    /// The hard-threshold policy: the legacy boolean seam, bit-identical
    /// to the pre-score engine.
    pub baseline: EvalTimes,
    /// The expected-benefit policy with per-fold LOOCV-calibrated
    /// models.
    pub expected_benefit: EvalTimes,
    /// Oracle-best per unit: schedules exactly the units whose measured
    /// benefit beats their scheduling spend, with no filter or
    /// extraction charged. Non-deployable; brackets what any policy
    /// could recover.
    pub oracle: EvalTimes,
}

/// One learner's row of the portfolio table on one machine: aggregate
/// LOOCV classification error, geometric-mean time ratios, model size
/// and the honest overhead accounting of its compiled filters.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioEntry {
    /// Backend name (`ripper`, `stump`, `tree(d=4)`, …).
    pub learner: String,
    /// Aggregate LOOCV classification error over every benchmark's
    /// held-out fold, percent.
    pub error_percent: f64,
    /// Geometric-mean predicted (cheap-estimator) time, percent of
    /// never-scheduling (Table 4 convention: 100 = no change).
    pub predicted_percent: f64,
    /// Geometric-mean measured application-time ratio (fraction of
    /// never-scheduling).
    pub app_ratio: f64,
    /// Total lowered conditions across the backend's LOOCV filters
    /// (model size).
    pub conditions: usize,
    /// Accumulated [`EvalTimes`] of the backend's filters over the whole
    /// corpus: per-condition filter work, demand-masked extraction work,
    /// and the scheduling work they did or did not avoid.
    pub times: EvalTimes,
}

impl PortfolioEntry {
    /// The backend's own spend: filter conditions evaluated plus
    /// demand-masked extraction work — the quantity the portfolio-best
    /// rule minimizes.
    pub fn overhead_work(&self) -> u64 {
        self.times.filter_work + self.times.feature_work
    }
}

/// One machine's portfolio: every backend's row plus the index of the
/// portfolio-best pick.
#[derive(Debug, Clone, PartialEq)]
pub struct MachinePortfolio {
    /// Machine name.
    pub machine: String,
    /// One row per learner, in the order given to
    /// [`MatrixRun::portfolio`].
    pub entries: Vec<PortfolioEntry>,
    /// Index into `entries` of the cheapest backend within the error
    /// tolerance.
    pub best: usize,
}

impl MachinePortfolio {
    /// The portfolio-best row.
    pub fn best_entry(&self) -> &PortfolioEntry {
        &self.entries[self.best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimingMode;

    /// The shared learnable three-benchmark suite, at five methods per
    /// program.
    fn suite() -> Vec<Program> {
        crate::testutil::learnable_suite(5)
    }

    fn deterministic() -> ExperimentMatrix {
        ExperimentMatrix::over_registry().with_template(
            Experiment::new(wts_machine::MachineConfig::ppc7410()).with_timing(TimingMode::Deterministic),
        )
    }

    #[test]
    fn one_run_per_registry_machine() {
        let m = deterministic().run(&suite());
        assert_eq!(m.runs().len(), wts_machine::registry().len());
        assert_eq!(m.machine_names(), wts_machine::registry_names());
        for run in m.runs() {
            assert_eq!(run.names(), ["alpha", "beta", "gamma"]);
            assert_eq!(run.all_traces().len(), 3 * 5 * 3);
        }
    }

    #[test]
    fn sharded_matrix_is_bit_identical_to_serial_per_machine_runs() {
        let programs = suite();
        let sharded = deterministic().with_threads(7).run(&programs);
        for machine in wts_machine::registry() {
            let serial = Experiment::new(machine.clone())
                .with_threads(1)
                .with_timing(TimingMode::Deterministic)
                .run(programs.clone());
            assert_eq!(
                serial.all_traces(),
                sharded.run_for(machine.name()).all_traces(),
                "{}: matrix sharding must not change the trace",
                machine.name()
            );
        }
    }

    #[test]
    fn machines_disagree_on_cycle_counts_but_share_features() {
        let m = deterministic().run(&suite());
        let ppc = m.run_for("ppc7410").all_traces();
        let emb = m.run_for("embedded").all_traces();
        assert!(
            ppc.iter().zip(emb).any(|(a, b)| a.est_unsched != b.est_unsched),
            "different latency tables must produce different estimates"
        );
        for (a, b) in ppc.iter().zip(m.run_for("embedded").all_traces()) {
            assert_eq!(a.features, b.features, "features are machine-independent");
        }
    }

    #[test]
    fn factory_filters_and_sweep_cover_every_machine() {
        let m = deterministic().run(&suite());
        let filters = m.factory_filters(0);
        assert_eq!(filters.len(), m.machines().len());
        for ((name, f), expect) in filters.iter().zip(m.machine_names()) {
            assert_eq!(name, expect);
            assert_eq!(f.threshold_percent(), 0);
        }
        let sweep = m.ls_sweep(&[0, 25, 50]);
        for (_, counts) in &sweep {
            assert_eq!(counts.len(), 3);
            assert!(counts[0] >= counts[1] && counts[1] >= counts[2], "LS shrinks with t: {counts:?}");
        }
    }

    #[test]
    fn per_machine_runs_share_one_store_keyed_by_machine() {
        let m = deterministic().run(&suite());
        for run in m.runs() {
            assert!(std::sync::Arc::ptr_eq(run.store(), m.store()), "every run publishes into the matrix store");
        }
        let _ = m.factory_filters(0);
        let keys = m.store().keys();
        assert_eq!(keys.len(), m.machines().len(), "one deployed slot per machine");
        let mut machines: Vec<&str> = keys.iter().map(|k| k.machine()).collect();
        machines.sort_unstable();
        let mut expect = m.machine_names();
        expect.sort_unstable();
        assert_eq!(machines, expect);
    }

    #[test]
    fn transfer_table_is_square_with_sane_errors() {
        let m = deterministic().run(&suite());
        let n = m.machines().len();
        let errors = m.transfer_errors(0);
        assert_eq!(errors.len(), n);
        for row in &errors {
            assert_eq!(row.len(), n);
            for &e in row {
                assert!((0.0..=100.0).contains(&e), "error {e}% out of range");
            }
        }
    }

    #[test]
    fn filter_cost_reports_small_positive_overhead_per_machine() {
        let m = deterministic().run(&suite());
        let costs = m.filter_cost(0);
        assert_eq!(costs.len(), m.machines().len());
        for ((name, times), expect) in costs.iter().zip(m.machine_names()) {
            assert_eq!(name, expect);
            assert_eq!(times.total_blocks, 3 * 5 * 3, "all benchmarks aggregated");
            assert!(times.always_work > 0);
            let overhead = times.overhead_fraction();
            assert!(
                (0.0..0.5).contains(&overhead),
                "{name}: filter overhead {overhead} should be a small fraction of scheduling work"
            );
        }
    }

    #[test]
    fn portfolio_covers_every_machine_and_learner() {
        let m = deterministic().run(&suite());
        let learners = LearnerKind::portfolio();
        let portfolio = m.portfolio(0, &learners, 2.0);
        assert_eq!(portfolio.len(), m.machines().len());
        for (mp, expect) in portfolio.iter().zip(m.machine_names()) {
            assert_eq!(mp.machine, expect);
            assert_eq!(mp.entries.len(), learners.len());
            assert_eq!(mp.entries[0].learner, "ripper");
            let best_error = mp.entries.iter().map(|e| e.error_percent).fold(f64::INFINITY, f64::min);
            for e in &mp.entries {
                assert!((0.0..=100.0).contains(&e.error_percent), "{}: error {}", e.learner, e.error_percent);
                assert!(e.predicted_percent > 0.0 && e.predicted_percent <= 101.0, "{}", e.learner);
                assert!(e.app_ratio > 0.0 && e.app_ratio <= 1.0 + 1e-9, "{}", e.learner);
                assert!(e.times.total_blocks > 0);
            }
            // The pick is within tolerance of the best error and no
            // eligible entry is cheaper.
            let best = mp.best_entry();
            assert!(best.error_percent <= best_error + 2.0, "{}: best outside tolerance", mp.machine);
            for e in &mp.entries {
                if e.error_percent <= best_error + 2.0 {
                    assert!(best.overhead_work() <= e.overhead_work(), "{}: {} is cheaper", mp.machine, e.learner);
                }
            }
        }
    }

    #[test]
    fn calibration_brackets_every_policy_with_the_oracle() {
        let m = deterministic().run(&suite());
        let c = 1.0;
        let rows = m.calibration(0, c);
        assert_eq!(rows.len(), m.machines().len());
        for (row, expect) in rows.iter().zip(m.machine_names()) {
            assert_eq!(row.machine, expect);
            assert_eq!(row.model.cycles_per_work, c);
            assert!(row.model.saved_per_inst >= 0.0);
            for times in [&row.baseline, &row.expected_benefit, &row.oracle] {
                assert_eq!(times.total_blocks, 3 * 5 * 3, "{}: all benchmarks aggregated", row.machine);
            }
            assert_eq!(row.oracle.filter_work + row.oracle.feature_work, 0, "the oracle runs no filter");
            // The oracle sees the true per-unit channels; no deployable
            // policy over the same traces can net more.
            let bound = row.oracle.net_cycles(c);
            assert!(row.baseline.net_cycles(c) <= bound + 1e-9, "{}: baseline beats the oracle", row.machine);
            assert!(row.expected_benefit.net_cycles(c) <= bound + 1e-9, "{}: eb beats the oracle", row.machine);
        }
        // The point of the policy layer: cost-sensitivity must pay off
        // somewhere in the registry.
        assert!(
            rows.iter().any(|r| r.expected_benefit.net_cycles(c) >= r.baseline.net_cycles(c)),
            "expected-benefit never reaches the fixed-threshold baseline on any machine"
        );
    }

    #[test]
    fn calibration_baseline_matches_the_filter_cost_table() {
        let m = deterministic().run(&suite());
        let rows = m.calibration(0, 2.0);
        for ((name, cost), row) in m.filter_cost(0).iter().zip(&rows) {
            assert_eq!(name, &row.machine);
            // Every deterministic channel agrees (the ns channels are
            // wall-clock and excluded).
            let b = &row.baseline;
            assert_eq!(
                (cost.filtered_work, cost.always_work, cost.filter_work, cost.feature_work),
                (b.filtered_work, b.always_work, b.filter_work, b.feature_work),
                "{name}: the hard-policy row is the legacy aggregate"
            );
            assert_eq!(
                (cost.scheduled_blocks, cost.total_blocks, cost.benefit_cycles),
                (b.scheduled_blocks, b.total_blocks, b.benefit_cycles)
            );
        }
    }

    #[test]
    fn portfolio_best_prefers_cheap_models_when_errors_tie() {
        let m = deterministic().run(&suite());
        // With an absurd tolerance everything is eligible, so the pick
        // must be the globally cheapest backend.
        let portfolio = m.portfolio(0, &LearnerKind::portfolio(), 100.0);
        for mp in &portfolio {
            let min_work = mp.entries.iter().map(PortfolioEntry::overhead_work).min().unwrap();
            assert_eq!(mp.best_entry().overhead_work(), min_work, "{}", mp.machine);
        }
    }

    #[test]
    #[should_panic(expected = "at least one learner")]
    fn empty_portfolio_rejected() {
        deterministic().run(&suite()).portfolio(0, &[], 1.0);
    }

    #[test]
    #[should_panic(expected = "no machine nope")]
    fn unknown_machine_panics() {
        deterministic().run(&suite()).run_for("nope");
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_machine_list_rejected() {
        ExperimentMatrix::new(Vec::new());
    }
}
