//! Evaluation of filters along the paper's three axes: classification
//! accuracy, scheduling (compile) time and application running time.
//!
//! Every function compiles the filter once ([`Filter::compile`]) and
//! classifies through the [`CompiledFilter`](crate::CompiledFilter)
//! engine — decisions are bit-identical to the interpreted path, and the
//! work accounting is honest: per-condition (short-circuit aware) filter
//! cost plus demand-masked extraction cost, instead of flat constants.

use crate::policy::{DecisionPolicy, UnitEconomics};
use crate::{Filter, LabelConfig, TraceRecord};
use std::time::Instant;
use wts_ripper::ConfusionMatrix;

/// Run-time classification counts (Table 6): how many blocks the filter
/// sends to the scheduler (`ls`) versus skips (`ns`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounts {
    /// Blocks predicted "schedule".
    pub ls: usize,
    /// Blocks predicted "don't schedule".
    pub ns: usize,
}

impl ClassCounts {
    /// Total blocks classified.
    pub fn total(&self) -> usize {
        self.ls + self.ns
    }
}

/// Scheduling-time measurement for a filter over a benchmark's blocks
/// (Figures 1a/2a/3a).
///
/// Per the paper (§3.1), filter cost — feature extraction plus heuristic
/// evaluation — is charged to scheduling time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalTimes {
    /// Wall-clock ns under the filter policy: features + filter for every
    /// block, plus scheduling for the selected blocks.
    pub filtered_ns: u64,
    /// Wall-clock ns of scheduling every block (the LS strategy).
    pub always_ns: u64,
    /// Deterministic work-unit analogue of `filtered_ns` (stable across
    /// runs; used by tests). Sum of `filter_work`, `feature_work` and
    /// the selected blocks' scheduling work.
    pub filtered_work: u64,
    /// Deterministic work-unit analogue of `always_ns`.
    pub always_work: u64,
    /// Work units the filter itself spent: conditions actually evaluated
    /// across all blocks, short-circuiting included
    /// ([`Filter::eval_work`]).
    pub filter_work: u64,
    /// Work units charged for demand-masked feature extraction — only
    /// the features the compiled filter reads are tallied
    /// ([`FeatureMask::extraction_work`](wts_features::FeatureMask::extraction_work)).
    pub feature_work: u64,
    /// Blocks the filter selected for scheduling.
    pub scheduled_blocks: usize,
    /// Total blocks.
    pub total_blocks: usize,
    /// Estimator cycles the selected blocks' scheduling recovers at run
    /// time, execution-weighted: `Σ exec · (est_unsched − est_sched)`
    /// over the scheduled blocks. Signed, because a scheduling decision
    /// the estimator dislikes must show up as a debit, not be clamped
    /// away. Feeds [`net_cycles`](EvalTimes::net_cycles).
    pub benefit_cycles: i64,
}

impl EvalTimes {
    /// Measured scheduling-time ratio `filtered / always` (the paper's
    /// Figure 1(a) bars; LS = 1.0, NS would be the pure filtering cost).
    ///
    /// Zero-denominator convention: when the always-schedule channel is
    /// zero (nothing to schedule — an empty or all-empty-blocks
    /// benchmark), the ratio is `1.0` if the filtered channel is also
    /// zero — the strategies are indistinguishable, not "the filter is
    /// free" — and `+∞` if the filter still spent time, so a nonzero
    /// filtering cost over zero scheduling work is never reported as
    /// cheap.
    pub fn measured_ratio(&self) -> f64 {
        ratio(self.filtered_ns, self.always_ns)
    }

    /// Deterministic work-unit ratio (same quantity, stable across
    /// runs), with the same zero-denominator convention as
    /// [`measured_ratio`](EvalTimes::measured_ratio).
    pub fn work_ratio(&self) -> f64 {
        ratio(self.filtered_work, self.always_work)
    }

    /// The filter's own overhead — extraction plus rule evaluation — as
    /// a fraction of the always-schedule work. The paper's premise is
    /// that this is near zero; the cross-machine filter-cost table
    /// prints it per machine. A filter that spent nothing over an empty
    /// corpus has zero overhead; one that spent work where there was no
    /// scheduling to do reports `+∞`, mirroring the
    /// [`work_ratio`](EvalTimes::work_ratio) convention.
    pub fn overhead_fraction(&self) -> f64 {
        let overhead = self.filter_work + self.feature_work;
        if self.always_work == 0 {
            return if overhead == 0 { 0.0 } else { f64::INFINITY };
        }
        overhead as f64 / self.always_work as f64
    }

    /// The expected net application cycles this deployment earns: run
    /// time recovered by the scheduled blocks minus the whole filtered
    /// compile spend ([`filtered_work`](EvalTimes::filtered_work):
    /// extraction + filter conditions + scheduling of selected blocks)
    /// priced at `cycles_per_work` application cycles per work unit —
    /// the same operating point a
    /// [`BenefitModel`](crate::BenefitModel) deploys with. The
    /// calibration table compares policies on exactly this number.
    pub fn net_cycles(&self, cycles_per_work: f64) -> f64 {
        self.benefit_cycles as f64 - cycles_per_work * self.filtered_work as f64
    }

    /// Accumulates another benchmark's measurement into this one (used
    /// by the per-machine aggregation of the filter-cost table).
    pub fn accumulate(&mut self, other: &EvalTimes) {
        self.filtered_ns += other.filtered_ns;
        self.always_ns += other.always_ns;
        self.filtered_work += other.filtered_work;
        self.always_work += other.always_work;
        self.filter_work += other.filter_work;
        self.feature_work += other.feature_work;
        self.scheduled_blocks += other.scheduled_blocks;
        self.total_blocks += other.total_blocks;
        self.benefit_cycles += other.benefit_cycles;
    }
}

/// `filtered / always` with the documented zero-denominator convention:
/// `0/0 = 1.0` (indistinguishable strategies), `x/0 = +∞` for `x > 0`
/// (the filter is not free just because there was nothing to schedule).
fn ratio(filtered: u64, always: u64) -> f64 {
    if always == 0 {
        return if filtered == 0 { 1.0 } else { f64::INFINITY };
    }
    filtered as f64 / always as f64
}

/// The compiled filter's decision for every record: one lowering, then
/// a straight walk over the records (per-benchmark traces are small;
/// callers needing cross-core SoA classification use
/// [`CompiledFilter::classify_batch`](crate::CompiledFilter::classify_batch)
/// over a [`FeatureBatch`](crate::FeatureBatch) directly).
fn decisions(traces: &[TraceRecord], filter: &dyn Filter) -> Vec<bool> {
    let compiled = filter.compile();
    traces.iter().map(|r| compiled.decide(r.features.as_slice())).collect()
}

/// Classification confusion of `filter` against the threshold-`t` labels
/// of `traces` (Table 3). Dropped instances (benefit within `(0, t]`) are
/// excluded, exactly as they are excluded from the paper's test sets.
pub fn classification_matrix(traces: &[TraceRecord], filter: &dyn Filter, label: LabelConfig) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::default();
    for (r, predicted) in traces.iter().zip(decisions(traces, filter)) {
        if let Some(actual) = label.label(r) {
            m.record(actual, predicted);
        }
    }
    m
}

/// Run-time classification counts over *all* blocks (Table 6).
pub fn runtime_classification(traces: &[TraceRecord], filter: &dyn Filter) -> ClassCounts {
    let mut c = ClassCounts::default();
    for predicted in decisions(traces, filter) {
        if predicted {
            c.ls += 1;
        } else {
            c.ns += 1;
        }
    }
    c
}

/// Predicted (cheap-estimator) execution time under `filter`, as a
/// percentage of the never-schedule time (Table 4: smaller is better,
/// 100 = no change).
pub fn predicted_time_ratio(traces: &[TraceRecord], filter: &dyn Filter) -> f64 {
    time_ratio(traces, filter, |r| (r.est_unsched, r.est_sched)) * 100.0
}

/// "Measured" (detailed-simulator) application running time under
/// `filter`, as a fraction of the never-schedule time (Figures 1b/2b/3b:
/// smaller than 1 is an improvement).
pub fn app_time_ratio(traces: &[TraceRecord], filter: &dyn Filter) -> f64 {
    time_ratio(traces, filter, |r| (r.hw_unsched, r.hw_sched))
}

fn time_ratio(traces: &[TraceRecord], filter: &dyn Filter, cycles: impl Fn(&TraceRecord) -> (u64, u64)) -> f64 {
    let mut base = 0.0;
    let mut with = 0.0;
    for (r, scheduled) in traces.iter().zip(decisions(traces, filter)) {
        let (unsched, sched) = cycles(r);
        let w = r.exec_count as f64;
        base += w * unsched as f64;
        with += w * if scheduled { sched as f64 } else { unsched as f64 };
    }
    if base == 0.0 {
        return 1.0;
    }
    with / base
}

/// Scheduling-time cost of `filter` over a benchmark's trace
/// (Figures 1a/2a/3a). The filter's own evaluation is timed here and
/// charged to the filtered strategy, as the paper charges it (§3.1).
///
/// The filter is lowered once and evaluated through the compiled
/// engine. The work channel charges what the deployed pass would
/// actually do per block: demand-masked feature extraction (only the
/// categories the rules read) plus the conditions evaluated until the
/// decision short-circuits — so a one-condition rule set is cheaper
/// than a forty-condition one, and a filter that reads two features is
/// cheaper than one that reads twelve.
pub fn sched_time_ratio(traces: &[TraceRecord], filter: &dyn Filter) -> EvalTimes {
    sched_time_policy(traces, filter, &DecisionPolicy::HardThreshold)
}

/// [`sched_time_ratio`] with the schedule/skip call delegated to an
/// explicit [`DecisionPolicy`]. Scoring rides the same short-circuit
/// walk as the boolean decision, so under
/// [`HardThreshold`](DecisionPolicy::HardThreshold) every channel —
/// decisions, work, counts — is bit-identical to the legacy path; a
/// cost-sensitive policy changes only which units are scheduled, and
/// the [`benefit_cycles`](EvalTimes::benefit_cycles) /
/// [`net_cycles`](EvalTimes::net_cycles) channels report whether those
/// calls were worth it.
pub fn sched_time_policy(traces: &[TraceRecord], filter: &dyn Filter, policy: &DecisionPolicy) -> EvalTimes {
    let compiled = filter.compile();
    let mut out = EvalTimes { total_blocks: traces.len(), ..EvalTimes::default() };
    for r in traces {
        let insts = r.features.bb_len() as u64;
        let feature_work = compiled.extraction_work(insts);
        let t0 = Instant::now();
        let (score, conditions) = compiled.score_counted(r.features.as_slice());
        let unit =
            UnitEconomics { insts, exec_count: r.exec_count, filter_work: conditions, extraction_work: feature_work };
        let decision = policy.decide(score, &unit);
        let filter_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);

        out.always_ns += r.sched_ns;
        out.always_work += r.sched_work;
        out.filtered_ns += r.feature_ns + filter_ns;
        out.filter_work += conditions;
        out.feature_work += feature_work;
        out.filtered_work += feature_work + conditions;
        if decision {
            out.scheduled_blocks += 1;
            out.filtered_ns += r.sched_ns;
            out.filtered_work += r.sched_work;
            out.benefit_cycles += r.exec_count as i64 * (r.est_unsched as i64 - r.est_sched as i64);
        }
    }
    out
}

/// The oracle-best-per-unit row of the calibration table: with the true
/// per-unit channels in hand, schedule exactly the units whose
/// execution-weighted estimator savings beat their own measured
/// scheduling work priced at `cycles_per_work`. No filter runs — zero
/// extraction and condition work is charged — so this is the
/// non-deployable upper bound on [`EvalTimes::net_cycles`] any policy
/// over these traces can reach.
pub fn oracle_times(traces: &[TraceRecord], cycles_per_work: f64) -> EvalTimes {
    let mut out = EvalTimes { total_blocks: traces.len(), ..EvalTimes::default() };
    for r in traces {
        let benefit = r.exec_count as i64 * (r.est_unsched as i64 - r.est_sched as i64);
        out.always_ns += r.sched_ns;
        out.always_work += r.sched_work;
        if benefit as f64 > cycles_per_work * r.sched_work as f64 {
            out.scheduled_blocks += 1;
            out.filtered_ns += r.sched_ns;
            out.filtered_work += r.sched_work;
            out.benefit_cycles += benefit;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlwaysSchedule, NeverSchedule, SizeThresholdFilter};
    use wts_features::{FeatureKind, FeatureVector};
    use wts_ir::{BlockId, MethodId};

    fn fv(bb_len: f64, loads: f64) -> FeatureVector {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = bb_len;
        v[FeatureKind::Loads.index()] = loads;
        FeatureVector::from_values(v)
    }

    fn rec(bb_len: f64, exec: u64, est: (u64, u64), hw: (u64, u64)) -> TraceRecord {
        let mut v = [0.0; FeatureKind::COUNT];
        v[FeatureKind::BbLen.index()] = bb_len;
        TraceRecord {
            benchmark: "b".into(),
            method: MethodId(0),
            block: BlockId(0),
            exec_count: exec,
            features: FeatureVector::from_values(v),
            est_unsched: est.0,
            est_sched: est.1,
            hw_unsched: hw.0,
            hw_sched: hw.1,
            sched_ns: 1000,
            feature_ns: 100,
            sched_work: 50,
            feature_work: 10,
        }
    }

    fn traces() -> Vec<TraceRecord> {
        vec![
            rec(10.0, 100, (100, 80), (100, 95)), // big block, benefits
            rec(2.0, 100, (10, 10), (10, 10)),    // small block, no benefit
            rec(12.0, 1, (50, 40), (50, 48)),     // big but cold
        ]
    }

    #[test]
    fn classification_against_labels() {
        let t = traces();
        let m = classification_matrix(&t, &SizeThresholdFilter::new(5), LabelConfig::new(0));
        // labels: LS, NS, LS; filter predicts: LS, NS, LS.
        assert_eq!((m.tp, m.tn, m.fp, m.fn_), (2, 1, 0, 0));
        let bad = classification_matrix(&t, &NeverSchedule, LabelConfig::new(0));
        assert_eq!(bad.fn_, 2);
    }

    #[test]
    fn dropped_instances_are_excluded() {
        // 10% improvement at t=20 is dropped.
        let t = vec![rec(8.0, 1, (100, 90), (100, 95))];
        let m = classification_matrix(&t, &AlwaysSchedule, LabelConfig::new(20));
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn runtime_counts_cover_all_blocks() {
        let c = runtime_classification(&traces(), &SizeThresholdFilter::new(5));
        assert_eq!(c.ls, 2);
        assert_eq!(c.ns, 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn predicted_ratio_bounds() {
        let t = traces();
        let ls = predicted_time_ratio(&t, &AlwaysSchedule);
        let ns = predicted_time_ratio(&t, &NeverSchedule);
        let f = predicted_time_ratio(&t, &SizeThresholdFilter::new(5));
        assert_eq!(ns, 100.0);
        assert!(ls < 100.0);
        assert!(f >= ls && f <= ns, "filter lies between the fixed strategies here");
    }

    #[test]
    fn app_ratio_weighted_by_exec_count() {
        let t = traces();
        let ls = app_time_ratio(&t, &AlwaysSchedule);
        // hot blocks: 100*(95 vs 100) and 100*(10 vs 10); cold 1*(48 vs 50).
        let expect = (100.0 * 95.0 + 100.0 * 10.0 + 48.0) / (100.0 * 100.0 + 100.0 * 10.0 + 50.0);
        assert!((ls - expect).abs() < 1e-9);
        assert_eq!(app_time_ratio(&t, &NeverSchedule), 1.0);
    }

    #[test]
    fn sched_time_work_ratio_is_deterministic_and_sensible() {
        let t = traces();
        let e = sched_time_ratio(&t, &SizeThresholdFilter::new(5));
        assert_eq!(e.total_blocks, 3);
        assert_eq!(e.scheduled_blocks, 2);
        // work: always = 150; the size filter reads only bbLen (free
        // extraction) and evaluates one condition per block, so
        // filtered = 3*(0+1) + 2*50 = 103.
        assert_eq!(e.always_work, 150);
        assert_eq!(e.filter_work, 3);
        assert_eq!(e.feature_work, 0);
        assert_eq!(e.filtered_work, 103);
        assert!((e.work_ratio() - 103.0 / 150.0).abs() < 1e-12);
        assert!((e.overhead_fraction() - 3.0 / 150.0).abs() < 1e-12);
        let never = sched_time_ratio(&t, &NeverSchedule);
        assert!(never.work_ratio() < e.work_ratio(), "scheduling nothing is cheapest");
        assert_eq!(never.scheduled_blocks, 0);
        assert_eq!(never.filtered_work, 0, "NS reads no features and evaluates no conditions");
    }

    #[test]
    fn larger_rule_sets_cost_strictly_more_filtered_work() {
        // A 1-condition set versus a 5-condition, wider-demand set that
        // reaches the same decisions: per-condition accounting must
        // separate them (the old flat FILTER_EVAL_WORK = 4 did not).
        use crate::LearnedFilter;
        use wts_ripper::{Condition, Op, Rule, RuleSet};
        let attr_names: Vec<String> = FeatureKind::ALL.iter().map(|k| k.rule_name().to_string()).collect();
        let cond = |kind: FeatureKind, op, threshold| Condition { attr: kind.index(), op, threshold };
        let small = LearnedFilter::new(
            RuleSet::new(
                attr_names.clone(),
                "list",
                "orig",
                vec![Rule::from_conditions(vec![cond(FeatureKind::BbLen, Op::Ge, 5.0)])],
                vec![],
                Default::default(),
            ),
            0,
        );
        let big = LearnedFilter::new(
            RuleSet::new(
                attr_names,
                "list",
                "orig",
                vec![Rule::from_conditions(vec![
                    cond(FeatureKind::BbLen, Op::Ge, 5.0),
                    cond(FeatureKind::Loads, Op::Le, 1.0),
                    cond(FeatureKind::Stores, Op::Le, 1.0),
                    cond(FeatureKind::Calls, Op::Le, 1.0),
                    cond(FeatureKind::Floats, Op::Le, 1.0),
                ])],
                vec![],
                Default::default(),
            ),
            0,
        );
        let t = traces();
        let es = sched_time_ratio(&t, &small);
        let eb = sched_time_ratio(&t, &big);
        assert_eq!(es.scheduled_blocks, eb.scheduled_blocks, "same decisions");
        assert!(eb.filter_work > es.filter_work, "more conditions evaluated: {} vs {}", eb.filter_work, es.filter_work);
        assert!(eb.feature_work > es.feature_work, "wider demand mask costs more extraction");
        assert!(eb.filtered_work > es.filtered_work, "bigger rule set must report strictly more filtered work");
        // And the counting is short-circuit aware: blocks failing the
        // first condition never pay for the rest.
        assert_eq!(big.eval_work(&fv(2.0, 0.0)), 1, "bbLen >= 5 fails first, rest skipped");
        assert_eq!(big.eval_work(&fv(9.0, 0.0)), 5, "all five conditions hold");
    }

    #[test]
    fn accumulate_sums_all_channels() {
        let t = traces();
        let a = sched_time_ratio(&t, &SizeThresholdFilter::new(5));
        let mut sum = a;
        sum.accumulate(&a);
        assert_eq!(sum.always_work, 2 * a.always_work);
        assert_eq!(sum.filter_work, 2 * a.filter_work);
        assert_eq!(sum.total_blocks, 2 * a.total_blocks);
        assert!((sum.work_ratio() - a.work_ratio()).abs() < 1e-12, "ratios are scale-invariant");
    }

    #[test]
    fn empty_traces_do_not_divide_by_zero() {
        // Both channels empty: the strategies are indistinguishable, so
        // every ratio is 1.0 (not 0.0, which would read "filtering is
        // free") and the overhead is genuinely zero.
        let e = sched_time_ratio(&[], &AlwaysSchedule);
        assert_eq!(e.measured_ratio(), 1.0);
        assert_eq!(e.work_ratio(), 1.0);
        assert_eq!(e.overhead_fraction(), 0.0);
        assert_eq!(app_time_ratio(&[], &AlwaysSchedule), 1.0);
        assert_eq!(predicted_time_ratio(&[], &AlwaysSchedule), 100.0);
    }

    #[test]
    fn ratio_edge_cases_are_pinned() {
        // The PR-4 convention, spelled out channel by channel:
        // 0/0 = 1.0 (indistinguishable), x/0 = +inf (never free).
        let zero = EvalTimes::default();
        assert_eq!(zero.work_ratio(), 1.0);
        assert_eq!(zero.measured_ratio(), 1.0);
        let spent = EvalTimes { filtered_work: 7, filtered_ns: 7, ..EvalTimes::default() };
        assert_eq!(spent.work_ratio(), f64::INFINITY);
        assert_eq!(spent.measured_ratio(), f64::INFINITY);
        let normal = EvalTimes { filtered_work: 50, always_work: 100, ..EvalTimes::default() };
        assert_eq!(normal.work_ratio(), 0.5);
    }

    #[test]
    fn accumulating_an_infinite_side_recovers_a_finite_ratio() {
        // One benchmark had nothing to schedule but the filter still
        // spent work (ratio +inf); another was normal. The aggregate
        // must charge the stranded spend against the real denominator —
        // finite again, and strictly worse than the normal benchmark
        // alone.
        let stranded = EvalTimes { filtered_work: 10, filter_work: 10, ..EvalTimes::default() };
        assert_eq!(stranded.work_ratio(), f64::INFINITY);
        assert_eq!(stranded.overhead_fraction(), f64::INFINITY);
        let normal = EvalTimes { filtered_work: 50, always_work: 100, filter_work: 5, ..EvalTimes::default() };
        let mut sum = normal;
        sum.accumulate(&stranded);
        assert_eq!(sum.always_work, 100);
        assert_eq!(sum.filtered_work, 60);
        assert!((sum.work_ratio() - 0.6).abs() < 1e-12);
        assert!(sum.work_ratio() > normal.work_ratio());
        assert!((sum.overhead_fraction() - 0.15).abs() < 1e-12);
        // Accumulating the other way is the same (order-independent).
        let mut other = stranded;
        other.accumulate(&normal);
        assert_eq!(other, sum);
    }

    #[test]
    fn accumulate_sums_benefit_and_counts() {
        let a = EvalTimes { benefit_cycles: 40, scheduled_blocks: 2, total_blocks: 3, ..EvalTimes::default() };
        let b = EvalTimes { benefit_cycles: -15, scheduled_blocks: 1, total_blocks: 4, ..EvalTimes::default() };
        let mut sum = a;
        sum.accumulate(&b);
        assert_eq!(sum.benefit_cycles, 25);
        assert_eq!(sum.scheduled_blocks, 3);
        assert_eq!(sum.total_blocks, 7);
    }

    #[test]
    fn policy_hard_threshold_matches_the_legacy_path_channel_for_channel() {
        let t = traces();
        for filter in [&SizeThresholdFilter::new(5) as &dyn Filter, &AlwaysSchedule, &NeverSchedule] {
            let legacy = sched_time_ratio(&t, filter);
            let hard = sched_time_policy(&t, filter, &DecisionPolicy::HardThreshold);
            assert_eq!(
                (legacy.filtered_work, legacy.always_work, legacy.filter_work, legacy.feature_work),
                (hard.filtered_work, hard.always_work, hard.filter_work, hard.feature_work)
            );
            assert_eq!(legacy.scheduled_blocks, hard.scheduled_blocks);
            assert_eq!(legacy.benefit_cycles, hard.benefit_cycles);
        }
    }

    #[test]
    fn benefit_cycles_weighs_scheduled_blocks_by_execution() {
        let t = traces();
        let e = sched_time_ratio(&t, &SizeThresholdFilter::new(5));
        // Scheduled: the hot big block (100·(100−80)) and the cold one
        // (1·(50−40)); the small no-benefit block is skipped.
        assert_eq!(e.benefit_cycles, 100 * 20 + 10);
        assert!((e.net_cycles(0.0) - e.benefit_cycles as f64).abs() < 1e-12);
        assert!(e.net_cycles(1.0) < e.net_cycles(0.0), "pricing work in can only lower the net");
        let ns = sched_time_ratio(&t, &NeverSchedule);
        assert_eq!(ns.benefit_cycles, 0);
        assert_eq!(ns.net_cycles(5.0), 0.0, "scheduling nothing and spending nothing nets zero");
    }

    #[test]
    fn expected_benefit_skips_cold_and_worthless_units() {
        use crate::policy::BenefitModel;
        let t = traces();
        // A generous operating point schedules the hot beneficial block
        // but skips the cold one (gain 10 < quadratic sched estimate).
        let policy = DecisionPolicy::ExpectedBenefit(BenefitModel { saved_per_inst: 2.0, cycles_per_work: 1.0 });
        let e = sched_time_policy(&t, &AlwaysSchedule, &policy);
        // AlwaysSchedule scores every unit at probability 1, so the
        // policy keeps both hot blocks (it cannot see that one has no
        // benefit) but drops the cold one: gain 2·12·1 = 24 is under the
        // quadratic scheduling estimate for 12 instructions.
        assert_eq!(e.scheduled_blocks, 2, "the cold block is not worth its spend");
        assert_eq!(e.benefit_cycles, 100 * 20);
        // The hard policy under LS schedules everything, including the
        // units whose compile spend outweighs their benefit.
        let hard = sched_time_policy(&t, &AlwaysSchedule, &DecisionPolicy::HardThreshold);
        assert_eq!(hard.scheduled_blocks, 3);
        assert!(e.net_cycles(1.0) > hard.net_cycles(1.0), "cost-sensitivity must beat schedule-everything here");
    }

    #[test]
    fn oracle_is_an_upper_bound_and_charges_no_filter() {
        let t = traces();
        let oracle = oracle_times(&t, 1.0);
        assert_eq!(oracle.filter_work + oracle.feature_work, 0, "the oracle needs no filter");
        assert_eq!(oracle.total_blocks, 3);
        // Schedules the hot block (2000 > 50) but not the cold one
        // (10 < 50) or the no-benefit one.
        assert_eq!(oracle.scheduled_blocks, 1);
        assert_eq!(oracle.benefit_cycles, 2000);
        for filter in [&SizeThresholdFilter::new(5) as &dyn Filter, &AlwaysSchedule, &NeverSchedule] {
            let e = sched_time_ratio(&t, filter);
            assert!(oracle.net_cycles(1.0) >= e.net_cycles(1.0), "{}", filter.name());
        }
    }

    #[test]
    fn zero_denominator_ratio_never_reports_the_filter_as_free() {
        // Regression: an all-empty-blocks benchmark has zero
        // always-schedule work, and `measured_ratio`/`work_ratio` used
        // to return 0.0 — "the filter is free" — even though the
        // filtered channel had spent real extraction + evaluation work.
        let mut r = rec(0.0, 1, (0, 0), (0, 0));
        r.sched_ns = 0;
        r.sched_work = 0;
        let e = sched_time_ratio(&[r], &SizeThresholdFilter::new(5));
        assert_eq!(e.always_work, 0, "nothing to schedule");
        assert!(e.filtered_work > 0, "the filter still paid to decide");
        assert_eq!(e.work_ratio(), f64::INFINITY, "nonzero spend over zero scheduling work is not free");
        assert_eq!(e.measured_ratio(), f64::INFINITY);
        assert_eq!(e.overhead_fraction(), f64::INFINITY);
        // The same channels with nothing spent collapse to the 0/0 = 1.0
        // convention.
        let idle = EvalTimes::default();
        assert_eq!(idle.measured_ratio(), 1.0);
        assert_eq!(idle.work_ratio(), 1.0);
    }
}
