//! Trace collection: the instrumented scheduling pass.
//!
//! The collector runs the paper's §2.2 instrumentation over every
//! *scope unit* of a program — every basic block at
//! [`ScopeKind::Block`], every formed superblock trace at
//! [`ScopeKind::Superblock`] — extracting features, list-scheduling
//! (speculatively for multi-block traces), and recording estimated
//! ("simplified simulator") and measured ("hardware") cycles for both
//! orders. Which simulator plays which role is configurable via
//! [`CostProvider`]s; the collection can be sharded across methods with
//! scoped threads and stays bit-for-bit identical to the serial path.

use crate::engine::CompiledFilter;
use std::time::Instant;
use wts_features::{FeatureMask, FeatureVector, TraceShape};
use wts_ir::{form_superblocks, BlockId, Inst, Method, MethodId, Program, ScopeKind};
use wts_machine::{CostProvider, EstimatorKind, MachineConfig};
use wts_sched::{ListScheduler, SchedScratch, ScheduleOutcome, SchedulePolicy};

/// One line of the paper's trace file, plus the extra ground-truth and
/// timing channels this reproduction needs.
///
/// At superblock scope one record covers one formed *trace*: `block` is
/// the trace's entry block, `exec_count` its profile weight, and every
/// channel is measured over the concatenated instructions (with the
/// speculative scheduler for multi-block traces).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Benchmark (program) the block came from.
    pub benchmark: String,
    /// Method within the program.
    pub method: MethodId,
    /// Block within the program (the entry block at superblock scope).
    pub block: BlockId,
    /// Profile execution count of the block (trace weight at superblock
    /// scope).
    pub exec_count: u64,
    /// The Table 1 features.
    pub features: FeatureVector,
    /// Estimated-provider cycles of the original order (labeling input).
    pub est_unsched: u64,
    /// Estimated-provider cycles after list scheduling (labeling input).
    pub est_sched: u64,
    /// Measured-provider cycles of the original order ("hardware").
    pub hw_unsched: u64,
    /// Measured-provider cycles after list scheduling ("hardware").
    pub hw_sched: u64,
    /// Wall-clock nanoseconds the scheduler spent on this block (or the
    /// deterministic work proxy under [`TimingMode::Deterministic`]).
    pub sched_ns: u64,
    /// Wall-clock nanoseconds feature extraction took (or the
    /// deterministic work proxy under [`TimingMode::Deterministic`]).
    pub feature_ns: u64,
    /// Deterministic work proxy for scheduling (instructions + DAG edges),
    /// used where tests need run-to-run stability.
    pub sched_work: u64,
    /// Deterministic work proxy for feature extraction (instructions).
    pub feature_work: u64,
}

impl TraceRecord {
    /// Estimated improvement fraction under the cheap model
    /// (`0.10` = scheduling made the block 10% faster).
    pub fn est_improvement(&self) -> f64 {
        if self.est_unsched == 0 {
            return 0.0;
        }
        (self.est_unsched as f64 - self.est_sched as f64) / self.est_unsched as f64
    }

    /// Measured improvement fraction under the detailed model.
    pub fn hw_improvement(&self) -> f64 {
        if self.hw_unsched == 0 {
            return 0.0;
        }
        (self.hw_unsched as f64 - self.hw_sched as f64) / self.hw_unsched as f64
    }
}

/// How the per-block `*_ns` channels are filled in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingMode {
    /// Measure wall-clock time with [`Instant`]. Real, but different on
    /// every run.
    #[default]
    WallClock,
    /// Copy the deterministic work proxies into the `*_ns` channels, so
    /// the whole record — and therefore the serialized trace file — is
    /// byte-identical run to run and between the serial and sharded
    /// collectors.
    Deterministic,
}

/// Full configuration of one trace collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// Scheduler policy driving the instrumented pass.
    pub policy: SchedulePolicy,
    /// Worker threads for method-sharded collection. `1` is the serial
    /// path; `0` asks for [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Wall-clock or deterministic `*_ns` channels.
    pub timing: TimingMode,
    /// Provider of the "estimated" cycle channels (labeling input).
    pub estimated: EstimatorKind,
    /// Provider of the "measured" cycle channels (hardware stand-in).
    pub measured: EstimatorKind,
    /// Scheduling scope: per basic block (the paper), or per formed
    /// superblock trace (the §3.1 extension).
    pub scope: ScopeKind,
}

impl Default for TraceOptions {
    fn default() -> TraceOptions {
        TraceOptions {
            policy: SchedulePolicy::CriticalPath,
            threads: 1,
            timing: TimingMode::WallClock,
            estimated: EstimatorKind::Cheap,
            measured: EstimatorKind::Detailed,
            scope: ScopeKind::Block,
        }
    }
}

impl TraceOptions {
    /// Resolved worker count (`threads`, or the machine's parallelism
    /// when `threads == 0`).
    pub fn resolved_threads(&self) -> usize {
        crate::parallel::resolve_threads(self.threads)
    }
}

/// Runs the instrumented scheduling pass over every block of `program`
/// with the default CPS policy (serial; see [`collect_trace_with`] for
/// sharding and estimator control).
pub fn collect_trace(program: &Program, machine: &MachineConfig) -> Vec<TraceRecord> {
    collect_trace_with(program, machine, &TraceOptions::default())
}

/// Runs the instrumented scheduling pass with an explicit policy (used by
/// the scheduler-independence ablation).
pub fn collect_trace_with_policy(
    program: &Program,
    machine: &MachineConfig,
    policy: SchedulePolicy,
) -> Vec<TraceRecord> {
    collect_trace_with(program, machine, &TraceOptions { policy, ..TraceOptions::default() })
}

/// Runs the instrumented pass under full [`TraceOptions`] control,
/// building the estimated/measured providers from their configured kinds.
pub fn collect_trace_with(program: &Program, machine: &MachineConfig, options: &TraceOptions) -> Vec<TraceRecord> {
    // The scheduler's own cost model *is* the cheap estimator (§2.2,
    // footnote 3), so with the default kind the est_* channels can reuse
    // the cycle counts scheduling already computed instead of running
    // two more cost-model passes per block.
    let measured = options.measured.provider(machine);
    match options.estimated {
        EstimatorKind::Cheap => collect_with(program, machine, options, EstSource::Scheduler, measured.as_ref()),
        kind => {
            let estimated = kind.provider(machine);
            collect_with(program, machine, options, EstSource::Provider(estimated.as_ref()), measured.as_ref())
        }
    }
}

/// Traces a single method — the machines×methods sharding unit of the
/// cross-machine [`ExperimentMatrix`](crate::ExperimentMatrix).
///
/// Output is exactly the slice of [`collect_trace_with`]'s result that
/// covers `method`, so a matrix run reassembling per-method pieces in
/// method order reproduces the per-program collector bit for bit (under
/// [`TimingMode::Deterministic`]; up to wall-clock jitter otherwise).
pub fn collect_method_trace(
    benchmark: &str,
    method: &Method,
    machine: &MachineConfig,
    options: &TraceOptions,
) -> Vec<TraceRecord> {
    let scheduler = ListScheduler::with_policy(machine, options.policy);
    let mut ctx = SchedCtx::new(machine);
    let measured = options.measured.provider(machine);
    let mut out = Vec::new();
    match options.estimated {
        EstimatorKind::Cheap => trace_method(
            benchmark,
            method,
            &scheduler,
            &mut ctx,
            EstSource::Scheduler,
            measured.as_ref(),
            options,
            &mut out,
        ),
        kind => {
            let estimated = kind.provider(machine);
            trace_method(
                benchmark,
                method,
                &scheduler,
                &mut ctx,
                EstSource::Provider(estimated.as_ref()),
                measured.as_ref(),
                options,
                &mut out,
            );
        }
    }
    out
}

/// Per-worker reusable scheduling state: the scheduler's scratch buffers,
/// the outcome it fills, and the permuted-instruction buffer. One of
/// these per shard keeps the collection hot loop allocation-free in
/// steady state.
struct SchedCtx<'m> {
    scratch: SchedScratch<'m>,
    outcome: ScheduleOutcome,
    scheduled: Vec<Inst>,
}

impl<'m> SchedCtx<'m> {
    fn new(machine: &'m MachineConfig) -> SchedCtx<'m> {
        SchedCtx { scratch: SchedScratch::new(machine), outcome: ScheduleOutcome::default(), scheduled: Vec::new() }
    }
}

/// Which source fills the `est_*` channels.
#[derive(Clone, Copy)]
enum EstSource<'a> {
    /// Reuse the scheduler's own cost-model output (valid only when the
    /// estimated provider is the cheap model the scheduler runs on).
    Scheduler,
    /// Query an explicit provider.
    Provider(&'a dyn CostProvider),
}

/// The fully general collector: explicit [`CostProvider`]s for the
/// estimated and measured channels (`options.estimated` / `.measured`
/// are ignored on this path).
///
/// With `options.threads != 1` the program's methods are sharded across
/// scoped threads. Each method is traced independently and the shards are
/// reassembled in method order, so the output is *identical* to the
/// serial path — bit-for-bit under [`TimingMode::Deterministic`], and up
/// to wall-clock jitter in the `*_ns` channels otherwise.
pub fn collect_trace_with_providers(
    program: &Program,
    machine: &MachineConfig,
    options: &TraceOptions,
    estimated: &dyn CostProvider,
    measured: &dyn CostProvider,
) -> Vec<TraceRecord> {
    collect_with(program, machine, options, EstSource::Provider(estimated), measured)
}

fn collect_with(
    program: &Program,
    machine: &MachineConfig,
    options: &TraceOptions,
    estimated: EstSource<'_>,
    measured: &dyn CostProvider,
) -> Vec<TraceRecord> {
    let name = program.name();
    let shards = crate::parallel::shard_map(program.methods(), options.threads, |slice| {
        let scheduler = ListScheduler::with_policy(machine, options.policy);
        let mut ctx = SchedCtx::new(machine);
        let mut out = Vec::new();
        for method in slice {
            trace_method(name, method, &scheduler, &mut ctx, estimated, measured, options, &mut out);
        }
        out
    });
    let mut out = Vec::with_capacity(program.block_count());
    for shard in shards {
        out.extend(shard);
    }
    out
}

/// Traces one method's scope units into `out` (the per-shard worker):
/// its blocks at block scope, its formed superblock traces otherwise.
#[allow(clippy::too_many_arguments)]
fn trace_method<'m>(
    benchmark: &str,
    method: &Method,
    scheduler: &ListScheduler<'m>,
    ctx: &mut SchedCtx<'m>,
    estimated: EstSource<'_>,
    measured: &dyn CostProvider,
    options: &TraceOptions,
    out: &mut Vec<TraceRecord>,
) {
    match options.scope {
        ScopeKind::Block => {
            for block in method.blocks() {
                let unit = ScopeUnit {
                    insts: block.insts(),
                    shape: TraceShape::block(),
                    block: block.id(),
                    exec_count: block.exec_count(),
                };
                trace_unit(benchmark, method.id(), &unit, scheduler, ctx, estimated, measured, options.timing, out);
            }
        }
        ScopeKind::Superblock(ratio) => {
            for sb in form_superblocks(method, ratio) {
                let unit = ScopeUnit {
                    insts: &sb.insts,
                    shape: TraceShape::of_trace(&sb.insts, u32::try_from(sb.width()).expect("trace widths fit u32")),
                    block: BlockId(sb.entry_id()),
                    exec_count: sb.exec_count,
                };
                trace_unit(benchmark, method.id(), &unit, scheduler, ctx, estimated, measured, options.timing, out);
            }
        }
    }
}

/// One scope unit about to be traced: a block's instructions with the
/// degenerate shape, or a formed trace's concatenation with its real
/// shape.
struct ScopeUnit<'a> {
    insts: &'a [Inst],
    shape: TraceShape,
    block: BlockId,
    exec_count: u64,
}

impl ScopeUnit<'_> {
    /// True when the unit merged more than one block, which turns on the
    /// speculative dependence graph.
    fn speculative(&self) -> bool {
        self.shape.width > 1
    }
}

/// Runs the instrumented pass over one scope unit. A width-1 unit takes
/// *exactly* the block path — same scheduler entry point, same graph,
/// same proxies — which is what pins degenerate superblock formation
/// bit-identical to block-scope collection.
#[allow(clippy::too_many_arguments)]
fn trace_unit<'m>(
    benchmark: &str,
    method: MethodId,
    unit: &ScopeUnit<'_>,
    scheduler: &ListScheduler<'m>,
    ctx: &mut SchedCtx<'m>,
    estimated: EstSource<'_>,
    measured: &dyn CostProvider,
    timing: TimingMode,
    out: &mut Vec<TraceRecord>,
) {
    let t0 = Instant::now();
    let features = FeatureVector::from_insts_shaped(unit.insts, unit.shape, FeatureMask::ALL);
    let feature_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let t1 = Instant::now();
    if unit.speculative() {
        scheduler.schedule_superblock_into(unit.insts, &mut ctx.scratch, &mut ctx.outcome);
    } else {
        scheduler.schedule_insts_into(unit.insts, &mut ctx.scratch, &mut ctx.outcome);
    }
    let sched_ns = u64::try_from(t1.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let outcome = &ctx.outcome;

    // With the `verify` feature, every unit this pass schedules is
    // checked by the independent wts-verify analyses (debug builds only;
    // a release build with the feature on pays nothing).
    #[cfg(all(feature = "verify", debug_assertions))]
    {
        let diags = wts_verify::verify_unit(scheduler.machine(), unit.insts, unit.speculative(), outcome);
        assert!(
            diags.is_empty(),
            "trace collection produced an unverifiable schedule:\n{}",
            wts_verify::render(&diags)
        );
    }

    outcome.permute_into(unit.insts, &mut ctx.scheduled);
    let (est_unsched, est_sched) = match estimated {
        EstSource::Scheduler => (outcome.cycles_before, outcome.cycles_after),
        EstSource::Provider(p) => (p.sequence_cycles(unit.insts), p.sequence_cycles(&ctx.scheduled)),
    };
    let hw_unsched = measured.sequence_cycles(unit.insts);
    let hw_sched = measured.sequence_cycles(&ctx.scheduled);

    let sched_work = sched_work_proxy(unit.insts.len(), ctx.scratch.last_edge_count());
    let feature_work = unit.insts.len() as u64;
    let (sched_ns, feature_ns) = match timing {
        TimingMode::WallClock => (sched_ns, feature_ns),
        TimingMode::Deterministic => (sched_work, feature_work),
    };

    out.push(TraceRecord {
        benchmark: benchmark.to_string(),
        method,
        block: unit.block,
        exec_count: unit.exec_count,
        features,
        est_unsched,
        est_sched,
        hw_unsched,
        hw_sched,
        sched_ns,
        feature_ns,
        sched_work,
        feature_work,
    });
}

/// Deterministic scheduling-work proxy for one scope unit: per-unit
/// setup (DAG allocation) + linear nodes/edges work + the selection
/// loop's quadratic earliest-start queries. Matches the measured ~26:1
/// sched:feature cost on the generated corpus. `edges` is the edge count
/// of the graph the scheduler actually built for this unit
/// ([`SchedScratch::last_edge_count`] — the speculative graph for
/// multi-block traces), so the proxy charges real work without
/// rebuilding the graph a second time.
fn sched_work_proxy(n: usize, edges: usize) -> u64 {
    (16 + 2 * (n + edges) + n * n) as u64
}

/// Deterministic totals of one production-style *filtered* scheduling
/// pass ([`filtered_schedule_pass`]): what the deployed compiler would
/// actually spend with a compiled filter installed.
///
/// The *unit* is the configured scope: basic blocks at
/// [`ScopeKind::Block`], formed superblock traces at
/// [`ScopeKind::Superblock`] — `total_blocks`/`scheduled_blocks` count
/// decision units either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilteredPass {
    /// Scope units (blocks or traces) seen.
    pub total_blocks: usize,
    /// Scope units the filter sent to the scheduler.
    pub scheduled_blocks: usize,
    /// Filter conditions evaluated across all blocks (short-circuit
    /// aware; the engine's honest decision cost).
    pub conditions_evaluated: u64,
    /// Demand-masked feature-extraction work across all blocks
    /// ([`FeatureMask::extraction_work`](wts_features::FeatureMask::extraction_work)).
    pub extraction_work: u64,
    /// Scheduling work of the selected blocks (same proxy as
    /// [`TraceRecord::sched_work`]).
    pub sched_work: u64,
    /// Summed per-worker busy nanoseconds in the pass's hot loop
    /// (extraction + decision + scheduling; bookkeeping excluded).
    /// Under sharding this is aggregate CPU time across workers, *not*
    /// wall-clock — run with `threads: 1` to measure the serial pass,
    /// and never compare this channel across thread counts. It jitters
    /// run to run, unlike the work channels.
    pub pass_ns: u64,
}

impl FilteredPass {
    /// Accumulates a shard's totals.
    fn merge(&mut self, other: &FilteredPass) {
        self.total_blocks += other.total_blocks;
        self.scheduled_blocks += other.scheduled_blocks;
        self.conditions_evaluated += other.conditions_evaluated;
        self.extraction_work += other.extraction_work;
        self.sched_work += other.sched_work;
        self.pass_ns += other.pass_ns;
    }

    /// The share of this pass's *total* work spent on the filter itself
    /// (extraction + conditions, against extraction + conditions +
    /// scheduling). A pass that filtered hard but scheduled nothing
    /// correctly reads as 1.0 — all filter, no payoff — and 0.0 means
    /// the pass did no filter work at all (the fixed strategies).
    ///
    /// Note the denominator differs from
    /// [`EvalTimes::overhead_fraction`](crate::EvalTimes::overhead_fraction),
    /// which compares against the filter-independent always-schedule
    /// work of a collected trace; this type only observes the work the
    /// pass actually performed.
    pub fn overhead_fraction(&self) -> f64 {
        let overhead = self.conditions_evaluated + self.extraction_work;
        if overhead == 0 {
            return 0.0;
        }
        overhead as f64 / (overhead + self.sched_work) as f64
    }
}

/// Runs the deployed fast path over every scope unit of `program`: one
/// demand-masked feature pass, the compiled condition table, and list
/// scheduling only for the selected units — the loop a JIT with the
/// filter installed would run, with the filter's true cost tallied per
/// unit instead of assumed. At [`ScopeKind::Superblock`] the units are
/// formed traces and selected multi-block traces go through the
/// speculative scheduler; trace formation itself is profile bookkeeping
/// the JIT already does and stays outside the timed window, like the
/// work-proxy rebuilds.
///
/// Methods shard across `options.threads` scoped workers exactly like
/// [`collect_trace_with`]; the work-channel totals are identical for
/// every thread count (only `pass_ns` jitters).
pub fn filtered_schedule_pass(
    program: &Program,
    machine: &MachineConfig,
    filter: &CompiledFilter,
    options: &TraceOptions,
) -> FilteredPass {
    filtered_schedule_pass_with(program, machine, filter, &crate::DecisionPolicy::HardThreshold, options)
}

/// [`filtered_schedule_pass`] with the schedule/skip call delegated to
/// an explicit [`DecisionPolicy`](crate::DecisionPolicy): the deployed
/// loop scores each unit through the same short-circuit walk the
/// boolean path uses and hands the calibrated score plus the unit's
/// economics (size, profile weight, work already spent deciding) to the
/// policy. Under
/// [`HardThreshold`](crate::DecisionPolicy::HardThreshold) the pass is
/// bit-identical to [`filtered_schedule_pass`] on every work channel.
pub fn filtered_schedule_pass_with(
    program: &Program,
    machine: &MachineConfig,
    filter: &CompiledFilter,
    policy: &crate::DecisionPolicy,
    options: &TraceOptions,
) -> FilteredPass {
    let shards = crate::parallel::shard_map(program.methods(), options.threads, |slice| {
        let scheduler = ListScheduler::with_policy(machine, options.policy);
        let mut ctx = SchedCtx::new(machine);
        let mut totals = FilteredPass::default();
        for method in slice {
            match options.scope {
                ScopeKind::Block => {
                    for block in method.blocks() {
                        let unit = PassUnit {
                            insts: block.insts(),
                            shape: TraceShape::block(),
                            exec_count: block.exec_count(),
                        };
                        filtered_unit(&unit, &scheduler, &mut ctx, filter, policy, &mut totals);
                    }
                }
                ScopeKind::Superblock(ratio) => {
                    for sb in form_superblocks(method, ratio) {
                        let shape =
                            TraceShape::of_trace(&sb.insts, u32::try_from(sb.width()).expect("trace widths fit u32"));
                        let unit = PassUnit { insts: &sb.insts, shape, exec_count: sb.exec_count };
                        filtered_unit(&unit, &scheduler, &mut ctx, filter, policy, &mut totals);
                    }
                }
            }
        }
        totals
    });
    let mut totals = FilteredPass::default();
    for shard in &shards {
        totals.merge(shard);
    }
    totals
}

/// One scope unit of the deployed pass, as handed to [`filtered_unit`].
struct PassUnit<'a> {
    insts: &'a [Inst],
    shape: TraceShape,
    exec_count: u64,
}

/// What serving one scope unit through [`UnitServer`] produced: the
/// schedule/skip call, and — when scheduled — the permutation and the
/// cheap-model cycle estimates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServedUnit {
    /// Whether the filter + policy sent this unit to the scheduler.
    pub decision: bool,
    /// The new order as original instruction indices (empty when the
    /// unit was skipped — the original order stands).
    pub order: Vec<u32>,
    /// Estimated cycles of the original order (0 when skipped).
    pub cycles_before: u64,
    /// Estimated cycles of the scheduled order (0 when skipped).
    pub cycles_after: u64,
}

/// The deployed per-unit fast path, packaged for an external serving
/// loop: one of these per worker thread reuses the scheduler scratch
/// state across every unit it serves (nothing allocated per unit except
/// the returned permutation), and the [`FilteredPass`] totals it
/// accumulates are **bit-identical** to [`filtered_schedule_pass_with`]
/// over the same units — both run the same timed
/// extract → score → decide → schedule body.
///
/// # Examples
///
/// ```
/// use wts_core::{filtered_schedule_pass, DecisionPolicy, Filter, FilteredPass, SizeThresholdFilter};
/// use wts_core::{TraceOptions, UnitServer};
/// use wts_machine::MachineConfig;
///
/// let program = &wts_core::testutil::learnable_suite(2)[0];
/// let machine = MachineConfig::ppc7410();
/// let filter = SizeThresholdFilter::new(4).compile();
///
/// let mut server = UnitServer::new(&machine, wts_sched::SchedulePolicy::CriticalPath);
/// let mut totals = FilteredPass::default();
/// for (_, block) in program.iter_blocks() {
///     server.serve_block(block.insts(), block.exec_count(), &filter, &DecisionPolicy::HardThreshold, &mut totals);
/// }
///
/// let direct = filtered_schedule_pass(program, &machine, &filter, &TraceOptions { threads: 1, ..Default::default() });
/// assert_eq!(totals.scheduled_blocks, direct.scheduled_blocks);
/// assert_eq!(totals.sched_work, direct.sched_work);
/// ```
pub struct UnitServer<'m> {
    scheduler: ListScheduler<'m>,
    ctx: SchedCtx<'m>,
}

impl<'m> UnitServer<'m> {
    /// A per-worker server over `machine` with the given scheduler
    /// policy.
    pub fn new(machine: &'m MachineConfig, policy: SchedulePolicy) -> UnitServer<'m> {
        UnitServer { scheduler: ListScheduler::with_policy(machine, policy), ctx: SchedCtx::new(machine) }
    }

    /// Serves one basic-block unit: runs the deployed fast path,
    /// accumulates the pass totals, and returns the unit's outcome.
    pub fn serve_block(
        &mut self,
        insts: &[Inst],
        exec_count: u64,
        filter: &CompiledFilter,
        policy: &crate::DecisionPolicy,
        totals: &mut FilteredPass,
    ) -> ServedUnit {
        let unit = PassUnit { insts, shape: TraceShape::block(), exec_count };
        self.serve(&unit, filter, policy, totals)
    }

    /// Serves one formed superblock trace (the speculative scheduler
    /// handles multi-block units exactly as the filtered pass does).
    pub fn serve_superblock(
        &mut self,
        sb: &wts_ir::Superblock,
        filter: &CompiledFilter,
        policy: &crate::DecisionPolicy,
        totals: &mut FilteredPass,
    ) -> ServedUnit {
        let shape = TraceShape::of_trace(&sb.insts, u32::try_from(sb.width()).expect("trace widths fit u32"));
        let unit = PassUnit { insts: &sb.insts, shape, exec_count: sb.exec_count };
        self.serve(&unit, filter, policy, totals)
    }

    fn serve(
        &mut self,
        unit: &PassUnit<'_>,
        filter: &CompiledFilter,
        policy: &crate::DecisionPolicy,
        totals: &mut FilteredPass,
    ) -> ServedUnit {
        let decision = filtered_unit(unit, &self.scheduler, &mut self.ctx, filter, policy, totals);
        if !decision {
            return ServedUnit::default();
        }
        let outcome = &self.ctx.outcome;
        let order = outcome.order.iter().map(|&i| u32::try_from(i).expect("unit length fits u32")).collect();
        ServedUnit { decision, order, cycles_before: outcome.cycles_before, cycles_after: outcome.cycles_after }
    }
}

/// One scope unit of the deployed pass: timed extraction + decision +
/// (maybe) scheduling, then untimed work bookkeeping. Returns the
/// schedule/skip call (the caller may read the outcome out of `ctx`).
fn filtered_unit<'m>(
    unit: &PassUnit<'_>,
    scheduler: &ListScheduler<'m>,
    ctx: &mut SchedCtx<'m>,
    filter: &CompiledFilter,
    policy: &crate::DecisionPolicy,
    totals: &mut FilteredPass,
) -> bool {
    let insts = unit.insts;
    let speculative = unit.shape.width > 1;
    let extraction_work = filter.extraction_work(insts.len() as u64);
    // Time only what the deployed pass would run: masked extraction,
    // the condition table, the policy call and the scheduler.
    let t0 = Instant::now();
    let features = FeatureVector::from_insts_shaped(insts, unit.shape, filter.demand());
    let (score, conditions) = filter.score_counted(features.as_slice());
    let economics = crate::UnitEconomics {
        insts: insts.len() as u64,
        exec_count: unit.exec_count,
        filter_work: conditions,
        extraction_work,
    };
    let decision = policy.decide(score, &economics);
    if decision {
        if speculative {
            scheduler.schedule_superblock_into(insts, &mut ctx.scratch, &mut ctx.outcome);
        } else {
            scheduler.schedule_insts_into(insts, &mut ctx.scratch, &mut ctx.outcome);
        }
        std::hint::black_box(&ctx.outcome);
    }
    totals.pass_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);

    // Verify outside the timed window so the feature doesn't skew the
    // deployment-cost accounting it is checking.
    #[cfg(all(feature = "verify", debug_assertions))]
    if decision {
        let diags = wts_verify::verify_unit(scheduler.machine(), insts, speculative, &ctx.outcome);
        assert!(
            diags.is_empty(),
            "the filtered pass produced an unverifiable schedule:\n{}",
            wts_verify::render(&diags)
        );
    }

    // Bookkeeping stays outside the timed window; the work proxy reads
    // the edge count off the graph the scheduler just built.
    totals.total_blocks += 1;
    totals.conditions_evaluated += conditions;
    totals.extraction_work += extraction_work;
    if decision {
        totals.scheduled_blocks += 1;
        totals.sched_work += sched_work_proxy(insts.len(), ctx.scratch.last_edge_count());
    }
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Filter;
    use wts_ir::{BasicBlock, Inst, MemRef, MemSpace, Method, Opcode, Reg};
    use wts_machine::{CostModel, PipelineSim};

    fn program() -> Program {
        let mut p = Program::new("trace-test");
        let mut m = Method::new(0, "m0");
        let mut b0 = BasicBlock::new(0);
        b0.push(Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9)).mem(MemRef::slot(MemSpace::Heap, 0)));
        b0.push(Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)));
        b0.push(Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(8)).use_(Reg::gpr(8)));
        b0.push(Inst::new(Opcode::Add).def(Reg::gpr(4)).use_(Reg::gpr(7)).use_(Reg::gpr(7)));
        b0.push(Inst::new(Opcode::Add).def(Reg::gpr(5)).use_(Reg::gpr(6)).use_(Reg::gpr(6)));
        b0.set_exec_count(10);
        m.push_block(b0);
        let mut b1 = BasicBlock::new(1);
        b1.push(Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(1));
        m.push_block(b1);
        p.push_method(m);
        p
    }

    /// A multi-method program, for sharding tests.
    fn wide_program(methods: u32) -> Program {
        let mut p = Program::new("wide");
        for mi in 0..methods {
            let mut m = Method::new(mi, format!("m{mi}"));
            for bi in 0..3u32 {
                let mut b = BasicBlock::new(bi);
                b.push(Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9)).mem(MemRef::slot(MemSpace::Heap, bi)));
                b.push(Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)));
                b.push(Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(8)).use_(Reg::gpr(8)));
                b.set_exec_count((mi + bi) as u64 + 1);
                m.push_block(b);
            }
            p.push_method(m);
        }
        p
    }

    #[test]
    fn one_record_per_block() {
        let machine = MachineConfig::ppc7410();
        let t = collect_trace(&program(), &machine);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].benchmark, "trace-test");
        assert_eq!(t[0].exec_count, 10);
        assert_eq!(t[1].exec_count, 1);
    }

    #[test]
    fn estimates_are_consistent() {
        let machine = MachineConfig::ppc7410();
        let t = collect_trace(&program(), &machine);
        for r in &t {
            assert!(r.est_sched <= r.est_unsched, "CPS never worsens the estimate");
            assert!(r.hw_unsched > 0 || r.features.bb_len() == 0);
            assert!(r.est_improvement() >= 0.0);
        }
        // The first block has hideable latency: scheduling should help.
        assert!(t[0].est_improvement() > 0.0);
        // The single-instruction block cannot improve.
        assert_eq!(t[1].est_improvement(), 0.0);
    }

    #[test]
    fn work_proxies_are_deterministic() {
        let machine = MachineConfig::ppc7410();
        let a = collect_trace(&program(), &machine);
        let b = collect_trace(&program(), &machine);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sched_work, y.sched_work);
            assert_eq!(x.feature_work, y.feature_work);
        }
        assert!(a[0].sched_work > a[0].feature_work, "scheduling does strictly more work");
    }

    #[test]
    fn features_match_direct_extraction() {
        let machine = MachineConfig::ppc7410();
        let p = program();
        let t = collect_trace(&p, &machine);
        let direct = FeatureVector::extract(&p.methods()[0].blocks()[0]);
        assert_eq!(t[0].features, direct);
    }

    #[test]
    fn estimated_channels_match_scheduler_cost_model() {
        // With the default Cheap estimator, est_* must equal what the
        // scheduler itself reported before the provider refactor.
        let machine = MachineConfig::ppc7410();
        let p = program();
        let t = collect_trace(&p, &machine);
        let scheduler = ListScheduler::new(&machine);
        for (r, (_, block)) in t.iter().zip(p.iter_blocks()) {
            let outcome = scheduler.schedule_block(block);
            assert_eq!(r.est_unsched, outcome.cycles_before);
            assert_eq!(r.est_sched, outcome.cycles_after);
        }
    }

    #[test]
    fn providers_are_swappable() {
        // Labeling against the detailed model: est_* now come from the
        // pipeline simulator instead of the cheap model.
        let machine = MachineConfig::ppc7410();
        let p = program();
        let opts =
            TraceOptions { estimated: EstimatorKind::Detailed, measured: EstimatorKind::Cheap, ..Default::default() };
        let t = collect_trace_with(&p, &machine, &opts);
        let sim = PipelineSim::new(&machine);
        let cm = CostModel::new(&machine);
        for (r, (_, block)) in t.iter().zip(p.iter_blocks()) {
            assert_eq!(r.est_unsched, sim.block_cycles(block));
            assert_eq!(r.hw_unsched, cm.block_cycles(block));
        }
    }

    #[test]
    fn sharded_collection_matches_serial_exactly() {
        let machine = MachineConfig::ppc7410();
        let p = wide_program(13);
        let serial =
            collect_trace_with(&p, &machine, &TraceOptions { timing: TimingMode::Deterministic, ..Default::default() });
        for threads in [2, 3, 8, 32] {
            let sharded = collect_trace_with(
                &p,
                &machine,
                &TraceOptions { threads, timing: TimingMode::Deterministic, ..Default::default() },
            );
            assert_eq!(serial, sharded, "sharded ({threads} threads) trace must be bit-identical");
        }
    }

    #[test]
    fn method_trace_is_a_slice_of_the_program_trace() {
        let p = wide_program(5);
        let opts = TraceOptions { timing: TimingMode::Deterministic, ..Default::default() };
        for machine in wts_machine::registry() {
            let whole = collect_trace_with(&p, &machine, &opts);
            let mut stitched = Vec::new();
            for method in p.methods() {
                stitched.extend(collect_method_trace(p.name(), method, &machine, &opts));
            }
            assert_eq!(whole, stitched, "{}: per-method pieces must reassemble exactly", machine.name());
        }
    }

    #[test]
    fn deterministic_timing_copies_work_proxies() {
        let machine = MachineConfig::ppc7410();
        let t = collect_trace_with(
            &program(),
            &machine,
            &TraceOptions { timing: TimingMode::Deterministic, ..Default::default() },
        );
        for r in &t {
            assert_eq!(r.sched_ns, r.sched_work);
            assert_eq!(r.feature_ns, r.feature_work);
        }
    }

    #[test]
    fn filtered_pass_extremes_match_the_fixed_strategies() {
        let machine = MachineConfig::ppc7410();
        let p = wide_program(6);
        let opts = TraceOptions { timing: TimingMode::Deterministic, ..Default::default() };
        let ls = filtered_schedule_pass(&p, &machine, &crate::AlwaysSchedule.compile(), &opts);
        assert_eq!(ls.total_blocks, p.block_count());
        assert_eq!(ls.scheduled_blocks, p.block_count());
        assert_eq!(ls.conditions_evaluated + ls.extraction_work, 0, "LS consults nothing");
        let trace = collect_trace_with(&p, &machine, &opts);
        assert_eq!(ls.sched_work, trace.iter().map(|r| r.sched_work).sum::<u64>(), "same work proxy as tracing");
        let ns = filtered_schedule_pass(&p, &machine, &crate::NeverSchedule.compile(), &opts);
        assert_eq!(ns.scheduled_blocks, 0);
        assert_eq!(ns.sched_work, 0);
        assert_eq!(ns.overhead_fraction(), 0.0);
    }

    #[test]
    fn filtered_pass_agrees_with_trace_classification_and_shards_identically() {
        let machine = MachineConfig::ppc7410();
        let p = wide_program(9);
        let opts = TraceOptions { timing: TimingMode::Deterministic, ..Default::default() };
        let compiled = crate::SizeThresholdFilter::new(3).compile();
        let serial = filtered_schedule_pass(&p, &machine, &compiled, &opts);
        // Same decisions as classifying the collected trace.
        let trace = collect_trace_with(&p, &machine, &opts);
        let counts = crate::runtime_classification(&trace, &crate::SizeThresholdFilter::new(3));
        assert_eq!(serial.scheduled_blocks, counts.ls);
        assert_eq!(serial.conditions_evaluated, p.block_count() as u64, "one condition per block");
        // Work channels are thread-count invariant.
        for threads in [2, 4, 16] {
            let sharded = filtered_schedule_pass(&p, &machine, &compiled, &TraceOptions { threads, ..opts });
            assert_eq!(
                (sharded.total_blocks, sharded.scheduled_blocks, sharded.conditions_evaluated),
                (serial.total_blocks, serial.scheduled_blocks, serial.conditions_evaluated),
                "{threads} threads"
            );
            assert_eq!((sharded.extraction_work, sharded.sched_work), (serial.extraction_work, serial.sched_work));
        }
    }

    #[test]
    fn superblock_scope_collects_one_record_per_trace() {
        let machine = MachineConfig::ppc7410();
        let p = crate::testutil::mergeable_suite(2).remove(0);
        let opts =
            TraceOptions { scope: ScopeKind::Superblock(70), timing: TimingMode::Deterministic, ..Default::default() };
        let t = collect_trace_with(&p, &machine, &opts);
        // Each method forms one width-3 hot trace + one cold width-1 trace.
        assert_eq!(t.len(), 2 * 2);
        use wts_features::FeatureKind;
        let widths: Vec<f64> = t.iter().map(|r| r.features.get(FeatureKind::TraceWidth)).collect();
        assert_eq!(widths, vec![3.0, 1.0, 3.0, 1.0]);
        for r in &t {
            let width = r.features.get(FeatureKind::TraceWidth);
            let exits = r.features.get(FeatureKind::SideExits);
            assert_eq!(exits, width - 1.0, "each internal block boundary carries one bc side exit");
            assert_eq!(r.features.get(FeatureKind::TraceLen), r.features.get(FeatureKind::BbLen));
            assert!(r.est_sched <= r.est_unsched, "the speculative schedule never worsens the estimate");
        }
        // Merged traces identify as their entry blocks.
        assert_eq!(t[0].block, wts_ir::BlockId(0));
        assert_eq!(t[1].block, wts_ir::BlockId(3));
    }

    #[test]
    fn superblock_scope_speculation_beats_or_matches_block_scope() {
        // The merged trace can hoist the second block's independent work
        // above the side exit, so the summed estimated-sched cycles at
        // superblock scope never exceed the per-block sum.
        let machine = MachineConfig::ppc7410();
        let opts = TraceOptions { timing: TimingMode::Deterministic, ..Default::default() };
        let sb_opts = TraceOptions { scope: ScopeKind::Superblock(70), ..opts };
        for p in crate::testutil::mergeable_suite(4) {
            let blocks = collect_trace_with(&p, &machine, &opts);
            let traces = collect_trace_with(&p, &machine, &sb_opts);
            let block_cost: u64 = blocks.iter().map(|r| r.exec_count * r.est_sched).sum();
            let trace_cost: u64 = traces.iter().map(|r| r.exec_count * r.est_sched).sum();
            assert!(trace_cost <= block_cost, "{}: {trace_cost} vs {block_cost}", p.name());
        }
    }

    #[test]
    fn superblock_scope_sharded_collection_matches_serial_exactly() {
        let machine = MachineConfig::ppc7410();
        let p = wide_program(13);
        let base =
            TraceOptions { scope: ScopeKind::Superblock(70), timing: TimingMode::Deterministic, ..Default::default() };
        let serial = collect_trace_with(&p, &machine, &base);
        for threads in [2, 3, 8] {
            let sharded = collect_trace_with(&p, &machine, &TraceOptions { threads, ..base });
            assert_eq!(serial, sharded, "{threads} threads");
        }
        // And the per-method pieces reassemble exactly, as the matrix
        // sharding requires.
        let mut stitched = Vec::new();
        for method in p.methods() {
            stitched.extend(collect_method_trace(p.name(), method, &machine, &base));
        }
        assert_eq!(serial, stitched);
    }

    #[test]
    fn filtered_pass_at_superblock_scope_decides_per_trace() {
        let machine = MachineConfig::ppc7410();
        let p = crate::testutil::mergeable_suite(4).remove(0);
        let opts =
            TraceOptions { scope: ScopeKind::Superblock(70), timing: TimingMode::Deterministic, ..Default::default() };
        let ls = filtered_schedule_pass(&p, &machine, &crate::AlwaysSchedule.compile(), &opts);
        let trace = collect_trace_with(&p, &machine, &opts);
        assert_eq!(ls.total_blocks, trace.len(), "units are traces, not blocks");
        assert_eq!(ls.scheduled_blocks, trace.len());
        assert_eq!(ls.sched_work, trace.iter().map(|r| r.sched_work).sum::<u64>(), "same speculative work proxy");
        // A size filter separates the fat merged traces from the cold
        // singletons, exactly as classifying the collected trace does.
        let compiled = crate::SizeThresholdFilter::new(3).compile();
        let counts = crate::runtime_classification(&trace, &crate::SizeThresholdFilter::new(3));
        let filtered = filtered_schedule_pass(&p, &machine, &compiled, &opts);
        assert_eq!(filtered.scheduled_blocks, counts.ls);
        assert!(filtered.scheduled_blocks < filtered.total_blocks, "cold singleton traces are skipped");
        for threads in [2, 8] {
            let sharded = filtered_schedule_pass(&p, &machine, &compiled, &TraceOptions { threads, ..opts });
            assert_eq!(
                (sharded.total_blocks, sharded.scheduled_blocks, sharded.sched_work, sharded.extraction_work),
                (filtered.total_blocks, filtered.scheduled_blocks, filtered.sched_work, filtered.extraction_work),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn unit_server_totals_are_bit_identical_to_the_direct_pass() {
        let machine = MachineConfig::ppc7410();
        let compiled = crate::SizeThresholdFilter::new(3).compile();
        let policy = crate::DecisionPolicy::HardThreshold;
        let opts = TraceOptions { timing: TimingMode::Deterministic, ..Default::default() };
        for p in crate::testutil::mergeable_suite(3) {
            // Block scope: one served unit per basic block.
            let direct = filtered_schedule_pass_with(&p, &machine, &compiled, &policy, &opts);
            let mut server = UnitServer::new(&machine, opts.policy);
            let mut totals = FilteredPass::default();
            for (_, block) in p.iter_blocks() {
                server.serve_block(block.insts(), block.exec_count(), &compiled, &policy, &mut totals);
            }
            assert_eq!(
                (totals.total_blocks, totals.scheduled_blocks, totals.conditions_evaluated),
                (direct.total_blocks, direct.scheduled_blocks, direct.conditions_evaluated),
                "{}",
                p.name()
            );
            assert_eq!((totals.extraction_work, totals.sched_work), (direct.extraction_work, direct.sched_work));

            // Superblock scope: one served unit per formed trace.
            let sb_opts = TraceOptions { scope: ScopeKind::Superblock(70), ..opts };
            let direct = filtered_schedule_pass_with(&p, &machine, &compiled, &policy, &sb_opts);
            let mut totals = FilteredPass::default();
            for method in p.methods() {
                for sb in form_superblocks(method, 70) {
                    server.serve_superblock(&sb, &compiled, &policy, &mut totals);
                }
            }
            assert_eq!(
                (totals.total_blocks, totals.scheduled_blocks, totals.extraction_work, totals.sched_work),
                (direct.total_blocks, direct.scheduled_blocks, direct.extraction_work, direct.sched_work),
                "{} at superblock scope",
                p.name()
            );
        }
    }

    #[test]
    fn served_units_carry_a_valid_permutation_or_nothing() {
        let machine = MachineConfig::ppc7410();
        let compiled = crate::SizeThresholdFilter::new(3).compile();
        let policy = crate::DecisionPolicy::HardThreshold;
        let mut server = UnitServer::new(&machine, SchedulePolicy::CriticalPath);
        let mut totals = FilteredPass::default();
        let p = program();
        let mut served = Vec::new();
        for (_, block) in p.iter_blocks() {
            served.push((block.insts().len(), server.serve_block(block.insts(), 1, &compiled, &policy, &mut totals)));
        }
        assert!(served.iter().any(|(_, u)| u.decision) && served.iter().any(|(_, u)| !u.decision));
        for (len, unit) in &served {
            if unit.decision {
                let mut order = unit.order.clone();
                order.sort_unstable();
                assert_eq!(
                    order,
                    (0..u32::try_from(*len).expect("unit sizes fit u32")).collect::<Vec<_>>(),
                    "a permutation of the unit"
                );
                assert!(unit.cycles_after <= unit.cycles_before, "CPS never worsens the estimate");
                assert!(unit.cycles_before > 0);
            } else {
                assert_eq!(*unit, ServedUnit::default(), "skipped units report nothing");
            }
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let opts = TraceOptions { threads: 0, ..Default::default() };
        assert!(opts.resolved_threads() >= 1);
        // And the collection still works.
        let machine = MachineConfig::ppc7410();
        let t = collect_trace_with(&wide_program(4), &machine, &opts);
        assert_eq!(t.len(), 12);
    }
}
