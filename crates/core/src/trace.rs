//! Trace collection: the instrumented scheduling pass.

use std::time::Instant;
use wts_features::FeatureVector;
use wts_ir::{BlockId, MethodId, Program};
use wts_machine::{MachineConfig, PipelineSim};
use wts_sched::{ListScheduler, SchedulePolicy};

/// One line of the paper's trace file, plus the extra ground-truth and
/// timing channels this reproduction needs.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Benchmark (program) the block came from.
    pub benchmark: String,
    /// Method within the program.
    pub method: MethodId,
    /// Block within the program.
    pub block: BlockId,
    /// Profile execution count of the block.
    pub exec_count: u64,
    /// The Table 1 features.
    pub features: FeatureVector,
    /// Cheap-estimator cycles of the original order (labeling input).
    pub est_unsched: u64,
    /// Cheap-estimator cycles after list scheduling (labeling input).
    pub est_sched: u64,
    /// Detailed-simulator cycles of the original order ("hardware").
    pub hw_unsched: u64,
    /// Detailed-simulator cycles after list scheduling ("hardware").
    pub hw_sched: u64,
    /// Wall-clock nanoseconds the scheduler spent on this block.
    pub sched_ns: u64,
    /// Wall-clock nanoseconds feature extraction took.
    pub feature_ns: u64,
    /// Deterministic work proxy for scheduling (instructions + DAG edges),
    /// used where tests need run-to-run stability.
    pub sched_work: u64,
    /// Deterministic work proxy for feature extraction (instructions).
    pub feature_work: u64,
}

impl TraceRecord {
    /// Estimated improvement fraction under the cheap model
    /// (`0.10` = scheduling made the block 10% faster).
    pub fn est_improvement(&self) -> f64 {
        if self.est_unsched == 0 {
            return 0.0;
        }
        (self.est_unsched as f64 - self.est_sched as f64) / self.est_unsched as f64
    }

    /// Measured improvement fraction under the detailed model.
    pub fn hw_improvement(&self) -> f64 {
        if self.hw_unsched == 0 {
            return 0.0;
        }
        (self.hw_unsched as f64 - self.hw_sched as f64) / self.hw_unsched as f64
    }
}

/// Runs the instrumented scheduling pass over every block of `program`
/// with the default CPS policy.
pub fn collect_trace(program: &Program, machine: &MachineConfig) -> Vec<TraceRecord> {
    collect_trace_with_policy(program, machine, SchedulePolicy::CriticalPath)
}

/// Runs the instrumented scheduling pass with an explicit policy (used by
/// the scheduler-independence ablation).
pub fn collect_trace_with_policy(
    program: &Program,
    machine: &MachineConfig,
    policy: SchedulePolicy,
) -> Vec<TraceRecord> {
    let scheduler = ListScheduler::with_policy(machine, policy);
    let hw = PipelineSim::new(machine);
    let mut out = Vec::with_capacity(program.block_count());
    for (method, block) in program.iter_blocks() {
        let t0 = Instant::now();
        let features = FeatureVector::extract(block);
        let feature_ns = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let outcome = scheduler.schedule_block(block);
        let sched_ns = t1.elapsed().as_nanos() as u64;

        let scheduled = outcome.apply(block);
        let hw_unsched = hw.block_cycles(block);
        let hw_sched = hw.block_cycles(&scheduled);
        let graph = wts_deps::DepGraph::build(block.insts());

        out.push(TraceRecord {
            benchmark: program.name().to_string(),
            method: method.id(),
            block: block.id(),
            exec_count: block.exec_count(),
            features,
            est_unsched: outcome.cycles_before,
            est_sched: outcome.cycles_after,
            hw_unsched,
            hw_sched,
            sched_ns,
            feature_ns,
            // Per-block setup (DAG allocation) + linear nodes/edges work +
            // the selection loop's quadratic earliest-start queries.
            // Matches the measured ~26:1 sched:feature cost on the
            // generated corpus.
            sched_work: (16 + 2 * (block.len() + graph.edge_count()) + block.len() * block.len()) as u64,
            feature_work: block.len() as u64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::{BasicBlock, Inst, MemRef, MemSpace, Method, Opcode, Reg};

    fn program() -> Program {
        let mut p = Program::new("trace-test");
        let mut m = Method::new(0, "m0");
        let mut b0 = BasicBlock::new(0);
        b0.push(Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9)).mem(MemRef::slot(MemSpace::Heap, 0)));
        b0.push(Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)));
        b0.push(Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(8)).use_(Reg::gpr(8)));
        b0.push(Inst::new(Opcode::Add).def(Reg::gpr(4)).use_(Reg::gpr(7)).use_(Reg::gpr(7)));
        b0.push(Inst::new(Opcode::Add).def(Reg::gpr(5)).use_(Reg::gpr(6)).use_(Reg::gpr(6)));
        b0.set_exec_count(10);
        m.push_block(b0);
        let mut b1 = BasicBlock::new(1);
        b1.push(Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(1));
        m.push_block(b1);
        p.push_method(m);
        p
    }

    #[test]
    fn one_record_per_block() {
        let machine = MachineConfig::ppc7410();
        let t = collect_trace(&program(), &machine);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].benchmark, "trace-test");
        assert_eq!(t[0].exec_count, 10);
        assert_eq!(t[1].exec_count, 1);
    }

    #[test]
    fn estimates_are_consistent() {
        let machine = MachineConfig::ppc7410();
        let t = collect_trace(&program(), &machine);
        for r in &t {
            assert!(r.est_sched <= r.est_unsched, "CPS never worsens the estimate");
            assert!(r.hw_unsched > 0 || r.features.bb_len() == 0);
            assert!(r.est_improvement() >= 0.0);
        }
        // The first block has hideable latency: scheduling should help.
        assert!(t[0].est_improvement() > 0.0);
        // The single-instruction block cannot improve.
        assert_eq!(t[1].est_improvement(), 0.0);
    }

    #[test]
    fn work_proxies_are_deterministic() {
        let machine = MachineConfig::ppc7410();
        let a = collect_trace(&program(), &machine);
        let b = collect_trace(&program(), &machine);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sched_work, y.sched_work);
            assert_eq!(x.feature_work, y.feature_work);
        }
        assert!(a[0].sched_work > a[0].feature_work, "scheduling does strictly more work");
    }

    #[test]
    fn features_match_direct_extraction() {
        let machine = MachineConfig::ppc7410();
        let p = program();
        let t = collect_trace(&p, &machine);
        let direct = FeatureVector::extract(&p.methods()[0].blocks()[0]);
        assert_eq!(t[0].features, direct);
    }
}
