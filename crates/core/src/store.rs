//! The extracted filter lifecycle: a shared, concurrency-safe
//! [`FilterStore`] keyed by `(machine, learner, scope, threshold)`.
//!
//! Before this seam existed, the lifecycle of an induced filter —
//! train, compile, cache, deploy — was smeared across three owners:
//! [`ExperimentRun`](crate::ExperimentRun) kept private per-`(learner,
//! threshold)` `RefCell` caches, [`ExperimentMatrix`](crate::ExperimentMatrix)
//! duplicated them per machine, and the JIT
//! [`CompileSession`](../../wts_jit/struct.CompileSession.html) compiled
//! filters ad hoc at every call. None of those owners could hand a
//! filter to another thread, so nothing long-running (a serving daemon,
//! a background retrainer) could sit on top of the pipeline.
//!
//! The store fixes all of that with one rule: **a filter is published
//! only as an immutable, epoch-tagged snapshot behind an `Arc`.**
//!
//! * **Readers never block writers and never see torn state.** A reader
//!   clones the `Arc<FilterSnapshot>` under a briefly-held read lock;
//!   the snapshot carries the epoch, the source
//!   [`LearnedFilter`](crate::LearnedFilter) and the lowered
//!   [`CompiledFilter`](crate::CompiledFilter) as one allocation, so a
//!   decision made against a snapshot is attributable to exactly one
//!   epoch — there is no window where the epoch says `n` but the rules
//!   are from `n+1`.
//! * **Writers hot-swap atomically.** [`FilterStore::swap`] compiles the
//!   retrained filter *outside* the lock, then replaces the slot's
//!   `Arc` and bumps the per-key epoch in one write-locked map update.
//!   In-flight readers keep their old snapshot alive through their own
//!   `Arc` clone; new readers observe the new epoch.
//! * **Training happens outside every lock.**
//!   [`FilterStore::deployed_or_train`] and
//!   [`FilterStore::loocv_or_train`] run the (expensive) training
//!   closure unlocked and insert first-wins, so two racing trainers of
//!   a deterministic pipeline waste at most one redundant training run
//!   and always agree on the published snapshot.
//!
//! # Examples
//!
//! ```
//! use wts_core::{train_filter, Experiment, FilterKey, FilterStore, LearnerKind, TimingMode};
//! use wts_ir::ScopeKind;
//! use wts_machine::MachineConfig;
//!
//! let programs = wts_core::testutil::learnable_suite(3);
//! let run = Experiment::new(MachineConfig::ppc7410())
//!     .with_timing(TimingMode::Deterministic)
//!     .run(programs);
//!
//! // The run's factory cache *is* a store slot now.
//! let filter = run.factory_filter(0);
//! let key = FilterKey::new("ppc7410", &LearnerKind::default(), ScopeKind::Block, 0);
//! let snap = run.store().get(&key).expect("factory filter was published");
//! assert_eq!(snap.epoch(), 1);
//! assert_eq!(*snap.source(), filter);
//!
//! // A retrainer swaps in a new filter; the epoch advances.
//! let retrained = train_filter(run.all_traces(), &run.train_config(10));
//! let swapped = run.store().swap(key.clone(), retrained);
//! assert_eq!(swapped.epoch(), 2);
//! assert_eq!(run.store().epoch(&key), Some(2));
//! ```

use crate::experiment::LoocvFilters;
use crate::learner::LearnerKind;
use crate::{CompiledFilter, Filter, LearnedFilter};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use wts_ir::ScopeKind;

/// The identity of one deployed filter: which machine it was trained
/// for, which induction backend produced it, at which scheduling scope,
/// and at which labeling threshold.
///
/// Keys order machine-major (then learner, scope, threshold), so a
/// sorted dump of a store groups each machine's filters together the
/// way the cross-machine tables do.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FilterKey {
    machine: String,
    learner: String,
    scope: ScopeKind,
    threshold: u32,
}

impl FilterKey {
    /// A key for `machine`'s filter induced by `learner` at `scope` and
    /// labeling threshold `threshold` (percent).
    pub fn new(machine: &str, learner: &LearnerKind, scope: ScopeKind, threshold: u32) -> FilterKey {
        FilterKey { machine: machine.to_string(), learner: learner.cache_key(), scope, threshold }
    }

    /// The machine name component.
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// The induction-backend component (the learner's canonical cache
    /// key, e.g. `Stump` or `Ripper(..)` with its settings).
    pub fn learner(&self) -> &str {
        &self.learner
    }

    /// The scheduling-scope component.
    pub fn scope(&self) -> ScopeKind {
        self.scope
    }

    /// The labeling-threshold component (percent).
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Scope as a totally ordered pair (`ScopeKind` itself carries no
    /// `Ord`): blocks first, then superblock scopes by ratio.
    fn scope_rank(&self) -> (u8, u32) {
        match self.scope {
            ScopeKind::Block => (0, 0),
            ScopeKind::Superblock(ratio) => (1, ratio),
        }
    }
}

impl PartialOrd for FilterKey {
    fn partial_cmp(&self, other: &FilterKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FilterKey {
    fn cmp(&self, other: &FilterKey) -> std::cmp::Ordering {
        (&self.machine, &self.learner, self.scope_rank(), self.threshold).cmp(&(
            &other.machine,
            &other.learner,
            other.scope_rank(),
            other.threshold,
        ))
    }
}

impl std::fmt::Display for FilterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let scope = match self.scope {
            ScopeKind::Block => "block".to_string(),
            ScopeKind::Superblock(r) => format!("sb{r}"),
        };
        write!(f, "{}/{}/{}/t{}", self.machine, self.learner, scope, self.threshold)
    }
}

/// One published, immutable version of a deployed filter.
///
/// The epoch, the source rule set and the lowered engine travel as one
/// `Arc` allocation: whoever holds a snapshot holds a coherent
/// `(epoch, filter)` pair no concurrent [`FilterStore::swap`] can tear.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterSnapshot {
    key: FilterKey,
    epoch: u64,
    source: LearnedFilter,
    compiled: CompiledFilter,
}

impl FilterSnapshot {
    /// The key this snapshot is published under.
    pub fn key(&self) -> &FilterKey {
        &self.key
    }

    /// The publication epoch: `1` for the first filter a key ever held,
    /// bumped by one on every [`FilterStore::swap`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The induced rule-set filter this snapshot was compiled from.
    pub fn source(&self) -> &LearnedFilter {
        &self.source
    }

    /// The lowered engine form — what the deployed fast path and the
    /// serving workers actually evaluate.
    pub fn compiled(&self) -> &CompiledFilter {
        &self.compiled
    }
}

/// The shared filter registry: deployed snapshots plus LOOCV fold sets,
/// keyed by [`FilterKey`].
///
/// `Send + Sync`; share it as an `Arc<FilterStore>`
/// ([`FilterStore::shared`]). The concurrency contract: readers
/// ([`get`](FilterStore::get)) never block behind a
/// [`swap`](FilterStore::swap) — training and compilation happen
/// outside the lock, and a snapshot, once handed out, is immutable.
pub struct FilterStore {
    deployed: RwLock<BTreeMap<FilterKey, Arc<FilterSnapshot>>>,
    folds: RwLock<BTreeMap<FilterKey, LoocvFilters>>,
}

impl FilterStore {
    /// An empty store.
    pub fn new() -> FilterStore {
        FilterStore { deployed: RwLock::new(BTreeMap::new()), folds: RwLock::new(BTreeMap::new()) }
    }

    /// An empty store behind an `Arc`, ready to hand to pipeline runs,
    /// compile sessions and serving threads.
    pub fn shared() -> Arc<FilterStore> {
        Arc::new(FilterStore::new())
    }

    /// The currently deployed snapshot for `key`, if any. Readers pay
    /// one briefly-held read lock and one `Arc` clone; they never wait
    /// on training or compilation.
    pub fn get(&self, key: &FilterKey) -> Option<Arc<FilterSnapshot>> {
        self.deployed.read().expect("filter store poisoned").get(key).cloned()
    }

    /// The current epoch of `key`'s slot (`None` when nothing has been
    /// published yet).
    pub fn epoch(&self, key: &FilterKey) -> Option<u64> {
        self.get(key).map(|s| s.epoch())
    }

    /// Returns `key`'s deployed snapshot, training and publishing one
    /// (at epoch 1) if the slot is empty.
    ///
    /// `train` runs with no lock held. If another thread publishes the
    /// same key concurrently, the first publication wins and this call
    /// returns it — with a deterministic training pipeline both sides
    /// computed the same filter, so the loser only wasted the redundant
    /// training run.
    pub fn deployed_or_train(&self, key: FilterKey, train: impl FnOnce() -> LearnedFilter) -> Arc<FilterSnapshot> {
        if let Some(hit) = self.get(&key) {
            return hit;
        }
        let source = train();
        let compiled = source.compile();
        #[cfg(all(feature = "verify", debug_assertions))]
        verify_snapshot_model(&key, &source, &compiled);
        let mut slots = self.deployed.write().expect("filter store poisoned");
        if let Some(raced) = slots.get(&key) {
            return Arc::clone(raced);
        }
        let snap = Arc::new(FilterSnapshot { key: key.clone(), epoch: 1, source, compiled });
        slots.insert(key, Arc::clone(&snap));
        snap
    }

    /// Atomically replaces `key`'s deployed filter with `filter`,
    /// bumping the slot's epoch (to 1 when the slot was empty), and
    /// returns the new snapshot.
    ///
    /// Compilation happens before the write lock is taken; the lock
    /// only covers the `BTreeMap` update. Readers holding the previous
    /// snapshot keep it alive through their own `Arc`.
    pub fn swap(&self, key: FilterKey, filter: LearnedFilter) -> Arc<FilterSnapshot> {
        let compiled = filter.compile();
        #[cfg(all(feature = "verify", debug_assertions))]
        verify_snapshot_model(&key, &filter, &compiled);
        let mut slots = self.deployed.write().expect("filter store poisoned");
        let epoch = slots.get(&key).map_or(1, |old| old.epoch + 1);
        #[cfg(all(feature = "verify", debug_assertions))]
        if let Some(old) = slots.get(&key) {
            // The published sequence must be strictly monotone — the
            // invariant `check_store_protocol` proves over the modeled
            // protocol, asserted here on the live one.
            assert!(epoch > old.epoch, "epoch regressed on swap of {key}: {epoch} after {}", old.epoch);
        }
        let snap = Arc::new(FilterSnapshot { key: key.clone(), epoch, source: filter, compiled });
        slots.insert(key, Arc::clone(&snap));
        snap
    }

    /// Returns `key`'s leave-one-benchmark-out fold set, training one if
    /// the slot is empty. Same locking contract as
    /// [`deployed_or_train`](FilterStore::deployed_or_train): `train`
    /// runs unlocked, first publication wins.
    ///
    /// Fold sets are version-free (the evaluation protocol has no
    /// hot-swap story); they live in the store so the whole filter
    /// lifecycle has one owner.
    pub fn loocv_or_train(&self, key: FilterKey, train: impl FnOnce() -> Vec<(String, LearnedFilter)>) -> LoocvFilters {
        if let Some(hit) = self.folds.read().expect("filter store poisoned").get(&key) {
            return Arc::clone(hit);
        }
        let filters: LoocvFilters = Arc::new(train());
        let mut slots = self.folds.write().expect("filter store poisoned");
        if let Some(raced) = slots.get(&key) {
            return Arc::clone(raced);
        }
        slots.insert(key, Arc::clone(&filters));
        filters
    }

    /// The number of deployed (single-filter) slots.
    pub fn len(&self) -> usize {
        self.deployed.read().expect("filter store poisoned").len()
    }

    /// True when no single filter has been deployed yet (LOOCV fold sets
    /// do not count).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every deployed key, in sorted (machine-major) order.
    pub fn keys(&self) -> Vec<FilterKey> {
        self.deployed.read().expect("filter store poisoned").keys().cloned().collect()
    }
}

/// The `verify`-feature debug hook on every store publication: the
/// snapshot's model must pass the `wts-verify` lint before any reader
/// can observe it, so an incoherent artifact never reaches traffic.
#[cfg(all(feature = "verify", debug_assertions))]
fn verify_snapshot_model(key: &FilterKey, source: &LearnedFilter, compiled: &CompiledFilter) {
    let table = wts_verify::ModelTable::from_rule_set(source.rules(), compiled.demand(), key.to_string());
    let diags = wts_verify::lint_model(&table);
    assert!(diags.is_empty(), "filter published under {key} failed the model lint:\n{}", wts_verify::render(&diags));
}

impl Default for FilterStore {
    fn default() -> FilterStore {
        FilterStore::new()
    }
}

impl std::fmt::Debug for FilterStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilterStore")
            .field("deployed", &self.len())
            .field("folds", &self.folds.read().expect("filter store poisoned").len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train_filter, Experiment, TimingMode, TraceRecord, TrainConfig};
    use wts_machine::MachineConfig;

    fn corpus() -> Vec<TraceRecord> {
        let run = Experiment::new(MachineConfig::ppc7410())
            .with_timing(TimingMode::Deterministic)
            .run(crate::testutil::learnable_suite(3));
        run.all_traces().to_vec()
    }

    fn key(machine: &str, t: u32) -> FilterKey {
        FilterKey::new(machine, &LearnerKind::Stump, ScopeKind::Block, t)
    }

    #[test]
    fn keys_order_machine_major_and_scopes_totally() {
        let mut keys = [
            FilterKey::new("b", &LearnerKind::Stump, ScopeKind::Block, 0),
            FilterKey::new("a", &LearnerKind::Stump, ScopeKind::Superblock(70), 0),
            FilterKey::new("a", &LearnerKind::Stump, ScopeKind::Block, 10),
            FilterKey::new("a", &LearnerKind::Stump, ScopeKind::Block, 0),
            FilterKey::new("a", &LearnerKind::Stump, ScopeKind::Superblock(50), 0),
        ];
        keys.sort();
        let display: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
        assert_eq!(
            display,
            ["a/Stump/block/t0", "a/Stump/block/t10", "a/Stump/sb50/t0", "a/Stump/sb70/t0", "b/Stump/block/t0"]
        );
    }

    #[test]
    fn deployed_or_train_publishes_once_then_caches() {
        let traces = corpus();
        let store = FilterStore::new();
        let config = TrainConfig::with_threshold(0);
        let mut trained = 0;
        let a = store.deployed_or_train(key("m", 0), || {
            trained += 1;
            train_filter(&traces, &config)
        });
        assert_eq!(a.epoch(), 1);
        assert_eq!(trained, 1);
        let b = store.deployed_or_train(key("m", 0), || unreachable!("slot is warm"));
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the published snapshot");
        assert_eq!(store.len(), 1);
        assert_eq!(store.keys(), [key("m", 0)]);
    }

    #[test]
    fn swap_bumps_the_epoch_and_keeps_old_snapshots_alive() {
        let traces = corpus();
        let store = FilterStore::new();
        let k = key("m", 0);
        let config = TrainConfig::with_threshold(0);
        let first = store.deployed_or_train(k.clone(), || train_filter(&traces, &config));
        let retrained = train_filter(&traces, &TrainConfig::with_threshold(10));
        let second = store.swap(k.clone(), retrained.clone());
        assert_eq!((first.epoch(), second.epoch()), (1, 2));
        assert_eq!(store.epoch(&k), Some(2));
        // The old snapshot is untouched — a reader that grabbed it before
        // the swap still sees a coherent epoch-1 pair.
        assert_eq!(first.epoch(), 1);
        assert_eq!(second.source(), &retrained);
        assert_eq!(second.compiled(), &retrained.compile());
        // Swapping into an empty slot starts a fresh epoch sequence.
        let fresh = store.swap(key("other", 0), retrained);
        assert_eq!(fresh.epoch(), 1);
    }

    #[test]
    fn loocv_slot_is_shared_and_first_wins() {
        let traces = corpus();
        let store = FilterStore::new();
        let config = TrainConfig::with_threshold(0);
        let a = store.loocv_or_train(key("m", 0), || crate::train_loocv_sharded(&traces, &config, 1));
        let b = store.loocv_or_train(key("m", 0), || unreachable!("fold slot is warm"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 3, "one fold per benchmark");
        assert!(store.is_empty(), "fold sets are not deployed filters");
    }

    #[test]
    fn concurrent_swaps_and_readers_agree_on_final_epoch() {
        let traces = corpus();
        let store = FilterStore::shared();
        let k = key("m", 0);
        let filter = train_filter(&traces, &TrainConfig::with_threshold(0));
        store.swap(k.clone(), filter.clone());
        let swaps_per_writer = 25u64;
        std::thread::scope(|s| {
            for _ in 0..2 {
                let store = Arc::clone(&store);
                let k = k.clone();
                let filter = filter.clone();
                s.spawn(move || {
                    for _ in 0..swaps_per_writer {
                        store.swap(k.clone(), filter.clone());
                    }
                });
            }
            let store = Arc::clone(&store);
            let k = k.clone();
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..200 {
                    let snap = store.get(&k).expect("slot stays populated");
                    assert!(snap.epoch() >= last, "epochs are monotonic under concurrent swaps");
                    last = snap.epoch();
                }
            });
        });
        assert_eq!(store.epoch(&k), Some(1 + 2 * swaps_per_writer));
    }
}
