//! The paper's contribution: learned *filters* that decide, per basic
//! block, whether running the instruction scheduler is worth it.
//!
//! The pipeline mirrors §2.2 of Cavazos & Moss:
//!
//! 1. **Trace** ([`collect_trace`]): as the JIT compiles each method, the
//!    instrumented scheduler emits, per block, the Table 1 features plus
//!    the estimated block cost without scheduling and with list
//!    scheduling (both from the cheap cost model), the detailed-simulator
//!    costs used as "measured" ground truth, and the observed scheduling
//!    and feature-extraction times.
//! 2. **Label** ([`LabelConfig`]): a block is `LS` when scheduling
//!    improves the estimate by more than `t`%, `NS` when scheduling does
//!    not improve it at all, and *dropped* when the benefit is between 0
//!    and `t`% (the noise-reduction trick of §4.4).
//! 3. **Train** ([`train_filter`], [`train_loocv`]): an induction
//!    backend — RIPPER (the paper's learner), a decision-stump sweep or
//!    a depth-capped greedy tree, all behind the [`Learner`] trait —
//!    induces an if-then rule set over the features;
//!    leave-one-benchmark-out cross-validation reproduces the paper's
//!    protocol.
//! 4. **Evaluate** ([`classification_matrix`], [`sched_time_ratio`],
//!    [`app_time_ratio`], …): classification accuracy (Table 3),
//!    predicted execution times (Table 4), training-set sizes (Table 5),
//!    run-time classification counts (Table 6), scheduling-time ratios
//!    (Figures 1a/2a/3a) and application-time ratios (Figures 1b/2b/3b).
//!
//! Deployment is served by the compiled engine: [`CompiledFilter`]
//! lowers any filter into a flat condition table with a feature demand
//! mask, so classification runs over demand-masked extraction
//! ([`wts_features::FeatureVector::extract_masked`]) and contiguous
//! [`FeatureBatch`] columns, and every evaluation artifact charges the
//! filter's *honest* cost — conditions actually evaluated plus masked
//! extraction work — instead of flat constants.
//!
//! The free functions are the stages; [`Experiment`] is the pipeline.
//! It owns the whole sequence — policy and estimator selection, sharded
//! trace collection, threshold labeling, fold-parallel LOOCV training
//! and every evaluation artifact — behind one configurable type, and is
//! what the table/figure regenerators and benches are built on.
//! [`ExperimentMatrix`] lifts the pipeline across the whole machine
//! registry: one `Experiment` per machine model, sharded as a single
//! machines×methods work list, with per-machine rule sets, a
//! cross-machine transfer table and the learner portfolio
//! ([`MatrixRun::portfolio`]) on top.
//!
//! # Examples
//!
//! ```
//! use wts_core::{Filter, SizeThresholdFilter};
//! use wts_features::FeatureVector;
//! use wts_ir::{BasicBlock, Inst, Opcode, Reg};
//!
//! let mut b = BasicBlock::new(0);
//! for i in 0..8u16 {
//!     b.push(Inst::new(Opcode::Add).def(Reg::gpr(i + 1)).use_(Reg::gpr(0)).use_(Reg::gpr(0)));
//! }
//! let filter = SizeThresholdFilter::new(5);
//! assert!(filter.should_schedule(&FeatureVector::extract(&b)));
//! ```

mod engine;
mod eval;
mod experiment;
mod filter;
mod io;
mod label;
mod learner;
mod matrix;
pub mod parallel;
mod policy;
mod store;
#[doc(hidden)]
pub mod testutil;
mod trace;
mod train;

pub use engine::{CompiledFilter, CompiledFilterError, FeatureBatch, FilterScore};
pub use eval::{
    app_time_ratio, classification_matrix, oracle_times, predicted_time_ratio, runtime_classification,
    sched_time_policy, sched_time_ratio, ClassCounts, EvalTimes,
};
pub use experiment::{CorpusError, Experiment, ExperimentRun, LoocvFilters};
pub use filter::{AlwaysSchedule, Filter, LearnedFilter, NeverSchedule, SizeThresholdFilter};
pub use io::{
    read_trace, read_trace_auto, read_trace_binary, write_trace, write_trace_binary, BinCursor, BinaryTraceError,
    ParseTraceError, TraceReadError, TraceWriteError,
};
pub use label::{build_dataset, LabelConfig};
pub use learner::{Learner, LearnerKind};
pub use matrix::{CalibrationRow, ExperimentMatrix, MachinePortfolio, MatrixRun, PortfolioEntry};
pub use policy::{BenefitModel, DecisionPolicy, UnitEconomics};
pub use store::{FilterKey, FilterSnapshot, FilterStore};
pub use trace::{
    collect_method_trace, collect_trace, collect_trace_with, collect_trace_with_policy, collect_trace_with_providers,
    filtered_schedule_pass, filtered_schedule_pass_with, FilteredPass, ServedUnit, TimingMode, TraceOptions,
    TraceRecord, UnitServer,
};
pub use train::{train_filter, train_loocv, train_loocv_sharded, TrainConfig};
// The scope axis: formation lives in `wts_ir`, the pipeline threads it.
pub use wts_ir::{form_superblocks, ScopeKind, Superblock};
