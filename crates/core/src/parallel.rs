//! The one sharding scaffold every parallel stage shares.
//!
//! Trace collection shards over methods, LOOCV training over folds and
//! the JIT compile session over methods again; all three use the same
//! contiguous-chunk `std::thread::scope` pattern. Keeping it here means
//! a future change (thread caps, panic policy) lands everywhere at once.

/// Resolves a configured worker count: `0` means one worker per
/// available core, anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Splits `items` into at most `threads` contiguous chunks, maps each
/// chunk through `f` on a scoped worker thread, and returns the chunk
/// results in order.
///
/// With one effective chunk (serial config, or too few items) `f` runs
/// inline on the current thread — no spawn — so the serial path has
/// zero threading overhead and, because chunks are contiguous and
/// results ordered, the concatenated output is identical either way.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn shard_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let threads = resolve_threads(threads).max(1);
    if threads == 1 || items.len() <= 1 {
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(threads);
    let mut results = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items.chunks(chunk).map(|slice| scope.spawn(|| f(slice))).collect();
        results = handles.into_iter().map(|h| h.join().expect("sharded worker panicked")).collect();
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_is_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn shard_map_preserves_order_for_any_thread_count() {
        let items: Vec<u32> = (0..100).collect();
        let serial: Vec<Vec<u32>> = shard_map(&items, 1, |s| s.iter().map(|x| x * 2).collect());
        let flat_serial: Vec<u32> = serial.into_iter().flatten().collect();
        for threads in [2, 3, 8, 64] {
            let sharded = shard_map(&items, threads, |s| s.iter().map(|x| x * 2).collect::<Vec<_>>());
            let flat: Vec<u32> = sharded.into_iter().flatten().collect();
            assert_eq!(flat, flat_serial, "{threads} threads");
        }
    }

    #[test]
    fn empty_and_single_inputs_run_inline() {
        assert_eq!(shard_map(&[] as &[u32], 8, |s| s.len()), vec![0]);
        assert_eq!(shard_map(&[42u32], 8, |s| s[0]), vec![42]);
    }
}
