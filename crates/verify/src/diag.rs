//! The diagnostics core shared by every analysis.
//!
//! Message convention (shared with `wts_ir::ValidateError`): lowercase
//! prose naming the offending instruction by opcode and index, followed
//! by the consequence — e.g. `missing true dependence edge 2 -> 5: an
//! illegal reordering of lwz and add would go undetected`. The header
//! (`severity[analysis] machine method M unit U:`) carries the location;
//! the message carries the explanation.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not unsound: lost parallelism, a dependence kind
    /// recorded differently than re-derived.
    Warning,
    /// A soundness problem: an illegal schedule is possible or has been
    /// produced, or the cost bookkeeping disagrees with the machine model.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which analysis produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Analysis {
    /// Structural IR validity (`wts_ir::validate`).
    Structure,
    /// Dependence-graph soundness and completeness against the reference
    /// oracle.
    Dependence,
    /// Schedule legality and timing: permutation/dependence order, claimed
    /// cycle counts, issue-width and functional-unit capacity.
    Timing,
    /// Superblock speculation safety: side-effecting instructions vs side
    /// exits, entry identity.
    Speculation,
    /// Model-artifact coherence: shadowed/contradictory rules, non-finite
    /// thresholds, out-of-range calibrated scores, demand-mask drift.
    Model,
    /// Serve/store protocol safety: epoch monotonicity, batch atomicity
    /// across hot swaps, response uniqueness, drain losslessness.
    Protocol,
}

impl Analysis {
    /// All analyses, in reporting order.
    pub const ALL: [Analysis; 6] = [
        Analysis::Structure,
        Analysis::Dependence,
        Analysis::Timing,
        Analysis::Speculation,
        Analysis::Model,
        Analysis::Protocol,
    ];
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Analysis::Structure => write!(f, "structure"),
            Analysis::Dependence => write!(f, "dependence"),
            Analysis::Timing => write!(f, "timing"),
            Analysis::Speculation => write!(f, "speculation"),
            Analysis::Model => write!(f, "model"),
            Analysis::Protocol => write!(f, "protocol"),
        }
    }
}

/// One finding: where it is, which analysis found it, how bad it is, and
/// a prose explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// The analysis that produced it.
    pub analysis: Analysis,
    /// Target machine name (registry key).
    pub machine: String,
    /// Method id, when the unit came from a program sweep.
    pub method: Option<u32>,
    /// Scheduling-unit id: the block id, or the superblock's entry block id.
    pub unit: Option<u32>,
    /// The explanation, in `wts_ir::ValidateError` prose style.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.analysis, self.machine)?;
        if let Some(m) = self.method {
            write!(f, " method {m}")?;
        }
        if let Some(u) = self.unit {
            write!(f, " unit {u}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The location context a batch of diagnostics shares: which machine the
/// unit was verified against and (optionally) which method/unit it is.
#[derive(Debug, Clone)]
pub struct UnitCtx {
    machine: String,
    method: Option<u32>,
    unit: Option<u32>,
}

impl UnitCtx {
    /// A context carrying only the machine name (hook call sites, which
    /// see anonymous instruction slices).
    pub fn new(machine: &str) -> UnitCtx {
        UnitCtx { machine: machine.to_string(), method: None, unit: None }
    }

    /// A fully-located context for program sweeps.
    pub fn located(machine: &str, method: u32, unit: u32) -> UnitCtx {
        UnitCtx { machine: machine.to_string(), method: Some(method), unit: Some(unit) }
    }

    /// Builds a diagnostic at this location.
    pub fn diag(&self, severity: Severity, analysis: Analysis, message: String) -> Diagnostic {
        Diagnostic { severity, analysis, machine: self.machine.clone(), method: self.method, unit: self.unit, message }
    }

    /// An error diagnostic at this location.
    pub fn error(&self, analysis: Analysis, message: String) -> Diagnostic {
        self.diag(Severity::Error, analysis, message)
    }

    /// A warning diagnostic at this location.
    pub fn warning(&self, analysis: Analysis, message: String) -> Diagnostic {
        self.diag(Severity::Warning, analysis, message)
    }
}

/// Renders diagnostics one per line — the panic payload of the
/// `verify`-feature hooks and the detail dump of `repro verify`.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&d.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_location_and_message() {
        let ctx = UnitCtx::located("ppc7410", 3, 7);
        let d = ctx.error(Analysis::Timing, "claimed 12 cycles but re-simulation takes 14".into());
        assert_eq!(
            d.to_string(),
            "error[timing] ppc7410 method 3 unit 7: claimed 12 cycles but re-simulation takes 14"
        );
    }

    #[test]
    fn display_omits_missing_location_parts() {
        let ctx = UnitCtx::new("wide4");
        let d = ctx.warning(Analysis::Dependence, "spurious edge 1 -> 2".into());
        assert_eq!(d.to_string(), "warning[dependence] wide4: spurious edge 1 -> 2");
    }

    #[test]
    fn errors_order_above_warnings() {
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn render_is_one_line_per_diagnostic() {
        let ctx = UnitCtx::new("embedded");
        let diags = vec![ctx.error(Analysis::Structure, "a".into()), ctx.warning(Analysis::Speculation, "b".into())];
        assert_eq!(render(&diags), "error[structure] embedded: a\nwarning[speculation] embedded: b\n");
    }
}
