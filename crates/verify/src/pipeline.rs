//! Driving the analyses: per-unit verification for the pipeline hooks
//! and whole-program sweeps for `repro verify`.

use crate::deps::check_dependences;
use crate::diag::{Analysis, Diagnostic, Severity, UnitCtx};
use crate::spec::check_speculation;
use crate::timing::check_timing;
use wts_deps::DepGraph;
use wts_ir::{form_superblocks, Inst, Program, ScopeKind};
use wts_machine::MachineConfig;
use wts_sched::{
    verify_schedule_all_against, ListScheduler, SchedScratch, ScheduleOutcome, SchedulePolicy, VerifyError,
};

/// Verifies one scheduling unit end to end: the dependence graph against
/// the oracle, the order against the graph, the timing claims against
/// the re-simulation, and (for speculative traces) speculation safety.
///
/// This is the entry point the `verify`-feature hooks call on every unit
/// the pipeline schedules. An empty vector means the unit is clean.
pub fn verify_unit(
    machine: &MachineConfig,
    insts: &[Inst],
    speculative: bool,
    outcome: &ScheduleOutcome,
) -> Vec<Diagnostic> {
    let ctx = UnitCtx::new(machine.name());
    verify_unit_in(&ctx, machine, insts, speculative, outcome)
}

/// [`verify_unit`] with an explicit location context (program sweeps).
pub fn verify_unit_in(
    ctx: &UnitCtx,
    machine: &MachineConfig,
    insts: &[Inst],
    speculative: bool,
    outcome: &ScheduleOutcome,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let graph = if speculative { DepGraph::build_speculative(insts) } else { DepGraph::build(insts) };
    check_dependences(ctx, insts, speculative, &graph, &mut out);

    // Schedule legality reuses the shared permutation walk, against the
    // same (possibly speculative) graph the scheduler used.
    let order_errors = verify_schedule_all_against(&graph, &outcome.order);
    let order_ok = order_errors.is_empty();
    let perm_ok = !order_errors
        .iter()
        .any(|e| matches!(e, VerifyError::LengthMismatch { .. } | VerifyError::NotAPermutation { .. }));
    for e in order_errors {
        out.push(ctx.error(Analysis::Timing, e.to_string()));
    }

    // Timing claims need a fully legal order; speculation safety is an
    // independent pairwise check and only needs a valid permutation (a
    // hoisted store is both a dependence violation *and* a speculation
    // finding).
    if order_ok {
        check_timing(ctx, machine, insts, outcome, &mut out);
    }
    if speculative && perm_ok {
        check_speculation(ctx, insts, &outcome.order, &mut out);
    }
    out
}

/// What a whole-program sweep found.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The machine verified against.
    pub machine: String,
    /// Scheduling units examined.
    pub units: usize,
    /// Units whose schedule actually changed the order.
    pub changed: usize,
    /// Everything the analyses reported.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// True when no analysis reported anything.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics attributed to one analysis.
    pub fn count(&self, analysis: Analysis) -> usize {
        self.diagnostics.iter().filter(|d| d.analysis == analysis).count()
    }

    /// Error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Folds another report over the same machine into this one.
    pub fn merge(&mut self, other: VerifyReport) {
        debug_assert_eq!(self.machine, other.machine);
        self.units += other.units;
        self.changed += other.changed;
        self.diagnostics.extend(other.diagnostics);
    }
}

/// Runs the full checker over every scheduling unit of `program`:
/// structural validation per block, then dependence/timing/speculation
/// verification of the schedule each unit gets under `policy` and
/// `scope` on `machine`.
pub fn verify_program(
    program: &Program,
    machine: &MachineConfig,
    policy: SchedulePolicy,
    scope: ScopeKind,
) -> VerifyReport {
    let scheduler = ListScheduler::with_policy(machine, policy);
    let mut scratch = SchedScratch::new(machine);
    let mut outcome = ScheduleOutcome::default();
    let mut report =
        VerifyReport { machine: machine.name().to_string(), units: 0, changed: 0, diagnostics: Vec::new() };

    for method in program.methods() {
        let mid = method.id().0;
        // Structural validity first: the analyses assume well-formed IR.
        for block in method.blocks() {
            if let Err(e) = block.validate() {
                let ctx = UnitCtx::located(machine.name(), mid, block.id().0);
                report.diagnostics.push(ctx.error(Analysis::Structure, e.to_string()));
            }
        }
        match scope {
            ScopeKind::Block => {
                for block in method.blocks() {
                    let ctx = UnitCtx::located(machine.name(), mid, block.id().0);
                    scheduler.schedule_insts_into(block.insts(), &mut scratch, &mut outcome);
                    report.units += 1;
                    report.changed += usize::from(outcome.changed());
                    report.diagnostics.extend(verify_unit_in(&ctx, machine, block.insts(), false, &outcome));
                }
            }
            ScopeKind::Superblock(ratio) => {
                for sb in form_superblocks(method, ratio) {
                    let ctx = UnitCtx::located(machine.name(), mid, sb.entry_id());
                    let speculative = sb.width() > 1;
                    if speculative {
                        scheduler.schedule_superblock_into(&sb.insts, &mut scratch, &mut outcome);
                    } else {
                        scheduler.schedule_insts_into(&sb.insts, &mut scratch, &mut outcome);
                    }
                    report.units += 1;
                    report.changed += usize::from(outcome.changed());
                    report.diagnostics.extend(verify_unit_in(&ctx, machine, &sb.insts, speculative, &outcome));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::{BasicBlock, MemRef, MemSpace, Method, Opcode, Reg};

    fn small_program() -> Program {
        let mut p = Program::new("verify-unit-test");
        let mut m = Method::new(0, "m0");
        let mut b = BasicBlock::from_insts(
            0,
            vec![
                Inst::new(Opcode::Lwz).def(Reg::gpr(1)).mem(MemRef::slot(MemSpace::Stack, 0)),
                Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)),
                Inst::new(Opcode::Fadd).def(Reg::fpr(1)).use_(Reg::fpr(2)).use_(Reg::fpr(3)),
                Inst::new(Opcode::Stw).use_(Reg::gpr(2)).mem(MemRef::slot(MemSpace::Stack, 0)),
                Inst::new(Opcode::Bc),
            ],
        );
        b.set_exec_count(100);
        m.push_block(b);
        let mut b2 = BasicBlock::from_insts(
            1,
            vec![Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(2)).use_(Reg::gpr(2)), Inst::new(Opcode::Blr)],
        );
        b2.set_exec_count(60);
        m.push_block(b2);
        p.push_method(m);
        p
    }

    #[test]
    fn the_untampered_pipeline_is_clean_on_every_machine_policy_and_scope() {
        let program = small_program();
        for machine in wts_machine::registry() {
            for policy in [
                SchedulePolicy::CriticalPath,
                SchedulePolicy::EarliestStart,
                SchedulePolicy::CriticalPathOnly,
                SchedulePolicy::Random(7),
            ] {
                for scope in [ScopeKind::Block, ScopeKind::Superblock(70)] {
                    let report = verify_program(&program, &machine, policy, scope);
                    assert!(report.units > 0);
                    assert!(
                        report.is_clean(),
                        "{} {policy} {scope}:\n{}",
                        machine.name(),
                        crate::render(&report.diagnostics)
                    );
                }
            }
        }
    }

    #[test]
    fn a_swapped_pair_in_a_claimed_outcome_is_caught() {
        let machine = MachineConfig::ppc7410();
        let insts = small_program().methods()[0].blocks()[0].insts().to_vec();
        let scheduler = ListScheduler::new(&machine);
        let mut outcome = scheduler.schedule_insts(&insts);
        // Tamper: swap the load and its consumer in the final order.
        let a = outcome.order.iter().position(|&i| i == 0).unwrap();
        let b = outcome.order.iter().position(|&i| i == 1).unwrap();
        outcome.order.swap(a, b);
        let diags = verify_unit(&machine, &insts, false, &outcome);
        assert!(
            diags.iter().any(|d| d.message.contains("dependence 0 -> 1 violated by order")),
            "{}",
            crate::render(&diags)
        );
    }

    #[test]
    fn structural_rot_is_reported_through_the_same_diagnostics() {
        let mut program = small_program();
        // Tamper: a terminator in the middle of block 0.
        let method = &mut program.methods_mut()[0];
        let insts = method.blocks()[0].insts().to_vec();
        let mut rotted = vec![Inst::new(Opcode::Blr)];
        rotted.extend(insts);
        method.blocks_mut()[0] = BasicBlock::from_insts(0, rotted);
        let report =
            verify_program(&program, &MachineConfig::ppc7410(), SchedulePolicy::CriticalPath, ScopeKind::Block);
        assert!(
            report.diagnostics.iter().any(|d| d.analysis == Analysis::Structure),
            "{}",
            crate::render(&report.diagnostics)
        );
    }

    #[test]
    fn reports_merge_counts_and_diagnostics() {
        let program = small_program();
        let machine = MachineConfig::ppc7410();
        let mut a = verify_program(&program, &machine, SchedulePolicy::CriticalPath, ScopeKind::Block);
        let b = verify_program(&program, &machine, SchedulePolicy::EarliestStart, ScopeKind::Block);
        let units = a.units + b.units;
        a.merge(b);
        assert_eq!(a.units, units);
        assert!(a.is_clean());
    }
}
