//! Model-artifact lints: interval-domain reachability over the feature
//! space, score calibration checks, and demand-mask coherence.
//!
//! Every deployed filter is an *induced* artifact — untrusted code on the
//! scheduler's hot path. This analysis vets the one shape every filter
//! lowers to (an ordered condition table with calibrated scores and a
//! feature-demand mask, see [`ModelTable`]) before it is hot-swapped into
//! traffic:
//!
//! * **reachability** — each rule's feasible region is the intersection
//!   of per-feature intervals (fractions live in `[0, 1]`, counts in
//!   `[0, ∞)`). An empty intersection is a contradictory conjunction; a
//!   rule whose region is contained in an earlier rule's accept region
//!   is shadowed (first-firing-rule semantics mean it can never fire);
//! * **calibration** — thresholds must be finite and scores must be
//!   probabilities in `[0, 1]` (the Laplace-smoothed confidences the
//!   pipeline emits always are);
//! * **demand** — the [`FeatureMask`] must cover every feature the table
//!   reads (masked extraction zeroes undemanded slots, so a smaller mask
//!   silently changes decisions) and should not demand more (wasted
//!   extraction work);
//! * **threshold proof** — [`prove_hard_threshold`] derives, over the
//!   *whole* domain rather than sampled points, a witness threshold `t`
//!   with `decide ≡ score ≥ t`.
//!
//! The interval domain is an over-approximation: a rule it calls
//! reachable may still be dead (union coverage by several earlier rules
//! is not representable), but a rule it flags is *definitely* dead, and
//! the threshold proof only ever widens the candidate score set — every
//! witness it produces is sound.

use crate::diag::{Analysis, Diagnostic, UnitCtx};
use std::fmt;
use wts_features::{FeatureKind, FeatureMask};
use wts_ripper::{Op, RuleSet};

/// One conjunct of a lintable rule: `attr <op> threshold` with `attr` a
/// dense [`FeatureKind::index`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LintCond {
    /// Dense feature index ([`FeatureKind::index`]).
    pub attr: usize,
    /// Comparison direction.
    pub op: Op,
    /// Threshold value.
    pub threshold: f64,
}

impl fmt::Display for LintCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match FeatureKind::from_index(self.attr) {
            Some(k) => write!(f, "{} {} {}", k.rule_name(), self.op, self.threshold),
            None => write!(f, "attr{} {} {}", self.attr, self.op, self.threshold),
        }
    }
}

/// The one shape every deployable filter lowers to: ordered conjunctive
/// rules with per-rule calibrated scores, a default score for the reject
/// region, and the feature-demand mask extraction will honour.
///
/// Built from a [`RuleSet`] via [`ModelTable::from_rule_set`] (the same
/// lowering the engine performs) or assembled directly by mutation tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelTable {
    /// Display name (filter tag or store key).
    pub name: String,
    /// Rules in firing order; each rule is a conjunction of conditions.
    pub rules: Vec<Vec<LintCond>>,
    /// Calibrated score emitted when the corresponding rule fires first.
    pub scores: Vec<f64>,
    /// Calibrated score emitted when no rule fires.
    pub default_score: f64,
    /// The features extraction is told to materialize.
    pub demand: FeatureMask,
}

impl ModelTable {
    /// Lowers a rule set the way the engine does: conditions verbatim,
    /// per-rule Laplace confidences as scores, the default's residual
    /// positive rate as the default score.
    pub fn from_rule_set(rules: &RuleSet, demand: FeatureMask, name: impl Into<String>) -> ModelTable {
        ModelTable {
            name: name.into(),
            rules: rules
                .rules()
                .iter()
                .map(|r| {
                    r.conditions().iter().map(|c| LintCond { attr: c.attr, op: c.op, threshold: c.threshold }).collect()
                })
                .collect(),
            scores: (0..rules.len()).map(|k| rules.rule_confidence(k)).collect(),
            default_score: rules.default_confidence(),
            demand,
        }
    }

    /// The features any condition reads (the table's true demand).
    pub fn reads(&self) -> FeatureMask {
        let mut m = FeatureMask::EMPTY;
        for c in self.rules.iter().flatten() {
            if let Some(k) = FeatureKind::from_index(c.attr) {
                m = m.with(k);
            }
        }
        m
    }
}

/// A closed interval `[lo, hi]`; empty when `lo > hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The value domain of a feature: fractions in `[0, 1]`, counts in
    /// `[0, ∞)`.
    fn domain(kind: FeatureKind) -> Interval {
        if kind.is_count() {
            Interval { lo: 0.0, hi: f64::INFINITY }
        } else {
            Interval { lo: 0.0, hi: 1.0 }
        }
    }

    fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Narrows by one condition (finite threshold assumed).
    fn meet(self, op: Op, threshold: f64) -> Interval {
        match op {
            Op::Le => Interval { lo: self.lo, hi: self.hi.min(threshold) },
            Op::Ge => Interval { lo: self.lo.max(threshold), hi: self.hi },
        }
    }

    /// True when every point of `self` satisfies `op threshold`.
    fn satisfies(self, op: Op, threshold: f64) -> bool {
        match op {
            Op::Le => self.hi <= threshold,
            Op::Ge => self.lo >= threshold,
        }
    }
}

/// The feasible box of one rule: a per-feature interval map, or `None`
/// when the rule references an unknown attribute (no sound box exists).
#[derive(Debug, Clone, PartialEq)]
struct RuleBox {
    ivs: [Interval; FeatureKind::COUNT],
}

impl RuleBox {
    fn full() -> RuleBox {
        let mut ivs = [Interval { lo: 0.0, hi: 1.0 }; FeatureKind::COUNT];
        for kind in FeatureKind::ALL {
            ivs[kind.index()] = Interval::domain(kind);
        }
        RuleBox { ivs }
    }

    fn is_empty(&self) -> bool {
        self.ivs.iter().any(|iv| iv.is_empty())
    }

    fn is_full_domain(&self) -> bool {
        FeatureKind::ALL.iter().all(|k| self.ivs[k.index()] == Interval::domain(*k))
    }

    /// True when every point of this box satisfies all of `conds`
    /// (i.e. the box is contained in the conjunction's accept region).
    /// Conditions on unknown attributes or with non-finite thresholds
    /// are conservatively *not* satisfied.
    fn satisfies_all(&self, conds: &[LintCond]) -> bool {
        conds.iter().all(|c| {
            c.threshold.is_finite() && c.attr < FeatureKind::COUNT && self.ivs[c.attr].satisfies(c.op, c.threshold)
        })
    }
}

/// Per-rule reachability derived by the interval domain, shared by the
/// lint pass and the threshold proof.
struct Reachability {
    /// `None` when the rule references an unknown attribute (unanalyzable);
    /// otherwise the rule's feasible box.
    boxes: Vec<Option<RuleBox>>,
    /// Contradictory conjunction: the feasible box is empty.
    contradictory: Vec<bool>,
    /// Shadowed by the (single) earlier rule recorded here.
    shadowed_by: Vec<Option<usize>>,
}

impl Reachability {
    fn compute(table: &ModelTable) -> Reachability {
        let boxes: Vec<Option<RuleBox>> = table
            .rules
            .iter()
            .map(|conds| {
                // Unknown attributes and non-finite thresholds get their
                // own diagnostics; no sound box exists for such a rule.
                if conds.iter().any(|c| c.attr >= FeatureKind::COUNT || !c.threshold.is_finite()) {
                    return None;
                }
                let mut b = RuleBox::full();
                for c in conds {
                    b.ivs[c.attr] = b.ivs[c.attr].meet(c.op, c.threshold);
                }
                Some(b)
            })
            .collect();
        let contradictory: Vec<bool> = boxes.iter().map(|b| b.as_ref().is_some_and(RuleBox::is_empty)).collect();
        let mut shadowed_by = vec![None; table.rules.len()];
        for k in 0..table.rules.len() {
            if contradictory[k] {
                continue;
            }
            let Some(bk) = &boxes[k] else { continue };
            shadowed_by[k] =
                (0..k).find(|&j| !contradictory[j] && boxes[j].is_some() && bk.satisfies_all(&table.rules[j]));
        }
        Reachability { boxes, contradictory, shadowed_by }
    }

    /// A rule that can actually fire first on some input: non-empty box,
    /// not shadowed by an earlier rule. Unanalyzable rules (unknown
    /// attribute) count as reachable — the sound direction for the proof.
    fn reachable(&self, k: usize) -> bool {
        !self.contradictory[k] && self.shadowed_by[k].is_none()
    }

    /// True when rule `k`'s feasible box is the whole feature domain, so
    /// the default row below it is dead.
    fn covers_domain(&self, k: usize) -> bool {
        self.boxes[k].as_ref().is_some_and(RuleBox::is_full_domain)
    }
}

/// Appends model-coherence diagnostics for `table` to `out`.
pub fn check_model(ctx: &UnitCtx, table: &ModelTable, out: &mut Vec<Diagnostic>) {
    // Score-table shape first: per-rule score checks below index by rule.
    if table.scores.len() != table.rules.len() {
        out.push(ctx.error(
            Analysis::Model,
            format!("score table has {} entries for {} rules", table.scores.len(), table.rules.len()),
        ));
    }

    // Calibration: finite thresholds, probability scores.
    for (k, conds) in table.rules.iter().enumerate() {
        for c in conds {
            if c.attr >= FeatureKind::COUNT {
                out.push(ctx.error(
                    Analysis::Model,
                    format!("rule {k} reads unknown attribute {}: not a known feature", c.attr),
                ));
            }
            if !c.threshold.is_finite() {
                out.push(ctx.error(Analysis::Model, format!("rule {k} condition {c}: non-finite threshold")));
            }
        }
    }
    for (k, &s) in table.scores.iter().enumerate().take(table.rules.len()) {
        if !s.is_finite() || !(0.0..=1.0).contains(&s) {
            out.push(ctx.error(Analysis::Model, format!("rule {k} calibrated score {s} is outside [0, 1]")));
        }
    }
    if !table.default_score.is_finite() || !(0.0..=1.0).contains(&table.default_score) {
        out.push(
            ctx.error(Analysis::Model, format!("default calibrated score {} is outside [0, 1]", table.default_score)),
        );
    }

    // Demand coherence.
    let reads = table.reads();
    for kind in reads.kinds() {
        if !table.demand.contains(kind) {
            out.push(ctx.error(
                Analysis::Model,
                format!(
                    "demand mask {} omits {} which the condition table reads: masked extraction leaves it 0 and decisions diverge from the source rules",
                    table.demand,
                    kind.rule_name()
                ),
            ));
        }
    }
    for kind in table.demand.kinds() {
        if !reads.contains(kind) {
            out.push(ctx.warning(
                Analysis::Model,
                format!("demand mask extracts {} but no condition reads it: wasted extraction work", kind.rule_name()),
            ));
        }
    }

    // Interval-domain reachability.
    let reach = Reachability::compute(table);
    for (k, conds) in table.rules.iter().enumerate() {
        if reach.contradictory[k] {
            let parts: Vec<String> = conds.iter().map(LintCond::to_string).collect();
            out.push(ctx.error(
                Analysis::Model,
                format!("rule {k} is a contradictory conjunction ({}): its feasible region is empty", parts.join(", ")),
            ));
        } else if let Some(j) = reach.shadowed_by[k] {
            out.push(ctx.warning(
                Analysis::Model,
                format!("rule {k} is shadowed by rule {j}: every unit it accepts already fires rule {j} first"),
            ));
        }
    }

    // Dead default / trivially-constant filters. The canonical constant
    // forms — zero rules (never) and a single condition-free rule
    // (always) — are legitimate artifacts and stay clean; the lint
    // targets tables that *spend conditions* computing a constant.
    let canonical_always = table.rules.len() == 1 && table.rules[0].is_empty();
    if !canonical_always {
        if let Some(k) = (0..table.rules.len()).find(|&k| reach.reachable(k) && reach.covers_domain(k)) {
            out.push(ctx.warning(
                Analysis::Model,
                format!(
                    "rule {k} accepts the entire feature domain: the default row is dead and the filter is trivially constant"
                ),
            ));
        }
    }
    if !table.rules.is_empty() && (0..table.rules.len()).all(|k| !reach.reachable(k)) {
        out.push(ctx.warning(
            Analysis::Model,
            "no rule is reachable: the filter is trivially constant (always the default row)".to_string(),
        ));
    }
}

/// Lints one model table, returning its diagnostics.
pub fn lint_model(table: &ModelTable) -> Vec<Diagnostic> {
    let ctx = UnitCtx::new(&table.name);
    let mut out = Vec::new();
    check_model(&ctx, table, &mut out);
    out.sort_by_key(|d| std::cmp::Reverse(d.severity));
    out
}

/// The outcome of [`prove_hard_threshold`]: which rows the interval
/// domain proves reachable, the emitted-score bounds that follow, and —
/// when the accept and reject score sets separate — a witness threshold
/// `t` with `decide(x) ⟺ score(x) ≥ t` for *every* point of the
/// feature domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdProof {
    /// Indices of rules the interval domain could not rule out.
    pub reachable_rules: Vec<usize>,
    /// Whether the default row can be reached (conservatively `true`
    /// unless a single reachable rule covers the whole domain).
    pub default_reachable: bool,
    /// Minimum calibrated score over the reachable rules (`None` when no
    /// rule is reachable).
    pub min_rule_score: Option<f64>,
    /// The default row's calibrated score.
    pub default_score: f64,
    /// A threshold `t` such that `decide ≡ score ≥ t` over the whole
    /// domain, when one exists.
    pub witness: Option<f64>,
}

impl ThresholdProof {
    /// True when the equivalence `decide ≡ score ≥ t` was established.
    pub fn holds(&self) -> bool {
        self.witness.is_some()
    }
}

/// Proves `decide ≡ score ≥ t` under a hard threshold, over the whole
/// feature domain rather than sampled points.
///
/// The argument: at any point `x`, the first *firing* rule is never one
/// the interval domain flags as shadowed (if rule `k` fires at `x` and
/// `box(k) ⊆ accept(j)` for some `j < k`, then `j` also fires at `x`, so
/// `k` is not first). Hence the score emitted on accept always belongs
/// to a rule the analysis calls reachable, and `score(x) ≥ m`, the
/// minimum reachable-rule score. On reject the score is exactly the
/// default score `d`. If `d < m`, any `t ∈ (d, m]` witnesses the
/// equivalence — we return the midpoint. Because the interval domain
/// over-approximates reachability, `m` only ever shrinks below the true
/// minimum emitted score: a returned witness is always sound, and
/// inseparability (`d ≥ m`) is reported conservatively.
pub fn prove_hard_threshold(table: &ModelTable) -> ThresholdProof {
    let reach = Reachability::compute(table);
    let reachable_rules: Vec<usize> = (0..table.rules.len()).filter(|&k| reach.reachable(k)).collect();
    let default_reachable = !reachable_rules.iter().any(|&k| reach.covers_domain(k));
    let min_rule_score = reachable_rules
        .iter()
        .filter_map(|&k| table.scores.get(k).copied())
        .fold(None, |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.min(s))));
    let d = table.default_score;
    let witness = match (min_rule_score, default_reachable) {
        // Nothing can fire: decide ≡ false, and the only emitted score
        // is d, so any threshold above it witnesses the equivalence.
        (None, _) => Some(d + 0.5),
        // The reject region is unreachable: decide ≡ true, and every
        // emitted score is ≥ m.
        (Some(m), false) => Some(m),
        (Some(m), true) => {
            if d < m {
                Some((d + m) / 2.0)
            } else {
                None
            }
        }
    };
    ThresholdProof { reachable_rules, default_reachable, min_rule_score, default_score: d, witness }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use wts_ripper::{Condition, Rule, RuleStats};

    fn kidx(k: FeatureKind) -> usize {
        k.index()
    }

    fn cond(attr: FeatureKind, op: Op, threshold: f64) -> LintCond {
        LintCond { attr: kidx(attr), op, threshold }
    }

    fn table(rules: Vec<Vec<LintCond>>, scores: Vec<f64>, default_score: f64) -> ModelTable {
        let mut demand = FeatureMask::EMPTY;
        for c in rules.iter().flatten() {
            if let Some(k) = FeatureKind::from_index(c.attr) {
                demand = demand.with(k);
            }
        }
        ModelTable { name: "test".into(), rules, scores, default_score, demand }
    }

    #[test]
    fn clean_table_has_no_diagnostics() {
        let t = table(
            vec![
                vec![cond(FeatureKind::BbLen, Op::Ge, 7.0), cond(FeatureKind::Calls, Op::Le, 0.0857)],
                vec![cond(FeatureKind::BbLen, Op::Ge, 15.0), cond(FeatureKind::Loads, Op::Ge, 0.4)],
            ],
            vec![0.92, 0.81],
            0.07,
        );
        assert!(lint_model(&t).is_empty(), "{}", crate::render(&lint_model(&t)));
    }

    #[test]
    fn shadowed_rule_is_flagged() {
        // Rule 1's region (bbLen >= 9) is inside rule 0's accept region
        // (bbLen >= 5): rule 1 can never fire first.
        let t = table(
            vec![vec![cond(FeatureKind::BbLen, Op::Ge, 5.0)], vec![cond(FeatureKind::BbLen, Op::Ge, 9.0)]],
            vec![0.9, 0.8],
            0.1,
        );
        let diags = lint_model(&t);
        assert_eq!(diags.len(), 1, "{}", crate::render(&diags));
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("rule 1 is shadowed by rule 0"), "{}", diags[0]);
    }

    #[test]
    fn reordered_rules_are_not_shadowed() {
        // Specific rule first, general rule second: both reachable.
        let t = table(
            vec![vec![cond(FeatureKind::BbLen, Op::Ge, 9.0)], vec![cond(FeatureKind::BbLen, Op::Ge, 5.0)]],
            vec![0.9, 0.8],
            0.1,
        );
        assert!(lint_model(&t).is_empty());
    }

    #[test]
    fn contradictory_conjunction_is_an_error() {
        let t = table(
            vec![vec![cond(FeatureKind::BbLen, Op::Le, 2.0), cond(FeatureKind::BbLen, Op::Ge, 7.0)]],
            vec![0.9],
            0.1,
        );
        let diags = lint_model(&t);
        assert_eq!(diags.len(), 2, "{}", crate::render(&diags));
        assert!(diags
            .iter()
            .any(|d| { d.severity == Severity::Error && d.message.contains("contradictory conjunction") }));
        assert!(diags.iter().any(|d| d.message.contains("no rule is reachable")));
    }

    #[test]
    fn fraction_domain_bounds_detect_contradictions() {
        // loads >= 1.5 is empty on a fraction feature even without a
        // second condition — the domain is [0, 1].
        let t = table(vec![vec![cond(FeatureKind::Loads, Op::Ge, 1.5)]], vec![0.9], 0.1);
        let diags = lint_model(&t);
        assert!(diags.iter().any(|d| d.message.contains("contradictory conjunction")), "{}", crate::render(&diags));
        // The same bound on a count feature is fine.
        let t = table(vec![vec![cond(FeatureKind::BbLen, Op::Ge, 1.5)]], vec![0.9], 0.1);
        assert!(lint_model(&t).is_empty());
    }

    #[test]
    fn non_finite_threshold_is_an_error() {
        let t = table(vec![vec![cond(FeatureKind::BbLen, Op::Ge, f64::NAN)]], vec![0.9], 0.1);
        let diags = lint_model(&t);
        assert_eq!(diags.len(), 1, "{}", crate::render(&diags));
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("non-finite threshold"), "{}", diags[0]);
    }

    #[test]
    fn out_of_range_scores_are_errors() {
        let t = table(vec![vec![cond(FeatureKind::BbLen, Op::Ge, 7.0)]], vec![1.2], 0.1);
        assert!(lint_model(&t).iter().any(|d| d.message.contains("calibrated score 1.2 is outside")));
        let t = table(vec![vec![cond(FeatureKind::BbLen, Op::Ge, 7.0)]], vec![0.9], -0.5);
        assert!(lint_model(&t).iter().any(|d| d.message.contains("default calibrated score -0.5 is outside")));
        let t = table(vec![vec![cond(FeatureKind::BbLen, Op::Ge, 7.0)]], vec![f64::NAN], 0.1);
        assert!(lint_model(&t).iter().any(|d| d.message.contains("outside [0, 1]")));
    }

    #[test]
    fn narrow_demand_mask_is_an_error() {
        let mut t = table(
            vec![vec![cond(FeatureKind::BbLen, Op::Ge, 7.0), cond(FeatureKind::Loads, Op::Ge, 0.3)]],
            vec![0.9],
            0.1,
        );
        t.demand = FeatureMask::of([FeatureKind::BbLen]);
        let diags = lint_model(&t);
        assert_eq!(diags.len(), 1, "{}", crate::render(&diags));
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("omits loads"), "{}", diags[0]);
    }

    #[test]
    fn wide_demand_mask_is_a_warning() {
        let mut t = table(vec![vec![cond(FeatureKind::BbLen, Op::Ge, 7.0)]], vec![0.9], 0.1);
        t.demand = FeatureMask::of([FeatureKind::BbLen, FeatureKind::Stores]);
        let diags = lint_model(&t);
        assert_eq!(diags.len(), 1, "{}", crate::render(&diags));
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("extracts stores"), "{}", diags[0]);
    }

    #[test]
    fn vacuous_rule_kills_the_default_row() {
        // loads <= 1 accepts the whole fraction domain: constant filter.
        let t = table(
            vec![vec![cond(FeatureKind::Loads, Op::Le, 1.0)], vec![cond(FeatureKind::BbLen, Op::Ge, 7.0)]],
            vec![0.9, 0.8],
            0.1,
        );
        let diags = lint_model(&t);
        assert!(diags.iter().any(|d| d.message.contains("default row is dead")), "{}", crate::render(&diags));
        assert!(diags.iter().any(|d| d.message.contains("rule 1 is shadowed by rule 0")), "{}", crate::render(&diags));
    }

    #[test]
    fn canonical_constant_filters_stay_clean() {
        // Zero rules: the canonical "never" filter.
        let never = table(vec![], vec![], 0.0);
        assert!(lint_model(&never).is_empty());
        // One condition-free rule: the canonical "always" filter.
        let always = table(vec![vec![]], vec![1.0], 0.0);
        assert!(lint_model(&always).is_empty());
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let t = table(vec![vec![LintCond { attr: 99, op: Op::Ge, threshold: 1.0 }]], vec![0.9], 0.1);
        let diags = lint_model(&t);
        assert!(diags.iter().any(|d| d.message.contains("not a known feature")), "{}", crate::render(&diags));
    }

    #[test]
    fn score_table_shape_mismatch_is_an_error() {
        let t = table(vec![vec![cond(FeatureKind::BbLen, Op::Ge, 7.0)]], vec![0.9, 0.8], 0.1);
        let diags = lint_model(&t);
        assert!(diags.iter().any(|d| d.message.contains("score table has 2 entries for 1 rules")));
    }

    #[test]
    fn threshold_proof_separable() {
        let t = table(
            vec![vec![cond(FeatureKind::BbLen, Op::Ge, 7.0)], vec![cond(FeatureKind::BbLen, Op::Ge, 5.0)]],
            vec![0.9, 0.6],
            0.1,
        );
        let proof = prove_hard_threshold(&t);
        assert!(proof.holds());
        assert_eq!(proof.reachable_rules, vec![0, 1]);
        assert_eq!(proof.min_rule_score, Some(0.6));
        let w = proof.witness.unwrap();
        assert!(0.1 < w && w <= 0.6, "witness {w} must lie in (d, m]");
    }

    #[test]
    fn threshold_proof_excludes_unreachable_scores() {
        // The shadowed rule's low score (0.05 < default 0.1) would break
        // separability under point-free reasoning over *all* rows — the
        // interval domain proves it can never be emitted.
        let t = table(
            vec![vec![cond(FeatureKind::BbLen, Op::Ge, 5.0)], vec![cond(FeatureKind::BbLen, Op::Ge, 9.0)]],
            vec![0.9, 0.05],
            0.1,
        );
        let proof = prove_hard_threshold(&t);
        assert_eq!(proof.reachable_rules, vec![0]);
        assert_eq!(proof.min_rule_score, Some(0.9));
        assert!(proof.holds());
    }

    #[test]
    fn threshold_proof_inseparable_when_a_rule_scores_below_the_default() {
        let t = table(
            vec![vec![cond(FeatureKind::BbLen, Op::Ge, 7.0)], vec![cond(FeatureKind::BbLen, Op::Le, 2.0)]],
            vec![0.9, 0.05],
            0.1,
        );
        let proof = prove_hard_threshold(&t);
        assert!(!proof.holds());
        assert_eq!(proof.min_rule_score, Some(0.05));
    }

    #[test]
    fn threshold_proof_constant_filters() {
        // decide ≡ false: witness above the only emitted score.
        let never = table(vec![], vec![], 0.3);
        let p = prove_hard_threshold(&never);
        assert!(p.holds());
        assert!(p.witness.unwrap() > 0.3);
        assert!(p.min_rule_score.is_none());
        // decide ≡ true: the default row is dead.
        let always = table(vec![vec![]], vec![0.7], 0.3);
        let p = prove_hard_threshold(&always);
        assert!(p.holds());
        assert!(!p.default_reachable);
        assert_eq!(p.witness, Some(0.7));
    }

    #[test]
    fn model_table_lowers_rule_sets_like_the_engine() {
        let rs = RuleSet::new(
            vec!["bbLen".into(), "branches".into()],
            "list",
            "orig",
            vec![Rule::from_conditions(vec![Condition { attr: 0, op: Op::Ge, threshold: 7.0 }])],
            vec![RuleStats { hits: 924, misses: 12 }],
            RuleStats { hits: 27476, misses: 1946 },
        );
        let t = ModelTable::from_rule_set(&rs, FeatureMask::of([FeatureKind::BbLen]), "fold");
        assert_eq!(t.rules.len(), 1);
        assert!((t.scores[0] - 925.0 / 938.0).abs() < 1e-12);
        assert!((t.default_score - 1947.0 / 29424.0).abs() < 1e-12);
        assert!(lint_model(&t).is_empty(), "{}", crate::render(&lint_model(&t)));
        assert!(prove_hard_threshold(&t).holds());
    }
}
