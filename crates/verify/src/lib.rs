//! Translation-validation-style static checking for the scheduling
//! pipeline.
//!
//! The paper's pipeline (Cavazos & Moss, PLDI 2004) rests on three
//! claims it never independently checks: the dependence graph is
//! faithful to the instructions, the scheduler's cycle accounting is
//! faithful to the machine model, and speculative trace scheduling never
//! moves an observable instruction across a side exit. `wts-verify`
//! checks all three from first principles, sharing nothing with the
//! production implementations beyond the `wts-ir` instruction encoding
//! and the documented machine parameters:
//!
//! - **Dependence soundness/completeness** ([`oracle_edges`],
//!   [`check_dependences`]): a deliberately simple O(n²) oracle
//!   re-derives every true/anti/output/memory/control/hazard edge from
//!   def/use/memref sets and demands the CSR [`wts_deps::DepGraph`] has
//!   exactly those edges — a missing edge is unsound (error), an extra
//!   edge is lost parallelism (warning) — plus a consistency audit of
//!   the CSR encoding itself.
//! - **Timing legality** ([`resimulate`], [`check_timing`]): an
//!   independent in-order re-simulation against the
//!   [`wts_machine::MachineConfig`] (latencies, issue/branch width,
//!   functional-unit occupancy) verifies every
//!   [`wts_sched::ScheduleOutcome`]'s claimed cycle counts, audits the
//!   derived issue events for producer-before-consumer, width and unit
//!   capacity violations, and cross-checks both cost providers against
//!   the latency-weighted dependence-chain lower bound.
//! - **Speculation safety** ([`check_speculation`]): no store, call or
//!   hazardous instruction crosses a side exit in a scheduled
//!   superblock trace, and the trace's first control transfer keeps its
//!   identity.
//!
//! Two further analyses vet the *learned* side of the pipeline — the
//! induced artifacts themselves and the machinery that hot-swaps them:
//!
//! - **Model coherence** ([`lint_model`], [`ModelTable`]): interval-domain
//!   reachability over the feature space flags shadowed rules,
//!   contradictory conjunctions and dead default rows; calibration checks
//!   reject non-finite thresholds and out-of-`[0, 1]` scores; demand-mask
//!   checks catch masks that diverge from what the condition table reads;
//!   and [`prove_hard_threshold`] derives a domain-wide witness that
//!   `decide ≡ score ≥ t` under a hard threshold.
//! - **Protocol safety** ([`check_store_protocol`],
//!   [`check_serve_protocol`]): the `FilterStore` epoch protocol and the
//!   `wts-serve` frame exchange as typed state machines, explored by
//!   bounded-exhaustive deterministic DFS over every interleaving —
//!   proving epoch monotonicity, batch atomicity across hot swaps,
//!   exactly-one-response per request id and drain losslessness.
//!
//! Everything reports through [`Diagnostic`] (severity, analysis,
//! machine, method/unit location, prose explanation). [`verify_unit`]
//! checks one scheduled unit — this is what the `verify` cargo feature's
//! debug-assert hooks in `wts-core` and `wts-jit` call — and
//! [`verify_program`] sweeps a whole program under a policy and scope,
//! which `repro verify` runs over a generated corpus × every registry
//! machine.
//!
//! # Examples
//!
//! ```
//! use wts_ir::{Inst, Opcode, Reg};
//! use wts_machine::MachineConfig;
//! use wts_sched::ListScheduler;
//! use wts_verify::verify_unit;
//!
//! let machine = MachineConfig::ppc7410();
//! let insts = vec![
//!     Inst::new(Opcode::Lwz).def(Reg::gpr(1)).mem(wts_ir::MemRef::unknown(wts_ir::MemSpace::Stack)),
//!     Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)),
//! ];
//! let outcome = ListScheduler::new(&machine).schedule_insts(&insts);
//! assert!(verify_unit(&machine, &insts, false, &outcome).is_empty());
//! ```

mod deps;
mod diag;
mod model;
mod pipeline;
mod proto;
mod spec;
mod timing;

pub use deps::{check_dependences, oracle_edges};
pub use diag::{render, Analysis, Diagnostic, Severity, UnitCtx};
pub use model::{check_model, lint_model, prove_hard_threshold, LintCond, ModelTable, ThresholdProof};
pub use pipeline::{verify_program, verify_unit, verify_unit_in, VerifyReport};
pub use proto::{
    check_serve_protocol, check_store_protocol, DrainModel, ProtoReport, ServeProtoConfig, ShedModel, SnapshotModel,
    StoreProtoConfig, SwapModel,
};
pub use spec::check_speculation;
pub use timing::{check_timing, dependence_lower_bound, resimulate, IssueEvent};
