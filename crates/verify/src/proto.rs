//! Protocol model checking: the `FilterStore` epoch protocol and the
//! `wts-serve` frame exchange as explicit typed state machines, explored
//! by bounded-exhaustive deterministic DFS over every interleaving.
//!
//! PR 9 established the serving invariants by *observation* — stress
//! tests that watch a live server and assert nothing went wrong on the
//! schedules the OS happened to produce. This module turns them into
//! *checked models*: each protocol is a small state machine whose
//! enabled transitions are enumerated in a fixed order and explored
//! exhaustively (memoized on state, so the walk terminates), which
//! covers every interleaving of the modeled actors, not just the ones a
//! particular run exhibits. The checked invariants:
//!
//! * **epoch monotonicity** — every published store epoch is strictly
//!   greater than its predecessor, and no swap increment is lost;
//! * **batch atomicity** — a served batch's decisions are attributable
//!   to exactly one snapshot epoch (no batch split across a hot swap);
//! * **response uniqueness** — every request id receives exactly one
//!   response (no orphans, no duplicates);
//! * **drain losslessness** — a graceful shutdown absorbs every record
//!   the workers produced into the retrainer.
//!
//! Each machine carries *model-fidelity knobs* ([`SwapModel`],
//! [`SnapshotModel`], [`ShedModel`], [`DrainModel`]): the default value
//! models what the implementation actually does and must check clean;
//! the other value injects a classic bug (read-then-write swap,
//! per-unit snapshot reload, internal retry after shedding, dropping
//! pending records on shutdown) and must be caught. The mutation suite
//! pins both directions.

use crate::diag::{Analysis, Diagnostic, UnitCtx};
use std::collections::HashSet;
use std::hash::Hash;

/// How a writer publishes a new filter epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapModel {
    /// Compute `old + 1` and publish under one write lock — what
    /// `FilterStore::swap` does.
    #[default]
    Atomic,
    /// Read the epoch, release, then publish the staged value later —
    /// the classic lost-update bug. Interleavings regress the epoch.
    ReadThenWrite,
}

/// When a serving worker loads its filter snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotModel {
    /// One snapshot load per batch — what `worker_loop` does.
    #[default]
    PerBatch,
    /// Reload per unit — a swap mid-batch splits the batch across
    /// epochs.
    PerUnit,
}

/// What happens when the request queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedModel {
    /// Respond `Busy` and drop the request — the client owns the retry.
    #[default]
    Reject,
    /// Respond `Busy` but retry internally — the request is eventually
    /// served too, producing a duplicate response for its id.
    RejectAndRetry,
}

/// What a graceful shutdown does with records the retrainer has not yet
/// absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainModel {
    /// Drain the channel and fold the remainder — what `retrain_loop`
    /// does on disconnect.
    #[default]
    FoldRemainder,
    /// Drop whatever is still queued — lossy shutdown.
    DropPending,
}

/// Bound and shape of the store-protocol model.
#[derive(Debug, Clone, Copy)]
pub struct StoreProtoConfig {
    /// Concurrent swapping writers (trainer + retrainer).
    pub writers: usize,
    /// Swaps each writer performs.
    pub swaps_per_writer: usize,
    /// Concurrent serving workers.
    pub workers: usize,
    /// Batches each worker serves.
    pub batches_per_worker: usize,
    /// Decisions per batch.
    pub units_per_batch: usize,
    /// Swap publication model.
    pub swap: SwapModel,
    /// Snapshot load model.
    pub snapshot: SnapshotModel,
}

impl Default for StoreProtoConfig {
    fn default() -> StoreProtoConfig {
        StoreProtoConfig {
            writers: 2,
            swaps_per_writer: 2,
            workers: 2,
            batches_per_worker: 1,
            units_per_batch: 2,
            swap: SwapModel::default(),
            snapshot: SnapshotModel::default(),
        }
    }
}

/// Bound and shape of the serve-protocol model.
#[derive(Debug, Clone, Copy)]
pub struct ServeProtoConfig {
    /// Client requests (distinct ids).
    pub requests: usize,
    /// Serving workers.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it shed.
    pub queue_depth: usize,
    /// Decided units per request.
    pub units_per_request: usize,
    /// Shedding model.
    pub shed: ShedModel,
    /// Shutdown model.
    pub drain: DrainModel,
}

impl Default for ServeProtoConfig {
    fn default() -> ServeProtoConfig {
        ServeProtoConfig {
            requests: 3,
            workers: 2,
            queue_depth: 1,
            units_per_request: 2,
            shed: ShedModel::default(),
            drain: DrainModel::default(),
        }
    }
}

/// The outcome of one exhaustive protocol exploration.
#[derive(Debug, Clone)]
pub struct ProtoReport {
    /// Which machine was checked (diagnostics carry it too).
    pub machine: String,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (interleaving edges explored).
    pub steps: usize,
    /// Invariant violations, one per violation class and location.
    pub diagnostics: Vec<Diagnostic>,
}

impl ProtoReport {
    /// True when every interleaving upheld every invariant.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Exploration ceiling — far above what the default bounds reach, a
/// backstop against accidentally unbounded configurations.
const MAX_STATES: usize = 1 << 20;

/// Deterministic DFS driver shared by both protocol machines: explores
/// every interleaving (memoized on state), collecting deduplicated
/// diagnostics.
struct Explorer<S> {
    seen: HashSet<S>,
    steps: usize,
    emitted: HashSet<String>,
    diags: Vec<Diagnostic>,
    ctx: UnitCtx,
    truncated: bool,
}

impl<S: Clone + Eq + Hash> Explorer<S> {
    fn new(machine: &str) -> Explorer<S> {
        Explorer {
            seen: HashSet::new(),
            steps: 0,
            emitted: HashSet::new(),
            diags: Vec::new(),
            ctx: UnitCtx::new(machine),
            truncated: false,
        }
    }

    fn emit(&mut self, message: String) {
        if self.emitted.insert(message.clone()) {
            self.diags.push(self.ctx.error(Analysis::Protocol, message));
        }
    }

    /// Explores from `state`: `successors` enumerates enabled transitions
    /// in a fixed order (possibly emitting diagnostics), `terminal`
    /// checks end-state invariants when no transition is enabled.
    fn run(
        &mut self,
        state: S,
        successors: &impl Fn(&S, &mut Explorer<S>) -> Vec<S>,
        terminal: &impl Fn(&S, &mut Explorer<S>),
    ) {
        if !self.seen.insert(state.clone()) {
            return;
        }
        if self.seen.len() >= MAX_STATES {
            if !self.truncated {
                self.truncated = true;
                self.emit(format!("state space exceeded {MAX_STATES} states: shrink the protocol bounds"));
            }
            return;
        }
        let next = successors(&state, self);
        if next.is_empty() {
            terminal(&state, self);
            return;
        }
        for s in next {
            self.steps += 1;
            self.run(s, successors, terminal);
        }
    }

    fn report(self, machine: &str) -> ProtoReport {
        ProtoReport {
            machine: machine.to_string(),
            states: self.seen.len(),
            steps: self.steps,
            diagnostics: self.diags,
        }
    }
}

// ---------------------------------------------------------------------------
// FilterStore epoch protocol
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct WriterSt {
    /// Swaps still to perform.
    remaining: u8,
    /// Epoch read but not yet published (`ReadThenWrite` only).
    staged: Option<u8>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ServeBatchSt {
    /// Snapshot epoch loaded at batch start.
    snap: u8,
    /// Epoch observed by each completed unit.
    seen: Vec<u8>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct WorkerSt {
    /// Batches still to serve.
    remaining: u8,
    /// The in-flight batch, if any.
    batch: Option<ServeBatchSt>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StoreState {
    /// The store's published epoch (first deploy publishes 1).
    epoch: u8,
    writers: Vec<WriterSt>,
    workers: Vec<WorkerSt>,
}

/// Model-checks the `FilterStore` epoch protocol: writers hot-swapping a
/// slot while workers serve batches against loaded snapshots. Proves
/// epoch monotonicity (no regression, no lost swap) and batch atomicity
/// (no batch split across a swap) over every interleaving.
pub fn check_store_protocol(cfg: StoreProtoConfig) -> ProtoReport {
    let machine = "filter-store";
    let init = StoreState {
        epoch: 1,
        writers: vec![
            WriterSt {
                remaining: u8::try_from(cfg.swaps_per_writer).expect("swaps_per_writer fits u8"),
                staged: None
            };
            cfg.writers
        ],
        workers: vec![
            WorkerSt {
                remaining: u8::try_from(cfg.batches_per_worker).expect("batches_per_worker fits u8"),
                batch: None
            };
            cfg.workers
        ],
    };
    let expected_final = 1 + u8::try_from(cfg.writers * cfg.swaps_per_writer).expect("total swaps fit u8");

    let successors = move |s: &StoreState, ex: &mut Explorer<StoreState>| {
        let mut next = Vec::new();
        for (w, wr) in s.writers.iter().enumerate() {
            match (cfg.swap, wr.staged) {
                (SwapModel::Atomic, _) if wr.remaining > 0 => {
                    // Read and publish under one lock: old + 1 is
                    // strictly monotone by construction.
                    let mut n = s.clone();
                    n.epoch += 1;
                    n.writers[w].remaining -= 1;
                    next.push(n);
                }
                (SwapModel::ReadThenWrite, None) if wr.remaining > 0 => {
                    let mut n = s.clone();
                    n.writers[w].staged = Some(s.epoch + 1);
                    next.push(n);
                }
                (SwapModel::ReadThenWrite, Some(v)) => {
                    if v <= s.epoch {
                        ex.emit(format!(
                            "hot-swap interleaving regressed the epoch: a writer published {v} after the store reached {}",
                            s.epoch
                        ));
                    }
                    let mut n = s.clone();
                    n.epoch = v;
                    n.writers[w].staged = None;
                    n.writers[w].remaining -= 1;
                    next.push(n);
                }
                _ => {}
            }
        }
        for (k, wk) in s.workers.iter().enumerate() {
            match &wk.batch {
                None if wk.remaining > 0 => {
                    let mut n = s.clone();
                    n.workers[k].batch = Some(ServeBatchSt { snap: s.epoch, seen: Vec::new() });
                    next.push(n);
                }
                Some(b) if b.seen.len() < cfg.units_per_batch => {
                    let mut n = s.clone();
                    let observed = match cfg.snapshot {
                        SnapshotModel::PerBatch => b.snap,
                        SnapshotModel::PerUnit => s.epoch,
                    };
                    let nb = n.workers[k].batch.as_mut().expect("batch in flight");
                    nb.seen.push(observed);
                    if nb.seen.len() == cfg.units_per_batch {
                        let first = nb.seen[0];
                        if let Some(&split) = nb.seen.iter().find(|&&e| e != first) {
                            ex.emit(format!(
                                "batch split across a swap: one unit decided at epoch {first}, another at epoch {split}"
                            ));
                        }
                        n.workers[k].batch = None;
                        n.workers[k].remaining -= 1;
                    }
                    next.push(n);
                }
                _ => {}
            }
        }
        next
    };
    let terminal = move |s: &StoreState, ex: &mut Explorer<StoreState>| {
        if s.epoch != expected_final {
            ex.emit(format!(
                "lost swap: the store finished at epoch {} after {} swaps, expected {expected_final}",
                s.epoch,
                (expected_final - 1)
            ));
        }
    };

    let mut ex = Explorer::new(machine);
    ex.run(init, &successors, &terminal);
    ex.report(machine)
}

// ---------------------------------------------------------------------------
// wts-serve frame exchange
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ReqSt {
    /// Not yet submitted.
    Pending,
    /// Enqueued, waiting for a worker.
    Queued,
    /// Taken by a worker.
    Serving,
    /// Final: the client received a response.
    Done,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ServeState {
    reqs: Vec<ReqSt>,
    /// Responses delivered per request id (saturating at 3 to bound the
    /// state space; 2 already means "duplicate").
    responses: Vec<u8>,
    /// Queued request ids, in order.
    queue: Vec<u8>,
    /// Request id each worker is serving.
    workers: Vec<Option<u8>>,
    /// Result batches produced but not yet absorbed by the retrainer.
    pending_batches: u8,
    /// Units decided by workers / absorbed by the retrainer.
    served_units: u8,
    absorbed_units: u8,
    /// Set once the drain step has run.
    drained: bool,
}

/// Model-checks the `wts-serve` exchange: clients submitting requests
/// into a bounded queue, workers serving and responding, the retrainer
/// absorbing result records, and a graceful drain at shutdown. Proves
/// exactly-one-response per request id and drain losslessness over
/// every interleaving.
pub fn check_serve_protocol(cfg: ServeProtoConfig) -> ProtoReport {
    let machine = "wts-serve";
    let units = u8::try_from(cfg.units_per_request).expect("units_per_request fits u8");
    let init = ServeState {
        reqs: vec![ReqSt::Pending; cfg.requests],
        responses: vec![0; cfg.requests],
        queue: Vec::new(),
        workers: vec![None; cfg.workers],
        pending_batches: 0,
        served_units: 0,
        absorbed_units: 0,
        drained: false,
    };

    let respond = move |n: &mut ServeState, r: usize, ex: &mut Explorer<ServeState>, what: &str| {
        n.responses[r] = n.responses[r].saturating_add(1);
        if n.responses[r] > 1 {
            ex.emit(format!("duplicate response for request id {r}: the client hears from the server twice ({what})"));
        }
    };

    let successors = move |s: &ServeState, ex: &mut Explorer<ServeState>| {
        let mut next = Vec::new();
        // Clients submit pending requests.
        for r in 0..s.reqs.len() {
            if s.reqs[r] != ReqSt::Pending || s.drained {
                continue;
            }
            let mut n = s.clone();
            if s.queue.len() < cfg.queue_depth {
                n.queue.push(u8::try_from(r).expect("request id fits u8"));
                n.reqs[r] = ReqSt::Queued;
            } else {
                // Queue full: shed with a Busy response.
                respond(&mut n, r, ex, "a second busy after shedding");
                n.reqs[r] = match cfg.shed {
                    ShedModel::Reject => ReqSt::Done,
                    // Mutation: the server retries internally, so the
                    // request stays eligible and will be answered again.
                    ShedModel::RejectAndRetry => ReqSt::Pending,
                };
            }
            next.push(n);
        }
        // Workers take and serve.
        for w in 0..s.workers.len() {
            match s.workers[w] {
                None => {
                    if let Some(&r) = s.queue.first() {
                        let mut n = s.clone();
                        n.queue.remove(0);
                        n.workers[w] = Some(r);
                        n.reqs[r as usize] = ReqSt::Serving;
                        next.push(n);
                    }
                }
                Some(r) => {
                    let mut n = s.clone();
                    n.served_units += units;
                    n.pending_batches += 1;
                    respond(&mut n, r as usize, ex, "a batch after an earlier response");
                    n.workers[w] = None;
                    n.reqs[r as usize] = ReqSt::Done;
                    next.push(n);
                }
            }
        }
        // The retrainer absorbs produced batches.
        if s.pending_batches > 0 {
            let mut n = s.clone();
            n.pending_batches -= 1;
            n.absorbed_units += units;
            next.push(n);
        }
        // Graceful shutdown: once every client is answered and the
        // workers are idle, the drain step runs exactly once. It is
        // enabled *concurrently* with the retrainer's absorb step —
        // shutdown races absorption, which is exactly the window a
        // lossy drain loses records in.
        if !s.drained && s.reqs.iter().all(|&r| r == ReqSt::Done) && s.workers.iter().all(Option::is_none) {
            let mut n = s.clone();
            match cfg.drain {
                DrainModel::FoldRemainder => {
                    n.absorbed_units += n.pending_batches * units;
                    n.pending_batches = 0;
                }
                DrainModel::DropPending => {
                    n.pending_batches = 0;
                }
            }
            n.drained = true;
            next.push(n);
        }
        next
    };
    let terminal = move |s: &ServeState, ex: &mut Explorer<ServeState>| {
        for (r, &count) in s.responses.iter().enumerate() {
            if count == 0 {
                ex.emit(format!("orphaned request id {r}: the client never hears back"));
            }
        }
        if s.absorbed_units != s.served_units {
            ex.emit(format!(
                "drain lost records: the retrainer absorbed {} of {} served units at shutdown",
                s.absorbed_units, s.served_units
            ));
        }
    };

    let mut ex = Explorer::new(machine);
    ex.run(init, &successors, &terminal);
    ex.report(machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render;

    #[test]
    fn store_protocol_checks_clean_under_the_implemented_models() {
        let report = check_store_protocol(StoreProtoConfig::default());
        assert!(report.is_clean(), "{}", render(&report.diagnostics));
        assert!(report.states > 100, "exhaustive walk should visit many states, saw {}", report.states);
    }

    #[test]
    fn read_then_write_swap_regresses_the_epoch() {
        let cfg = StoreProtoConfig { swap: SwapModel::ReadThenWrite, ..StoreProtoConfig::default() };
        let report = check_store_protocol(cfg);
        assert!(
            report.diagnostics.iter().any(|d| d.message.contains("regressed the epoch")),
            "{}",
            render(&report.diagnostics)
        );
        assert!(report.diagnostics.iter().any(|d| d.message.contains("lost swap")), "{}", render(&report.diagnostics));
    }

    #[test]
    fn per_unit_snapshot_reload_splits_batches() {
        let cfg = StoreProtoConfig { snapshot: SnapshotModel::PerUnit, ..StoreProtoConfig::default() };
        let report = check_store_protocol(cfg);
        assert!(
            report.diagnostics.iter().any(|d| d.message.contains("batch split across a swap")),
            "{}",
            render(&report.diagnostics)
        );
    }

    #[test]
    fn per_batch_snapshot_is_atomic_even_under_broken_swaps() {
        // The batch-atomicity invariant is independent of swap bugs: a
        // loaded snapshot stays coherent for the whole batch.
        let cfg = StoreProtoConfig { swap: SwapModel::ReadThenWrite, ..StoreProtoConfig::default() };
        let report = check_store_protocol(cfg);
        assert!(
            !report.diagnostics.iter().any(|d| d.message.contains("batch split")),
            "{}",
            render(&report.diagnostics)
        );
    }

    #[test]
    fn serve_protocol_checks_clean_under_the_implemented_models() {
        let report = check_serve_protocol(ServeProtoConfig::default());
        assert!(report.is_clean(), "{}", render(&report.diagnostics));
        assert!(report.states > 100, "exhaustive walk should visit many states, saw {}", report.states);
    }

    #[test]
    fn internal_retry_after_shedding_duplicates_responses() {
        let cfg = ServeProtoConfig { shed: ShedModel::RejectAndRetry, ..ServeProtoConfig::default() };
        let report = check_serve_protocol(cfg);
        assert!(
            report.diagnostics.iter().any(|d| d.message.contains("duplicate response")),
            "{}",
            render(&report.diagnostics)
        );
    }

    #[test]
    fn dropping_pending_records_loses_the_drain() {
        let cfg = ServeProtoConfig { drain: DrainModel::DropPending, ..ServeProtoConfig::default() };
        let report = check_serve_protocol(cfg);
        assert!(
            report.diagnostics.iter().any(|d| d.message.contains("drain lost records")),
            "{}",
            render(&report.diagnostics)
        );
    }

    #[test]
    fn diagnostics_carry_the_protocol_analysis() {
        let cfg = StoreProtoConfig { swap: SwapModel::ReadThenWrite, ..StoreProtoConfig::default() };
        let report = check_store_protocol(cfg);
        assert!(report.diagnostics.iter().all(|d| d.analysis == Analysis::Protocol));
        assert!(report.diagnostics.iter().all(|d| d.machine == "filter-store"));
    }
}
