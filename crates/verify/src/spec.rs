//! Analysis 3: speculation safety for superblock traces.
//!
//! Speculative scheduling may hoist *pure computation* above a side exit
//! (the speculative dependence graph deliberately lets register-only
//! instructions cross branches), but anything observable must stay put:
//! a store, call, sync or hazardous instruction hoisted above a side
//! exit would execute on paths that leave the trace early, and one sunk
//! below a side exit would be skipped on them. Branches are themselves
//! side-effecting here, so the check also pins the side exits' relative
//! order — in particular the trace's *entry* region: the first control
//! transfer of the scheduled trace must be the same instruction as in
//! the original trace.

use crate::diag::{Analysis, Diagnostic, UnitCtx};
use wts_ir::Inst;

/// An instruction whose execution is observable off-trace.
fn is_effectful(inst: &Inst) -> bool {
    inst.opcode().has_side_effect() || inst.is_hazardous()
}

/// Checks that `order` (a valid permutation of `insts`) preserves the
/// position of every side-effecting instruction relative to every side
/// exit, and the identity of the first control transfer.
pub fn check_speculation(ctx: &UnitCtx, insts: &[Inst], order: &[usize], out: &mut Vec<Diagnostic>) {
    let n = insts.len();
    if order.len() != n {
        return; // not a permutation: the schedule-legality walk reports it
    }
    let mut pos = vec![usize::MAX; n];
    for (p, &i) in order.iter().enumerate() {
        if i >= n || pos[i] != usize::MAX {
            return;
        }
        pos[i] = p;
    }

    let exits: Vec<usize> = (0..n).filter(|&i| insts[i].opcode().is_branch()).collect();
    for &x in &exits {
        for e in (0..n).filter(|&e| e != x && is_effectful(&insts[e])) {
            let was_above = e < x;
            let is_above = pos[e] < pos[x];
            if was_above && !is_above {
                out.push(ctx.error(
                    Analysis::Speculation,
                    format!(
                        "side-effecting {} at index {e} sunk below the side exit {} at index {x}",
                        insts[e].opcode(),
                        insts[x].opcode()
                    ),
                ));
            } else if !was_above && is_above {
                out.push(ctx.error(
                    Analysis::Speculation,
                    format!(
                        "side-effecting {} at index {e} hoisted above the side exit {} at index {x}",
                        insts[e].opcode(),
                        insts[x].opcode()
                    ),
                ));
            }
        }
    }

    // Entry identity: the first control transfer still fires first, so
    // the trace enters and leaves through the same instruction.
    let original_first = (0..n).find(|&i| insts[i].opcode().is_control());
    let scheduled_first = order.iter().copied().find(|&i| insts[i].opcode().is_control());
    if let (Some(a), Some(b)) = (original_first, scheduled_first) {
        if a != b {
            out.push(ctx.error(
                Analysis::Speculation,
                format!(
                    "entry region changed: the first control transfer is now {} at index {b} (was {} at index {a})",
                    insts[b].opcode(),
                    insts[a].opcode()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::{MemRef, MemSpace, Opcode, Reg};

    fn ctx() -> UnitCtx {
        UnitCtx::new("test")
    }

    fn trace() -> Vec<Inst> {
        vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(9)).use_(Reg::gpr(9)),
            Inst::new(Opcode::Bc), // side exit
            Inst::new(Opcode::Stw).use_(Reg::gpr(1)).mem(MemRef::slot(MemSpace::Stack, 0)),
            Inst::new(Opcode::Bc), // terminator
        ]
    }

    #[test]
    fn hoisting_a_store_above_a_side_exit_is_an_error() {
        let insts = trace();
        let mut out = Vec::new();
        check_speculation(&ctx(), &insts, &[0, 2, 1, 3], &mut out);
        assert!(
            out.iter().any(|d| d.message.contains("stw at index 2 hoisted above the side exit")),
            "{}",
            crate::render(&out)
        );
    }

    #[test]
    fn sinking_a_store_below_a_side_exit_is_an_error() {
        let insts = vec![
            Inst::new(Opcode::Stw).use_(Reg::gpr(1)).mem(MemRef::slot(MemSpace::Stack, 0)),
            Inst::new(Opcode::Bc),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(9)).use_(Reg::gpr(9)),
            Inst::new(Opcode::Bc),
        ];
        let mut out = Vec::new();
        check_speculation(&ctx(), &insts, &[1, 0, 2, 3], &mut out);
        assert!(
            out.iter().any(|d| d.message.contains("stw at index 0 sunk below the side exit")),
            "{}",
            crate::render(&out)
        );
    }

    #[test]
    fn hoisting_pure_computation_is_allowed() {
        // The speculative model's whole point: index 2's add may move
        // above the side exit at index 1.
        let insts = vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(9)).use_(Reg::gpr(9)),
            Inst::new(Opcode::Bc),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(8)).use_(Reg::gpr(8)),
            Inst::new(Opcode::Bc),
        ];
        let mut out = Vec::new();
        check_speculation(&ctx(), &insts, &[0, 2, 1, 3], &mut out);
        assert!(out.is_empty(), "{}", crate::render(&out));
    }

    #[test]
    fn swapping_side_exits_breaks_entry_identity() {
        let insts = trace();
        let mut out = Vec::new();
        check_speculation(&ctx(), &insts, &[0, 3, 2, 1], &mut out);
        assert!(out.iter().any(|d| d.message.contains("entry region changed")), "{}", crate::render(&out));
    }

    #[test]
    fn the_identity_order_is_clean() {
        let insts = trace();
        let mut out = Vec::new();
        check_speculation(&ctx(), &insts, &[0, 1, 2, 3], &mut out);
        assert!(out.is_empty(), "{}", crate::render(&out));
    }
}
