//! Analysis 1: dependence soundness and completeness.
//!
//! [`oracle_edges`] re-derives the exact dependence-edge set a block (or
//! speculative superblock trace) must carry, straight from each
//! instruction's def/use/memref sets and the barrier rules documented in
//! `wts-deps` — using deliberately naive data structures (hash maps and
//! growable vectors, no dense tables, no epoch reuse, no CSR packing, no
//! sort-dedup). [`check_dependences`] then demands that the production
//! [`DepGraph`] has *exactly* the oracle's edges: a missing edge is an
//! unsoundness error (an illegal reordering would go undetected), an
//! extra edge is a lost-parallelism warning, and a kind disagreement is a
//! warning. The CSR encoding itself is audited for internal consistency
//! (successors mirror predecessors, edges point forward, counts agree).

use crate::diag::{Analysis, Diagnostic, UnitCtx};
use std::collections::{HashMap, HashSet};
use wts_deps::{DepGraph, DepKind};
use wts_ir::{Inst, Reg};

/// Lowercase kind name for messages (`DepKind` has no Display).
fn kind_name(kind: DepKind) -> &'static str {
    match kind {
        DepKind::True => "true",
        DepKind::Anti => "anti",
        DepKind::Output => "output",
        DepKind::Memory => "memory",
        DepKind::Control => "control",
        DepKind::Hazard => "hazard",
    }
}

/// Recomputes the dependence edges of `insts` from first principles.
///
/// Edges are returned as `(from, to, kind)` with `from < to`, in the
/// chronological order they are first established — when two rules
/// produce an edge between the same pair, the first kind wins, matching
/// the graph builder's sort-dedup contract.
pub fn oracle_edges(insts: &[Inst], speculative: bool) -> Vec<(usize, usize, DepKind)> {
    let mut edges: Vec<(usize, usize, DepKind)> = Vec::new();
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let record = |edges: &mut Vec<(usize, usize, DepKind)>,
                  seen: &mut HashSet<(usize, usize)>,
                  from: usize,
                  to: usize,
                  kind: DepKind| {
        if from != to && seen.insert((from, to)) {
            edges.push((from, to, kind));
        }
    };

    let mut last_def: HashMap<Reg, usize> = HashMap::new();
    let mut readers: HashMap<Reg, Vec<usize>> = HashMap::new();
    let mut stores: Vec<usize> = Vec::new();
    let mut loads_since_store: Vec<usize> = Vec::new();
    let mut since_barrier: Vec<usize> = Vec::new();
    let mut last_barrier: Option<usize> = None;
    let mut last_branch: Option<usize> = None;

    for (i, inst) in insts.iter().enumerate() {
        let op = inst.opcode();

        // Register flow: a use reads the last writer (true), a def orders
        // after the previous writer (output) and after every reader since
        // that writer (anti).
        for u in inst.uses() {
            if let Some(&d) = last_def.get(u) {
                record(&mut edges, &mut seen, d, i, DepKind::True);
            }
            readers.entry(*u).or_default().push(i);
        }
        for d in inst.defs() {
            if let Some(&p) = last_def.get(d) {
                record(&mut edges, &mut seen, p, i, DepKind::Output);
            }
            if let Some(rs) = readers.get(d) {
                for &r in rs {
                    if r != i {
                        record(&mut edges, &mut seen, r, i, DepKind::Anti);
                    }
                }
            }
        }

        // Memory: any access orders after every may-aliasing prior store;
        // a store additionally orders after aliasing loads issued since
        // the last store.
        if let Some(m) = inst.mem_ref() {
            for &s in &stores {
                if m.may_alias(insts[s].mem_ref().expect("stores carry memrefs")) {
                    record(&mut edges, &mut seen, s, i, DepKind::Memory);
                }
            }
            if op.is_store() {
                for &l in &loads_since_store {
                    if m.may_alias(insts[l].mem_ref().expect("loads carry memrefs")) {
                        record(&mut edges, &mut seen, l, i, DepKind::Memory);
                    }
                }
            }
        }

        // Barriers. Non-speculative blocks treat every control transfer
        // and every hazardous instruction as a full barrier. Speculative
        // traces relax plain branches to "branch barriers": branches stay
        // ordered with each other and with side-effecting instructions,
        // but pure computation may cross them; calls, returns and
        // hazardous instructions remain full barriers.
        let is_full_barrier = if speculative {
            op.is_call() || op.is_return() || inst.is_hazardous()
        } else {
            op.is_control() || inst.is_hazardous()
        };
        let is_branch_barrier = speculative && op.is_branch();
        let effectful = op.has_side_effect() || inst.is_hazardous();

        if let Some(b) = last_barrier {
            let kind = if insts[b].opcode().is_control() { DepKind::Control } else { DepKind::Hazard };
            record(&mut edges, &mut seen, b, i, kind);
        }
        if is_branch_barrier {
            if let Some(br) = last_branch {
                record(&mut edges, &mut seen, br, i, DepKind::Control);
            }
            for &p in &since_barrier {
                if insts[p].opcode().has_side_effect() || insts[p].is_hazardous() {
                    record(&mut edges, &mut seen, p, i, DepKind::Control);
                }
            }
            last_branch = Some(i);
            since_barrier.push(i);
        } else if is_full_barrier {
            let kind = if op.is_control() { DepKind::Control } else { DepKind::Hazard };
            for &p in &since_barrier {
                record(&mut edges, &mut seen, p, i, kind);
            }
            last_barrier = Some(i);
            last_branch = None;
            since_barrier.clear();
        } else {
            if effectful {
                if let Some(br) = last_branch {
                    record(&mut edges, &mut seen, br, i, DepKind::Control);
                }
            }
            since_barrier.push(i);
        }

        // Bookkeeping after the instruction's own edges are recorded.
        for d in inst.defs() {
            last_def.insert(*d, i);
            readers.insert(*d, Vec::new());
        }
        if op.is_store() {
            stores.push(i);
            loads_since_store.clear();
        } else if op.is_load() {
            loads_since_store.push(i);
        }
    }
    edges
}

/// Collects the production graph's edges as `(from, to, kind)` from the
/// successor lists.
fn graph_edges(graph: &DepGraph) -> Vec<(usize, usize, DepKind)> {
    let mut edges = Vec::new();
    for from in 0..graph.len() {
        for &(to, kind) in graph.succs(from) {
            edges.push((from, to as usize, kind));
        }
    }
    edges
}

/// Checks `graph` against the oracle and the CSR invariants, appending
/// diagnostics to `out`.
pub fn check_dependences(
    ctx: &UnitCtx,
    insts: &[Inst],
    speculative: bool,
    graph: &DepGraph,
    out: &mut Vec<Diagnostic>,
) {
    if graph.len() != insts.len() {
        out.push(ctx.error(
            Analysis::Dependence,
            format!("dependence graph has {} nodes but the unit has {} instructions", graph.len(), insts.len()),
        ));
        return;
    }

    let oracle: HashMap<(usize, usize), DepKind> =
        oracle_edges(insts, speculative).into_iter().map(|(f, t, k)| ((f, t), k)).collect();
    let got: HashMap<(usize, usize), DepKind> = graph_edges(graph).into_iter().map(|(f, t, k)| ((f, t), k)).collect();

    let mut missing: Vec<(usize, usize, DepKind)> =
        oracle.iter().filter(|(pair, _)| !got.contains_key(pair)).map(|(&(f, t), &k)| (f, t, k)).collect();
    missing.sort_unstable();
    for (f, t, k) in missing {
        out.push(ctx.error(
            Analysis::Dependence,
            format!(
                "missing {} dependence edge {f} -> {t}: an illegal reordering of {} and {} would go undetected",
                kind_name(k),
                insts[f].opcode(),
                insts[t].opcode()
            ),
        ));
    }
    let mut spurious: Vec<(usize, usize, DepKind)> =
        got.iter().filter(|(pair, _)| !oracle.contains_key(pair)).map(|(&(f, t), &k)| (f, t, k)).collect();
    spurious.sort_unstable();
    for (f, t, k) in spurious {
        out.push(ctx.warning(
            Analysis::Dependence,
            format!(
                "spurious {} dependence edge {f} -> {t}: legal parallelism between {} and {} is lost",
                kind_name(k),
                insts[f].opcode(),
                insts[t].opcode()
            ),
        ));
    }
    let mut mismatched: Vec<(usize, usize, DepKind, DepKind)> = oracle
        .iter()
        .filter_map(|(&(f, t), &want)| match got.get(&(f, t)) {
            Some(&have) if have != want => Some((f, t, have, want)),
            _ => None,
        })
        .collect();
    mismatched.sort_unstable();
    for (f, t, have, want) in mismatched {
        out.push(ctx.warning(
            Analysis::Dependence,
            format!("dependence edge {f} -> {t} recorded as {} but re-derived as {}", kind_name(have), kind_name(want)),
        ));
    }

    check_csr_consistency(ctx, graph, out);
}

/// Audits the CSR encoding itself: edges point strictly forward,
/// successor lists are sorted (the binary-search contract of
/// `DepGraph::has_edge`), and the predecessor lists mirror the successor
/// lists edge for edge.
fn check_csr_consistency(ctx: &UnitCtx, graph: &DepGraph, out: &mut Vec<Diagnostic>) {
    let n = graph.len();
    let mut succ_edges: HashSet<(usize, usize, DepKind)> = HashSet::new();
    for from in 0..n {
        let succs = graph.succs(from);
        for w in succs.windows(2) {
            if w[0].0 >= w[1].0 {
                out.push(ctx.error(
                    Analysis::Dependence,
                    format!("successor list of {from} is not sorted by target ({} before {})", w[0].0, w[1].0),
                ));
            }
        }
        for &(to, kind) in succs {
            let to = to as usize;
            if to <= from || to >= n {
                out.push(ctx.error(
                    Analysis::Dependence,
                    format!("edge {from} -> {to} does not point strictly forward inside the unit"),
                ));
            } else {
                succ_edges.insert((from, to, kind));
            }
        }
    }
    let mut pred_count = 0usize;
    for to in 0..n {
        for &(from, kind) in graph.preds(to) {
            pred_count += 1;
            if !succ_edges.remove(&(from as usize, to, kind)) {
                out.push(ctx.error(
                    Analysis::Dependence,
                    format!("predecessor edge {from} -> {to} has no mirror in the successor lists"),
                ));
            }
        }
    }
    for (from, to, _) in succ_edges {
        out.push(ctx.error(
            Analysis::Dependence,
            format!("successor edge {from} -> {to} has no mirror in the predecessor lists"),
        ));
    }
    if pred_count != graph.edge_count() {
        out.push(ctx.error(
            Analysis::Dependence,
            format!("graph reports {} edges but the predecessor lists hold {pred_count}", graph.edge_count()),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use wts_ir::{MemRef, MemSpace, Opcode, Reg};

    fn ctx() -> UnitCtx {
        UnitCtx::new("test")
    }

    fn clean(insts: &[Inst], speculative: bool) -> Vec<Diagnostic> {
        let graph = if speculative { DepGraph::build_speculative(insts) } else { DepGraph::build(insts) };
        let mut out = Vec::new();
        check_dependences(&ctx(), insts, speculative, &graph, &mut out);
        out
    }

    #[test]
    fn production_graph_matches_the_oracle_on_a_mixed_block() {
        let insts = vec![
            Inst::new(Opcode::Lwz).def(Reg::gpr(1)).mem(MemRef::slot(MemSpace::Stack, 0)),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)),
            Inst::new(Opcode::Stw).use_(Reg::gpr(2)).mem(MemRef::slot(MemSpace::Stack, 0)),
            Inst::new(Opcode::Lwz).def(Reg::gpr(3)).mem(MemRef::unknown(MemSpace::Heap)),
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(3)).use_(Reg::gpr(3)),
            Inst::new(Opcode::Bc),
        ];
        for speculative in [false, true] {
            let diags = clean(&insts, speculative);
            assert!(diags.is_empty(), "speculative={speculative}:\n{}", crate::render(&diags));
        }
    }

    #[test]
    fn oracle_orders_effectful_insts_with_branches_in_speculative_mode() {
        let insts = vec![
            Inst::new(Opcode::Stw).use_(Reg::gpr(1)).mem(MemRef::slot(MemSpace::Stack, 0)),
            Inst::new(Opcode::Bc),
            Inst::new(Opcode::Stw).use_(Reg::gpr(2)).mem(MemRef::slot(MemSpace::Stack, 4)),
        ];
        let edges = oracle_edges(&insts, true);
        assert!(edges.contains(&(0, 1, DepKind::Control)), "store stays above the exit: {edges:?}");
        assert!(edges.contains(&(1, 2, DepKind::Control)), "store stays below the exit: {edges:?}");
        // The two stores never alias and get no direct edge.
        assert!(!edges.iter().any(|&(f, t, _)| (f, t) == (0, 2)), "{edges:?}");
    }

    #[test]
    fn a_dropped_edge_is_reported_as_a_missing_dependence_error() {
        // Tamper: build the graph from a renamed copy so the true edge
        // 0 -> 1 disappears, then check it against the real block.
        let real = vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(9)).use_(Reg::gpr(9)),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)),
        ];
        let tampered = vec![real[0], Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(8)).use_(Reg::gpr(8))];
        let graph = DepGraph::build(&tampered);
        let mut out = Vec::new();
        check_dependences(&ctx(), &real, false, &graph, &mut out);
        assert!(
            out.iter()
                .any(|d| d.severity == crate::Severity::Error
                    && d.message.contains("missing true dependence edge 0 -> 1")),
            "{}",
            crate::render(&out)
        );
    }

    #[test]
    fn an_extra_edge_is_reported_as_lost_parallelism() {
        // Tamper the other way: the graph carries an edge the block does
        // not justify.
        let independent = vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(9)).use_(Reg::gpr(9)),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(8)).use_(Reg::gpr(8)),
        ];
        let chained = vec![independent[0], Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1))];
        let graph = DepGraph::build(&chained);
        let mut out = Vec::new();
        check_dependences(&ctx(), &independent, false, &graph, &mut out);
        assert!(
            out.iter().any(|d| d.severity == crate::Severity::Warning
                && d.message.contains("spurious true dependence edge 0 -> 1")),
            "{}",
            crate::render(&out)
        );
    }

    #[test]
    fn node_count_mismatch_is_an_error() {
        let insts = vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(9)).use_(Reg::gpr(9)),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(8)).use_(Reg::gpr(8)),
        ];
        let graph = DepGraph::build(&insts[..1]);
        let mut out = Vec::new();
        check_dependences(&ctx(), &insts, false, &graph, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("1 nodes but the unit has 2 instructions"), "{}", out[0]);
    }
}
