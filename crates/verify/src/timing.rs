//! Analysis 2: timing legality.
//!
//! [`resimulate`] is an independent re-implementation of the in-order
//! machine model — per-register readiness, memory ordering, serializing
//! instructions, issue/branch width, functional-unit occupancy — written
//! against the *documented* `wts-machine` semantics with none of
//! `IssueState`'s incremental bookkeeping (per-cycle counters become a
//! hash map keyed by cycle, the rolling barrier floor is recomputed, and
//! every issue is materialized as an [`IssueEvent`]).
//! [`check_timing`] verifies a [`ScheduleOutcome`]'s claims against it:
//! the claimed `cycles_before`/`cycles_after` must match the checker's
//! counts, a schedule may never be kept when it rates worse than the
//! original order, and the issue events themselves are audited — no
//! consumer before its producer's latency elapses, no cycle over its
//! issue or branch width, no functional unit holding two instructions at
//! once. Finally both cost providers are cross-checked: the cheap
//! estimator must agree with the re-simulation exactly, and neither
//! provider may report a count below the latency-weighted dependence
//! chain, which no machine of any width can beat.

use crate::diag::{Analysis, Diagnostic, UnitCtx};
use std::collections::HashMap;
use wts_ir::{Inst, MemRef, Opcode, Reg, UnitClass};
use wts_machine::{EstimatorKind, FunctionalUnit, MachineConfig};
use wts_sched::ScheduleOutcome;

/// One instruction issue derived by the re-simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueEvent {
    /// Position in the simulated sequence.
    pub slot: usize,
    /// Issue cycle.
    pub cycle: u64,
    /// The functional unit it occupies.
    pub unit: FunctionalUnit,
    /// Cycle its result is available (`cycle + latency`).
    pub done: u64,
}

/// Serializing instructions per the machine model: syncs and calls.
fn is_serializing(op: Opcode) -> bool {
    matches!(op, Opcode::Sync | Opcode::Isync) || op.is_call()
}

/// Re-simulates `insts` in order on `machine`, returning the completion
/// time and the per-instruction issue events.
pub fn resimulate(machine: &MachineConfig, insts: &[Inst]) -> (u64, Vec<IssueEvent>) {
    let lat = machine.latencies();
    let mut reg_done: HashMap<Reg, u64> = HashMap::new();
    let mut store_done: Vec<(MemRef, u64)> = Vec::new();
    let mut load_issued: Vec<(MemRef, u64)> = Vec::new();
    let mut unit_busy_until = [0u64; FunctionalUnit::COUNT];
    let mut issued_in_cycle: HashMap<u64, (u32, u32)> = HashMap::new(); // (branch, nonbranch)
    let mut barrier_floor = 0u64;
    let mut max_done = 0u64;
    let mut last_issue = 0u64;
    let mut events = Vec::with_capacity(insts.len());

    for (slot, inst) in insts.iter().enumerate() {
        let op = inst.opcode();
        let is_branch_unit = op.unit_class() == UnitClass::Branch;

        // Data and ordering readiness.
        let mut ready = barrier_floor;
        for u in inst.uses() {
            if let Some(&t) = reg_done.get(u) {
                ready = ready.max(t);
            }
        }
        if let Some(m) = inst.mem_ref() {
            for &(w, done) in &store_done {
                if m.may_alias(w) {
                    ready = ready.max(done);
                }
            }
            if op.is_store() {
                for &(r, issued) in &load_issued {
                    if m.may_alias(r) {
                        ready = ready.max(issued);
                    }
                }
            }
        }
        if is_serializing(op) {
            ready = ready.max(max_done);
        }

        // First cycle (at or after the previous issue — in-order) with a
        // free width slot and a free unit of the right class.
        let mut c = ready.max(last_issue);
        let unit = loop {
            let (branch, nonbranch) = issued_in_cycle.get(&c).copied().unwrap_or((0, 0));
            let width_ok =
                if is_branch_unit { branch < machine.branch_width() } else { nonbranch < machine.issue_width() };
            if width_ok {
                if let Some(u) = machine.units_for(op.unit_class()).iter().find(|u| unit_busy_until[u.index()] <= c) {
                    break u;
                }
            }
            c += 1;
        };

        // Commit the issue.
        let counts = issued_in_cycle.entry(c).or_insert((0, 0));
        if is_branch_unit {
            counts.0 += 1;
        } else {
            counts.1 += 1;
        }
        let done = c + u64::from(lat.latency(op));
        unit_busy_until[unit.index()] = c + u64::from(lat.unit_occupancy(op));
        last_issue = c;
        max_done = max_done.max(done);
        for &d in inst.defs() {
            reg_done.insert(d, done);
        }
        if let Some(m) = inst.mem_ref() {
            if op.is_store() {
                store_done.push((m, done));
                load_issued.clear();
            } else {
                load_issued.push((m, c));
            }
        }
        if is_serializing(op) {
            barrier_floor = done;
        }
        events.push(IssueEvent { slot, cycle: c, unit, done });
    }
    (max_done, events)
}

/// The latency-weighted dependence-chain lower bound: the longest chain
/// of completions over true register flow and aliasing store ordering.
/// No legal execution on any issue width can finish below it, so any
/// cost provider reporting less has a broken model.
pub fn dependence_lower_bound(machine: &MachineConfig, insts: &[Inst]) -> u64 {
    let lat = machine.latencies();
    let mut reg_done: HashMap<Reg, u64> = HashMap::new();
    let mut store_chain: Vec<(MemRef, u64)> = Vec::new();
    let mut best = 0u64;
    for inst in insts {
        let op = inst.opcode();
        let mut start = 0u64;
        for u in inst.uses() {
            if let Some(&t) = reg_done.get(u) {
                start = start.max(t);
            }
        }
        if let Some(m) = inst.mem_ref() {
            for &(w, done) in &store_chain {
                if m.may_alias(w) {
                    start = start.max(done);
                }
            }
        }
        let done = start + u64::from(lat.latency(op));
        for &d in inst.defs() {
            reg_done.insert(d, done);
        }
        if let Some(m) = inst.mem_ref() {
            if op.is_store() {
                store_chain.push((m, done));
            }
        }
        best = best.max(done);
    }
    best
}

/// Verifies `outcome`'s timing claims for a unit whose original
/// instructions are `insts`. The order must already be a valid
/// permutation (the schedule-legality walk runs first).
pub fn check_timing(
    ctx: &UnitCtx,
    machine: &MachineConfig,
    insts: &[Inst],
    outcome: &ScheduleOutcome,
    out: &mut Vec<Diagnostic>,
) {
    let scheduled: Vec<Inst> = outcome.order.iter().map(|&i| insts[i]).collect();

    let (before, _) = resimulate(machine, insts);
    if before != outcome.cycles_before {
        out.push(ctx.error(
            Analysis::Timing,
            format!(
                "claimed {} cycles for the original order but independent re-simulation takes {before}",
                outcome.cycles_before
            ),
        ));
    }
    let (after, events) = resimulate(machine, &scheduled);
    if after != outcome.cycles_after {
        out.push(ctx.error(
            Analysis::Timing,
            format!(
                "claimed {} cycles for the scheduled order but independent re-simulation takes {after}",
                outcome.cycles_after
            ),
        ));
    }
    if outcome.cycles_after > outcome.cycles_before {
        out.push(ctx.error(
            Analysis::Timing,
            format!(
                "kept a schedule rated {} cycles when the original order takes {}: the revert-to-identity guarantee is broken",
                outcome.cycles_after, outcome.cycles_before
            ),
        ));
    }

    audit_events(ctx, machine, &scheduled, &events, out);
    cross_check_providers(ctx, machine, insts, &scheduled, before, after, out);
}

/// Audits derived issue events against the raw machine constraints —
/// independent of how the events were derived.
fn audit_events(
    ctx: &UnitCtx,
    machine: &MachineConfig,
    scheduled: &[Inst],
    events: &[IssueEvent],
    out: &mut Vec<Diagnostic>,
) {
    // No consumer issues before its producer's latency has elapsed.
    let mut producer_done: HashMap<Reg, u64> = HashMap::new();
    for (k, inst) in scheduled.iter().enumerate() {
        for u in inst.uses() {
            if let Some(&done) = producer_done.get(u) {
                if events[k].cycle < done {
                    out.push(ctx.error(
                        Analysis::Timing,
                        format!(
                            "{} at slot {k} issues at cycle {} before its operand is ready at cycle {done}",
                            inst.opcode(),
                            events[k].cycle
                        ),
                    ));
                }
            }
        }
        for &d in inst.defs() {
            producer_done.insert(d, events[k].done);
        }
    }

    // No cycle oversubscribes the issue or branch width.
    let mut per_cycle: HashMap<u64, (u32, u32)> = HashMap::new();
    for (k, inst) in scheduled.iter().enumerate() {
        let counts = per_cycle.entry(events[k].cycle).or_insert((0, 0));
        if inst.opcode().unit_class() == UnitClass::Branch {
            counts.0 += 1;
        } else {
            counts.1 += 1;
        }
    }
    let mut cycles: Vec<_> = per_cycle.into_iter().collect();
    cycles.sort_unstable();
    for (c, (branch, nonbranch)) in cycles {
        if branch > machine.branch_width() {
            out.push(ctx.error(
                Analysis::Timing,
                format!(
                    "cycle {c} issues {branch} branch instructions on a branch width of {}",
                    machine.branch_width()
                ),
            ));
        }
        if nonbranch > machine.issue_width() {
            out.push(ctx.error(
                Analysis::Timing,
                format!(
                    "cycle {c} issues {nonbranch} non-branch instructions on an issue width of {}",
                    machine.issue_width()
                ),
            ));
        }
    }

    // No functional unit holds two instructions at once.
    for unit in FunctionalUnit::ALL {
        let mut on_unit: Vec<(u64, u64)> = events
            .iter()
            .filter(|e| e.unit == unit)
            .map(|e| (e.cycle, u64::from(machine.latencies().unit_occupancy(scheduled[e.slot].opcode()))))
            .collect();
        on_unit.sort_unstable();
        for w in on_unit.windows(2) {
            let (prev_cycle, occupancy) = w[0];
            if w[1].0 < prev_cycle + occupancy {
                out.push(ctx.error(
                    Analysis::Timing,
                    format!(
                        "functional unit {unit:?} is oversubscribed: an instruction issues at cycle {} while the unit is busy until {}",
                        w[1].0,
                        prev_cycle + occupancy
                    ),
                ));
            }
        }
    }
}

/// Cross-checks both cost providers against the re-simulation and the
/// dependence-chain lower bound.
fn cross_check_providers(
    ctx: &UnitCtx,
    machine: &MachineConfig,
    insts: &[Inst],
    scheduled: &[Inst],
    before: u64,
    after: u64,
    out: &mut Vec<Diagnostic>,
) {
    let bound_before = dependence_lower_bound(machine, insts);
    let bound_after = dependence_lower_bound(machine, scheduled);
    for kind in [EstimatorKind::Cheap, EstimatorKind::Detailed] {
        let provider = kind.provider(machine);
        let pb = provider.sequence_cycles(insts);
        let pa = provider.sequence_cycles(scheduled);
        if kind == EstimatorKind::Cheap {
            // The cheap estimator *is* the in-order model; it must agree
            // with the independent re-simulation cycle for cycle.
            if pb != before {
                out.push(ctx.error(
                    Analysis::Timing,
                    format!(
                        "the {} provider reports {pb} cycles for the original order but re-simulation takes {before}",
                        provider.provider_name()
                    ),
                ));
            }
            if pa != after {
                out.push(ctx.error(
                    Analysis::Timing,
                    format!(
                        "the {} provider reports {pa} cycles for the scheduled order but re-simulation takes {after}",
                        provider.provider_name()
                    ),
                ));
            }
        }
        // No provider may beat the latency-weighted dependence chain.
        if pb < bound_before {
            out.push(ctx.error(
                Analysis::Timing,
                format!(
                    "the {} provider reports {pb} cycles for the original order, below the dependence-chain lower bound {bound_before}",
                    provider.provider_name()
                ),
            ));
        }
        if pa < bound_after {
            out.push(ctx.error(
                Analysis::Timing,
                format!(
                    "the {} provider reports {pa} cycles for the scheduled order, below the dependence-chain lower bound {bound_after}",
                    provider.provider_name()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_machine::IssueState;

    fn machines() -> Vec<MachineConfig> {
        wts_machine::registry()
    }

    fn mixed_block() -> Vec<Inst> {
        use wts_ir::{MemSpace, Reg};
        vec![
            Inst::new(Opcode::Lwz).def(Reg::gpr(1)).mem(MemRef::slot(MemSpace::Stack, 0)),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)),
            Inst::new(Opcode::Fadd).def(Reg::fpr(1)).use_(Reg::fpr(2)).use_(Reg::fpr(3)),
            Inst::new(Opcode::Stw).use_(Reg::gpr(2)).mem(MemRef::slot(MemSpace::Stack, 0)),
            Inst::new(Opcode::Lwz).def(Reg::gpr(3)).mem(MemRef::unknown(MemSpace::Heap)),
            Inst::new(Opcode::Bl),
            Inst::new(Opcode::Add).def(Reg::gpr(4)).use_(Reg::gpr(3)).use_(Reg::gpr(3)),
            Inst::new(Opcode::Bc),
        ]
    }

    #[test]
    fn resimulation_matches_issue_state_on_every_registry_machine() {
        let insts = mixed_block();
        for machine in machines() {
            let expected = IssueState::new(&machine).replay(&insts);
            let (got, events) = resimulate(&machine, &insts);
            assert_eq!(got, expected, "{}", machine.name());
            assert_eq!(events.len(), insts.len());
        }
    }

    #[test]
    fn resimulation_matches_issue_state_on_pseudorandom_blocks() {
        // Hand-rolled xorshift so the corpus is deterministic without
        // pulling a rng crate in.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        use wts_ir::{MemSpace, Reg};
        for machine in machines() {
            for _case in 0..50 {
                let n = (next() % 12 + 1) as usize;
                let mut insts = Vec::with_capacity(n);
                for _ in 0..n {
                    let r = next() % 6;
                    let a = Reg::gpr((next() % 4) as u16);
                    let b = Reg::gpr((next() % 4) as u16);
                    let d = Reg::gpr((next() % 4) as u16);
                    let slot = (next() % 3) as u32;
                    insts.push(match r {
                        0 => Inst::new(Opcode::Add).def(d).use_(a).use_(b),
                        1 => Inst::new(Opcode::Mullw).def(d).use_(a).use_(b),
                        2 => Inst::new(Opcode::Lwz).def(d).mem(MemRef::slot(MemSpace::Stack, slot)),
                        3 => Inst::new(Opcode::Stw).use_(a).mem(MemRef::slot(MemSpace::Stack, slot)),
                        4 => Inst::new(Opcode::Fadd)
                            .def(Reg::fpr((next() % 4) as u16))
                            .use_(Reg::fpr(0))
                            .use_(Reg::fpr(1)),
                        _ => Inst::new(Opcode::Sync),
                    });
                }
                let expected = IssueState::new(&machine).replay(&insts);
                let (got, _) = resimulate(&machine, &insts);
                assert_eq!(got, expected, "{}: {insts:?}", machine.name());
            }
        }
    }

    #[test]
    fn lower_bound_never_exceeds_either_provider() {
        let insts = mixed_block();
        for machine in machines() {
            let bound = dependence_lower_bound(&machine, &insts);
            for kind in [EstimatorKind::Cheap, EstimatorKind::Detailed] {
                let cycles = kind.provider(&machine).sequence_cycles(&insts);
                assert!(cycles >= bound, "{} {kind}: {cycles} < bound {bound}", machine.name());
            }
        }
    }

    #[test]
    fn a_shrunk_latency_is_caught_as_a_timing_error() {
        // Schedule against a machine whose load latency was shrunk to 1,
        // then verify the outcome's claims against the real ppc7410.
        let insts = mixed_block();
        let real = MachineConfig::ppc7410();
        let shrunk = MachineConfig::builder("ppc7410-shrunk").issue_width(2).window(8).latency(Opcode::Lwz, 1).build();
        let scheduler = wts_sched::ListScheduler::new(&shrunk);
        let outcome = scheduler.schedule_insts(&insts);
        let ctx = UnitCtx::new("ppc7410");
        let mut out = Vec::new();
        check_timing(&ctx, &real, &insts, &outcome, &mut out);
        assert!(
            out.iter().any(|d| d.analysis == Analysis::Timing && d.message.contains("re-simulation takes")),
            "shrunk-latency outcome must fail the real machine's timing check:\n{}",
            crate::render(&out)
        );
    }

    #[test]
    fn a_clean_outcome_draws_no_timing_diagnostics() {
        let insts = mixed_block();
        for machine in machines() {
            let scheduler = wts_sched::ListScheduler::new(&machine);
            let outcome = scheduler.schedule_insts(&insts);
            let ctx = UnitCtx::new(machine.name());
            let mut out = Vec::new();
            check_timing(&ctx, &machine, &insts, &outcome, &mut out);
            assert!(out.is_empty(), "{}:\n{}", machine.name(), crate::render(&out));
        }
    }
}
