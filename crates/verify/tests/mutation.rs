//! Mutation testing: verifying the verifier.
//!
//! Each test seeds one known-bad mutation into an otherwise healthy
//! pipeline artifact and asserts the checker reports it — and that the
//! unmutated twin stays clean, so a catch can't be a false positive the
//! clean corpus would also trip. The four defect classes are the ones
//! the analyses exist for:
//!
//! 1. a dropped dependence edge (graph unsound),
//! 2. two scheduled instructions swapped (order illegal),
//! 3. a shrunk latency (cost bookkeeping drifts from the machine model),
//! 4. a store hoisted above a side exit (speculation unsafe).

use wts_deps::DepGraph;
use wts_ir::{Inst, MemRef, MemSpace, Opcode, Reg};
use wts_machine::MachineConfig;
use wts_sched::{ListScheduler, ScheduleOutcome};
use wts_verify::{check_dependences, render, verify_unit, Analysis, Severity, UnitCtx};

fn load(def: u16, slot: u32) -> Inst {
    Inst::new(Opcode::Lwz).def(Reg::gpr(def)).mem(MemRef::slot(MemSpace::Stack, slot))
}

fn add(def: u16, a: u16) -> Inst {
    Inst::new(Opcode::Add).def(Reg::gpr(def)).use_(Reg::gpr(a)).use_(Reg::gpr(a))
}

fn store(use_: u16, slot: u32) -> Inst {
    Inst::new(Opcode::Stw).use_(Reg::gpr(use_)).mem(MemRef::slot(MemSpace::Stack, slot))
}

/// A block with register flow, memory traffic and a terminator: enough
/// structure for every defect class to have somewhere to hide.
fn healthy_block() -> Vec<Inst> {
    vec![load(1, 0), add(2, 1), add(3, 9), store(2, 0), load(4, 4), add(5, 4), Inst::new(Opcode::Bc)]
}

fn errors_of(diags: &[wts_verify::Diagnostic], analysis: Analysis) -> usize {
    diags.iter().filter(|d| d.severity == Severity::Error && d.analysis == analysis).count()
}

// ---------------------------------------------------------------- class 1

#[test]
fn class1_a_dropped_dependence_edge_is_caught() {
    let insts = healthy_block();
    // Mutant: the graph was built from a copy where inst 1 reads r9
    // instead of r1, so the true edge 0 -> 1 vanishes.
    let mut tampered = insts.clone();
    tampered[1] = add(2, 9);
    let broken = DepGraph::build(&tampered);

    let ctx = UnitCtx::new("ppc7410");
    let mut diags = Vec::new();
    check_dependences(&ctx, &insts, false, &broken, &mut diags);
    assert!(
        diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("missing true dependence edge 0 -> 1")),
        "dropped edge must be caught:\n{}",
        render(&diags)
    );

    // The unmutated twin is clean.
    let mut clean = Vec::new();
    check_dependences(&ctx, &insts, false, &DepGraph::build(&insts), &mut clean);
    assert!(clean.is_empty(), "healthy graph misflagged:\n{}", render(&clean));
}

// ---------------------------------------------------------------- class 2

#[test]
fn class2_two_swapped_scheduled_insts_are_caught() {
    let machine = MachineConfig::ppc7410();
    let insts = healthy_block();
    let outcome = ListScheduler::new(&machine).schedule_insts(&insts);
    assert!(verify_unit(&machine, &insts, false, &outcome).is_empty(), "healthy schedule misflagged");

    // Mutant: the load and its consumer trade places in the final order.
    let mut swapped = outcome.clone();
    let a = swapped.order.iter().position(|&i| i == 0).unwrap();
    let b = swapped.order.iter().position(|&i| i == 1).unwrap();
    swapped.order.swap(a, b);
    let diags = verify_unit(&machine, &insts, false, &swapped);
    assert!(
        diags.iter().any(|d| d.message.contains("dependence 0 -> 1 violated by order")),
        "swapped pair must be caught:\n{}",
        render(&diags)
    );
    assert!(errors_of(&diags, Analysis::Timing) > 0);
}

// ---------------------------------------------------------------- class 3

#[test]
fn class3_a_shrunk_latency_is_caught() {
    // Mutant machine: identical widths/window to ppc7410 but loads claim
    // to finish in 1 cycle. An outcome produced against it carries cycle
    // counts the real machine cannot reproduce.
    let real = MachineConfig::ppc7410();
    let shrunk = MachineConfig::builder("ppc7410-mutant").issue_width(2).window(8).latency(Opcode::Lwz, 1).build();
    let insts = healthy_block();
    let mutant_outcome = ListScheduler::new(&shrunk).schedule_insts(&insts);
    let diags = verify_unit(&real, &insts, false, &mutant_outcome);
    assert!(
        diags.iter().any(|d| d.severity == Severity::Error
            && d.analysis == Analysis::Timing
            && d.message.contains("re-simulation takes")),
        "shrunk latency must be caught:\n{}",
        render(&diags)
    );

    // The same block scheduled against the real machine is clean.
    let honest = ListScheduler::new(&real).schedule_insts(&insts);
    assert!(verify_unit(&real, &insts, false, &honest).is_empty(), "honest outcome misflagged");
}

// ---------------------------------------------------------------- class 4

#[test]
fn class4_a_store_hoisted_above_a_side_exit_is_caught() {
    let machine = MachineConfig::ppc7410();
    // A two-block trace: [add, bc | store, bc]. The store belongs to the
    // second block; hoisting it above the side exit at index 1 makes it
    // execute on paths that leave the trace early.
    let insts = vec![add(1, 9), Inst::new(Opcode::Bc), store(1, 0), Inst::new(Opcode::Bc)];
    let honest = ListScheduler::new(&machine).schedule_superblock(&insts);
    assert!(verify_unit(&machine, &insts, true, &honest).is_empty(), "healthy trace misflagged");

    let hoisted = ScheduleOutcome { order: vec![0, 2, 1, 3], ..honest };
    let diags = verify_unit(&machine, &insts, true, &hoisted);
    assert!(
        diags.iter().any(|d| d.severity == Severity::Error
            && d.analysis == Analysis::Speculation
            && d.message.contains("hoisted above the side exit")),
        "hoisted store must be caught as a speculation error:\n{}",
        render(&diags)
    );
}

// Pure computation hoisted above a side exit is the speculative model's
// *feature*; the mutation suite pins that it stays unflagged so the
// speculation check cannot rot into "nothing may move".
#[test]
fn speculative_hoisting_of_pure_computation_stays_legal() {
    let machine = MachineConfig::ppc7410();
    let insts = vec![
        Inst::new(Opcode::Fdiv).def(Reg::fpr(1)).use_(Reg::fpr(2)).use_(Reg::fpr(3)),
        Inst::new(Opcode::Bc),
        add(1, 9),
        Inst::new(Opcode::Bc),
    ];
    // An explicitly hoisted order with honest cycle claims: the add
    // moves above the side exit into the 33-cycle divide's shadow.
    let order = vec![0, 2, 1, 3];
    let permuted: Vec<Inst> = order.iter().map(|&i| insts[i]).collect();
    let hoisted = ScheduleOutcome {
        order,
        cycles_before: wts_verify::resimulate(&machine, &insts).0,
        cycles_after: wts_verify::resimulate(&machine, &permuted).0,
    };
    let diags = verify_unit(&machine, &insts, true, &hoisted);
    assert!(diags.is_empty(), "{}", render(&diags));
}
