//! `lint_overhead`: what the static model and protocol analysis costs.
//!
//! The model lints and the threshold proof run once per artifact at
//! train/deploy time — never on the serving hot path — so this bench
//! prices the *tooling*, not the pipeline. Rows:
//!
//! * **lower_tables** — lower every registry machine's factory filter
//!   into a [`wts_verify::ModelTable`] (the shared front-end of every
//!   model lint);
//! * **lint_models** — the full interval-domain lint pass
//!   ([`wts_verify::lint_model`]) over every table: shadowing,
//!   contradiction, dead-default, score-range and demand-mask checks;
//! * **prove_thresholds** — the abstract-interpretation threshold proof
//!   ([`wts_verify::prove_hard_threshold`]) over every table;
//! * **store_protocol_dfs** / **serve_protocol_dfs** — the
//!   bounded-exhaustive model check of the `FilterStore` epoch protocol
//!   and the `wts-serve` frame exchange, at their default (correct)
//!   configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_core::{Experiment, Filter, LearnedFilter, TimingMode};
use wts_ir::Program;
use wts_verify::{
    check_serve_protocol, check_store_protocol, lint_model, prove_hard_threshold, ModelTable, ServeProtoConfig,
    StoreProtoConfig,
};

fn lint_overhead(c: &mut Criterion) {
    let suite = wts_jit::Suite::fp(wts_bench::BENCH_SCALE);
    let programs: Vec<Program> = suite.benchmarks().iter().map(|b| b.program().clone()).collect();

    let filters: Vec<(String, LearnedFilter)> = wts_machine::registry()
        .iter()
        .map(|machine| {
            let run = Experiment::new(machine.clone()).with_timing(TimingMode::Deterministic).run(programs.clone());
            (machine.name().to_string(), run.factory_filter(0))
        })
        .collect();
    let tables: Vec<ModelTable> = filters
        .iter()
        .map(|(name, learned)| ModelTable::from_rule_set(learned.rules(), learned.compile().demand(), name.as_str()))
        .collect();
    let conditions: usize = tables.iter().flat_map(|t| t.rules.iter()).map(Vec::len).sum();
    eprintln!("# lint_overhead: {} tables, {conditions} conditions per iteration", tables.len());

    // Everything the pipeline produces must already be clean — the bench
    // times the analysis, not diagnostic formatting.
    for table in &tables {
        assert!(lint_model(table).is_empty(), "{}: factory filter must lint clean", table.name);
        assert!(prove_hard_threshold(table).holds(), "{}: threshold proof must hold", table.name);
    }

    let mut group = c.benchmark_group("lint_overhead");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("lower_tables", |b| {
        b.iter(|| {
            let mut conds = 0usize;
            for (name, learned) in &filters {
                let table =
                    ModelTable::from_rule_set(black_box(learned.rules()), learned.compile().demand(), name.as_str());
                conds += table.rules.iter().map(Vec::len).sum::<usize>();
            }
            conds
        });
    });

    group.bench_function("lint_models", |b| {
        b.iter(|| {
            let mut diags = 0usize;
            for table in &tables {
                diags += lint_model(black_box(table)).len();
            }
            diags
        });
    });

    group.bench_function("prove_thresholds", |b| {
        b.iter(|| {
            let mut held = 0usize;
            for table in &tables {
                if prove_hard_threshold(black_box(table)).holds() {
                    held += 1;
                }
            }
            held
        });
    });

    group.bench_function("store_protocol_dfs", |b| {
        b.iter(|| check_store_protocol(black_box(StoreProtoConfig::default())).states);
    });

    group.bench_function("serve_protocol_dfs", |b| {
        b.iter(|| check_serve_protocol(black_box(ServeProtoConfig::default())).states);
    });

    group.finish();
}

criterion_group!(benches, lint_overhead);
criterion_main!(benches);
