//! `verify_overhead`: what the wts-verify checker costs per block.
//!
//! The in-pipeline hooks are compiled behind `#[cfg(all(feature =
//! "verify", debug_assertions))]`, so a release build — benches
//! included — pays **zero** overhead whether or not the feature is
//! enabled; `schedule_only` below *is* the shipping configuration.
//! The other rows price what the checks would cost if they ran:
//!
//! * **schedule_only** — list-schedule every FP-corpus block
//!   (allocation-free `_into` path), the baseline;
//! * **schedule_plus_verify** — the same loop with a full
//!   [`wts_verify::verify_unit`] pass (dependence oracle + CSR
//!   cross-check + timing re-simulation + provider cross-check) after
//!   every block, i.e. the hooked debug configuration;
//! * **oracle_only** — just the O(n²) dependence oracle per block;
//! * **resimulate_only** — just the independent timing re-simulation
//!   of the original order per block.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_ir::Inst;
use wts_machine::MachineConfig;
use wts_sched::{ListScheduler, SchedScratch, ScheduleOutcome};

fn corpus_blocks() -> Vec<Vec<Inst>> {
    let suite = wts_jit::Suite::fp(wts_bench::BENCH_SCALE);
    let mut blocks = Vec::new();
    for bench in suite.benchmarks() {
        for method in bench.program().methods() {
            for block in method.blocks() {
                if !block.insts().is_empty() {
                    blocks.push(block.insts().to_vec());
                }
            }
        }
    }
    blocks
}

fn verify_overhead(c: &mut Criterion) {
    let machine = MachineConfig::ppc7410();
    let scheduler = ListScheduler::new(&machine);
    let blocks = corpus_blocks();
    let insts: usize = blocks.iter().map(Vec::len).sum();
    eprintln!("# verify_overhead: {} blocks, {insts} insts per iteration", blocks.len());

    // Pre-scheduled outcomes so the checker-only rows time nothing else.
    let outcomes: Vec<ScheduleOutcome> = blocks.iter().map(|b| scheduler.schedule_insts(b)).collect();
    for (block, outcome) in blocks.iter().zip(&outcomes) {
        let diags = wts_verify::verify_unit(&machine, block, false, outcome);
        assert!(diags.is_empty(), "corpus must verify cleanly before it is timed");
    }

    let mut group = c.benchmark_group("verify_overhead");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("schedule_only", |b| {
        let mut scratch = SchedScratch::new(&machine);
        let mut out = ScheduleOutcome::default();
        b.iter(|| {
            let mut cycles = 0u64;
            for block in &blocks {
                scheduler.schedule_insts_into(black_box(block), &mut scratch, &mut out);
                cycles += out.cycles_after;
            }
            cycles
        });
    });

    group.bench_function("schedule_plus_verify", |b| {
        let mut scratch = SchedScratch::new(&machine);
        let mut out = ScheduleOutcome::default();
        b.iter(|| {
            let mut clean = 0usize;
            for block in &blocks {
                scheduler.schedule_insts_into(black_box(block), &mut scratch, &mut out);
                if wts_verify::verify_unit(&machine, block, false, &out).is_empty() {
                    clean += 1;
                }
            }
            clean
        });
    });

    group.bench_function("oracle_only", |b| {
        b.iter(|| {
            let mut edges = 0usize;
            for block in &blocks {
                edges += wts_verify::oracle_edges(black_box(block), false).len();
            }
            edges
        });
    });

    group.bench_function("resimulate_only", |b| {
        b.iter(|| {
            let mut cycles = 0u64;
            for block in &blocks {
                cycles += wts_verify::resimulate(&machine, black_box(block)).0;
            }
            cycles
        });
    });

    group.finish();
}

criterion_group!(benches, verify_overhead);
criterion_main!(benches);
