//! `decision_policy`: the cost of the score-then-decide seam against
//! the boolean decide it replaced, serial and batch.
//!
//! One ppc7410 factory filter (t=0) classifies the FP corpus four ways:
//!
//! * **decide_serial** — the legacy boolean path: `decide` per record;
//! * **score_hard_serial** — `score_counted` + `DecisionPolicy::
//!   HardThreshold` per record (decisions asserted identical first);
//! * **score_eb_serial** — `score_counted` + a calibrated
//!   `ExpectedBenefit` policy, the fully graded deployment;
//! * **decide_batch / score_batch** — the SoA batch pair, serial
//!   sharding, over the same records.
//!
//! The headline: scoring rides the same short-circuit walk as deciding,
//! so the hard-policy columns should sit within noise of the boolean
//! ones — the calibration is free at deploy time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_core::{DecisionPolicy, Experiment, FeatureBatch, Filter, TimingMode, UnitEconomics};
use wts_ir::Program;

fn decision_policy(c: &mut Criterion) {
    let suite = wts_jit::Suite::fp(wts_bench::BENCH_SCALE);
    let programs: Vec<Program> = suite.benchmarks().iter().map(|b| b.program().clone()).collect();
    let machine = wts_machine::MachineConfig::ppc7410();
    let run = Experiment::new(machine).with_timing(TimingMode::Deterministic).run(programs);
    let records = run.all_traces();
    let compiled = run.factory_filter(0).compile();
    eprintln!("# decision_policy: {} records per iteration, filter {}", records.len(), compiled.name());

    let hard = DecisionPolicy::HardThreshold;
    let eb = DecisionPolicy::expected_benefit(records, 1.0);

    // Scoring must not change a single decision before it is timed.
    for r in records {
        assert_eq!(compiled.score(r.features.as_slice()).decision(), compiled.decide(r.features.as_slice()));
    }

    let mut group = c.benchmark_group("decision_policy");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("decide_serial", |b| {
        b.iter(|| {
            let mut ls = 0usize;
            for r in records {
                if compiled.decide(black_box(r.features.as_slice())) {
                    ls += 1;
                }
            }
            ls
        });
    });
    for (name, policy) in [("score_hard_serial", &hard), ("score_eb_serial", &eb)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut ls = 0usize;
                for r in records {
                    let insts = r.features.bb_len() as u64;
                    let (score, conditions) = compiled.score_counted(black_box(r.features.as_slice()));
                    let unit = UnitEconomics {
                        insts,
                        exec_count: r.exec_count,
                        filter_work: conditions,
                        extraction_work: compiled.extraction_work(insts),
                    };
                    if policy.decide(score, &unit) {
                        ls += 1;
                    }
                }
                ls
            });
        });
    }

    let batch = FeatureBatch::from_traces(records);
    group.bench_function("decide_batch", |b| {
        b.iter(|| compiled.classify_batch(black_box(&batch), 1).iter().filter(|&&d| d).count());
    });
    group.bench_function("score_batch", |b| {
        b.iter(|| compiled.score_batch(black_box(&batch), 1).iter().filter(|s| s.decision()).count());
    });
    group.finish();
}

criterion_group!(benches, decision_policy);
criterion_main!(benches);
