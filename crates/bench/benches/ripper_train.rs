//! RIPPER training time (paper §2: "our technique induces heuristics in
//! seconds on one desktop computer", versus days on a cluster for the
//! genetic-programming alternative).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wts_core::{build_dataset, collect_trace, LabelConfig};
use wts_jit::Suite;
use wts_machine::MachineConfig;
use wts_ripper::{Dataset, RipperConfig};

fn corpus_dataset(scale: f64, t: u32) -> Dataset {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::specjvm98(scale);
    let mut traces = Vec::new();
    for b in suite.benchmarks() {
        traces.extend(collect_trace(b.program(), &machine));
    }
    build_dataset(&traces, LabelConfig::new(t)).0
}

fn ripper_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("ripper_train");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for (label, scale) in [("2k-instances", 0.05), ("8k-instances", 0.2)] {
        let data = corpus_dataset(scale, 0);
        group.bench_with_input(BenchmarkId::new("t0", label), &data, |b, d| {
            b.iter(|| black_box(RipperConfig::default().fit(black_box(d))));
        });
    }
    // Higher thresholds shrink the positive class and train much faster.
    let data = corpus_dataset(0.2, 30);
    group.bench_function("t30/8k-instances", |b| {
        b.iter(|| black_box(RipperConfig::default().fit(black_box(&data))));
    });
    group.finish();
}

criterion_group!(benches, ripper_train);
criterion_main!(benches);
