//! Scaling of the cross-machine experiment matrix: the machines×methods
//! shard list should let a registry-wide sweep approach the throughput
//! of a single-machine trace run per added core.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_core::{Experiment, ExperimentMatrix, TimingMode};
use wts_ir::Program;
use wts_jit::Suite;
use wts_machine::{registry, MachineConfig};

fn programs() -> Vec<Program> {
    Suite::fp(0.02).benchmarks().iter().map(|b| b.program().clone()).collect()
}

fn matrix_scaling(c: &mut Criterion) {
    let programs = programs();
    let template = Experiment::new(MachineConfig::ppc7410()).with_timing(TimingMode::Deterministic);
    let machines = registry();

    let mut group = c.benchmark_group("matrix_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function(format!("trace/{}-machines/serial", machines.len()), |b| {
        let matrix = ExperimentMatrix::new(machines.clone()).with_template(template.clone()).with_threads(1);
        b.iter(|| {
            let run = matrix.run(black_box(&programs));
            black_box(run.runs().len())
        });
    });
    group.bench_function(format!("trace/{}-machines/sharded", machines.len()), |b| {
        let matrix = ExperimentMatrix::new(machines.clone()).with_template(template.clone()).with_threads(0);
        b.iter(|| {
            let run = matrix.run(black_box(&programs));
            black_box(run.runs().len())
        });
    });
    // The single-machine baseline the sweep's per-machine cost is read against.
    group.bench_function("trace/1-machine/serial", |b| {
        let matrix =
            ExperimentMatrix::new(vec![MachineConfig::ppc7410()]).with_template(template.clone()).with_threads(1);
        b.iter(|| {
            let run = matrix.run(black_box(&programs));
            black_box(run.runs().len())
        });
    });
    group.finish();
}

criterion_group!(benches, matrix_scaling);
criterion_main!(benches);
