//! Superblock-scenario throughput: trace formation, the gain harness
//! (covering the id→index map that replaced the O(B²) constituent-block
//! lookup), scope-aware trace collection, and the deployed
//! superblock-scope filtered pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wts_core::{
    collect_trace_with, filtered_schedule_pass, Filter, ScopeKind, SizeThresholdFilter, TimingMode, TraceOptions,
};
use wts_ir::{form_superblocks, Program};
use wts_jit::{superblock_gain, Suite};
use wts_machine::MachineConfig;

const RATIO: u32 = 70;

fn fp_programs(scale: f64) -> Vec<Program> {
    Suite::fp(scale).benchmarks().iter().map(|b| b.program().clone()).collect()
}

/// Pure formation: how fast profile-hot chains merge into traces.
fn formation(c: &mut Criterion) {
    let mut group = c.benchmark_group("superblock_form");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for (label, scale) in [("fp-0.05", 0.05), ("fp-0.2", 0.2)] {
        let programs = fp_programs(scale);
        let methods: usize = programs.iter().map(|p| p.methods().len()).sum();
        group.bench_with_input(BenchmarkId::new("form", format!("{label}-{methods}-methods")), &programs, |b, ps| {
            b.iter(|| {
                let mut traces = 0usize;
                for p in ps {
                    for m in p.methods() {
                        traces += form_superblocks(black_box(m), RATIO).len();
                    }
                }
                black_box(traces)
            });
        });
    }
    group.finish();
}

/// The gain harness over whole programs — this is the fixed O(B) path
/// (one id→index map per method instead of a linear scan per
/// constituent block).
fn gain(c: &mut Criterion) {
    let mut group = c.benchmark_group("superblock_gain");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let machine = MachineConfig::ppc7410();
    let programs = fp_programs(0.1);
    group.bench_with_input(BenchmarkId::new("gain", "fp-0.1"), &programs, |b, ps| {
        b.iter(|| {
            let mut extra = 0.0;
            for p in ps {
                extra += superblock_gain(black_box(p), &machine, RATIO).extra_improvement();
            }
            black_box(extra)
        });
    });
    group.finish();
}

/// The instrumented collector at both scopes: the trace-scope pass
/// schedules fewer, larger units (speculatively), so the two rows show
/// what the scenario axis costs end to end.
fn scoped_collection(c: &mut Criterion) {
    let mut group = c.benchmark_group("superblock_trace");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let machine = MachineConfig::ppc7410();
    let programs = fp_programs(0.05);
    for (label, scope) in [("block", ScopeKind::Block), ("superblock", ScopeKind::Superblock(RATIO))] {
        let opts = TraceOptions { scope, timing: TimingMode::Deterministic, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("collect", label), &programs, |b, ps| {
            b.iter(|| {
                let mut records = 0usize;
                for p in ps {
                    records += collect_trace_with(black_box(p), &machine, &opts).len();
                }
                black_box(records)
            });
        });
    }
    group.finish();
}

/// The deployed fast path at superblock scope: masked extraction over
/// concatenated traces, the flat condition table, and speculative
/// scheduling only for the selected traces.
fn scoped_filtered_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("superblock_pass");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let machine = MachineConfig::ppc7410();
    let programs = fp_programs(0.05);
    let compiled = SizeThresholdFilter::new(6).compile();
    for (label, scope) in [("block", ScopeKind::Block), ("superblock", ScopeKind::Superblock(RATIO))] {
        let opts = TraceOptions { scope, timing: TimingMode::Deterministic, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("filtered-pass", label), &programs, |b, ps| {
            b.iter(|| {
                let mut scheduled = 0usize;
                for p in ps {
                    scheduled += filtered_schedule_pass(black_box(p), &machine, &compiled, &opts).scheduled_blocks;
                }
                black_box(scheduled)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, formation, gain, scoped_collection, scoped_filtered_pass);
criterion_main!(benches);
