//! Component-cost ablation (DESIGN.md §5, "features without the DAG"):
//! per-block cost of feature extraction versus dependence-DAG
//! construction versus full list scheduling, by block size.
//!
//! This substantiates the paper's §2.1 design choice — features must be
//! much cheaper than the DAG, which "can sometimes dominate the overall
//! running time of the scheduling algorithm".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wts_deps::DepGraph;
use wts_features::FeatureVector;
use wts_ir::BasicBlock;
use wts_jit::Suite;
use wts_machine::MachineConfig;
use wts_sched::ListScheduler;

/// Picks one representative block of roughly each size from the corpus.
fn blocks_by_size() -> Vec<(usize, BasicBlock)> {
    let suite = Suite::fp(0.05);
    let mut picks: Vec<(usize, BasicBlock)> = Vec::new();
    for want in [4usize, 8, 16, 32] {
        let mut best: Option<&BasicBlock> = None;
        for b in suite.benchmarks() {
            for (_, blk) in b.program().iter_blocks() {
                if best.is_none_or(|cur| blk.len().abs_diff(want) < cur.len().abs_diff(want)) {
                    best = Some(blk);
                }
            }
        }
        let blk = best.expect("corpus non-empty").clone();
        picks.push((want, blk));
    }
    picks
}

fn components(c: &mut Criterion) {
    let machine = MachineConfig::ppc7410();
    let scheduler = ListScheduler::new(&machine);
    let mut group = c.benchmark_group("component_costs");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for (size, block) in blocks_by_size() {
        group.bench_with_input(BenchmarkId::new("features", size), &block, |b, blk| {
            b.iter(|| black_box(FeatureVector::extract(black_box(blk))));
        });
        group.bench_with_input(BenchmarkId::new("dag", size), &block, |b, blk| {
            b.iter(|| black_box(DepGraph::build(black_box(blk.insts()))));
        });
        group.bench_with_input(BenchmarkId::new("schedule", size), &block, |b, blk| {
            b.iter(|| black_box(scheduler.schedule_block(black_box(blk))));
        });
    }
    group.finish();
}

criterion_group!(benches, components);
criterion_main!(benches);
