//! Figure 2(a): scheduling-pass time as the labeling threshold grows.
//!
//! Filters trained at higher t predict "schedule" for fewer blocks, so
//! the pass gets cheaper: the paper's 39% → 6% of LS cost across
//! t = 0..50. One compile of the whole suite per filter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_bench::{BenchSetup, BENCH_SCALE};
use wts_core::{AlwaysSchedule, Filter};
use wts_jit::{CompileSession, Suite};

fn compile_suite(session: &CompileSession<'_>, suite: &Suite, filter: &dyn Filter) -> u64 {
    let mut total = 0;
    for b in suite.benchmarks() {
        let (_, stats) = session.compile(b.program(), filter);
        total += stats.pass_ns();
    }
    total
}

fn fig2a(c: &mut Criterion) {
    let suite = Suite::specjvm98(BENCH_SCALE);
    let mut group = c.benchmark_group("fig2a_threshold_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // LS reference.
    {
        let setup = BenchSetup::jvm98(0);
        let session = CompileSession::new(&setup.machine);
        group.bench_function("LS", |b| {
            b.iter(|| black_box(compile_suite(&session, &suite, &AlwaysSchedule)));
        });
    }

    for t in [0u32, 10, 20, 35, 50] {
        let setup = BenchSetup::jvm98(t);
        let session = CompileSession::new(&setup.machine);
        // One representative filter per threshold: the compress fold.
        let filter = setup.filter_for("compress").clone();
        group.bench_function(format!("LN_t{t}"), |b| {
            b.iter(|| black_box(compile_suite(&session, &suite, &filter)));
        });
    }
    group.finish();
}

criterion_group!(benches, fig2a);
criterion_main!(benches);
