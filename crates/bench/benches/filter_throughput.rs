//! `filter_throughput`: blocks/second of filter classification,
//! interpreted versus compiled, across the machine registry.
//!
//! Each registry machine gets a factory filter trained at t=0 on its own
//! labels, then the same block corpus is classified two ways:
//!
//! * **interpreted_full** — the pre-engine path: full 13-feature
//!   extraction, then the interpreted `RuleSet::predict` walk;
//! * **compiled_masked** — the engine: demand-masked extraction of only
//!   the features the rules read, then the flat condition table.
//!
//! A third pair times the batch API (contiguous SoA columns), serial
//! versus sharded across all cores. Decisions are asserted identical
//! before anything is timed. The per-iteration block count is printed so
//! `blocks/sec = count / time` can be read off the report.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_core::{Experiment, FeatureBatch, Filter, TimingMode};
use wts_features::FeatureVector;
use wts_ir::{BasicBlock, Program};

fn filter_throughput(c: &mut Criterion) {
    let suite = wts_jit::Suite::fp(wts_bench::BENCH_SCALE);
    let programs: Vec<Program> = suite.benchmarks().iter().map(|b| b.program().clone()).collect();
    let blocks: Vec<&BasicBlock> = programs.iter().flat_map(|p| p.iter_blocks().map(|(_, b)| b)).collect();
    eprintln!("# filter_throughput: {} blocks per iteration", blocks.len());

    let mut group = c.benchmark_group("filter_throughput");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for machine in wts_machine::registry() {
        let run = Experiment::new(machine.clone()).with_timing(TimingMode::Deterministic).run(programs.clone());
        let learned = run.factory_filter(0);
        let compiled = learned.compile();
        eprintln!("# {}: filter {} / demand {}", machine.name(), compiled.name(), compiled.demand());

        // The engine must agree with the interpreted path before it is
        // allowed on the scoreboard.
        for block in &blocks {
            assert_eq!(
                compiled.classify_block(block),
                learned.should_schedule(&FeatureVector::extract(block)),
                "{}: compiled filter diverged",
                machine.name()
            );
        }

        group.bench_function(format!("{}/interpreted_full", machine.name()), |b| {
            b.iter(|| {
                let mut ls = 0usize;
                for block in &blocks {
                    let fv = FeatureVector::extract(black_box(block));
                    if learned.should_schedule(&fv) {
                        ls += 1;
                    }
                }
                ls
            });
        });
        group.bench_function(format!("{}/compiled_masked", machine.name()), |b| {
            b.iter(|| {
                let mut ls = 0usize;
                for block in &blocks {
                    if compiled.classify_block(black_box(block)) {
                        ls += 1;
                    }
                }
                ls
            });
        });

        // The batch path over already-extracted traces: SoA columns,
        // serial vs sharded across all cores.
        let batch = FeatureBatch::from_traces(run.all_traces());
        group.bench_function(format!("{}/batch_serial", machine.name()), |b| {
            b.iter(|| compiled.classify_batch(black_box(&batch), 1).iter().filter(|&&d| d).count());
        });
        group.bench_function(format!("{}/batch_sharded", machine.name()), |b| {
            b.iter(|| compiled.classify_batch(black_box(&batch), 0).iter().filter(|&&d| d).count());
        });
    }
    group.finish();
}

criterion_group!(benches, filter_throughput);
criterion_main!(benches);
