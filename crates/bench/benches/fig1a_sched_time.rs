//! Figure 1(a): scheduling time of the L/N filter versus always
//! scheduling (LS), per SPECjvm98 benchmark, at threshold t=0.
//!
//! The timed region is the JIT's whole scheduling pass — feature
//! extraction + filter evaluation + (selected) scheduling — exactly the
//! quantity the paper charges to "scheduling time" (§3.1). Expect L/N to
//! come in well under LS, reproducing the ~38% geometric mean.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_bench::BenchSetup;
use wts_core::AlwaysSchedule;
use wts_jit::CompileSession;

fn fig1a(c: &mut Criterion) {
    let setup = BenchSetup::jvm98(0);
    let session = CompileSession::new(&setup.machine);
    let mut group = c.benchmark_group("fig1a_sched_time");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for bench in setup.suite.benchmarks() {
        let name = bench.name().to_string();
        group.bench_function(format!("{name}/LS"), |b| {
            b.iter(|| {
                let (out, stats) = session.compile(black_box(bench.program()), &AlwaysSchedule);
                black_box((out.block_count(), stats.pass_ns()))
            });
        });
        let filter = setup.filter_for(&name).clone();
        group.bench_function(format!("{name}/LN_t0"), |b| {
            b.iter(|| {
                let (out, stats) = session.compile(black_box(bench.program()), &filter);
                black_box((out.block_count(), stats.pass_ns()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig1a);
criterion_main!(benches);
