//! Figure 1(a): scheduling time of the L/N filter versus always
//! scheduling (LS), per SPECjvm98 benchmark, at threshold t=0.
//!
//! The timed region is the JIT's whole scheduling pass — feature
//! extraction + filter evaluation + (selected) scheduling — exactly the
//! quantity the paper charges to "scheduling time" (§3.1). Expect L/N to
//! come in well under LS, reproducing the ~38% geometric mean.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_bench::BenchSetup;
use wts_core::{collect_trace_with, AlwaysSchedule, TimingMode, TraceOptions};
use wts_jit::CompileSession;

fn fig1a(c: &mut Criterion) {
    let setup = BenchSetup::jvm98(0);
    let session = CompileSession::new(&setup.machine);
    let mut group = c.benchmark_group("fig1a_sched_time");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for bench in setup.suite.benchmarks() {
        let name = bench.name().to_string();
        group.bench_function(format!("{name}/LS"), |b| {
            b.iter(|| {
                let (out, stats) = session.compile(black_box(bench.program()), &AlwaysSchedule);
                black_box((out.block_count(), stats.pass_ns()))
            });
        });
        let filter = setup.filter_for(&name).clone();
        group.bench_function(format!("{name}/LN_t0"), |b| {
            b.iter(|| {
                let (out, stats) = session.compile(black_box(bench.program()), &filter);
                black_box((out.block_count(), stats.pass_ns()))
            });
        });
    }
    group.finish();
}

/// Serial versus method-sharded trace collection over the whole suite:
/// the parallel path must produce identical records (asserted here on
/// the deterministic channels) and, on multicore hosts, finish faster.
fn trace_sharding(c: &mut Criterion) {
    // Only the suite and machine are needed — skip BenchSetup's LOOCV
    // training pass.
    let suite = wts_jit::Suite::specjvm98(wts_bench::BENCH_SCALE);
    let machine = wts_machine::MachineConfig::ppc7410();
    let opts_serial = TraceOptions { threads: 1, timing: TimingMode::Deterministic, ..Default::default() };
    let opts_auto = TraceOptions { threads: 0, timing: TimingMode::Deterministic, ..Default::default() };
    // Fixed thread count, so the sharded machinery is exercised (and its
    // overhead visible) even on single-core hosts where auto == serial.
    let opts_four = TraceOptions { threads: 4, timing: TimingMode::Deterministic, ..Default::default() };

    for b in suite.benchmarks() {
        let serial = collect_trace_with(b.program(), &machine, &opts_serial);
        for opts in [&opts_auto, &opts_four] {
            let sharded = collect_trace_with(b.program(), &machine, opts);
            assert_eq!(serial, sharded, "{}: sharded trace must be bit-identical", b.name());
        }
    }

    let mut group = c.benchmark_group("fig1a_trace_sharding");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, opts) in [("serial", opts_serial), ("sharded_auto", opts_auto), ("sharded_4", opts_four)] {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let mut records = 0usize;
                for b in suite.benchmarks() {
                    records += collect_trace_with(black_box(b.program()), &machine, &opts).len();
                }
                records
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig1a, trace_sharding);
criterion_main!(benches);
