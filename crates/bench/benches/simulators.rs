//! Throughput of the two machine simulators: the cheap in-order
//! estimator must be fast enough to run inside the scheduler, while the
//! detailed pipeline model is only used offline as the hardware stand-in.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_ir::BasicBlock;
use wts_jit::Suite;
use wts_machine::{CostModel, MachineConfig, PipelineSim};

fn corpus_blocks(n: usize) -> Vec<BasicBlock> {
    let suite = Suite::specjvm98(0.03);
    suite
        .benchmarks()
        .iter()
        .flat_map(|b| b.program().iter_blocks().map(|(_, blk)| blk.clone()).collect::<Vec<_>>())
        .take(n)
        .collect()
}

fn simulators(c: &mut Criterion) {
    let machine = MachineConfig::ppc7410();
    let blocks = corpus_blocks(500);
    let cost = CostModel::new(&machine);
    let pipe = PipelineSim::new(&machine);

    let mut group = c.benchmark_group("simulators");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("cost_model/500-blocks", |b| {
        b.iter(|| {
            let total: u64 = blocks.iter().map(|blk| cost.block_cycles(black_box(blk))).sum();
            black_box(total)
        });
    });
    group.bench_function("pipeline_sim/500-blocks", |b| {
        b.iter(|| {
            let total: u64 = blocks.iter().map(|blk| pipe.block_cycles(black_box(blk))).sum();
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, simulators);
criterion_main!(benches);
