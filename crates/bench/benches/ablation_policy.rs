//! Scheduler-policy ablation (DESIGN.md §5): the filter technique
//! assumes "any competent scheduler"; this measures the cost of the
//! selection policies themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_ir::BasicBlock;
use wts_jit::Suite;
use wts_machine::MachineConfig;
use wts_sched::{ListScheduler, SchedulePolicy};

fn fp_blocks(n: usize) -> Vec<BasicBlock> {
    let suite = Suite::fp(0.03);
    suite
        .benchmarks()
        .iter()
        .flat_map(|b| b.program().iter_blocks().map(|(_, blk)| blk.clone()).collect::<Vec<_>>())
        .take(n)
        .collect()
}

fn policies(c: &mut Criterion) {
    let machine = MachineConfig::ppc7410();
    let blocks = fp_blocks(300);
    let mut group = c.benchmark_group("ablation_policy");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for policy in [
        SchedulePolicy::CriticalPath,
        SchedulePolicy::EarliestStart,
        SchedulePolicy::CriticalPathOnly,
        SchedulePolicy::Random(7),
    ] {
        let scheduler = ListScheduler::with_policy(&machine, policy);
        group.bench_function(format!("{policy}/300-blocks"), |b| {
            b.iter(|| {
                let total: u64 = blocks.iter().map(|blk| scheduler.schedule_block(black_box(blk)).cycles_after).sum();
                black_box(total)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, policies);
criterion_main!(benches);
