//! Figure 3(a): scheduling time of filters on the floating-point suite
//! (the benchmarks that actually benefit from scheduling, Table 7).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_bench::BenchSetup;
use wts_core::AlwaysSchedule;
use wts_jit::CompileSession;

fn fig3a(c: &mut Criterion) {
    let setup0 = BenchSetup::fp(0);
    let setup20 = BenchSetup::fp(20);
    let session = CompileSession::new(&setup0.machine);
    let mut group = c.benchmark_group("fig3a_fp_suite");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for bench in setup0.suite.benchmarks() {
        let name = bench.name().to_string();
        group.bench_function(format!("{name}/LS"), |b| {
            b.iter(|| {
                let (_, stats) = session.compile(black_box(bench.program()), &AlwaysSchedule);
                black_box(stats.pass_ns())
            });
        });
        for (t, setup) in [(0u32, &setup0), (20u32, &setup20)] {
            let filter = setup.filter_for(&name).clone();
            group.bench_function(format!("{name}/LN_t{t}"), |b| {
                b.iter(|| {
                    let (_, stats) = session.compile(black_box(bench.program()), &filter);
                    black_box(stats.pass_ns())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig3a);
criterion_main!(benches);
