//! `trace_collection`: raw throughput of the serial trace-collection hot
//! path — the inner loop every experiment (LOOCV training, the
//! machines×learners×scopes matrix, the bench trajectory itself)
//! multiplies by corpus size, machine count and learner count.
//!
//! Two families:
//!
//! * **collect/** — one full instrumented pass (features + dependence
//!   DAG + list scheduling + both cost providers) over the FP suite,
//!   serial (`threads: 1`), at block and superblock scope. This is the
//!   path the CSR graph / scratch-scheduler overhaul targets; the
//!   per-iteration unit count is printed so `units/sec = count / time`
//!   reads off the report.
//! * **serialize/** — trace-file encode/decode throughput, text format
//!   versus the binary `schedfilter-trace-bin-v1`.
//!
//! Per-PR summaries of these numbers are persisted as `BENCH_<n>.json`
//! at the repo root (see README); run with `CRITERION_SUMMARY_JSON=path`
//! to have the harness append machine-readable result lines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wts_core::{
    collect_trace_with, read_trace, read_trace_binary, write_trace, write_trace_binary, TimingMode, TraceOptions,
};
use wts_ir::{Program, ScopeKind};

fn trace_collection(c: &mut Criterion) {
    let suite = wts_jit::Suite::fp(wts_bench::BENCH_SCALE);
    let machine = wts_machine::MachineConfig::ppc7410();
    let serial = TraceOptions { threads: 1, timing: TimingMode::Deterministic, ..Default::default() };
    let superblock = TraceOptions { scope: ScopeKind::Superblock(70), ..serial };
    let programs: Vec<Program> = suite.benchmarks().iter().map(|b| b.program().clone()).collect();
    let blocks: usize = programs.iter().map(|p| p.block_count()).sum();
    eprintln!("# trace_collection: {blocks} blocks per collect iteration");

    let mut group = c.benchmark_group("trace_collection");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("collect/serial_block", |b| {
        b.iter(|| {
            let mut records = 0usize;
            for p in &programs {
                records += collect_trace_with(black_box(p), &machine, &serial).len();
            }
            records
        });
    });
    group.bench_function("collect/serial_superblock", |b| {
        b.iter(|| {
            let mut records = 0usize;
            for p in &programs {
                records += collect_trace_with(black_box(p), &machine, &superblock).len();
            }
            records
        });
    });

    // Serialization throughput over the whole collected corpus.
    let records: Vec<_> = programs.iter().flat_map(|p| collect_trace_with(p, &machine, &serial)).collect();
    eprintln!("# trace_collection: {} records per serialize iteration", records.len());
    group.bench_function("serialize/text_write", |b| {
        b.iter(|| write_trace(black_box(&records)).expect("generated names are clean").len());
    });
    let text = write_trace(&records).expect("generated names are clean");
    group.bench_function("serialize/text_read", |b| {
        b.iter(|| read_trace(black_box(&text)).expect("own output parses").len());
    });
    group.bench_function("serialize/binary_write", |b| {
        b.iter(|| write_trace_binary(black_box(&records)).expect("generated records are finite").len());
    });
    let binary = write_trace_binary(&records).expect("generated records are finite");
    group.bench_function("serialize/binary_read", |b| {
        b.iter(|| read_trace_binary(black_box(&binary)).expect("own output parses").len());
    });
    group.finish();
}

criterion_group!(benches, trace_collection);
criterion_main!(benches);
