//! `serve_throughput`: blocks/second of the serving layer against the
//! in-process deployed pass.
//!
//! Four scenarios over the same FP-suite corpus and the same stump
//! filter:
//!
//! * **direct_pass** — the in-process baseline:
//!   [`filtered_schedule_pass_with`] over every program, no socket;
//! * **single_client** — one blocking client round-tripping one
//!   benchmark per batch through a live server;
//! * **multi_client_batched** — four concurrent clients, each
//!   pipelining all its batches before collecting responses;
//! * **swap_under_load** — single_client again while a deployer thread
//!   hot-swaps the filter as fast as it can, pricing the epoch churn.
//!
//! The per-iteration unit count is printed so `blocks/sec = units /
//! time` can be read off the report; the serving scenarios assert every
//! batch comes back complete before anything is timed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wts_core::{
    collect_trace_with, filtered_schedule_pass_with, train_filter, DecisionPolicy, LearnerKind, TimingMode,
    TraceOptions, TrainConfig,
};
use wts_ir::Program;
use wts_serve::{Response, ServeClient, ServeConfig, Server, ServerHandle};

const CLIENTS: usize = 4;

fn bind_server(machine: &wts_machine::MachineConfig, programs: &[Program], opts: &TraceOptions) -> ServerHandle {
    let seed: Vec<_> = programs.iter().flat_map(|p| collect_trace_with(p, machine, opts)).collect();
    let mut config = ServeConfig::new(machine.clone(), seed);
    config.learner = LearnerKind::Stump;
    config.retrain_every = 0; // serving cost, not retraining cost
    config.workers = CLIENTS;
    Server::bind("127.0.0.1:0", config).expect("bind bench server")
}

fn drive_round(client: &mut ServeClient, programs: &[Program]) -> u64 {
    let mut units = 0u64;
    for (i, program) in programs.iter().enumerate() {
        match client.request_with_retry(i as u64, program.name(), program.methods(), 12).expect("request") {
            Response::Batch(batch) => units += batch.totals.total_blocks as u64,
            other => panic!("unexpected response {other:?}"),
        }
    }
    units
}

fn serve_throughput(c: &mut Criterion) {
    let machine = wts_machine::MachineConfig::ppc7410();
    let suite = wts_jit::Suite::fp(wts_bench::BENCH_SCALE);
    let programs: Vec<Program> = suite.benchmarks().iter().map(|b| b.program().clone()).collect();
    let opts = TraceOptions { timing: TimingMode::Deterministic, ..TraceOptions::default() };
    let units: usize = programs.iter().map(|p| p.block_count()).sum();
    eprintln!("# serve_throughput: {units} units per single-client iteration, {CLIENTS}x for multi_client");

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // The in-process baseline everything is priced against.
    {
        let handle = bind_server(&machine, &programs, &opts);
        let compiled = handle.store().get(handle.key()).expect("deployed").compiled().clone();
        handle.shutdown();
        group.bench_function("direct_pass", |b| {
            b.iter(|| {
                let mut scheduled = 0usize;
                for program in &programs {
                    let pass = filtered_schedule_pass_with(
                        black_box(program),
                        &machine,
                        &compiled,
                        &DecisionPolicy::HardThreshold,
                        &opts,
                    );
                    scheduled += pass.scheduled_blocks;
                }
                scheduled
            });
        });
    }

    // One client, strict request/response.
    {
        let handle = bind_server(&machine, &programs, &opts);
        let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
        assert_eq!(drive_round(&mut client, &programs), units as u64);
        group.bench_function("single_client", |b| {
            b.iter(|| drive_round(&mut client, &programs));
        });
        handle.shutdown();
    }

    // Concurrent clients, each pipelining its whole round before
    // collecting — the batched saturation case.
    {
        let handle = bind_server(&machine, &programs, &opts);
        let addr = handle.local_addr();
        let mut clients: Vec<ServeClient> =
            (0..CLIENTS).map(|_| ServeClient::connect(addr).expect("connect")).collect();
        group.bench_function("multi_client_batched", |b| {
            b.iter(|| {
                let served: u64 = std::thread::scope(|s| {
                    let programs = &programs;
                    clients
                        .iter_mut()
                        .map(|client| {
                            s.spawn(move || {
                                for (i, program) in programs.iter().enumerate() {
                                    client.send(i as u64, program.name(), program.methods()).expect("send");
                                }
                                let mut units = 0u64;
                                for i in 0..programs.len() {
                                    match client.recv_for(i as u64).expect("recv") {
                                        Response::Batch(batch) => units += batch.totals.total_blocks as u64,
                                        // A shed batch is re-requested round-trip style.
                                        Response::Busy { batch_id, .. } => {
                                            let program = &programs[batch_id as usize];
                                            match client
                                                .request_with_retry(batch_id, program.name(), program.methods(), 12)
                                                .expect("retry")
                                            {
                                                Response::Batch(batch) => units += batch.totals.total_blocks as u64,
                                                other => panic!("unexpected response {other:?}"),
                                            }
                                        }
                                        other => panic!("unexpected response {other:?}"),
                                    }
                                }
                                units
                            })
                        })
                        .collect::<Vec<_>>()
                        .into_iter()
                        .map(|h| h.join().expect("bench client panicked"))
                        .sum()
                });
                assert_eq!(served, (units * CLIENTS) as u64);
                served
            });
        });
        handle.shutdown();
    }

    // Serving while a deployer thread hot-swaps as fast as it can.
    {
        let handle = bind_server(&machine, &programs, &opts);
        let seed: Vec<_> = programs.iter().flat_map(|p| collect_trace_with(p, &machine, &opts)).collect();
        let swap_filter = train_filter(&seed, &TrainConfig::with_learner(10, LearnerKind::Stump));
        let stop = Arc::new(AtomicBool::new(false));
        let deployer = {
            let store = Arc::clone(handle.store());
            let key = handle.key().clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut swaps = 0u64;
                while !stop.load(Ordering::Acquire) {
                    store.swap(key.clone(), swap_filter.clone());
                    swaps += 1;
                }
                swaps
            })
        };
        let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
        group.bench_function("swap_under_load", |b| {
            b.iter(|| drive_round(&mut client, &programs));
        });
        stop.store(true, Ordering::Release);
        let swaps = deployer.join().expect("deployer panicked");
        eprintln!("# swap_under_load: {swaps} hot swaps landed during the scenario");
        assert!(swaps > 0);
        handle.shutdown();
    }

    group.finish();
}

criterion_group!(benches, serve_throughput);
criterion_main!(benches);
