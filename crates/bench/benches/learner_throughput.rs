//! Learner-portfolio throughput: how fast each induction backend
//! trains, and how fast its induced model classifies once lowered to
//! the compiled engine. The portfolio-best rule picks the cheapest
//! backend within an error tolerance — this bench is where "cheapest"
//! becomes a measured quantity rather than a work-unit estimate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wts_core::{build_dataset, collect_trace, Filter, LabelConfig, LearnedFilter, Learner, LearnerKind};
use wts_features::FeatureVector;
use wts_jit::Suite;
use wts_machine::MachineConfig;
use wts_ripper::Dataset;

fn corpus(scale: f64) -> (Dataset, Vec<FeatureVector>) {
    let machine = MachineConfig::ppc7410();
    let suite = Suite::specjvm98(scale);
    let mut traces = Vec::new();
    for b in suite.benchmarks() {
        traces.extend(collect_trace(b.program(), &machine));
    }
    let vectors = traces.iter().map(|r| r.features).collect();
    (build_dataset(&traces, LabelConfig::new(0)).0, vectors)
}

/// Training time per backend: RIPPER's grow/prune/optimize loop versus
/// the stump's single exhaustive sweep versus the capped greedy tree.
fn train_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("learner_train");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for (label, scale) in [("2k-instances", 0.05), ("8k-instances", 0.2)] {
        let (data, _) = corpus(scale);
        for kind in LearnerKind::portfolio() {
            group.bench_with_input(BenchmarkId::new(kind.name(), label), &data, |b, d| {
                b.iter(|| black_box(kind.fit(black_box(d))));
            });
        }
    }
    group.finish();
}

/// Classification throughput of each backend's compiled model over the
/// whole trace corpus — the deployment-side cost the portfolio's
/// overhead column accounts for in work units.
fn classify_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("learner_classify");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let (data, vectors) = corpus(0.2);
    for kind in LearnerKind::portfolio() {
        let compiled = LearnedFilter::with_learner(kind.fit(&data), 0, kind.filter_tag()).compile();
        group.bench_with_input(
            BenchmarkId::new(kind.name(), format!("{}-blocks", vectors.len())),
            &vectors,
            |b, vs| {
                b.iter(|| {
                    let mut scheduled = 0usize;
                    for v in vs {
                        scheduled += usize::from(compiled.decide(black_box(v.as_slice())));
                    }
                    black_box(scheduled)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, train_throughput, classify_throughput);
criterion_main!(benches);
