//! Shared setup for the Criterion benches that regenerate the paper's
//! timing claims (Figures 1(a), 2(a), 3(a)) and the component-cost
//! ablations called out in DESIGN.md §5.
//!
//! The benches live in `benches/`; run them with `cargo bench`.

use wts_core::{Experiment, LearnedFilter, TraceRecord};
use wts_jit::Suite;
use wts_machine::MachineConfig;

/// Corpus scale used by the benches: large enough to be representative,
/// small enough that `cargo bench` completes in minutes.
pub const BENCH_SCALE: f64 = 0.05;

/// Everything a figure bench needs: machine, suite, traces and trained
/// per-benchmark filters at a given threshold — one [`Experiment`]
/// pipeline run per setup.
pub struct BenchSetup {
    /// The modelled machine.
    pub machine: MachineConfig,
    /// The generated suite.
    pub suite: Suite,
    /// Traces per benchmark (same order as the suite).
    pub traces: Vec<Vec<TraceRecord>>,
    /// `(benchmark, filter)` pairs from leave-one-out training.
    pub filters: Vec<(String, LearnedFilter)>,
}

impl BenchSetup {
    /// Builds the jvm98 setup at `BENCH_SCALE` with filters at threshold `t`.
    pub fn jvm98(t: u32) -> BenchSetup {
        BenchSetup::build(Suite::specjvm98(BENCH_SCALE), t)
    }

    /// Builds the FP-suite setup.
    pub fn fp(t: u32) -> BenchSetup {
        BenchSetup::build(Suite::fp(BENCH_SCALE), t)
    }

    fn build(suite: Suite, t: u32) -> BenchSetup {
        let machine = MachineConfig::ppc7410();
        let programs = suite.benchmarks().iter().map(|b| b.program().clone()).collect();
        // Serial tracing keeps the wall-clock *_ns channels in `traces`
        // contention-free (same rationale as Experiments::new); training
        // still shards across cores.
        let run = Experiment::new(machine.clone()).with_trace_threads(1).run(programs);
        let filters = run.loocv_filters(t).to_vec();
        BenchSetup { machine, suite, traces: run.traces().to_vec(), filters }
    }

    /// The filter trained with this benchmark held out.
    pub fn filter_for(&self, bench: &str) -> &LearnedFilter {
        &self.filters.iter().find(|(n, _)| n == bench).unwrap_or_else(|| panic!("no filter for {bench}")).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_builds_and_exposes_filters() {
        let s = BenchSetup::jvm98(0);
        assert_eq!(s.filters.len(), 7);
        assert_eq!(s.traces.len(), 7);
        let name = s.suite.benchmarks()[0].name().to_string();
        let _ = s.filter_for(&name);
    }
}
