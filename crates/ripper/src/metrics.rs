//! Classification metrics and the paper's geometric-mean summary.

use crate::rule::RuleSet;
use crate::Dataset;
use std::fmt;

/// A 2×2 confusion matrix for binary classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Positive instances predicted positive.
    pub tp: usize,
    /// Negative instances predicted positive.
    pub fp: usize,
    /// Negative instances predicted negative.
    pub tn: usize,
    /// Positive instances predicted negative.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Evaluates `model` on `data`.
    pub fn evaluate(model: &RuleSet, data: &Dataset) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::default();
        for inst in data.instances() {
            m.record(inst.positive, model.predict(&inst.values));
        }
        m
    }

    /// Accumulates another matrix's counts into this one (e.g. summing
    /// per-fold confusions into an aggregate LOOCV error).
    pub fn accumulate(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Records one (actual, predicted) pair.
    pub fn record(&mut self, actual: bool, predicted: bool) {
        match (actual, predicted) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Total instances recorded.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Misclassification rate in percent (the paper's Table 3 metric);
    /// 0 for an empty matrix.
    pub fn error_percent(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        100.0 * (self.fp + self.fn_) as f64 / self.total() as f64
    }

    /// Accuracy in `[0, 1]`; 1 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Number of instances predicted positive.
    pub fn predicted_positive(&self) -> usize {
        self.tp + self.fp
    }

    /// Number of instances predicted negative.
    pub fn predicted_negative(&self) -> usize {
        self.tn + self.fn_
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tp={} fp={} tn={} fn={} (error {:.2}%)", self.tp, self.fp, self.tn, self.fn_, self.error_percent())
    }
}

/// Geometric mean of positive values, the summary statistic used across
/// the paper's tables.
///
/// Zero values are clamped to `epsilon` (1e-3) so that a single perfect
/// benchmark (0% error) does not collapse the mean to zero — the paper's
/// own Table 3 reports a nonzero geometric mean for rows containing 0.00
/// entries, implying the same treatment.
///
/// # Examples
///
/// ```
/// use wts_ripper::geometric_mean;
/// assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
/// assert!(geometric_mean(&[]) == 0.0);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let eps = 1e-3;
    let sum: f64 = values.iter().map(|&v| v.max(eps).ln()).sum();
    (sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Condition, Op, Rule, RuleStats};

    fn model_ge(threshold: f64) -> RuleSet {
        RuleSet::new(
            vec!["x".into()],
            "LS",
            "NS",
            vec![Rule::from_conditions(vec![Condition { attr: 0, op: Op::Ge, threshold }])],
            vec![RuleStats::default()],
            RuleStats::default(),
        )
    }

    #[test]
    fn record_and_rates() {
        let mut m = ConfusionMatrix::default();
        m.record(true, true);
        m.record(true, false);
        m.record(false, false);
        m.record(false, true);
        assert_eq!(m.total(), 4);
        assert_eq!(m.error_percent(), 50.0);
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.predicted_positive(), 2);
    }

    #[test]
    fn accumulate_sums_every_cell() {
        let mut a = ConfusionMatrix { tp: 1, fp: 2, tn: 3, fn_: 4 };
        a.accumulate(&ConfusionMatrix { tp: 10, fp: 20, tn: 30, fn_: 40 });
        assert_eq!((a.tp, a.fp, a.tn, a.fn_), (11, 22, 33, 44));
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn evaluate_against_dataset() {
        let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
        d.push(vec![0.9], true, 0); // tp
        d.push(vec![0.2], true, 0); // fn
        d.push(vec![0.1], false, 0); // tn
        d.push(vec![0.8], false, 0); // fp
        let m = ConfusionMatrix::evaluate(&model_ge(0.5), &d);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (1, 1, 1, 1));
    }

    #[test]
    fn empty_matrix_defaults() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.error_percent(), 0.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_handles_zero() {
        let g = geometric_mean(&[0.0, 4.0]);
        assert!(g > 0.0 && g < 4.0);
    }

    #[test]
    fn display_mentions_error() {
        let mut m = ConfusionMatrix::default();
        m.record(true, false);
        assert!(m.to_string().contains("error 100.00%"));
    }
}
