//! Rules, conditions and ordered rule sets.

use crate::data::Dataset;
use std::fmt;

/// Comparison direction of a [`Condition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Attribute value must be `<=` the threshold.
    Le,
    /// Attribute value must be `>=` the threshold.
    Ge,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Le => write!(f, "<="),
            Op::Ge => write!(f, ">="),
        }
    }
}

/// One conjunct of a rule: `attr <op> threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Condition {
    /// Attribute index into the dataset's attribute list.
    pub attr: usize,
    /// Comparison direction.
    pub op: Op,
    /// Threshold value.
    pub threshold: f64,
}

impl Condition {
    /// True when `values` satisfies this condition.
    pub fn matches(&self, values: &[f64]) -> bool {
        match self.op {
            Op::Le => values[self.attr] <= self.threshold,
            Op::Ge => values[self.attr] >= self.threshold,
        }
    }
}

/// A conjunctive rule predicting the positive class.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Rule {
    conds: Vec<Condition>,
}

impl Rule {
    /// The empty rule (matches everything).
    pub fn new() -> Rule {
        Rule { conds: Vec::new() }
    }

    /// Builds a rule from conditions.
    pub fn from_conditions(conds: Vec<Condition>) -> Rule {
        Rule { conds }
    }

    /// The conditions, in the order they were grown.
    pub fn conditions(&self) -> &[Condition] {
        &self.conds
    }

    /// Number of conditions.
    pub fn len(&self) -> usize {
        self.conds.len()
    }

    /// True for the empty (always-matching) rule.
    pub fn is_empty(&self) -> bool {
        self.conds.is_empty()
    }

    /// Appends a condition.
    pub fn push(&mut self, c: Condition) {
        self.conds.push(c);
    }

    /// Removes the conditions after the first `keep` (rule pruning).
    pub fn truncate(&mut self, keep: usize) {
        self.conds.truncate(keep);
    }

    /// True when `values` satisfies every condition.
    pub fn matches(&self, values: &[f64]) -> bool {
        self.conds.iter().all(|c| c.matches(values))
    }

    /// The distinct attribute indices this rule reads, sorted.
    pub fn referenced_attrs(&self) -> Vec<usize> {
        let mut attrs: Vec<usize> = self.conds.iter().map(|c| c.attr).collect();
        attrs.sort_unstable();
        attrs.dedup();
        attrs
    }
}

/// Per-rule training statistics shown in the Figure 4 output format:
/// `(hits/misses)` — how many training instances the rule matched
/// correctly and incorrectly when it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuleStats {
    /// Correct firings on training data.
    pub hits: usize,
    /// Incorrect firings on training data.
    pub misses: usize,
}

impl RuleStats {
    /// Laplace-smoothed precision of the rule's firings:
    /// `(hits + 1) / (hits + misses + 2)`. The smoothing keeps a rule
    /// that fired on a handful of training instances from claiming
    /// certainty, and an empty (0/0) record reads as the uninformed 0.5.
    pub fn laplace(&self) -> f64 {
        (self.hits + 1) as f64 / (self.hits + self.misses + 2) as f64
    }
}

/// First-firing-rule attribution of training statistics: each instance
/// is charged to the first rule that matches it (hit when the instance
/// is positive, miss otherwise); instances no rule matches go to the
/// default record, where `hits` counts correct negatives and `misses`
/// counts the positives the rule list failed to cover. This is exactly
/// the accounting RIPPER's own `finish` pass performs, factored out so
/// the stump/tree backends can attach honest class frequencies to their
/// lowered rules too.
pub fn attribute_stats(rules: &[Rule], data: &Dataset) -> (Vec<RuleStats>, RuleStats) {
    let mut stats = vec![RuleStats::default(); rules.len()];
    let mut default_stats = RuleStats::default();
    for inst in data.instances() {
        match rules.iter().position(|r| r.matches(&inst.values)) {
            Some(k) => {
                if inst.positive {
                    stats[k].hits += 1;
                } else {
                    stats[k].misses += 1;
                }
            }
            None => {
                if inst.positive {
                    default_stats.misses += 1;
                } else {
                    default_stats.hits += 1;
                }
            }
        }
    }
    (stats, default_stats)
}

/// An ordered rule set with a default (negative-class) rule at the end.
///
/// Prediction: the first matching rule fires and predicts the positive
/// class; when none matches, the default predicts the negative class.
/// (With two classes, RIPPER learns rules only for one class — here the
/// minority `LS` class, exactly as in the paper's Figure 4 where the
/// default row is `orig`.)
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSet {
    attr_names: Vec<String>,
    pos_label: String,
    neg_label: String,
    rules: Vec<Rule>,
    stats: Vec<RuleStats>,
    default_stats: RuleStats,
}

impl RuleSet {
    /// Builds a rule set.
    ///
    /// # Panics
    ///
    /// Panics if `stats` is non-empty but differs in length from `rules`.
    pub fn new(
        attr_names: Vec<String>,
        pos_label: impl Into<String>,
        neg_label: impl Into<String>,
        rules: Vec<Rule>,
        mut stats: Vec<RuleStats>,
        default_stats: RuleStats,
    ) -> RuleSet {
        if stats.is_empty() {
            stats = vec![RuleStats::default(); rules.len()];
        }
        assert_eq!(stats.len(), rules.len(), "per-rule stats must match rules");
        RuleSet {
            attr_names: attr_names.clone(),
            pos_label: pos_label.into(),
            neg_label: neg_label.into(),
            rules,
            stats,
            default_stats,
        }
    }

    /// The rules, in firing order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules (excluding the default).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when only the default rule exists.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Per-rule training statistics.
    pub fn stats(&self) -> &[RuleStats] {
        &self.stats
    }

    /// Positive class name.
    pub fn pos_label(&self) -> &str {
        &self.pos_label
    }

    /// Negative class name.
    pub fn neg_label(&self) -> &str {
        &self.neg_label
    }

    /// Attribute names used when printing conditions.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Predicts whether `values` belongs to the positive class.
    pub fn predict(&self, values: &[f64]) -> bool {
        self.rules.iter().any(|r| r.matches(values))
    }

    /// Laplace-smoothed confidence that an instance fired on by rule `k`
    /// really is positive — the rule's training `(hits/misses)` record
    /// pushed through [`RuleStats::laplace`].
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn rule_confidence(&self, k: usize) -> f64 {
        self.stats[k].laplace()
    }

    /// Laplace-smoothed probability that an instance *no* rule fires on
    /// is nevertheless positive. The default record counts correct
    /// negatives as `hits` and uncovered positives as `misses`, so this
    /// is `(misses + 1) / (hits + misses + 2)` — the residual positive
    /// rate of the rule list's reject region.
    pub fn default_confidence(&self) -> f64 {
        let d = &self.default_stats;
        (d.misses + 1) as f64 / (d.hits + d.misses + 2) as f64
    }

    /// Calibrated score of `values`: the firing rule's
    /// [`rule_confidence`](RuleSet::rule_confidence), or
    /// [`default_confidence`](RuleSet::default_confidence) when no rule
    /// fires. Always in `(0, 1)`; an un-statted set scores the
    /// uninformed 0.5 either way.
    pub fn score(&self, values: &[f64]) -> f64 {
        match self.firing_rule(values) {
            Some(k) => self.rule_confidence(k),
            None => self.default_confidence(),
        }
    }

    /// The default (no-rule-fired) training record.
    pub fn default_stats(&self) -> &RuleStats {
        &self.default_stats
    }

    /// Index of the first rule that fires, if any.
    pub fn firing_rule(&self, values: &[f64]) -> Option<usize> {
        self.rules.iter().position(|r| r.matches(values))
    }

    /// Total number of conditions across all rules (model size).
    pub fn condition_count(&self) -> usize {
        self.rules.iter().map(Rule::len).sum()
    }

    /// The distinct attribute indices any rule reads, sorted — the rule
    /// set's *feature demand*. A compiler deploying this set only needs
    /// these attributes extracted; everything else can be skipped.
    pub fn referenced_attrs(&self) -> Vec<usize> {
        let mut attrs: Vec<usize> = self.rules.iter().flat_map(|r| r.conditions().iter().map(|c| c.attr)).collect();
        attrs.sort_unstable();
        attrs.dedup();
        attrs
    }

    /// The *names* of the referenced attributes, in attribute order —
    /// [`referenced_attrs`](RuleSet::referenced_attrs) resolved against
    /// this set's vocabulary. Reports and scope tables print this to
    /// show which features a deployed filter actually consults (e.g.
    /// whether a superblock-scope filter reads the trace-shape
    /// features). Indices outside the vocabulary are skipped.
    pub fn referenced_attr_names(&self) -> Vec<&str> {
        self.referenced_attrs().into_iter().filter_map(|a| self.attr_names.get(a).map(String::as_str)).collect()
    }
}

impl fmt::Display for RuleSet {
    /// Renders in the paper's Figure 4 style:
    ///
    /// ```text
    /// (  924/  12) list :- bbLen >= 7, calls <= 0.0857, loads >= 0.3793
    /// (27476/1946) orig :- (default)
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (rule, st) in self.rules.iter().zip(&self.stats) {
            write!(f, "({:>6}/{:>5}) {} :-", st.hits, st.misses, self.pos_label)?;
            if rule.is_empty() {
                write!(f, " (always)")?;
            }
            for (i, c) in rule.conditions().iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                let name = self.attr_names.get(c.attr).map(String::as_str).unwrap_or("?");
                write!(f, " {} {} {}", name, c.op, trim_float(c.threshold))?;
            }
            writeln!(f)?;
        }
        writeln!(f, "({:>6}/{:>5}) {} :- (default)", self.default_stats.hits, self.default_stats.misses, self.neg_label)
    }
}

/// Formats a threshold: integers without a decimal point, other values
/// with Rust's shortest round-tripping representation — so a printed
/// rule set parses back ([`parse_rule_set`]) to *exactly* the same
/// filter, which the factory-deployment workflow relies on.
///
/// [`parse_rule_set`]: crate::parse_rule_set
fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        // Guarded lossless: v is a whole number with |v| < 1e12, well
        // inside i64's exact range.
        #[allow(clippy::cast_possible_truncation)]
        let whole = v as i64;
        format!("{whole}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(attr: usize, op: Op, t: f64) -> Condition {
        Condition { attr, op, threshold: t }
    }

    #[test]
    fn condition_matching() {
        let le = cond(0, Op::Le, 0.5);
        assert!(le.matches(&[0.5]));
        assert!(le.matches(&[0.4]));
        assert!(!le.matches(&[0.6]));
        let ge = cond(1, Op::Ge, 2.0);
        assert!(ge.matches(&[0.0, 2.0]));
        assert!(!ge.matches(&[0.0, 1.9]));
    }

    #[test]
    fn rule_is_conjunction() {
        let r = Rule::from_conditions(vec![cond(0, Op::Ge, 1.0), cond(1, Op::Le, 0.2)]);
        assert!(r.matches(&[1.5, 0.1]));
        assert!(!r.matches(&[1.5, 0.3]));
        assert!(!r.matches(&[0.5, 0.1]));
        assert!(Rule::new().matches(&[0.0, 0.0]), "empty rule matches everything");
    }

    #[test]
    fn truncate_prunes_suffix() {
        let mut r = Rule::from_conditions(vec![cond(0, Op::Ge, 1.0), cond(1, Op::Le, 0.2)]);
        r.truncate(1);
        assert_eq!(r.len(), 1);
        assert!(r.matches(&[1.5, 0.9]));
    }

    fn ruleset() -> RuleSet {
        RuleSet::new(
            vec!["bbLen".into(), "calls".into()],
            "list",
            "orig",
            vec![
                Rule::from_conditions(vec![cond(0, Op::Ge, 7.0), cond(1, Op::Le, 0.0857)]),
                Rule::from_conditions(vec![cond(0, Op::Ge, 5.0)]),
            ],
            vec![RuleStats { hits: 924, misses: 12 }, RuleStats { hits: 74, misses: 3 }],
            RuleStats { hits: 27476, misses: 1946 },
        )
    }

    #[test]
    fn ruleset_prediction_order() {
        let rs = ruleset();
        assert!(rs.predict(&[8.0, 0.0]));
        assert_eq!(rs.firing_rule(&[8.0, 0.0]), Some(0));
        assert_eq!(rs.firing_rule(&[6.0, 0.5]), Some(1));
        assert_eq!(rs.firing_rule(&[3.0, 0.0]), None);
        assert!(!rs.predict(&[3.0, 0.0]));
    }

    #[test]
    fn display_is_figure4_style() {
        let s = ruleset().to_string();
        assert!(s.contains("(   924/   12) list :- bbLen >= 7, calls <= 0.0857"), "got: {s}");
        assert!(s.contains("( 27476/ 1946) orig :- (default)"), "got: {s}");
    }

    #[test]
    fn condition_count_sums() {
        assert_eq!(ruleset().condition_count(), 3);
    }

    #[test]
    fn referenced_attr_names_resolve_against_the_vocabulary() {
        let rs = ruleset();
        assert_eq!(rs.referenced_attr_names(), vec!["bbLen", "calls"]);
        // Out-of-vocabulary indices are skipped, not fabricated.
        let wide = RuleSet::new(
            vec!["bbLen".into()],
            "list",
            "orig",
            vec![Rule::from_conditions(vec![cond(0, Op::Ge, 1.0), cond(9, Op::Ge, 1.0)])],
            vec![],
            RuleStats::default(),
        );
        assert_eq!(wide.referenced_attr_names(), vec!["bbLen"]);
    }

    #[test]
    fn referenced_attrs_are_sorted_and_deduped() {
        let rs = ruleset();
        assert_eq!(rs.referenced_attrs(), vec![0, 1]);
        let r = Rule::from_conditions(vec![cond(5, Op::Ge, 1.0), cond(2, Op::Le, 0.2), cond(5, Op::Le, 3.0)]);
        assert_eq!(r.referenced_attrs(), vec![2, 5]);
        assert!(Rule::new().referenced_attrs().is_empty());
        let empty = RuleSet::new(vec!["a".into()], "p", "n", vec![], vec![], RuleStats::default());
        assert!(empty.referenced_attrs().is_empty());
    }

    #[test]
    fn laplace_smooths_toward_half() {
        assert_eq!(RuleStats::default().laplace(), 0.5);
        assert!((RuleStats { hits: 924, misses: 12 }.laplace() - 925.0 / 938.0).abs() < 1e-12);
        assert!((RuleStats { hits: 0, misses: 10 }.laplace() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn scores_follow_the_firing_rule() {
        let rs = ruleset();
        // Rule 0 fires: its Laplace confidence.
        assert!((rs.score(&[8.0, 0.0]) - rs.rule_confidence(0)).abs() < 1e-12);
        // Rule 1 fires.
        assert!((rs.score(&[6.0, 0.5]) - rs.rule_confidence(1)).abs() < 1e-12);
        // Nothing fires: the default's residual positive rate.
        let expect = (1946.0 + 1.0) / (27476.0 + 1946.0 + 2.0);
        assert!((rs.score(&[3.0, 0.0]) - expect).abs() < 1e-12);
        assert!((rs.default_confidence() - expect).abs() < 1e-12);
        // Precise rules are confident; the default region is not.
        assert!(rs.score(&[8.0, 0.0]) > 0.9);
        assert!(rs.score(&[3.0, 0.0]) < 0.1);
    }

    #[test]
    fn attribute_stats_matches_first_firing_rule_accounting() {
        let mut d = Dataset::new(vec!["x".into()], "p", "n");
        d.push(vec![9.0], true, 0); // rule 0 hit
        d.push(vec![9.0], false, 0); // rule 0 miss
        d.push(vec![6.0], true, 0); // rule 1 hit (rule 0 needs >= 7)
        d.push(vec![1.0], true, 0); // uncovered positive -> default miss
        d.push(vec![1.0], false, 0); // correct negative -> default hit
        let rules =
            vec![Rule::from_conditions(vec![cond(0, Op::Ge, 7.0)]), Rule::from_conditions(vec![cond(0, Op::Ge, 5.0)])];
        let (stats, default_stats) = attribute_stats(&rules, &d);
        assert_eq!(stats, vec![RuleStats { hits: 1, misses: 1 }, RuleStats { hits: 1, misses: 0 }]);
        assert_eq!(default_stats, RuleStats { hits: 1, misses: 1 });
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(7.0), "7");
        assert_eq!(trim_float(0.0857), "0.0857");
        assert_eq!(trim_float(0.5), "0.5");
        assert_eq!(trim_float(0.37931), "0.37931");
        // Round-trip exactness, the property the deployment path needs.
        let v = 1.0 / 3.0;
        assert_eq!(trim_float(v).parse::<f64>().unwrap(), v);
    }

    #[test]
    #[should_panic(expected = "stats must match")]
    fn stats_length_checked() {
        RuleSet::new(
            vec!["a".into()],
            "p",
            "n",
            vec![Rule::new()],
            vec![RuleStats::default(), RuleStats::default()],
            RuleStats::default(),
        );
    }
}
