//! Minimum-description-length arithmetic for the RIPPER stopping rule.
//!
//! Description lengths follow Cohen's scheme (as popularized by the Weka
//! `JRip` implementation): the total cost of a rule set is the cost of
//! transmitting the *theory* (the rules themselves) plus the cost of
//! transmitting the *exceptions* (which covered instances are false
//! positives and which uncovered ones are false negatives). Rule-set
//! growth stops when the total exceeds the best total seen so far by more
//! than [`DL_BUDGET`] bits.

/// Extra description-length budget (bits) past the minimum before rule
/// growth stops; 64 in Cohen's paper and in JRip.
pub const DL_BUDGET: f64 = 64.0;

/// `log2(n choose k)` computed stably via a sum of logarithms.
///
/// Returns 0 for the degenerate cases (`k == 0` or `k == n`); callers
/// guarantee `k <= n`.
pub fn log2_binomial(n: usize, k: usize) -> f64 {
    debug_assert!(k <= n, "k must be at most n");
    let k = k.min(n - k.min(n));
    if k == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 1..=k {
        sum += ((n - k + i) as f64).log2() - (i as f64).log2();
    }
    sum
}

/// Bits to transmit which `errors` elements of a `total`-element set are
/// exceptional: the subset identity plus its cardinality.
pub fn subset_dl(total: usize, errors: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    log2_binomial(total, errors.min(total)) + ((total + 1) as f64).log2()
}

/// Bits to transmit the classification errors of a rule set that covers
/// `covered` instances with `fp` false positives and leaves `uncovered`
/// instances with `fn_` false negatives.
pub fn data_dl(covered: usize, fp: usize, uncovered: usize, fn_: usize) -> f64 {
    subset_dl(covered, fp) + subset_dl(uncovered, fn_)
}

/// Bits to transmit one rule with `conds` conditions chosen among
/// `attr_count` numeric attributes.
///
/// Each condition costs the choice of attribute, a direction bit and an
/// (approximate) threshold cost; the total is halved as in Cohen's scheme
/// to account for the redundancy of condition orderings.
pub fn theory_dl(conds: usize, attr_count: usize) -> f64 {
    if conds == 0 {
        return 0.0;
    }
    let per_cond = (attr_count.max(2) as f64).log2() + 1.0 + THRESHOLD_BITS;
    0.5 * (conds as f64 * per_cond + ((conds + 1) as f64).log2())
}

/// Approximate bits to encode one numeric threshold.
const THRESHOLD_BITS: f64 = 8.0;

/// Total description length of a rule set summarized by its per-rule
/// condition counts and its training errors.
pub fn total_dl(
    rule_cond_counts: &[usize],
    attr_count: usize,
    covered: usize,
    fp: usize,
    uncovered: usize,
    fn_: usize,
) -> f64 {
    let theory: f64 = rule_cond_counts.iter().map(|&c| theory_dl(c, attr_count)).sum();
    theory + data_dl(covered, fp, uncovered, fn_)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_cases() {
        assert!((log2_binomial(4, 2) - (6.0f64).log2()).abs() < 1e-9);
        assert_eq!(log2_binomial(10, 0), 0.0);
        assert_eq!(log2_binomial(10, 10), 0.0);
        assert!((log2_binomial(5, 1) - (5.0f64).log2()).abs() < 1e-9);
    }

    #[test]
    fn binomial_is_symmetric() {
        assert!((log2_binomial(20, 6) - log2_binomial(20, 14)).abs() < 1e-9);
    }

    #[test]
    fn binomial_monotone_in_n() {
        assert!(log2_binomial(100, 5) < log2_binomial(200, 5));
    }

    #[test]
    fn subset_dl_zero_total() {
        assert_eq!(subset_dl(0, 0), 0.0);
        assert!(subset_dl(10, 0) > 0.0, "still costs the cardinality");
    }

    #[test]
    fn data_dl_grows_with_errors() {
        let clean = data_dl(100, 0, 100, 0);
        let dirty = data_dl(100, 10, 100, 10);
        assert!(dirty > clean);
    }

    #[test]
    fn theory_dl_grows_with_conditions() {
        assert_eq!(theory_dl(0, 13), 0.0);
        assert!(theory_dl(1, 13) > 0.0);
        assert!(theory_dl(3, 13) > theory_dl(1, 13));
    }

    #[test]
    fn total_combines() {
        let t = total_dl(&[2, 1], 13, 50, 2, 50, 3);
        let expect = theory_dl(2, 13) + theory_dl(1, 13) + data_dl(50, 2, 50, 3);
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn more_rules_cost_more_theory_bits() {
        let few = total_dl(&[2], 13, 100, 5, 100, 5);
        let many = total_dl(&[2, 2, 2], 13, 100, 5, 100, 5);
        assert!(many > few);
    }
}
