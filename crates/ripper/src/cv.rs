//! Leave-one-group-out cross-validation.

use crate::Dataset;

/// One fold of leave-one-group-out cross-validation: train on every group
/// except `held_out`, test on `held_out`.
#[derive(Debug, Clone)]
pub struct GroupFold {
    /// The group (benchmark) held out for testing.
    pub held_out: u32,
    /// Training instances (all other groups).
    pub train: Dataset,
    /// Test instances (the held-out group).
    pub test: Dataset,
}

/// Splits `data` into one [`GroupFold`] per distinct group id — the
/// paper's evaluation protocol: "in training for benchmark i we train
/// using the set of instances from the n−1 other benchmarks, and we apply
/// the heuristic to the test set from benchmark i" (§3).
///
/// # Examples
///
/// ```
/// use wts_ripper::{leave_one_group_out, Dataset};
/// let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
/// d.push(vec![1.0], true, 0);
/// d.push(vec![2.0], false, 1);
/// d.push(vec![3.0], true, 2);
/// let folds = leave_one_group_out(&d);
/// assert_eq!(folds.len(), 3);
/// assert_eq!(folds[0].test.len(), 1);
/// assert_eq!(folds[0].train.len(), 2);
/// ```
pub fn leave_one_group_out(data: &Dataset) -> Vec<GroupFold> {
    data.groups()
        .into_iter()
        .map(|g| GroupFold {
            held_out: g,
            train: data.filtered(|i| i.group != g),
            test: data.filtered(|i| i.group == g),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grouped_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
        for g in 0..4u32 {
            for i in 0..5 {
                d.push(vec![i as f64], i % 2 == 0, g);
            }
        }
        d
    }

    #[test]
    fn one_fold_per_group() {
        let folds = leave_one_group_out(&grouped_dataset());
        assert_eq!(folds.len(), 4);
        for f in &folds {
            assert_eq!(f.test.len(), 5);
            assert_eq!(f.train.len(), 15);
        }
    }

    #[test]
    fn no_leakage_between_train_and_test() {
        for f in leave_one_group_out(&grouped_dataset()) {
            assert!(f.test.instances().iter().all(|i| i.group == f.held_out));
            assert!(f.train.instances().iter().all(|i| i.group != f.held_out));
        }
    }

    #[test]
    fn folds_cover_all_groups() {
        let folds = leave_one_group_out(&grouped_dataset());
        let mut held: Vec<u32> = folds.iter().map(|f| f.held_out).collect();
        held.sort_unstable();
        assert_eq!(held, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_group_has_empty_train() {
        let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
        d.push(vec![1.0], true, 7);
        let folds = leave_one_group_out(&d);
        assert_eq!(folds.len(), 1);
        assert!(folds[0].train.is_empty());
        assert_eq!(folds[0].test.len(), 1);
    }
}
