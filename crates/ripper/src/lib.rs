//! RIPPER rule induction (Cohen 1995), from scratch.
//!
//! The paper induces its scheduling filters with Ripper, a fast rule-set
//! learner chosen because it is quick to tune and its output — ordered
//! if-then rules — is compact and human readable (paper §2.3). This crate
//! implements the algorithm for binary classification over numeric
//! attributes:
//!
//! * **IREP\***: rules are grown on a 2/3 split (greedily adding the
//!   condition with the best FOIL information gain) and immediately pruned
//!   on the remaining 1/3 (deleting final condition suffixes to maximize
//!   the IREP* pruning metric `(p - n) / (p + n)`);
//! * **MDL stopping**: rule-set growth stops when the total description
//!   length exceeds the best seen so far by more than a fixed budget, or
//!   when a new rule's error on the pruning split exceeds 50%;
//! * **Optimization**: each rule is reconsidered against a *replacement*
//!   (re-grown from scratch) and a *revision* (greedily extended), keeping
//!   whichever gives the smallest description length, then residual
//!   positives are covered by another IREP* round. The pass runs `k`
//!   times (default 2, like the original).
//!
//! Baseline learners (majority class, 1R, decision stump, a small
//! depth-limited decision tree) and evaluation utilities (confusion
//! matrices, leave-one-group-out cross-validation, geometric means) live
//! here too.
//!
//! # Examples
//!
//! ```
//! use wts_ripper::{Dataset, RipperConfig};
//!
//! // y = x0 > 0.5, with a redundant second attribute.
//! let mut d = Dataset::new(vec!["x0".into(), "x1".into()], "pos", "neg");
//! for i in 0..200 {
//!     let x0 = (i % 100) as f64 / 100.0;
//!     d.push(vec![x0, 0.3], x0 > 0.5, 0);
//! }
//! let model = RipperConfig::default().fit(&d);
//! assert!(model.predict(&[0.9, 0.3]));
//! assert!(!model.predict(&[0.1, 0.3]));
//! ```

mod baseline;
mod cv;
mod data;
mod grow;
mod mdl;
mod metrics;
mod parse;
mod ripper;
mod rule;

pub use baseline::{Classifier, DecisionStump, MajorityLearner, OneR, ShallowTree};
pub use cv::{leave_one_group_out, GroupFold};
pub use data::{Dataset, Instance};
pub use metrics::{geometric_mean, ConfusionMatrix};
pub use parse::{parse_rule_set, ParseRuleSetError};
pub use ripper::RipperConfig;
pub use rule::{attribute_stats, Condition, Op, Rule, RuleSet, RuleStats};
