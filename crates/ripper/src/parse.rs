//! Parsing rule sets back from their textual (Figure 4) form.
//!
//! The paper's deployment story installs the induced heuristic "at the
//! factory" (§3); a compiler that loads its filter from a rules file
//! needs this inverse of [`RuleSet`]'s `Display`.

use crate::rule::{Condition, Op, Rule, RuleSet, RuleStats};
use std::fmt;

/// An error produced while parsing a rule-set listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRuleSetError {
    line: usize,
    message: String,
}

impl ParseRuleSetError {
    fn new(line: usize, message: impl Into<String>) -> ParseRuleSetError {
        ParseRuleSetError { line, message: message.into() }
    }

    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseRuleSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseRuleSetError {}

/// Parses a rule set from the Figure 4 text format produced by
/// [`RuleSet`]'s `Display`:
///
/// ```text
/// (   924/   12) list :- bbLen >= 7, calls <= 0.0857
/// ( 27476/ 1946) orig :- (default)
/// ```
///
/// `attr_names` supplies the attribute vocabulary (conditions referring
/// to unknown attributes are rejected). Blank lines are ignored. The
/// last non-blank line must be the default rule.
///
/// # Errors
///
/// Returns a [`ParseRuleSetError`] naming the first malformed line.
///
/// # Examples
///
/// ```
/// use wts_ripper::parse_rule_set;
/// let text = "(  10/   2) list :- bbLen >= 7, loads >= 0.3\n(  90/   5) orig :- (default)\n";
/// let rs = parse_rule_set(text, &["bbLen".into(), "loads".into()]).unwrap();
/// assert_eq!(rs.len(), 1);
/// assert!(rs.predict(&[8.0, 0.5]));
/// assert!(!rs.predict(&[3.0, 0.5]));
/// ```
pub fn parse_rule_set(text: &str, attr_names: &[String]) -> Result<RuleSet, ParseRuleSetError> {
    let mut rules: Vec<Rule> = Vec::new();
    let mut stats: Vec<RuleStats> = Vec::new();
    let mut default: Option<(String, RuleStats)> = None;
    let mut pos_label: Option<String> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if default.is_some() {
            return Err(ParseRuleSetError::new(lineno, "content after the default rule"));
        }
        let (st, rest) = parse_stats(line, lineno)?;
        let (label, body) =
            rest.split_once(":-").ok_or_else(|| ParseRuleSetError::new(lineno, "missing ':-' separator"))?;
        let label = label.trim().to_string();
        let body = body.trim();
        if body == "(default)" {
            default = Some((label, st));
            continue;
        }
        match &pos_label {
            None => pos_label = Some(label.clone()),
            Some(p) if *p != label => {
                return Err(ParseRuleSetError::new(lineno, format!("mixed rule labels '{p}' and '{label}'")))
            }
            _ => {}
        }
        let conds = if body == "(always)" { Vec::new() } else { parse_conditions(body, attr_names, lineno)? };
        rules.push(Rule::from_conditions(conds));
        stats.push(st);
    }

    let (neg_label, default_stats) =
        default.ok_or_else(|| ParseRuleSetError::new(text.lines().count().max(1), "missing default rule"))?;
    let pos_label = pos_label.unwrap_or_else(|| "list".to_string());
    Ok(RuleSet::new(attr_names.to_vec(), pos_label, neg_label, rules, stats, default_stats))
}

fn parse_stats(line: &str, lineno: usize) -> Result<(RuleStats, &str), ParseRuleSetError> {
    let inner_start =
        line.strip_prefix('(').ok_or_else(|| ParseRuleSetError::new(lineno, "expected '(hits/misses)' prefix"))?;
    let close = inner_start.find(')').ok_or_else(|| ParseRuleSetError::new(lineno, "unclosed stats parenthesis"))?;
    let inner = &inner_start[..close];
    let rest = inner_start[close + 1..].trim();
    let (h, m) = inner.split_once('/').ok_or_else(|| ParseRuleSetError::new(lineno, "stats must be 'hits/misses'"))?;
    let hits = h.trim().parse::<usize>().map_err(|_| ParseRuleSetError::new(lineno, "bad hits count"))?;
    let misses = m.trim().parse::<usize>().map_err(|_| ParseRuleSetError::new(lineno, "bad misses count"))?;
    Ok((RuleStats { hits, misses }, rest))
}

fn parse_conditions(body: &str, attr_names: &[String], lineno: usize) -> Result<Vec<Condition>, ParseRuleSetError> {
    let mut conds = Vec::new();
    for part in body.split(',') {
        let mut tokens = part.split_whitespace();
        let attr_name = tokens.next().ok_or_else(|| ParseRuleSetError::new(lineno, "empty condition"))?;
        let op = match tokens.next() {
            Some("<=") => Op::Le,
            Some(">=") => Op::Ge,
            other => {
                return Err(ParseRuleSetError::new(lineno, format!("expected <= or >=, found {other:?}")));
            }
        };
        let value = tokens
            .next()
            .and_then(|t| t.parse::<f64>().ok())
            .ok_or_else(|| ParseRuleSetError::new(lineno, "missing or malformed threshold"))?;
        if tokens.next().is_some() {
            return Err(ParseRuleSetError::new(lineno, "trailing tokens in condition"));
        }
        let attr = attr_names
            .iter()
            .position(|n| n == attr_name)
            .ok_or_else(|| ParseRuleSetError::new(lineno, format!("unknown attribute '{attr_name}'")))?;
        conds.push(Condition { attr, op, threshold: value });
    }
    Ok(conds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs() -> Vec<String> {
        vec!["bbLen".into(), "loads".into(), "calls".into()]
    }

    #[test]
    fn round_trips_display_output() {
        let rs = RuleSet::new(
            attrs(),
            "list",
            "orig",
            vec![
                Rule::from_conditions(vec![
                    Condition { attr: 0, op: Op::Ge, threshold: 7.0 },
                    Condition { attr: 2, op: Op::Le, threshold: 0.0857 },
                ]),
                Rule::from_conditions(vec![Condition { attr: 1, op: Op::Ge, threshold: 0.375 }]),
            ],
            vec![RuleStats { hits: 924, misses: 12 }, RuleStats { hits: 452, misses: 23 }],
            RuleStats { hits: 27476, misses: 1946 },
        );
        let text = rs.to_string();
        let parsed = parse_rule_set(&text, &attrs()).expect("display output must parse");
        assert_eq!(parsed, rs);
    }

    #[test]
    fn parses_always_rule() {
        let text = "(  5/  1) list :- (always)\n( 10/ 0) orig :- (default)\n";
        let rs = parse_rule_set(text, &attrs()).unwrap();
        assert!(rs.predict(&[0.0, 0.0, 0.0]));
    }

    #[test]
    fn rejects_unknown_attribute() {
        let text = "(1/0) list :- mystery >= 1\n(1/0) orig :- (default)\n";
        let err = parse_rule_set(text, &attrs()).unwrap_err();
        assert!(err.to_string().contains("unknown attribute"));
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn rejects_missing_default() {
        let text = "(1/0) list :- bbLen >= 2\n";
        let err = parse_rule_set(text, &attrs()).unwrap_err();
        assert!(err.to_string().contains("missing default"));
    }

    #[test]
    fn rejects_content_after_default() {
        let text = "(1/0) orig :- (default)\n(1/0) list :- bbLen >= 2\n";
        let err = parse_rule_set(text, &attrs()).unwrap_err();
        assert!(err.to_string().contains("after the default"));
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn rejects_bad_operator_and_stats() {
        assert!(parse_rule_set("(1/0) list :- bbLen == 2\n(1/0) orig :- (default)\n", &attrs()).is_err());
        assert!(parse_rule_set("[1/0] list :- bbLen >= 2\n(1/0) orig :- (default)\n", &attrs()).is_err());
        assert!(parse_rule_set("(x/0) list :- bbLen >= 2\n(1/0) orig :- (default)\n", &attrs()).is_err());
    }

    #[test]
    fn blank_lines_are_ignored() {
        let text = "\n(1/0) list :- bbLen >= 2\n\n(9/1) orig :- (default)\n\n";
        let rs = parse_rule_set(text, &attrs()).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.stats()[0], RuleStats { hits: 1, misses: 0 });
    }
}
