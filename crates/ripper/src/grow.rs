//! Rule growing (FOIL gain) and pruning (IREP* metric).

use crate::data::Dataset;
use crate::rule::{Condition, Op, Rule};

/// Positive/negative coverage counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Cover {
    pub p: usize,
    pub n: usize,
}

pub(crate) fn coverage(rule: &Rule, data: &Dataset, idx: &[u32]) -> Cover {
    let mut c = Cover::default();
    for &i in idx {
        let inst = &data.instances()[i as usize];
        if rule.matches(&inst.values) {
            if inst.positive {
                c.p += 1;
            } else {
                c.n += 1;
            }
        }
    }
    c
}

/// FOIL information gain of refining a rule from coverage `(p0, n0)` to
/// `(p1, n1)`: `p1 * (log2(p1/(p1+n1)) - log2(p0/(p0+n0)))`.
pub(crate) fn foil_gain(p0: usize, n0: usize, p1: usize, n1: usize) -> f64 {
    if p1 == 0 || p0 == 0 {
        return 0.0;
    }
    let before = (p0 as f64 / (p0 + n0) as f64).log2();
    let after = (p1 as f64 / (p1 + n1) as f64).log2();
    p1 as f64 * (after - before)
}

/// Grows a rule on `grow_idx`: greedily adds the `attr <=/>= v` condition
/// with the highest FOIL gain until no negatives are covered or no
/// condition has positive gain.
pub(crate) fn grow_rule(data: &Dataset, grow_idx: &[u32]) -> Rule {
    let mut rule = Rule::new();
    let mut covered: Vec<u32> = grow_idx.to_vec();
    let m = data.attr_count();
    // Scratch buffer reused across conditions.
    let mut column: Vec<(f64, bool)> = Vec::new();

    loop {
        let Cover { p: p0, n: n0 } = count(data, &covered);
        if p0 == 0 || n0 == 0 {
            break;
        }
        let mut best_gain = 0.0f64;
        let mut best: Option<Condition> = None;
        for attr in 0..m {
            column.clear();
            column.extend(covered.iter().map(|&i| {
                let inst = &data.instances()[i as usize];
                (inst.values[attr], inst.positive)
            }));
            column.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
            // Walk runs of equal values, maintaining prefix class counts.
            let total = Cover { p: p0, n: n0 };
            let mut prefix = Cover::default();
            let mut j = 0;
            while j < column.len() {
                let v = column[j].0;
                let run_start_prefix = prefix;
                while j < column.len() && column[j].0 == v {
                    if column[j].1 {
                        prefix.p += 1;
                    } else {
                        prefix.n += 1;
                    }
                    j += 1;
                }
                // `attr <= v` covers the prefix through this run.
                let gain_le = foil_gain(total.p, total.n, prefix.p, prefix.n);
                if gain_le > best_gain {
                    best_gain = gain_le;
                    best = Some(Condition { attr, op: Op::Le, threshold: v });
                }
                // `attr >= v` covers this run and everything after.
                let (p_ge, n_ge) = (total.p - run_start_prefix.p, total.n - run_start_prefix.n);
                let gain_ge = foil_gain(total.p, total.n, p_ge, n_ge);
                if gain_ge > best_gain {
                    best_gain = gain_ge;
                    best = Some(Condition { attr, op: Op::Ge, threshold: v });
                }
            }
        }
        let Some(cond) = best else { break };
        rule.push(cond);
        covered.retain(|&i| cond.matches(&data.instances()[i as usize].values));
    }
    rule
}

/// Extends an existing rule by further growing on `grow_idx` (used for the
/// "revision" variant during optimization).
pub(crate) fn grow_from(mut seed: Rule, data: &Dataset, grow_idx: &[u32]) -> Rule {
    let covered: Vec<u32> =
        grow_idx.iter().copied().filter(|&i| seed.matches(&data.instances()[i as usize].values)).collect();
    let grown = grow_rule(data, &covered);
    for &c in grown.conditions() {
        seed.push(c);
    }
    seed
}

/// IREP* pruning metric on coverage counts: `(p - n) / (p + n)`, 0 when
/// the rule covers nothing.
pub(crate) fn prune_metric(c: Cover) -> f64 {
    if c.p + c.n == 0 {
        return 0.0;
    }
    (c.p as f64 - c.n as f64) / (c.p + c.n) as f64
}

/// Prunes a rule by deleting a (possibly empty) suffix of its conditions,
/// keeping at least one condition, to maximize the IREP* metric on
/// `prune_idx`. Ties prefer shorter rules.
///
/// An *empty* prune set carries no evidence either way — every prefix
/// ties at metric 0.0, and truncating to the shortest prefix on a tie
/// would silently gut the rule (tiny folds hit this: the stratified
/// split can round every instance of a class into the grow set). The
/// rule is returned unpruned in that case.
pub(crate) fn prune_rule(rule: Rule, data: &Dataset, prune_idx: &[u32]) -> Rule {
    if rule.len() <= 1 || prune_idx.is_empty() {
        return rule;
    }
    let mut best_keep = rule.len();
    let mut best_metric = f64::NEG_INFINITY;
    for keep in 1..=rule.len() {
        let mut candidate = rule.clone();
        candidate.truncate(keep);
        let metric = prune_metric(coverage(&candidate, data, prune_idx));
        // `>=` with increasing `keep` would prefer longer rules; iterate
        // short-to-long and use strict `>` so ties pick the shorter rule.
        if metric > best_metric {
            best_metric = metric;
            best_keep = keep;
        }
    }
    let mut pruned = rule;
    pruned.truncate(best_keep);
    pruned
}

fn count(data: &Dataset, idx: &[u32]) -> Cover {
    let mut c = Cover::default();
    for &i in idx {
        if data.instances()[i as usize].positive {
            c.p += 1;
        } else {
            c.n += 1;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_1d(points: &[(f64, bool)]) -> Dataset {
        let mut d = Dataset::new(vec!["x".into()], "pos", "neg");
        for &(x, y) in points {
            d.push(vec![x], y, 0);
        }
        d
    }

    fn all_idx(d: &Dataset) -> Vec<u32> {
        (0..u32::try_from(d.len()).expect("dataset sizes fit u32")).collect()
    }

    #[test]
    fn foil_gain_prefers_purer_cover() {
        // From 10/10 to 8/1 is a big gain; to 8/8 is smaller.
        let pure = foil_gain(10, 10, 8, 1);
        let meh = foil_gain(10, 10, 8, 8);
        assert!(pure > meh);
        assert_eq!(foil_gain(10, 10, 0, 5), 0.0, "no positives, no gain");
    }

    #[test]
    fn grows_single_threshold_for_separable_data() {
        let d = dataset_1d(&[(0.1, false), (0.2, false), (0.3, false), (0.7, true), (0.8, true), (0.9, true)]);
        let rule = grow_rule(&d, &all_idx(&d));
        assert_eq!(rule.len(), 1, "one threshold separates the classes: {rule:?}");
        assert!(rule.matches(&[0.8]));
        assert!(!rule.matches(&[0.2]));
    }

    #[test]
    fn grows_interval_for_band_data() {
        // positives in the middle band need two conditions.
        let mut pts = Vec::new();
        for i in 0..20 {
            let x = i as f64 / 20.0;
            pts.push((x, (0.4..0.6).contains(&x)));
        }
        let d = dataset_1d(&pts);
        let rule = grow_rule(&d, &all_idx(&d));
        assert!(rule.len() >= 2);
        assert!(rule.matches(&[0.45]));
        assert!(!rule.matches(&[0.1]));
        assert!(!rule.matches(&[0.9]));
    }

    #[test]
    fn grow_uses_most_informative_attribute() {
        // attr 0 is noise, attr 1 separates.
        let mut d = Dataset::new(vec!["noise".into(), "signal".into()], "pos", "neg");
        for i in 0..40 {
            let noise = (i * 7 % 40) as f64 / 40.0;
            let signal = i as f64 / 40.0;
            d.push(vec![noise, signal], signal >= 0.5, 0);
        }
        let rule = grow_rule(&d, &all_idx(&d));
        assert!(rule.conditions().iter().all(|c| c.attr == 1), "{rule:?}");
    }

    #[test]
    fn prune_removes_overfit_suffix() {
        // Build a rule with a good first condition and a junk second one,
        // and a prune set where the junk hurts.
        let rule = Rule::from_conditions(vec![
            Condition { attr: 0, op: Op::Ge, threshold: 0.5 },
            Condition { attr: 0, op: Op::Ge, threshold: 0.85 },
        ]);
        let d = dataset_1d(&[(0.6, true), (0.7, true), (0.9, true), (0.2, false), (0.3, false)]);
        let pruned = prune_rule(rule, &d, &all_idx(&d));
        assert_eq!(pruned.len(), 1, "suffix should be pruned: {pruned:?}");
    }

    #[test]
    fn empty_prune_set_leaves_rule_unpruned() {
        // Tiny folds can round a whole class into the grow set, leaving
        // nothing to prune on; every prefix then ties at metric 0.0 and
        // the tie-break used to truncate the rule to one condition.
        let rule = Rule::from_conditions(vec![
            Condition { attr: 0, op: Op::Ge, threshold: 0.5 },
            Condition { attr: 0, op: Op::Le, threshold: 0.9 },
        ]);
        let d = dataset_1d(&[(0.6, true), (0.2, false)]);
        let pruned = prune_rule(rule.clone(), &d, &[]);
        assert_eq!(pruned, rule, "no prune evidence means no pruning");
    }

    #[test]
    fn prune_keeps_good_conditions() {
        let rule = Rule::from_conditions(vec![Condition { attr: 0, op: Op::Ge, threshold: 0.5 }]);
        let d = dataset_1d(&[(0.6, true), (0.2, false)]);
        let pruned = prune_rule(rule.clone(), &d, &all_idx(&d));
        assert_eq!(pruned, rule);
    }

    #[test]
    fn prune_metric_values() {
        assert_eq!(prune_metric(Cover { p: 0, n: 0 }), 0.0);
        assert_eq!(prune_metric(Cover { p: 5, n: 0 }), 1.0);
        assert_eq!(prune_metric(Cover { p: 0, n: 5 }), -1.0);
        assert_eq!(prune_metric(Cover { p: 3, n: 1 }), 0.5);
    }

    #[test]
    fn grow_from_extends_seed() {
        let d = dataset_1d(&[(0.55, true), (0.6, false), (0.9, true), (0.2, false)]);
        let seed = Rule::from_conditions(vec![Condition { attr: 0, op: Op::Ge, threshold: 0.5 }]);
        let grown = grow_from(seed.clone(), &d, &all_idx(&d));
        assert!(grown.len() >= seed.len());
        for (a, b) in grown.conditions().iter().zip(seed.conditions()) {
            assert_eq!(a, b, "seed conditions are preserved as a prefix");
        }
    }

    #[test]
    fn coverage_counts() {
        let d = dataset_1d(&[(0.6, true), (0.7, false), (0.1, true)]);
        let rule = Rule::from_conditions(vec![Condition { attr: 0, op: Op::Ge, threshold: 0.5 }]);
        let c = coverage(&rule, &d, &all_idx(&d));
        assert_eq!((c.p, c.n), (1, 1));
    }

    #[test]
    fn grow_on_empty_or_pure_returns_empty_rule() {
        let d = dataset_1d(&[(0.1, true), (0.2, true)]);
        assert!(grow_rule(&d, &all_idx(&d)).is_empty(), "no negatives to exclude");
        let d2 = dataset_1d(&[(0.1, false)]);
        assert!(grow_rule(&d2, &all_idx(&d2)).is_empty(), "no positives to cover");
    }
}
