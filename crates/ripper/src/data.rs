//! Datasets of labelled numeric instances.

use std::fmt;

/// One training/test instance: a numeric feature vector, a binary label
/// and a *group* id (used for leave-one-group-out cross-validation; in the
/// paper a group is a benchmark program).
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Feature values, one per dataset attribute.
    pub values: Vec<f64>,
    /// True for the positive class (the paper's `LS`, "schedule").
    pub positive: bool,
    /// Group identifier for grouped cross-validation.
    pub group: u32,
}

/// A binary-classification dataset over numeric attributes.
///
/// # Examples
///
/// ```
/// use wts_ripper::Dataset;
/// let mut d = Dataset::new(vec!["a".into()], "LS", "NS");
/// d.push(vec![1.0], true, 0);
/// d.push(vec![0.0], false, 0);
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.positives(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    attr_names: Vec<String>,
    instances: Vec<Instance>,
    pos_label: String,
    neg_label: String,
}

impl Dataset {
    /// An empty dataset with the given attribute and class names.
    ///
    /// # Panics
    ///
    /// Panics if `attr_names` is empty.
    pub fn new(attr_names: Vec<String>, pos_label: impl Into<String>, neg_label: impl Into<String>) -> Dataset {
        assert!(!attr_names.is_empty(), "a dataset needs at least one attribute");
        Dataset { attr_names, instances: Vec::new(), pos_label: pos_label.into(), neg_label: neg_label.into() }
    }

    /// Adds an instance.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the attribute count or a
    /// value is not finite.
    pub fn push(&mut self, values: Vec<f64>, positive: bool, group: u32) {
        assert_eq!(values.len(), self.attr_names.len(), "value/attribute count mismatch");
        assert!(values.iter().all(|v| v.is_finite()), "feature values must be finite");
        self.instances.push(Instance { values, positive, group });
    }

    /// Attribute names.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.attr_names.len()
    }

    /// Positive class display name.
    pub fn pos_label(&self) -> &str {
        &self.pos_label
    }

    /// Negative class display name.
    pub fn neg_label(&self) -> &str {
        &self.neg_label
    }

    /// The instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when there are no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Number of positive instances.
    pub fn positives(&self) -> usize {
        self.instances.iter().filter(|i| i.positive).count()
    }

    /// Number of negative instances.
    pub fn negatives(&self) -> usize {
        self.len() - self.positives()
    }

    /// Distinct group ids, sorted.
    pub fn groups(&self) -> Vec<u32> {
        let mut g: Vec<u32> = self.instances.iter().map(|i| i.group).collect();
        g.sort_unstable();
        g.dedup();
        g
    }

    /// A dataset with the same schema but instances selected by predicate.
    pub fn filtered(&self, mut keep: impl FnMut(&Instance) -> bool) -> Dataset {
        Dataset {
            attr_names: self.attr_names.clone(),
            instances: self.instances.iter().filter(|i| keep(i)).cloned().collect(),
            pos_label: self.pos_label.clone(),
            neg_label: self.neg_label.clone(),
        }
    }

    /// An empty dataset with the same schema.
    pub fn like(&self) -> Dataset {
        Dataset {
            attr_names: self.attr_names.clone(),
            instances: Vec::new(),
            pos_label: self.pos_label.clone(),
            neg_label: self.neg_label.clone(),
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dataset: {} instances ({} {}, {} {}), {} attributes",
            self.len(),
            self.positives(),
            self.pos_label,
            self.negatives(),
            self.neg_label,
            self.attr_count()
        )
    }
}

/// Deterministic stratified split of instance indices into a grow set and
/// a prune set with approximately `grow_fraction` of each class in the
/// grow set. `seed` makes the shuffle reproducible.
pub(crate) fn stratified_split(instances: &[Instance], grow_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    debug_assert!((0.0..=1.0).contains(&grow_fraction));
    let mut pos: Vec<usize> = Vec::new();
    let mut neg: Vec<usize> = Vec::new();
    for (i, inst) in instances.iter().enumerate() {
        if inst.positive {
            pos.push(i);
        } else {
            neg.push(i);
        }
    }
    let mut rng = SplitMix64::new(seed);
    shuffle(&mut pos, &mut rng);
    shuffle(&mut neg, &mut rng);
    let mut grow = Vec::new();
    let mut prune = Vec::new();
    for class in [pos, neg] {
        // `grow_fraction` is validated into (0, 1) by the caller, so the
        // product is finite, non-negative and at most `class.len()`; the
        // rounding must stay bit-identical to keep every trained filter
        // reproducible, so the cast is kept and justified rather than
        // rewritten in integer arithmetic.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((class.len() as f64) * grow_fraction).round() as usize;
        grow.extend_from_slice(&class[..cut.min(class.len())]);
        prune.extend_from_slice(&class[cut.min(class.len())..]);
    }
    (grow, prune)
}

fn shuffle(v: &mut [usize], rng: &mut SplitMix64) {
    for i in (1..v.len()).rev() {
        let j = usize::try_from(rng.next() % (i as u64 + 1)).expect("residue mod a usize fits usize");
        v.swap(i, j);
    }
}

/// SplitMix64: tiny, deterministic, well-distributed.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(pos: usize, neg: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
        for i in 0..pos {
            d.push(vec![i as f64], true, 0);
        }
        for i in 0..neg {
            d.push(vec![-(i as f64)], false, 1);
        }
        d
    }

    #[test]
    fn counts_and_labels() {
        let d = dataset(3, 5);
        assert_eq!(d.len(), 8);
        assert_eq!(d.positives(), 3);
        assert_eq!(d.negatives(), 5);
        assert_eq!(d.pos_label(), "LS");
        assert_eq!(d.neg_label(), "NS");
        assert_eq!(d.groups(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn push_checks_arity() {
        let mut d = dataset(0, 0);
        d.push(vec![1.0, 2.0], true, 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_rejects_nan() {
        let mut d = dataset(0, 0);
        d.push(vec![f64::NAN], true, 0);
    }

    #[test]
    fn filtered_keeps_schema() {
        let d = dataset(3, 3);
        let f = d.filtered(|i| i.positive);
        assert_eq!(f.len(), 3);
        assert_eq!(f.negatives(), 0);
        assert_eq!(f.attr_names(), d.attr_names());
    }

    #[test]
    fn stratified_split_preserves_class_ratio() {
        let d = dataset(30, 90);
        let (grow, prune) = stratified_split(d.instances(), 2.0 / 3.0, 7);
        assert_eq!(grow.len() + prune.len(), 120);
        let grow_pos = grow.iter().filter(|&&i| d.instances()[i].positive).count();
        assert_eq!(grow_pos, 20, "two thirds of the 30 positives");
        let prune_pos = prune.iter().filter(|&&i| d.instances()[i].positive).count();
        assert_eq!(prune_pos, 10);
    }

    #[test]
    fn tiny_classes_round_entirely_into_the_grow_set() {
        // `round(1 * 2/3) == 1`: a one-instance class contributes nothing
        // to the prune set — the empty-prune-set case prune_rule guards.
        let d = dataset(1, 1);
        let (grow, prune) = stratified_split(d.instances(), 2.0 / 3.0, 9);
        assert_eq!(grow.len(), 2);
        assert!(prune.is_empty());
    }

    #[test]
    fn stratified_split_is_deterministic() {
        let d = dataset(10, 10);
        let a = stratified_split(d.instances(), 0.5, 3);
        let b = stratified_split(d.instances(), 0.5, 3);
        assert_eq!(a, b);
        let c = stratified_split(d.instances(), 0.5, 4);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn splitmix_sequence_is_stable() {
        let mut r = SplitMix64::new(0);
        let a = r.next();
        let mut r2 = SplitMix64::new(0);
        assert_eq!(a, r2.next());
    }

    #[test]
    fn display_mentions_both_classes() {
        let d = dataset(1, 2);
        let s = d.to_string();
        assert!(s.contains("1 LS") && s.contains("2 NS"));
    }
}
