//! The RIPPER training loop: IREP* + MDL stopping + optimization passes.

use crate::data::{stratified_split, Dataset};
use crate::grow::{coverage, grow_from, grow_rule, prune_metric, prune_rule, Cover};
use crate::mdl::{total_dl, DL_BUDGET};
use crate::rule::{Rule, RuleSet};

/// Configuration for [`RipperConfig::fit`].
///
/// Defaults mirror Cohen's: a 2/3 grow split and `k = 2` optimization
/// rounds. The seed controls the stratified grow/prune splits, making
/// training fully deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct RipperConfig {
    /// Fraction of instances used for growing (the rest prune).
    pub grow_fraction: f64,
    /// Number of optimization rounds.
    pub optimization_rounds: usize,
    /// Seed for the deterministic grow/prune splits.
    pub seed: u64,
}

impl Default for RipperConfig {
    fn default() -> RipperConfig {
        RipperConfig { grow_fraction: 2.0 / 3.0, optimization_rounds: 2, seed: 0xC0FFEE }
    }
}

impl RipperConfig {
    /// Trains a rule set for the dataset's positive class.
    ///
    /// With two classes RIPPER learns rules for one class only and makes
    /// the other the default; callers should make the minority class the
    /// positive one (the paper's `LS`).
    ///
    /// # Panics
    ///
    /// Panics if `grow_fraction` is not in `(0, 1)`.
    pub fn fit(&self, data: &Dataset) -> RuleSet {
        assert!(self.grow_fraction > 0.0 && self.grow_fraction < 1.0, "grow fraction must be in (0,1)");
        let mut state = Fit { cfg: self.clone(), data, split_counter: 0 };
        state.run()
    }
}

struct Fit<'d> {
    cfg: RipperConfig,
    data: &'d Dataset,
    split_counter: u64,
}

impl<'d> Fit<'d> {
    /// Every instance index of the dataset, as the u32 indices the grow
    /// and prune sets use.
    fn all_indices(&self) -> Vec<u32> {
        (0..u32::try_from(self.data.len()).expect("dataset sizes fit u32")).collect()
    }

    fn run(&mut self) -> RuleSet {
        let all = self.all_indices();
        if self.data.negatives() == 0 && self.data.positives() > 0 {
            // Degenerate single-class data: an always-true rule.
            return self.finish(vec![Rule::new()]);
        }
        let mut rules = self.irep_star(&all, Vec::new());

        for _round in 0..self.cfg.optimization_rounds {
            rules = self.optimize(rules);
            // Cover residual positives with additional rules.
            let uncovered: Vec<u32> = self.uncovered(&rules, &all);
            if self.has_positives(&uncovered) {
                rules = self.irep_star(&uncovered, rules);
            }
            rules = self.delete_harmful(rules);
        }

        self.finish(rules)
    }

    /// Grows rules until MDL or error stopping, starting from `existing`
    /// (whose coverage has already been removed from `remaining`).
    fn irep_star(&mut self, remaining: &[u32], mut rules: Vec<Rule>) -> Vec<Rule> {
        let all = self.all_indices();
        let mut remaining: Vec<u32> = remaining.to_vec();
        let mut min_dl = self.ruleset_dl(&rules, &all);

        while self.has_positives(&remaining) {
            let (grow, prune) = self.split(&remaining);
            let mut rule = grow_rule(self.data, &grow);
            if rule.is_empty() {
                break;
            }
            rule = prune_rule(rule, self.data, &prune);
            // Reject rules whose error on the pruning data exceeds 50%.
            let c = coverage(&rule, self.data, &prune);
            if c.n > c.p {
                break;
            }
            rules.push(rule);
            let dl = self.ruleset_dl(&rules, &all);
            if dl > min_dl + DL_BUDGET {
                rules.pop();
                break;
            }
            min_dl = min_dl.min(dl);
            let newest = rules.last().expect("just pushed");
            remaining.retain(|&i| !newest.matches(&self.data.instances()[i as usize].values));
        }
        rules
    }

    /// One optimization pass: reconsider each rule against a re-grown
    /// replacement and a greedily-extended revision, keeping the variant
    /// whose rule set has the smallest description length.
    fn optimize(&mut self, mut rules: Vec<Rule>) -> Vec<Rule> {
        let all = self.all_indices();
        for i in 0..rules.len() {
            // Instances not claimed by earlier rules are what rule i sees.
            let pertinent: Vec<u32> = all
                .iter()
                .copied()
                .filter(|&x| {
                    let v = &self.data.instances()[x as usize].values;
                    !rules[..i].iter().any(|r| r.matches(v))
                })
                .collect();
            if !self.has_positives(&pertinent) {
                continue;
            }
            let (grow, prune) = self.split(&pertinent);

            let mut replacement = grow_rule(self.data, &grow);
            if !replacement.is_empty() {
                replacement = prune_rule(replacement, self.data, &prune);
            }
            let mut revision = grow_from(rules[i].clone(), self.data, &grow);
            if !revision.is_empty() {
                revision = prune_rule(revision, self.data, &prune);
            }

            let mut best = rules.clone();
            let mut best_dl = self.ruleset_dl(&rules, &all);
            for candidate in [replacement, revision] {
                if candidate.is_empty() {
                    continue;
                }
                let mut variant = rules.clone();
                variant[i] = candidate;
                let dl = self.ruleset_dl(&variant, &all);
                if dl < best_dl {
                    best_dl = dl;
                    best = variant;
                }
            }
            rules = best;
        }
        rules
    }

    /// Removes rules whose deletion lowers the total description length.
    fn delete_harmful(&mut self, mut rules: Vec<Rule>) -> Vec<Rule> {
        let all = self.all_indices();
        let mut i = 0;
        while i < rules.len() {
            let with = self.ruleset_dl(&rules, &all);
            let removed = rules.remove(i);
            let without = self.ruleset_dl(&rules, &all);
            if with <= without {
                rules.insert(i, removed);
                i += 1;
            }
        }
        rules
    }

    fn finish(&self, rules: Vec<Rule>) -> RuleSet {
        let (stats, default_stats) = crate::rule::attribute_stats(&rules, self.data);
        RuleSet::new(
            self.data.attr_names().to_vec(),
            self.data.pos_label(),
            self.data.neg_label(),
            rules,
            stats,
            default_stats,
        )
    }

    /// Description length of a rule list over the instances `idx`.
    fn ruleset_dl(&self, rules: &[Rule], idx: &[u32]) -> f64 {
        let mut covered = 0usize;
        let mut fp = 0usize;
        let mut uncovered = 0usize;
        let mut fn_ = 0usize;
        for &i in idx {
            let inst = &self.data.instances()[i as usize];
            if rules.iter().any(|r| r.matches(&inst.values)) {
                covered += 1;
                if !inst.positive {
                    fp += 1;
                }
            } else {
                uncovered += 1;
                if inst.positive {
                    fn_ += 1;
                }
            }
        }
        let counts: Vec<usize> = rules.iter().map(Rule::len).collect();
        total_dl(&counts, self.data.attr_count(), covered, fp, uncovered, fn_)
    }

    fn uncovered(&self, rules: &[Rule], idx: &[u32]) -> Vec<u32> {
        idx.iter()
            .copied()
            .filter(|&i| !rules.iter().any(|r| r.matches(&self.data.instances()[i as usize].values)))
            .collect()
    }

    fn has_positives(&self, idx: &[u32]) -> bool {
        idx.iter().any(|&i| self.data.instances()[i as usize].positive)
    }

    /// Deterministic stratified split of `idx` into (grow, prune).
    fn split(&mut self, idx: &[u32]) -> (Vec<u32>, Vec<u32>) {
        self.split_counter += 1;
        let insts: Vec<_> = idx.iter().map(|&i| self.data.instances()[i as usize].clone()).collect();
        let (g, p) = stratified_split(&insts, self.cfg.grow_fraction, self.cfg.seed ^ self.split_counter);
        (g.into_iter().map(|k| idx[k]).collect(), p.into_iter().map(|k| idx[k]).collect())
    }
}

/// Convenience: the IREP* pruning-phase worth of a whole rule set, used by
/// tests to sanity-check monotonicity (exposed for the crate only).
#[allow(dead_code)]
pub(crate) fn ruleset_worth(rules: &[Rule], data: &Dataset, idx: &[u32]) -> f64 {
    let mut c = Cover::default();
    for &i in idx {
        let inst = &data.instances()[i as usize];
        if rules.iter().any(|r| r.matches(&inst.values)) {
            if inst.positive {
                c.p += 1;
            } else {
                c.n += 1;
            }
        }
    }
    prune_metric(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = (x0 >= 0.6) || (x1 <= 0.2), plus label noise on a few points.
    fn disjunctive_dataset(n: usize, noise_every: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()], "LS", "NS");
        let mut s: u64 = 12345;
        for i in 0..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x0 = ((s >> 11) % 1000) as f64 / 1000.0;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x1 = ((s >> 11) % 1000) as f64 / 1000.0;
            let mut y = x0 >= 0.6 || x1 <= 0.2;
            if noise_every > 0 && i % noise_every == 0 {
                y = !y;
            }
            d.push(vec![x0, x1], y, u32::try_from(i % 4).expect("a residue mod 4 fits u32"));
        }
        d
    }

    #[test]
    fn learns_clean_disjunction() {
        let d = disjunctive_dataset(600, 0);
        let model = RipperConfig::default().fit(&d);
        assert!(!model.is_empty());
        assert!(model.predict(&[0.9, 0.9]));
        assert!(model.predict(&[0.1, 0.05]));
        assert!(!model.predict(&[0.1, 0.9]));
        // Training accuracy should be near perfect on separable data.
        let errors = d.instances().iter().filter(|i| model.predict(&i.values) != i.positive).count();
        assert!(errors * 100 <= d.len(), "error rate {errors}/{} too high", d.len());
    }

    #[test]
    fn tolerates_label_noise() {
        let d = disjunctive_dataset(800, 25); // 4% label noise
        let model = RipperConfig::default().fit(&d);
        let errors = d.instances().iter().filter(|i| model.predict(&i.values) != i.positive).count();
        // Should stay close to the Bayes rate (4%), not memorize noise.
        assert!(errors as f64 / d.len() as f64 <= 0.10, "error rate {} too high", errors as f64 / d.len() as f64);
        // MDL pressure keeps the model small.
        assert!(model.len() <= 8, "model has {} rules", model.len());
    }

    #[test]
    fn no_positives_yields_default_only() {
        let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
        for i in 0..50 {
            d.push(vec![i as f64], false, 0);
        }
        let model = RipperConfig::default().fit(&d);
        assert!(model.is_empty());
        assert!(!model.predict(&[3.0]));
    }

    #[test]
    fn all_positives_predicts_positive() {
        let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
        for i in 0..50 {
            d.push(vec![i as f64], true, 0);
        }
        let model = RipperConfig::default().fit(&d);
        assert!(model.predict(&[3.0]), "must fall back to an always-true rule");
    }

    #[test]
    fn tiny_folds_keep_conjunctive_rules_intact() {
        // Positives need *both* x0 >= 0.6 and x1 >= 0.55. With per-class
        // counts small enough that `round(n * grow_fraction) == n`, the
        // stratified split rounds every instance into the grow set and
        // pruning sees an *empty* prune set; it used to truncate the
        // grown conjunction to its first condition, turning every
        // high-x0/low-x1 negative into a false positive.
        let pos = [(0.6, 0.6), (0.7, 0.8), (0.9, 0.55)];
        let neg = [(0.6, 0.1), (0.7, 0.2), (0.1, 0.6), (0.2, 0.9), (0.1, 0.1)];
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()], "LS", "NS");
        for i in 0..25 {
            let (x0, x1) = pos[i % pos.len()];
            d.push(vec![x0, x1], true, 0);
            let (x0, x1) = neg[i % neg.len()];
            d.push(vec![x0, x1], false, 0);
        }
        let model = RipperConfig { grow_fraction: 0.98, ..Default::default() }.fit(&d);
        for inst in d.instances() {
            assert_eq!(model.predict(&inst.values), inst.positive, "misclassified {:?}; rules: {model}", inst.values);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let d = disjunctive_dataset(400, 20);
        let a = RipperConfig::default().fit(&d);
        let b = RipperConfig::default().fit(&d);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_splits_but_not_quality_much() {
        let d = disjunctive_dataset(600, 30);
        let a = RipperConfig { seed: 1, ..Default::default() }.fit(&d);
        let b = RipperConfig { seed: 2, ..Default::default() }.fit(&d);
        for m in [&a, &b] {
            let errors = d.instances().iter().filter(|i| m.predict(&i.values) != i.positive).count();
            assert!(errors as f64 / d.len() as f64 <= 0.12);
        }
    }

    #[test]
    fn stats_sum_to_dataset_size() {
        let d = disjunctive_dataset(300, 0);
        let model = RipperConfig::default().fit(&d);
        let rule_total: usize = model.stats().iter().map(|s| s.hits + s.misses).sum();
        let shown = model.to_string();
        // Default row hits+misses = everything not claimed by a rule.
        let all = d.len();
        assert!(rule_total <= all);
        assert!(shown.contains(":- (default)"));
    }

    #[test]
    fn optimization_never_leaves_empty_rules() {
        let d = disjunctive_dataset(500, 10);
        let model = RipperConfig::default().fit(&d);
        for r in model.rules() {
            assert!(!r.is_empty() || model.len() == 1, "unexpected empty rule in multi-rule set");
        }
    }

    #[test]
    #[should_panic(expected = "grow fraction")]
    fn bad_grow_fraction_panics() {
        let d = disjunctive_dataset(10, 0);
        RipperConfig { grow_fraction: 1.5, ..Default::default() }.fit(&d);
    }

    #[test]
    fn zero_optimization_rounds_still_works() {
        let d = disjunctive_dataset(300, 0);
        let model = RipperConfig { optimization_rounds: 0, ..Default::default() }.fit(&d);
        assert!(model.predict(&[0.95, 0.9]));
    }
}
