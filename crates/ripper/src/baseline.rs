//! Baseline learners for comparison with RIPPER.
//!
//! The paper motivates rule induction over heavier methods (§2.3, §5);
//! these baselines quantify that choice in the `learners` extension
//! experiment: a majority-class guesser, a single decision stump, 1R
//! (best single-attribute threshold), and a small depth-limited decision
//! tree (the method of Calder et al. and Monsifrot et al. in §5).

use crate::data::Dataset;
use crate::rule::{Condition, Op, Rule, RuleSet};

/// The greatest `f64` strictly below `v` (identity on NaN and
/// `NEG_INFINITY`). Local stand-in for `f64::next_down`, which is not
/// available at this crate's MSRV; used to lower strict comparisons
/// (`v < t`) onto the engine's `<=`/`>=` condition vocabulary exactly.
fn next_down(v: f64) -> f64 {
    if v.is_nan() || v == f64::NEG_INFINITY {
        return v;
    }
    if v == 0.0 {
        return -f64::from_bits(1); // smallest negative subnormal
    }
    f64::from_bits(if v > 0.0 { v.to_bits() - 1 } else { v.to_bits() + 1 })
}

/// The least `f64` strictly above `v` (identity on NaN and `INFINITY`);
/// mirror of [`next_down`].
fn next_up(v: f64) -> f64 {
    if v.is_nan() || v == f64::INFINITY {
        return v;
    }
    if v == 0.0 {
        return f64::from_bits(1); // smallest positive subnormal
    }
    f64::from_bits(if v > 0.0 { v.to_bits() + 1 } else { v.to_bits() - 1 })
}

/// Anything that classifies a numeric feature vector.
pub trait Classifier {
    /// Predicts the positive class for `values`.
    fn predict(&self, values: &[f64]) -> bool;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

impl Classifier for RuleSet {
    fn predict(&self, values: &[f64]) -> bool {
        RuleSet::predict(self, values)
    }

    fn name(&self) -> &'static str {
        "ripper"
    }
}

/// Always predicts the majority class of the training data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorityLearner {
    positive: bool,
}

impl MajorityLearner {
    /// Fits the majority class.
    pub fn fit(data: &Dataset) -> MajorityLearner {
        MajorityLearner { positive: data.positives() * 2 > data.len() }
    }

    /// The class this model always predicts.
    pub fn majority(&self) -> bool {
        self.positive
    }
}

impl Classifier for MajorityLearner {
    fn predict(&self, _values: &[f64]) -> bool {
        self.positive
    }

    fn name(&self) -> &'static str {
        "majority"
    }
}

/// A single threshold test on a single attribute, chosen to minimize
/// training error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionStump {
    attr: usize,
    threshold: f64,
    /// Predicted class when `value >= threshold`.
    ge_positive: bool,
}

impl DecisionStump {
    /// Fits the best stump by exhaustive threshold search.
    pub fn fit(data: &Dataset) -> DecisionStump {
        let mut best =
            DecisionStump { attr: 0, threshold: f64::NEG_INFINITY, ge_positive: data.positives() * 2 > data.len() };
        let mut best_err = usize::MAX;
        for attr in 0..data.attr_count() {
            let mut col: Vec<(f64, bool)> = data.instances().iter().map(|i| (i.values[attr], i.positive)).collect();
            col.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let total_pos = col.iter().filter(|e| e.1).count();
            let total = col.len();
            // For threshold = v (a data value), `>= v` covers the suffix.
            let mut pos_before = 0usize;
            let mut before = 0usize;
            let mut j = 0;
            while j < col.len() {
                let v = col[j].0;
                // Evaluate threshold at the start of this run.
                let pos_suffix = total_pos - pos_before;
                let suffix = total - before;
                // Variant 1: ge_positive=true — errors: negatives in suffix + positives in prefix.
                let err_true = (suffix - pos_suffix) + pos_before;
                // Variant 2: ge_positive=false — complement.
                let err_false = pos_suffix + (before - pos_before);
                for (err, gep) in [(err_true, true), (err_false, false)] {
                    if err < best_err {
                        best_err = err;
                        best = DecisionStump { attr, threshold: v, ge_positive: gep };
                    }
                }
                while j < col.len() && col[j].0 == v {
                    if col[j].1 {
                        pos_before += 1;
                    }
                    before += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// The attribute tested.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// The threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Lowers the stump to ordered-rule form: one rule whose single
    /// condition fires exactly when [`predict`](Classifier::predict)
    /// returns the positive class. The inverted orientation
    /// (`value < threshold` positive) becomes `value <=` the next
    /// representable `f64` below the threshold, so decisions agree
    /// bit-for-bit on every finite input.
    pub fn to_rules(&self) -> Vec<Rule> {
        let cond = if self.ge_positive {
            Condition { attr: self.attr, op: Op::Ge, threshold: self.threshold }
        } else {
            Condition { attr: self.attr, op: Op::Le, threshold: next_down(self.threshold) }
        };
        vec![Rule::from_conditions(vec![cond])]
    }
}

impl Classifier for DecisionStump {
    fn predict(&self, values: &[f64]) -> bool {
        if values[self.attr] >= self.threshold {
            self.ge_positive
        } else {
            !self.ge_positive
        }
    }

    fn name(&self) -> &'static str {
        "stump"
    }
}

/// 1R (Holte 1993): discretize each attribute into up-to-`bins` intervals,
/// pick the single attribute whose interval-majority predictions have the
/// lowest training error.
#[derive(Debug, Clone, PartialEq)]
pub struct OneR {
    attr: usize,
    /// Sorted interval upper bounds; `predictions[k]` applies to values
    /// `<= bounds[k]` (last interval is unbounded).
    bounds: Vec<f64>,
    predictions: Vec<bool>,
}

impl OneR {
    /// Fits 1R with the given number of equal-frequency bins per attribute.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `data` is empty.
    pub fn fit(data: &Dataset, bins: usize) -> OneR {
        assert!(bins >= 1, "need at least one bin");
        assert!(!data.is_empty(), "cannot fit 1R on an empty dataset");
        let mut best: Option<(usize, OneR)> = None;
        for attr in 0..data.attr_count() {
            let mut col: Vec<(f64, bool)> = data.instances().iter().map(|i| (i.values[attr], i.positive)).collect();
            col.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let per = (col.len() / bins).max(1);
            let mut bounds = Vec::new();
            let mut predictions = Vec::new();
            let mut errors = 0usize;
            let mut k = 0;
            while k < col.len() {
                let mut end = (k + per).min(col.len());
                // Extend so equal values stay in one interval.
                while end < col.len() && col[end].0 == col[end - 1].0 {
                    end += 1;
                }
                let pos = col[k..end].iter().filter(|e| e.1).count();
                let neg = end - k - pos;
                predictions.push(pos >= neg);
                errors += pos.min(neg);
                if end < col.len() {
                    bounds.push(col[end - 1].0);
                }
                k = end;
            }
            let model = OneR { attr, bounds, predictions };
            if best.as_ref().is_none_or(|(e, _)| errors < *e) {
                best = Some((errors, model));
            }
        }
        best.expect("non-empty dataset").1
    }

    /// The attribute this model tests.
    pub fn attr(&self) -> usize {
        self.attr
    }
}

impl Classifier for OneR {
    fn predict(&self, values: &[f64]) -> bool {
        let v = values[self.attr];
        let k = self.bounds.iter().take_while(|&&b| v > b).count();
        self.predictions[k.min(self.predictions.len() - 1)]
    }

    fn name(&self) -> &'static str {
        "one-r"
    }
}

/// A small entropy-based decision tree with a depth limit and a minimum
/// leaf size.
#[derive(Debug, Clone, PartialEq)]
pub struct ShallowTree {
    root: Node,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf(bool),
    Split { attr: usize, threshold: f64, le: Box<Node>, gt: Box<Node> },
}

impl ShallowTree {
    /// Fits a tree of at most `max_depth` splits, never splitting nodes
    /// with fewer than `min_leaf` instances.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset, max_depth: usize, min_leaf: usize) -> ShallowTree {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let idx: Vec<u32> = (0..u32::try_from(data.len()).expect("dataset sizes fit u32")).collect();
        ShallowTree { root: build(data, &idx, max_depth, min_leaf.max(1)) }
    }

    /// Number of leaves (model size).
    pub fn leaves(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Split { le, gt, .. } => walk(le) + walk(gt),
            }
        }
        walk(&self.root)
    }

    /// Lowers the tree to ordered-rule form: one conjunctive rule per
    /// positive leaf, collecting the root-to-leaf path conditions. The
    /// strict `> threshold` branch becomes `>=` the next representable
    /// `f64` above the threshold, so rule-set decisions agree bit-for-bit
    /// with [`predict`](Classifier::predict) on every finite input. Leaf
    /// order is left-to-right; paths are disjoint, so firing order never
    /// changes a decision. An all-positive root lowers to the single
    /// empty (always-firing) rule.
    pub fn to_rules(&self) -> Vec<Rule> {
        fn walk(n: &Node, path: &mut Vec<Condition>, out: &mut Vec<Rule>) {
            match n {
                Node::Leaf(true) => out.push(Rule::from_conditions(path.clone())),
                Node::Leaf(false) => {}
                Node::Split { attr, threshold, le, gt } => {
                    path.push(Condition { attr: *attr, op: Op::Le, threshold: *threshold });
                    walk(le, path, out);
                    path.pop();
                    path.push(Condition { attr: *attr, op: Op::Ge, threshold: next_up(*threshold) });
                    walk(gt, path, out);
                    path.pop();
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut Vec::new(), &mut out);
        out
    }
}

fn entropy(p: usize, n: usize) -> f64 {
    let t = p + n;
    if t == 0 || p == 0 || n == 0 {
        return 0.0;
    }
    let fp = p as f64 / t as f64;
    let fn_ = n as f64 / t as f64;
    -(fp * fp.log2() + fn_ * fn_.log2())
}

fn build(data: &Dataset, idx: &[u32], depth: usize, min_leaf: usize) -> Node {
    let pos = idx.iter().filter(|&&i| data.instances()[i as usize].positive).count();
    let neg = idx.len() - pos;
    if depth == 0 || idx.len() < 2 * min_leaf || pos == 0 || neg == 0 {
        return Node::Leaf(pos >= neg);
    }
    let parent_h = entropy(pos, neg);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, attr, threshold)
    for attr in 0..data.attr_count() {
        let mut col: Vec<(f64, bool)> = idx
            .iter()
            .map(|&i| (data.instances()[i as usize].values[attr], data.instances()[i as usize].positive))
            .collect();
        col.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut p_le = 0usize;
        let mut c_le = 0usize;
        let mut j = 0;
        while j < col.len() {
            let v = col[j].0;
            while j < col.len() && col[j].0 == v {
                if col[j].1 {
                    p_le += 1;
                }
                c_le += 1;
                j += 1;
            }
            if c_le < min_leaf || idx.len() - c_le < min_leaf {
                continue;
            }
            let n_le = c_le - p_le;
            let p_gt = pos - p_le;
            let n_gt = neg - n_le;
            let w_le = c_le as f64 / idx.len() as f64;
            let gain = parent_h - w_le * entropy(p_le, n_le) - (1.0 - w_le) * entropy(p_gt, n_gt);
            if best.as_ref().is_none_or(|(g, _, _)| gain > *g) {
                best = Some((gain, attr, v));
            }
        }
    }
    match best {
        Some((gain, attr, threshold)) if gain > 1e-9 => {
            let (le, gt): (Vec<u32>, Vec<u32>) =
                idx.iter().partition(|&&i| data.instances()[i as usize].values[attr] <= threshold);
            Node::Split {
                attr,
                threshold,
                le: Box::new(build(data, &le, depth - 1, min_leaf)),
                gt: Box::new(build(data, &gt, depth - 1, min_leaf)),
            }
        }
        _ => Node::Leaf(pos >= neg),
    }
}

impl Classifier for ShallowTree {
    fn predict(&self, values: &[f64]) -> bool {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(c) => return *c,
                Node::Split { attr, threshold, le, gt } => {
                    node = if values[*attr] <= *threshold { le } else { gt };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "junk".into()], "LS", "NS");
        for i in 0..100 {
            let x = i as f64 / 100.0;
            d.push(vec![x, 0.5], x >= 0.4, 0);
        }
        d
    }

    #[test]
    fn majority_predicts_bigger_class() {
        let d = linear_dataset(); // 60 positives
        let m = MajorityLearner::fit(&d);
        assert!(m.majority());
        assert!(m.predict(&[0.0, 0.0]));
    }

    #[test]
    fn stump_finds_the_threshold() {
        let d = linear_dataset();
        let s = DecisionStump::fit(&d);
        assert_eq!(s.attr(), 0);
        assert!(s.predict(&[0.9, 0.5]));
        assert!(!s.predict(&[0.1, 0.5]));
    }

    #[test]
    fn stump_handles_inverted_classes() {
        let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
        for i in 0..50 {
            let x = i as f64;
            d.push(vec![x], x < 25.0, 0);
        }
        let s = DecisionStump::fit(&d);
        assert!(s.predict(&[1.0]));
        assert!(!s.predict(&[40.0]));
    }

    #[test]
    fn one_r_matches_simple_rule() {
        let d = linear_dataset();
        let m = OneR::fit(&d, 10);
        assert_eq!(m.attr(), 0);
        assert!(m.predict(&[0.95, 0.5]));
        assert!(!m.predict(&[0.05, 0.5]));
    }

    #[test]
    fn tree_learns_conjunctive_structure() {
        // positives where x >= .5 && y >= .5: needs depth 2.
        let mut d = Dataset::new(vec!["x".into(), "y".into()], "LS", "NS");
        for i in 0..20 {
            for j in 0..20 {
                let (x, y) = (i as f64 / 20.0, j as f64 / 20.0);
                d.push(vec![x, y], x >= 0.5 && y >= 0.5, 0);
            }
        }
        let t = ShallowTree::fit(&d, 3, 5);
        assert!(t.predict(&[0.9, 0.9]));
        assert!(!t.predict(&[0.9, 0.1]));
        assert!(!t.predict(&[0.1, 0.9]));
        assert!(!t.predict(&[0.1, 0.1]));
        assert!(t.leaves() >= 3);
    }

    #[test]
    fn tree_respects_depth_limit() {
        let d = linear_dataset();
        let t = ShallowTree::fit(&d, 1, 1);
        assert!(t.leaves() <= 2);
    }

    fn rules_predict(rules: &[Rule], values: &[f64]) -> bool {
        rules.iter().any(|r| r.matches(values))
    }

    #[test]
    fn stump_lowering_matches_predict_at_the_boundary() {
        let d = linear_dataset();
        let s = DecisionStump::fit(&d);
        let rules = s.to_rules();
        assert_eq!(rules.len(), 1);
        let t = s.threshold();
        for v in [t, next_down(t), next_up(t), 0.0, 1.0, -3.5] {
            assert_eq!(rules_predict(&rules, &[v, 0.5]), s.predict(&[v, 0.5]), "value {v}");
        }
    }

    #[test]
    fn inverted_stump_lowering_matches_predict_at_the_boundary() {
        let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
        for i in 0..50 {
            let x = i as f64;
            d.push(vec![x], x < 25.0, 0);
        }
        let s = DecisionStump::fit(&d);
        let rules = s.to_rules();
        let t = s.threshold();
        for v in [t, next_down(t), next_up(t), -1.0, 24.0, 25.0, 26.0, 100.0] {
            assert_eq!(rules_predict(&rules, &[v]), s.predict(&[v]), "value {v}");
        }
    }

    #[test]
    fn tree_lowering_matches_predict_on_a_grid() {
        let mut d = Dataset::new(vec!["x".into(), "y".into()], "LS", "NS");
        for i in 0..20 {
            for j in 0..20 {
                let (x, y) = (i as f64 / 20.0, j as f64 / 20.0);
                d.push(vec![x, y], x >= 0.5 && y >= 0.5, 0);
            }
        }
        let t = ShallowTree::fit(&d, 3, 5);
        let rules = t.to_rules();
        assert!(!rules.is_empty());
        for i in 0..=40 {
            for j in 0..=40 {
                let v = [i as f64 / 40.0, j as f64 / 40.0];
                assert_eq!(rules_predict(&rules, &v), t.predict(&v), "at {v:?}");
            }
        }
    }

    #[test]
    fn all_positive_tree_lowers_to_the_empty_rule() {
        let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
        for i in 0..10 {
            d.push(vec![i as f64], true, 0);
        }
        let t = ShallowTree::fit(&d, 3, 2);
        let rules = t.to_rules();
        assert_eq!(rules.len(), 1);
        assert!(rules[0].is_empty(), "all-positive root is the always rule");
        let all_neg = ShallowTree::fit(
            &{
                let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
                for i in 0..10 {
                    d.push(vec![i as f64], false, 0);
                }
                d
            },
            3,
            2,
        );
        assert!(all_neg.to_rules().is_empty(), "all-negative root lowers to no rules");
    }

    #[test]
    fn next_up_down_are_exact_inverses_on_normals() {
        for v in [0.0, -0.0, 1.0, -1.0, 0.1, 1e300, -1e-300, f64::MIN_POSITIVE] {
            assert!(next_down(v) < v, "{v}");
            assert!(next_up(v) > v, "{v}");
            assert_eq!(next_up(next_down(v)), v);
            assert_eq!(next_down(next_up(v)), v);
        }
        assert_eq!(next_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
        assert!(next_up(f64::NAN).is_nan());
        assert!(next_down(f64::NAN).is_nan());
    }

    #[test]
    fn classifier_names() {
        let d = linear_dataset();
        assert_eq!(MajorityLearner::fit(&d).name(), "majority");
        assert_eq!(DecisionStump::fit(&d).name(), "stump");
        assert_eq!(OneR::fit(&d, 4).name(), "one-r");
        assert_eq!(ShallowTree::fit(&d, 2, 2).name(), "tree");
    }
}
