//! Baseline learners for comparison with RIPPER.
//!
//! The paper motivates rule induction over heavier methods (§2.3, §5);
//! these baselines quantify that choice in the `learners` extension
//! experiment: a majority-class guesser, a single decision stump, 1R
//! (best single-attribute threshold), and a small depth-limited decision
//! tree (the method of Calder et al. and Monsifrot et al. in §5).

use crate::data::Dataset;
use crate::rule::RuleSet;

/// Anything that classifies a numeric feature vector.
pub trait Classifier {
    /// Predicts the positive class for `values`.
    fn predict(&self, values: &[f64]) -> bool;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

impl Classifier for RuleSet {
    fn predict(&self, values: &[f64]) -> bool {
        RuleSet::predict(self, values)
    }

    fn name(&self) -> &'static str {
        "ripper"
    }
}

/// Always predicts the majority class of the training data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorityLearner {
    positive: bool,
}

impl MajorityLearner {
    /// Fits the majority class.
    pub fn fit(data: &Dataset) -> MajorityLearner {
        MajorityLearner { positive: data.positives() * 2 > data.len() }
    }

    /// The class this model always predicts.
    pub fn majority(&self) -> bool {
        self.positive
    }
}

impl Classifier for MajorityLearner {
    fn predict(&self, _values: &[f64]) -> bool {
        self.positive
    }

    fn name(&self) -> &'static str {
        "majority"
    }
}

/// A single threshold test on a single attribute, chosen to minimize
/// training error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionStump {
    attr: usize,
    threshold: f64,
    /// Predicted class when `value >= threshold`.
    ge_positive: bool,
}

impl DecisionStump {
    /// Fits the best stump by exhaustive threshold search.
    pub fn fit(data: &Dataset) -> DecisionStump {
        let mut best =
            DecisionStump { attr: 0, threshold: f64::NEG_INFINITY, ge_positive: data.positives() * 2 > data.len() };
        let mut best_err = usize::MAX;
        for attr in 0..data.attr_count() {
            let mut col: Vec<(f64, bool)> = data.instances().iter().map(|i| (i.values[attr], i.positive)).collect();
            col.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let total_pos = col.iter().filter(|e| e.1).count();
            let total = col.len();
            // For threshold = v (a data value), `>= v` covers the suffix.
            let mut pos_before = 0usize;
            let mut before = 0usize;
            let mut j = 0;
            while j < col.len() {
                let v = col[j].0;
                // Evaluate threshold at the start of this run.
                let pos_suffix = total_pos - pos_before;
                let suffix = total - before;
                // Variant 1: ge_positive=true — errors: negatives in suffix + positives in prefix.
                let err_true = (suffix - pos_suffix) + pos_before;
                // Variant 2: ge_positive=false — complement.
                let err_false = pos_suffix + (before - pos_before);
                for (err, gep) in [(err_true, true), (err_false, false)] {
                    if err < best_err {
                        best_err = err;
                        best = DecisionStump { attr, threshold: v, ge_positive: gep };
                    }
                }
                while j < col.len() && col[j].0 == v {
                    if col[j].1 {
                        pos_before += 1;
                    }
                    before += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// The attribute tested.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// The threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Classifier for DecisionStump {
    fn predict(&self, values: &[f64]) -> bool {
        if values[self.attr] >= self.threshold {
            self.ge_positive
        } else {
            !self.ge_positive
        }
    }

    fn name(&self) -> &'static str {
        "stump"
    }
}

/// 1R (Holte 1993): discretize each attribute into up-to-`bins` intervals,
/// pick the single attribute whose interval-majority predictions have the
/// lowest training error.
#[derive(Debug, Clone, PartialEq)]
pub struct OneR {
    attr: usize,
    /// Sorted interval upper bounds; `predictions[k]` applies to values
    /// `<= bounds[k]` (last interval is unbounded).
    bounds: Vec<f64>,
    predictions: Vec<bool>,
}

impl OneR {
    /// Fits 1R with the given number of equal-frequency bins per attribute.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `data` is empty.
    pub fn fit(data: &Dataset, bins: usize) -> OneR {
        assert!(bins >= 1, "need at least one bin");
        assert!(!data.is_empty(), "cannot fit 1R on an empty dataset");
        let mut best: Option<(usize, OneR)> = None;
        for attr in 0..data.attr_count() {
            let mut col: Vec<(f64, bool)> = data.instances().iter().map(|i| (i.values[attr], i.positive)).collect();
            col.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let per = (col.len() / bins).max(1);
            let mut bounds = Vec::new();
            let mut predictions = Vec::new();
            let mut errors = 0usize;
            let mut k = 0;
            while k < col.len() {
                let mut end = (k + per).min(col.len());
                // Extend so equal values stay in one interval.
                while end < col.len() && col[end].0 == col[end - 1].0 {
                    end += 1;
                }
                let pos = col[k..end].iter().filter(|e| e.1).count();
                let neg = end - k - pos;
                predictions.push(pos >= neg);
                errors += pos.min(neg);
                if end < col.len() {
                    bounds.push(col[end - 1].0);
                }
                k = end;
            }
            let model = OneR { attr, bounds, predictions };
            if best.as_ref().is_none_or(|(e, _)| errors < *e) {
                best = Some((errors, model));
            }
        }
        best.expect("non-empty dataset").1
    }

    /// The attribute this model tests.
    pub fn attr(&self) -> usize {
        self.attr
    }
}

impl Classifier for OneR {
    fn predict(&self, values: &[f64]) -> bool {
        let v = values[self.attr];
        let k = self.bounds.iter().take_while(|&&b| v > b).count();
        self.predictions[k.min(self.predictions.len() - 1)]
    }

    fn name(&self) -> &'static str {
        "one-r"
    }
}

/// A small entropy-based decision tree with a depth limit and a minimum
/// leaf size.
#[derive(Debug, Clone, PartialEq)]
pub struct ShallowTree {
    root: Node,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf(bool),
    Split { attr: usize, threshold: f64, le: Box<Node>, gt: Box<Node> },
}

impl ShallowTree {
    /// Fits a tree of at most `max_depth` splits, never splitting nodes
    /// with fewer than `min_leaf` instances.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset, max_depth: usize, min_leaf: usize) -> ShallowTree {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let idx: Vec<u32> = (0..data.len() as u32).collect();
        ShallowTree { root: build(data, &idx, max_depth, min_leaf.max(1)) }
    }

    /// Number of leaves (model size).
    pub fn leaves(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Split { le, gt, .. } => walk(le) + walk(gt),
            }
        }
        walk(&self.root)
    }
}

fn entropy(p: usize, n: usize) -> f64 {
    let t = p + n;
    if t == 0 || p == 0 || n == 0 {
        return 0.0;
    }
    let fp = p as f64 / t as f64;
    let fn_ = n as f64 / t as f64;
    -(fp * fp.log2() + fn_ * fn_.log2())
}

fn build(data: &Dataset, idx: &[u32], depth: usize, min_leaf: usize) -> Node {
    let pos = idx.iter().filter(|&&i| data.instances()[i as usize].positive).count();
    let neg = idx.len() - pos;
    if depth == 0 || idx.len() < 2 * min_leaf || pos == 0 || neg == 0 {
        return Node::Leaf(pos >= neg);
    }
    let parent_h = entropy(pos, neg);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, attr, threshold)
    for attr in 0..data.attr_count() {
        let mut col: Vec<(f64, bool)> = idx
            .iter()
            .map(|&i| (data.instances()[i as usize].values[attr], data.instances()[i as usize].positive))
            .collect();
        col.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut p_le = 0usize;
        let mut c_le = 0usize;
        let mut j = 0;
        while j < col.len() {
            let v = col[j].0;
            while j < col.len() && col[j].0 == v {
                if col[j].1 {
                    p_le += 1;
                }
                c_le += 1;
                j += 1;
            }
            if c_le < min_leaf || idx.len() - c_le < min_leaf {
                continue;
            }
            let n_le = c_le - p_le;
            let p_gt = pos - p_le;
            let n_gt = neg - n_le;
            let w_le = c_le as f64 / idx.len() as f64;
            let gain = parent_h - w_le * entropy(p_le, n_le) - (1.0 - w_le) * entropy(p_gt, n_gt);
            if best.as_ref().is_none_or(|(g, _, _)| gain > *g) {
                best = Some((gain, attr, v));
            }
        }
    }
    match best {
        Some((gain, attr, threshold)) if gain > 1e-9 => {
            let (le, gt): (Vec<u32>, Vec<u32>) =
                idx.iter().partition(|&&i| data.instances()[i as usize].values[attr] <= threshold);
            Node::Split {
                attr,
                threshold,
                le: Box::new(build(data, &le, depth - 1, min_leaf)),
                gt: Box::new(build(data, &gt, depth - 1, min_leaf)),
            }
        }
        _ => Node::Leaf(pos >= neg),
    }
}

impl Classifier for ShallowTree {
    fn predict(&self, values: &[f64]) -> bool {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(c) => return *c,
                Node::Split { attr, threshold, le, gt } => {
                    node = if values[*attr] <= *threshold { le } else { gt };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "junk".into()], "LS", "NS");
        for i in 0..100 {
            let x = i as f64 / 100.0;
            d.push(vec![x, 0.5], x >= 0.4, 0);
        }
        d
    }

    #[test]
    fn majority_predicts_bigger_class() {
        let d = linear_dataset(); // 60 positives
        let m = MajorityLearner::fit(&d);
        assert!(m.majority());
        assert!(m.predict(&[0.0, 0.0]));
    }

    #[test]
    fn stump_finds_the_threshold() {
        let d = linear_dataset();
        let s = DecisionStump::fit(&d);
        assert_eq!(s.attr(), 0);
        assert!(s.predict(&[0.9, 0.5]));
        assert!(!s.predict(&[0.1, 0.5]));
    }

    #[test]
    fn stump_handles_inverted_classes() {
        let mut d = Dataset::new(vec!["x".into()], "LS", "NS");
        for i in 0..50 {
            let x = i as f64;
            d.push(vec![x], x < 25.0, 0);
        }
        let s = DecisionStump::fit(&d);
        assert!(s.predict(&[1.0]));
        assert!(!s.predict(&[40.0]));
    }

    #[test]
    fn one_r_matches_simple_rule() {
        let d = linear_dataset();
        let m = OneR::fit(&d, 10);
        assert_eq!(m.attr(), 0);
        assert!(m.predict(&[0.95, 0.5]));
        assert!(!m.predict(&[0.05, 0.5]));
    }

    #[test]
    fn tree_learns_conjunctive_structure() {
        // positives where x >= .5 && y >= .5: needs depth 2.
        let mut d = Dataset::new(vec!["x".into(), "y".into()], "LS", "NS");
        for i in 0..20 {
            for j in 0..20 {
                let (x, y) = (i as f64 / 20.0, j as f64 / 20.0);
                d.push(vec![x, y], x >= 0.5 && y >= 0.5, 0);
            }
        }
        let t = ShallowTree::fit(&d, 3, 5);
        assert!(t.predict(&[0.9, 0.9]));
        assert!(!t.predict(&[0.9, 0.1]));
        assert!(!t.predict(&[0.1, 0.9]));
        assert!(!t.predict(&[0.1, 0.1]));
        assert!(t.leaves() >= 3);
    }

    #[test]
    fn tree_respects_depth_limit() {
        let d = linear_dataset();
        let t = ShallowTree::fit(&d, 1, 1);
        assert!(t.leaves() <= 2);
    }

    #[test]
    fn classifier_names() {
        let d = linear_dataset();
        assert_eq!(MajorityLearner::fit(&d).name(), "majority");
        assert_eq!(DecisionStump::fit(&d).name(), "stump");
        assert_eq!(OneR::fit(&d, 4).name(), "one-r");
        assert_eq!(ShallowTree::fit(&d, 2, 2).name(), "tree");
    }
}
