//! Property-based tests for the RIPPER implementation and baselines.

use proptest::prelude::*;
use wts_ripper::{
    geometric_mean, Classifier, ConfusionMatrix, Dataset, DecisionStump, MajorityLearner, RipperConfig, Rule,
    ShallowTree,
};

/// A dataset whose label is a threshold on attribute 0, with optional
/// label noise and a junk attribute.
fn arb_threshold_dataset() -> impl Strategy<Value = (Dataset, f64)> {
    (50usize..200, 0.2f64..0.8, 0u8..10, 0u64..1000).prop_map(|(n, cut, noise_pct, seed)| {
        let mut d = Dataset::new(vec!["x".into(), "junk".into()], "LS", "NS");
        let mut s = seed.wrapping_add(1);
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) % 10_000) as f64 / 10_000.0
        };
        for i in 0..n {
            let x = next();
            let junk = next();
            let mut y = x >= cut;
            if noise_pct > 0 && i % 100 < noise_pct as usize {
                y = !y;
            }
            d.push(vec![x, junk], y, u32::try_from(i % 3).expect("a residue mod 3 fits u32"));
        }
        (d, cut)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ripper_never_panics_and_always_classifies((data, _cut) in arb_threshold_dataset()) {
        let model = RipperConfig::default().fit(&data);
        for inst in data.instances() {
            let _ = model.predict(&inst.values);
        }
        // Model size is sane: no more rules than instances.
        prop_assert!(model.len() <= data.len());
    }

    #[test]
    fn ripper_beats_or_matches_majority((data, _cut) in arb_threshold_dataset()) {
        prop_assume!(data.positives() > 5 && data.negatives() > 5);
        let ripper = RipperConfig::default().fit(&data);
        let majority = MajorityLearner::fit(&data);
        let em = ConfusionMatrix::evaluate(&ripper, &data).error_percent();
        let mm = {
            let mut m = ConfusionMatrix::default();
            for i in data.instances() {
                m.record(i.positive, majority.predict(&i.values));
            }
            m.error_percent()
        };
        prop_assert!(em <= mm + 1.0, "ripper {em}% much worse than majority {mm}%");
    }

    #[test]
    fn ripper_training_error_tracks_noise_floor((data, _cut) in arb_threshold_dataset()) {
        prop_assume!(data.positives() > 10 && data.negatives() > 10);
        let model = RipperConfig::default().fit(&data);
        let err = ConfusionMatrix::evaluate(&model, &data).error_percent();
        // Noise is at most 10%; a correct learner stays within a modest
        // multiple of it on training data.
        prop_assert!(err <= 25.0, "training error {err}% too high for <=10% label noise");
    }

    #[test]
    fn stump_finds_signal_attribute((data, cut) in arb_threshold_dataset()) {
        prop_assume!(data.positives() > 10 && data.negatives() > 10);
        let stump = DecisionStump::fit(&data);
        prop_assert_eq!(stump.attr(), 0, "stump picked the junk attribute");
        // Its threshold lands near the true cut.
        prop_assert!((stump.threshold() - cut).abs() < 0.25,
            "threshold {} vs true cut {cut}", stump.threshold());
    }

    #[test]
    fn stump_lowering_is_bit_identical_to_predict((data, _cut) in arb_threshold_dataset(),
                                                  probes in prop::collection::vec((0u32..10_001, 0u32..10_001), 1..40)) {
        let stump = DecisionStump::fit(&data);
        let rules = stump.to_rules();
        let fires = |v: &[f64]| rules.iter().any(|r: &Rule| r.matches(v));
        // Training points (includes every candidate threshold) plus a
        // probe grid straddling the boundary.
        for inst in data.instances() {
            prop_assert_eq!(fires(&inst.values), stump.predict(&inst.values));
        }
        for (a, b) in probes {
            let v = [a as f64 / 10_000.0, b as f64 / 10_000.0];
            prop_assert_eq!(fires(&v), stump.predict(&v), "at {:?}", v);
        }
    }

    #[test]
    fn tree_lowering_is_bit_identical_to_predict((data, _cut) in arb_threshold_dataset(),
                                                 depth in 1usize..5,
                                                 probes in prop::collection::vec((0u32..10_001, 0u32..10_001), 1..40)) {
        let tree = ShallowTree::fit(&data, depth, 4);
        let rules = tree.to_rules();
        let fires = |v: &[f64]| rules.iter().any(|r: &Rule| r.matches(v));
        for inst in data.instances() {
            prop_assert_eq!(fires(&inst.values), tree.predict(&inst.values));
        }
        for (a, b) in probes {
            let v = [a as f64 / 10_000.0, b as f64 / 10_000.0];
            prop_assert_eq!(fires(&v), tree.predict(&v), "at {:?}", v);
        }
    }

    #[test]
    fn rules_fire_consistently_with_prediction((data, _cut) in arb_threshold_dataset()) {
        let model = RipperConfig::default().fit(&data);
        for inst in data.instances().iter().take(50) {
            let fired = model.firing_rule(&inst.values);
            prop_assert_eq!(fired.is_some(), model.predict(&inst.values));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn geometric_mean_bounds(values in prop::collection::vec(0.0f64..1000.0, 1..20)) {
        let g = geometric_mean(&values);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(g <= max + 1e-9);
        prop_assert!(g >= 0.0);
    }

    #[test]
    fn confusion_matrix_totals(actuals in prop::collection::vec(prop::bool::ANY, 0..100),
                               preds in prop::collection::vec(prop::bool::ANY, 0..100)) {
        let n = actuals.len().min(preds.len());
        let mut m = ConfusionMatrix::default();
        for i in 0..n {
            m.record(actuals[i], preds[i]);
        }
        prop_assert_eq!(m.total(), n);
        prop_assert_eq!(m.predicted_positive() + m.predicted_negative(), n);
        prop_assert!(m.error_percent() <= 100.0);
        prop_assert!((m.accuracy() * 100.0 + m.error_percent() - 100.0).abs() < 1e-9);
    }
}
