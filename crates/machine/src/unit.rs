//! Concrete functional units and unit sets.

use std::fmt;

/// A concrete functional unit of the modelled processor.
///
/// The PowerPC 7410 has two *dissimilar* integer units: [`Iu1`] executes
/// only simple ALU operations while [`Iu2`] additionally handles multiply
/// and divide.
///
/// [`Iu1`]: FunctionalUnit::Iu1
/// [`Iu2`]: FunctionalUnit::Iu2
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FunctionalUnit {
    /// First integer unit (simple ops only).
    Iu1,
    /// Second integer unit (simple + multiply/divide).
    Iu2,
    /// Floating-point unit.
    Fpu,
    /// Branch unit.
    Bru,
    /// Load/store unit.
    Lsu,
    /// System unit.
    Su,
}

impl FunctionalUnit {
    /// All units, in a fixed order matching [`FunctionalUnit::index`].
    pub const ALL: [FunctionalUnit; 6] = [
        FunctionalUnit::Iu1,
        FunctionalUnit::Iu2,
        FunctionalUnit::Fpu,
        FunctionalUnit::Bru,
        FunctionalUnit::Lsu,
        FunctionalUnit::Su,
    ];

    /// Number of distinct units.
    pub const COUNT: usize = 6;

    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FunctionalUnit::Iu1 => "IU1",
            FunctionalUnit::Iu2 => "IU2",
            FunctionalUnit::Fpu => "FPU",
            FunctionalUnit::Bru => "BRU",
            FunctionalUnit::Lsu => "LSU",
            FunctionalUnit::Su => "SU",
        }
    }
}

impl fmt::Display for FunctionalUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of [`FunctionalUnit`]s, stored as a bitmask.
///
/// # Examples
///
/// ```
/// use wts_machine::{FunctionalUnit, UnitSet};
/// let ints = UnitSet::of(&[FunctionalUnit::Iu1, FunctionalUnit::Iu2]);
/// assert!(ints.contains(FunctionalUnit::Iu1));
/// assert_eq!(ints.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UnitSet(u8);

impl UnitSet {
    /// The empty set.
    pub fn new() -> UnitSet {
        UnitSet(0)
    }

    /// A set with the given members.
    pub fn of(units: &[FunctionalUnit]) -> UnitSet {
        let mut s = UnitSet::new();
        for &u in units {
            s.insert(u);
        }
        s
    }

    /// Adds a unit.
    pub fn insert(&mut self, u: FunctionalUnit) {
        self.0 |= 1 << u.index();
    }

    /// Membership test.
    pub fn contains(self, u: FunctionalUnit) -> bool {
        self.0 & (1 << u.index()) != 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over members in index order.
    pub fn iter(self) -> impl Iterator<Item = FunctionalUnit> {
        FunctionalUnit::ALL.into_iter().filter(move |u| self.contains(*u))
    }
}

impl FromIterator<FunctionalUnit> for UnitSet {
    fn from_iter<I: IntoIterator<Item = FunctionalUnit>>(iter: I) -> UnitSet {
        let mut s = UnitSet::new();
        for u in iter {
            s.insert(u);
        }
        s
    }
}

impl fmt::Display for UnitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, u) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{u}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense() {
        for (i, &u) in FunctionalUnit::ALL.iter().enumerate() {
            assert_eq!(u.index(), i);
        }
        assert_eq!(FunctionalUnit::COUNT, FunctionalUnit::ALL.len());
    }

    #[test]
    fn set_operations() {
        let mut s = UnitSet::new();
        assert!(s.is_empty());
        s.insert(FunctionalUnit::Fpu);
        s.insert(FunctionalUnit::Fpu);
        assert_eq!(s.len(), 1);
        assert!(s.contains(FunctionalUnit::Fpu));
        assert!(!s.contains(FunctionalUnit::Bru));
    }

    #[test]
    fn iteration_in_index_order() {
        let s = UnitSet::of(&[FunctionalUnit::Su, FunctionalUnit::Iu1]);
        let v: Vec<FunctionalUnit> = s.iter().collect();
        assert_eq!(v, vec![FunctionalUnit::Iu1, FunctionalUnit::Su]);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(UnitSet::new().to_string(), "{}");
        assert_eq!(UnitSet::of(&[FunctionalUnit::Iu2]).to_string(), "{IU2}");
    }
}
