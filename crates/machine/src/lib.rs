//! Machine models for the `schedfilter` system.
//!
//! Two simulators share one [`MachineConfig`] description of the target:
//!
//! * [`CostModel`] — the paper's *simplified machine simulator*: a cheap,
//!   deterministic, strictly in-order estimator of a block's cycle count
//!   for a given instruction order. It is used by the list scheduler to
//!   make decisions and by the labeling pipeline to decide whether
//!   scheduling helped. Its job is *relative* timing of two orders of the
//!   same block, not absolute accuracy (paper §2.2).
//! * [`PipelineSim`] — a more detailed simulator with a small out-of-order
//!   window, standing in for the real PowerPC 7410 the paper measures on.
//!   Application running time figures are computed against this model, so
//!   the gap between predicted (CostModel) and "measured" (PipelineSim)
//!   improvements mirrors the paper's predicted-vs-measured gap.
//!
//! Both implement [`CostProvider`], the one interface the trace/label/
//! evaluate pipeline consumes; [`EstimatorKind`] names a provider in
//! configuration without borrowing a machine.
//!
//! The default target is [`MachineConfig::ppc7410`]: two dissimilar integer
//! units, one each of float / branch / load-store / system, and an issue
//! limit of two non-branch instructions plus one branch per cycle. It is
//! one entry in the named machine [`registry`](mod@crate::registry), which
//! spans the dynamism spectrum from a single-issue embedded core with
//! slow memory to a 4-issue deep-window superscalar; new targets are a
//! [`MachineBuilder`] plus a registry row (see the module docs of
//! [`registry`](mod@crate::registry)).
//!
//! # Examples
//!
//! ```
//! use wts_ir::{BasicBlock, Inst, MemRef, MemSpace, Opcode, Reg};
//! use wts_machine::{CostModel, MachineConfig};
//!
//! let mut b = BasicBlock::new(0);
//! b.push(Inst::new(Opcode::Lfd).def(Reg::fpr(1)).use_(Reg::gpr(1))
//!     .mem(MemRef::slot(MemSpace::Heap, 0)));
//! b.push(Inst::new(Opcode::Fadd).def(Reg::fpr(2)).use_(Reg::fpr(1)).use_(Reg::fpr(1)));
//!
//! let m = MachineConfig::ppc7410();
//! let cost = CostModel::new(&m).block_cycles(&b);
//! assert!(cost >= 2);
//! ```

mod config;
mod cost;
mod latency;
mod pipeline;
mod provider;
pub mod registry;
mod unit;

pub use config::{MachineBuilder, MachineConfig};
pub use cost::{CostModel, IssueState};
pub use latency::LatencyTable;
pub use pipeline::PipelineSim;
pub use provider::{CostProvider, EstimatorKind};
pub use registry::{registry, registry_names, REGISTRY};
pub use unit::{FunctionalUnit, UnitSet};
