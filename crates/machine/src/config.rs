//! Whole-machine descriptions.

use crate::{FunctionalUnit, LatencyTable, UnitSet};
use wts_ir::UnitClass;

/// A description of the modelled processor: functional units, issue rules,
/// latencies and the out-of-order window used by [`PipelineSim`].
///
/// [`PipelineSim`]: crate::PipelineSim
///
/// # Examples
///
/// ```
/// use wts_machine::MachineConfig;
/// let m = MachineConfig::ppc7410();
/// assert_eq!(m.issue_width(), 2);
/// assert_eq!(m.branch_width(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    name: String,
    issue_width: u32,
    branch_width: u32,
    window: usize,
    latencies: LatencyTable,
    unit_map: [UnitSet; 6],
}

impl MachineConfig {
    /// Builds a machine from parts.
    ///
    /// `issue_width` bounds non-branch issues per cycle; `branch_width`
    /// bounds branch issues per cycle; `window` is the out-of-order window
    /// depth of the detailed simulator (1 = fully in-order).
    ///
    /// # Panics
    ///
    /// Panics if any width or the window is zero, or if some [`UnitClass`]
    /// has no unit to execute on.
    pub fn new(
        name: impl Into<String>,
        issue_width: u32,
        branch_width: u32,
        window: usize,
        latencies: LatencyTable,
        unit_map: [(UnitClass, UnitSet); 6],
    ) -> MachineConfig {
        assert!(issue_width >= 1, "issue width must be positive");
        assert!(branch_width >= 1, "branch width must be positive");
        assert!(window >= 1, "window must be positive");
        let mut map = [UnitSet::new(); 6];
        for (class, set) in unit_map {
            assert!(!set.is_empty(), "unit class {class} has no units");
            map[class_index(class)] = set;
        }
        for class in UnitClass::ALL {
            assert!(!map[class_index(class)].is_empty(), "unit class {class} not mapped");
        }
        MachineConfig { name: name.into(), issue_width, branch_width, window, latencies, unit_map: map }
    }

    /// Starts a [`MachineBuilder`] with single-issue in-order defaults,
    /// 7410 latencies and the conventional one-unit-per-class mapping.
    pub fn builder(name: impl Into<String>) -> MachineBuilder {
        MachineBuilder::new(name)
    }

    /// The PowerPC 7410 model used in the paper's experiments: two
    /// dissimilar integer units, one each of FPU/BRU/LSU/SU, two non-branch
    /// plus one branch issue per cycle, and a small out-of-order window.
    pub fn ppc7410() -> MachineConfig {
        use FunctionalUnit::*;
        MachineConfig::builder("ppc7410")
            .issue_width(2)
            .window(8)
            .units(UnitClass::SimpleInt, &[Iu1, Iu2])
            .units(UnitClass::ComplexInt, &[Iu2])
            .build()
    }

    /// A single-issue, fully in-order machine (ablation: "older processors
    /// with less dynamic scheduling", paper §3.1). Scheduling matters more
    /// here because the hardware recovers nothing.
    pub fn simple_scalar() -> MachineConfig {
        MachineConfig::builder("simple-scalar").build()
    }

    /// Like the 7410 but with doubled floating-point latencies (ablation:
    /// an FP-weak core where scheduling FP code pays off even more).
    /// Derived from [`ppc7410`](MachineConfig::ppc7410) rather than
    /// restated, so the two can never silently diverge in shape.
    pub fn deep_fp() -> MachineConfig {
        let mut m = MachineConfig::ppc7410();
        m.name = "deep-fp".into();
        m.latencies = m.latencies.with_scaled_float(2);
        m
    }

    /// A wide 4-issue superscalar: both integer units take complex ops,
    /// two branches per cycle, a deep out-of-order window and the fast
    /// [`LatencyTable::wide4`] cache. The hardware recovers most stalls
    /// itself, so induced filters should learn to schedule *less* here.
    pub fn wide4() -> MachineConfig {
        use FunctionalUnit::*;
        MachineConfig::builder("wide4")
            .issue_width(4)
            .branch_width(2)
            .window(32)
            .units(UnitClass::SimpleInt, &[Iu1, Iu2])
            .units(UnitClass::ComplexInt, &[Iu1, Iu2])
            .latencies(LatencyTable::wide4())
            .build()
    }

    /// A single-issue embedded core with the long-memory-latency
    /// [`LatencyTable::embedded`] profile and no dynamic scheduling at
    /// all. The opposite end of the spectrum from [`wide4`]: almost every
    /// block with a load benefits from static scheduling.
    ///
    /// [`wide4`]: MachineConfig::wide4
    pub fn embedded() -> MachineConfig {
        MachineConfig::builder("embedded").latencies(LatencyTable::embedded()).build()
    }

    /// A deep-pipeline, high-branch-cost profile
    /// ([`LatencyTable::deep_pipe`]): dual-issue with a modest window,
    /// where control transfers dominate block cost and the win from
    /// scheduling concentrates in branch-light blocks.
    pub fn deep_pipe() -> MachineConfig {
        use FunctionalUnit::*;
        MachineConfig::builder("deep-pipe")
            .issue_width(2)
            .window(16)
            .units(UnitClass::SimpleInt, &[Iu1, Iu2])
            .units(UnitClass::ComplexInt, &[Iu2])
            .latencies(LatencyTable::deep_pipe())
            .build()
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum non-branch instructions issued per cycle.
    pub fn issue_width(&self) -> u32 {
        self.issue_width
    }

    /// Maximum branch-unit instructions issued per cycle.
    pub fn branch_width(&self) -> u32 {
        self.branch_width
    }

    /// Out-of-order window depth used by the detailed simulator.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The latency table.
    pub fn latencies(&self) -> &LatencyTable {
        &self.latencies
    }

    /// Units able to execute the given class.
    pub fn units_for(&self, class: UnitClass) -> UnitSet {
        self.unit_map[class_index(class)]
    }

    /// Convenience: latency of an opcode on this machine.
    pub fn latency(&self, op: wts_ir::Opcode) -> u32 {
        self.latencies.latency(op)
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::ppc7410()
    }
}

/// Step-by-step construction of a [`MachineConfig`].
///
/// The builder starts from a conservative baseline — single-issue,
/// fully in-order, [`LatencyTable::ppc7410`] latencies, one unit per
/// class (both integer classes on IU1) — and every named machine in the
/// [registry](mod@crate::registry) is a handful of overrides on top of it,
/// which is also how downstream users add their own targets.
///
/// # Examples
///
/// ```
/// use wts_ir::UnitClass;
/// use wts_machine::{FunctionalUnit, MachineConfig};
///
/// let m = MachineConfig::builder("my-core")
///     .issue_width(2)
///     .window(4)
///     .units(UnitClass::SimpleInt, &[FunctionalUnit::Iu1, FunctionalUnit::Iu2])
///     .build();
/// assert_eq!(m.name(), "my-core");
/// assert_eq!(m.issue_width(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    name: String,
    issue_width: u32,
    branch_width: u32,
    window: usize,
    latencies: LatencyTable,
    unit_map: [UnitSet; 6],
}

impl MachineBuilder {
    /// A builder with the conservative single-issue baseline.
    pub fn new(name: impl Into<String>) -> MachineBuilder {
        use FunctionalUnit::*;
        let mut unit_map = [UnitSet::new(); 6];
        for (class, set) in [
            (UnitClass::SimpleInt, UnitSet::of(&[Iu1])),
            (UnitClass::ComplexInt, UnitSet::of(&[Iu1])),
            (UnitClass::Float, UnitSet::of(&[Fpu])),
            (UnitClass::Branch, UnitSet::of(&[Bru])),
            (UnitClass::LoadStore, UnitSet::of(&[Lsu])),
            (UnitClass::System, UnitSet::of(&[Su])),
        ] {
            unit_map[class_index(class)] = set;
        }
        MachineBuilder {
            name: name.into(),
            issue_width: 1,
            branch_width: 1,
            window: 1,
            latencies: LatencyTable::ppc7410(),
            unit_map,
        }
    }

    /// Maximum non-branch issues per cycle.
    pub fn issue_width(mut self, width: u32) -> MachineBuilder {
        self.issue_width = width;
        self
    }

    /// Maximum branch issues per cycle.
    pub fn branch_width(mut self, width: u32) -> MachineBuilder {
        self.branch_width = width;
        self
    }

    /// Out-of-order window depth of the detailed simulator (1 = in-order).
    pub fn window(mut self, window: usize) -> MachineBuilder {
        self.window = window;
        self
    }

    /// Replaces the whole latency table.
    pub fn latencies(mut self, table: LatencyTable) -> MachineBuilder {
        self.latencies = table;
        self
    }

    /// Overrides a single opcode's latency on the current table.
    pub fn latency(mut self, op: wts_ir::Opcode, cycles: u32) -> MachineBuilder {
        self.latencies.set(op, cycles);
        self
    }

    /// Maps a unit class onto an explicit unit set.
    pub fn units(mut self, class: UnitClass, units: &[FunctionalUnit]) -> MachineBuilder {
        self.unit_map[class_index(class)] = UnitSet::of(units);
        self
    }

    /// Validates and builds the machine.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`MachineConfig::new`]: zero
    /// widths or window, or a unit class left with no units.
    pub fn build(self) -> MachineConfig {
        let unit_map = [
            (UnitClass::SimpleInt, self.unit_map[class_index(UnitClass::SimpleInt)]),
            (UnitClass::ComplexInt, self.unit_map[class_index(UnitClass::ComplexInt)]),
            (UnitClass::Float, self.unit_map[class_index(UnitClass::Float)]),
            (UnitClass::Branch, self.unit_map[class_index(UnitClass::Branch)]),
            (UnitClass::LoadStore, self.unit_map[class_index(UnitClass::LoadStore)]),
            (UnitClass::System, self.unit_map[class_index(UnitClass::System)]),
        ];
        MachineConfig::new(self.name, self.issue_width, self.branch_width, self.window, self.latencies, unit_map)
    }
}

fn class_index(c: UnitClass) -> usize {
    match c {
        UnitClass::SimpleInt => 0,
        UnitClass::ComplexInt => 1,
        UnitClass::Float => 2,
        UnitClass::Branch => 3,
        UnitClass::LoadStore => 4,
        UnitClass::System => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::Opcode;

    #[test]
    fn ppc7410_shape() {
        let m = MachineConfig::ppc7410();
        assert_eq!(m.name(), "ppc7410");
        assert_eq!(m.units_for(UnitClass::SimpleInt).len(), 2, "dissimilar integer units");
        assert_eq!(m.units_for(UnitClass::ComplexInt).len(), 1);
        assert!(m.units_for(UnitClass::SimpleInt).contains(FunctionalUnit::Iu2));
        assert_eq!(m.units_for(UnitClass::Float).len(), 1);
        assert!(m.window() > 1);
    }

    #[test]
    fn simple_scalar_is_narrow() {
        let m = MachineConfig::simple_scalar();
        assert_eq!(m.issue_width(), 1);
        assert_eq!(m.window(), 1);
        assert_eq!(m.units_for(UnitClass::ComplexInt).len(), 1);
    }

    #[test]
    fn deep_fp_doubles_float_latency() {
        let base = MachineConfig::ppc7410();
        let deep = MachineConfig::deep_fp();
        assert_eq!(deep.latency(Opcode::Fadd), 2 * base.latency(Opcode::Fadd));
        assert_eq!(deep.latency(Opcode::Add), base.latency(Opcode::Add));
        assert_eq!(deep.name(), "deep-fp");
    }

    #[test]
    fn every_class_has_units() {
        let m = MachineConfig::ppc7410();
        for class in UnitClass::ALL {
            assert!(!m.units_for(class).is_empty(), "{class} unmapped");
        }
    }

    #[test]
    fn default_is_ppc7410() {
        assert_eq!(MachineConfig::default(), MachineConfig::ppc7410());
    }

    #[test]
    fn builder_defaults_are_the_conservative_baseline() {
        let m = MachineConfig::builder("base").build();
        assert_eq!(m.name(), "base");
        assert_eq!(m.issue_width(), 1);
        assert_eq!(m.branch_width(), 1);
        assert_eq!(m.window(), 1);
        assert_eq!(m.latencies(), &LatencyTable::ppc7410());
        for class in UnitClass::ALL {
            assert_eq!(m.units_for(class).len(), 1, "{class} defaults to one unit");
        }
        assert_eq!(m, MachineConfig::builder("base").build(), "builder is deterministic");
    }

    #[test]
    fn builder_overrides_apply() {
        let m = MachineConfig::builder("tweaked")
            .issue_width(3)
            .branch_width(2)
            .window(12)
            .latency(Opcode::Lwz, 9)
            .units(UnitClass::Float, &[FunctionalUnit::Fpu, FunctionalUnit::Su])
            .build();
        assert_eq!(m.issue_width(), 3);
        assert_eq!(m.branch_width(), 2);
        assert_eq!(m.window(), 12);
        assert_eq!(m.latency(Opcode::Lwz), 9);
        assert_eq!(m.units_for(UnitClass::Float).len(), 2);
    }

    #[test]
    #[should_panic(expected = "no units")]
    fn builder_rejects_empty_unit_class() {
        MachineConfig::builder("broken").units(UnitClass::Float, &[]).build();
    }

    #[test]
    fn wide4_is_wide_and_fast() {
        let m = MachineConfig::wide4();
        assert_eq!(m.issue_width(), 4);
        assert_eq!(m.branch_width(), 2);
        assert!(m.window() > MachineConfig::ppc7410().window());
        assert_eq!(m.units_for(UnitClass::ComplexInt).len(), 2, "both integer units take complex ops");
        assert!(m.latency(Opcode::Lwz) < MachineConfig::ppc7410().latency(Opcode::Lwz));
    }

    #[test]
    fn embedded_is_narrow_with_slow_memory() {
        let m = MachineConfig::embedded();
        assert_eq!(m.issue_width(), 1);
        assert_eq!(m.window(), 1, "no dynamic scheduling at all");
        assert!(m.latency(Opcode::Lwz) >= 8, "long memory latency is the point");
    }

    #[test]
    fn deep_pipe_pays_for_branches() {
        let m = MachineConfig::deep_pipe();
        assert_eq!(m.issue_width(), 2);
        assert!(m.latency(Opcode::Bc) > MachineConfig::ppc7410().latency(Opcode::Bc));
        assert!(m.latency(Opcode::Bl) > MachineConfig::ppc7410().latency(Opcode::Bl));
    }
}
