//! Whole-machine descriptions.

use crate::{FunctionalUnit, LatencyTable, UnitSet};
use wts_ir::UnitClass;

/// A description of the modelled processor: functional units, issue rules,
/// latencies and the out-of-order window used by [`PipelineSim`].
///
/// [`PipelineSim`]: crate::PipelineSim
///
/// # Examples
///
/// ```
/// use wts_machine::MachineConfig;
/// let m = MachineConfig::ppc7410();
/// assert_eq!(m.issue_width(), 2);
/// assert_eq!(m.branch_width(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    name: String,
    issue_width: u32,
    branch_width: u32,
    window: usize,
    latencies: LatencyTable,
    unit_map: [UnitSet; 6],
}

impl MachineConfig {
    /// Builds a machine from parts.
    ///
    /// `issue_width` bounds non-branch issues per cycle; `branch_width`
    /// bounds branch issues per cycle; `window` is the out-of-order window
    /// depth of the detailed simulator (1 = fully in-order).
    ///
    /// # Panics
    ///
    /// Panics if any width or the window is zero, or if some [`UnitClass`]
    /// has no unit to execute on.
    pub fn new(
        name: impl Into<String>,
        issue_width: u32,
        branch_width: u32,
        window: usize,
        latencies: LatencyTable,
        unit_map: [(UnitClass, UnitSet); 6],
    ) -> MachineConfig {
        assert!(issue_width >= 1, "issue width must be positive");
        assert!(branch_width >= 1, "branch width must be positive");
        assert!(window >= 1, "window must be positive");
        let mut map = [UnitSet::new(); 6];
        for (class, set) in unit_map {
            assert!(!set.is_empty(), "unit class {class} has no units");
            map[class_index(class)] = set;
        }
        for class in UnitClass::ALL {
            assert!(!map[class_index(class)].is_empty(), "unit class {class} not mapped");
        }
        MachineConfig { name: name.into(), issue_width, branch_width, window, latencies, unit_map: map }
    }

    /// The PowerPC 7410 model used in the paper's experiments: two
    /// dissimilar integer units, one each of FPU/BRU/LSU/SU, two non-branch
    /// plus one branch issue per cycle, and a small out-of-order window.
    pub fn ppc7410() -> MachineConfig {
        use FunctionalUnit::*;
        MachineConfig::new(
            "ppc7410",
            2,
            1,
            8,
            LatencyTable::ppc7410(),
            [
                (UnitClass::SimpleInt, UnitSet::of(&[Iu1, Iu2])),
                (UnitClass::ComplexInt, UnitSet::of(&[Iu2])),
                (UnitClass::Float, UnitSet::of(&[Fpu])),
                (UnitClass::Branch, UnitSet::of(&[Bru])),
                (UnitClass::LoadStore, UnitSet::of(&[Lsu])),
                (UnitClass::System, UnitSet::of(&[Su])),
            ],
        )
    }

    /// A single-issue, fully in-order machine (ablation: "older processors
    /// with less dynamic scheduling", paper §3.1). Scheduling matters more
    /// here because the hardware recovers nothing.
    pub fn simple_scalar() -> MachineConfig {
        use FunctionalUnit::*;
        MachineConfig::new(
            "simple-scalar",
            1,
            1,
            1,
            LatencyTable::ppc7410(),
            [
                (UnitClass::SimpleInt, UnitSet::of(&[Iu1])),
                (UnitClass::ComplexInt, UnitSet::of(&[Iu1])),
                (UnitClass::Float, UnitSet::of(&[Fpu])),
                (UnitClass::Branch, UnitSet::of(&[Bru])),
                (UnitClass::LoadStore, UnitSet::of(&[Lsu])),
                (UnitClass::System, UnitSet::of(&[Su])),
            ],
        )
    }

    /// Like the 7410 but with doubled floating-point latencies (ablation:
    /// an FP-weak core where scheduling FP code pays off even more).
    pub fn deep_fp() -> MachineConfig {
        let mut m = MachineConfig::ppc7410();
        m.name = "deep-fp".into();
        m.latencies = m.latencies.with_scaled_float(2);
        m
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum non-branch instructions issued per cycle.
    pub fn issue_width(&self) -> u32 {
        self.issue_width
    }

    /// Maximum branch-unit instructions issued per cycle.
    pub fn branch_width(&self) -> u32 {
        self.branch_width
    }

    /// Out-of-order window depth used by the detailed simulator.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The latency table.
    pub fn latencies(&self) -> &LatencyTable {
        &self.latencies
    }

    /// Units able to execute the given class.
    pub fn units_for(&self, class: UnitClass) -> UnitSet {
        self.unit_map[class_index(class)]
    }

    /// Convenience: latency of an opcode on this machine.
    pub fn latency(&self, op: wts_ir::Opcode) -> u32 {
        self.latencies.latency(op)
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::ppc7410()
    }
}

fn class_index(c: UnitClass) -> usize {
    match c {
        UnitClass::SimpleInt => 0,
        UnitClass::ComplexInt => 1,
        UnitClass::Float => 2,
        UnitClass::Branch => 3,
        UnitClass::LoadStore => 4,
        UnitClass::System => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::Opcode;

    #[test]
    fn ppc7410_shape() {
        let m = MachineConfig::ppc7410();
        assert_eq!(m.name(), "ppc7410");
        assert_eq!(m.units_for(UnitClass::SimpleInt).len(), 2, "dissimilar integer units");
        assert_eq!(m.units_for(UnitClass::ComplexInt).len(), 1);
        assert!(m.units_for(UnitClass::SimpleInt).contains(FunctionalUnit::Iu2));
        assert_eq!(m.units_for(UnitClass::Float).len(), 1);
        assert!(m.window() > 1);
    }

    #[test]
    fn simple_scalar_is_narrow() {
        let m = MachineConfig::simple_scalar();
        assert_eq!(m.issue_width(), 1);
        assert_eq!(m.window(), 1);
        assert_eq!(m.units_for(UnitClass::ComplexInt).len(), 1);
    }

    #[test]
    fn deep_fp_doubles_float_latency() {
        let base = MachineConfig::ppc7410();
        let deep = MachineConfig::deep_fp();
        assert_eq!(deep.latency(Opcode::Fadd), 2 * base.latency(Opcode::Fadd));
        assert_eq!(deep.latency(Opcode::Add), base.latency(Opcode::Add));
        assert_eq!(deep.name(), "deep-fp");
    }

    #[test]
    fn every_class_has_units() {
        let m = MachineConfig::ppc7410();
        for class in UnitClass::ALL {
            assert!(!m.units_for(class).is_empty(), "{class} unmapped");
        }
    }

    #[test]
    fn default_is_ppc7410() {
        assert_eq!(MachineConfig::default(), MachineConfig::ppc7410());
    }
}
