//! The cheap in-order block-cost estimator (the paper's "simplified
//! machine simulator") and its incremental issue state.

use crate::{FunctionalUnit, MachineConfig};
use std::collections::HashMap;
use wts_ir::{BasicBlock, Inst, MemRef, Opcode, Reg, UnitClass};

/// Serializing instructions: heavyweight barriers and calls. The in-order
/// model makes everything after them wait for their completion and makes
/// them wait for everything before them.
fn is_serializing(op: Opcode) -> bool {
    matches!(op, Opcode::Sync | Opcode::Isync) || op.is_call()
}

/// Incremental in-order machine state: instructions are issued one at a
/// time and the state answers "when could this instruction start, given
/// everything issued so far?".
///
/// This is the engine of both [`CostModel`] (fold a whole sequence) and
/// the list scheduler (query candidates, commit the chosen one), exactly
/// as in the paper where the same estimator is used by the scheduler and
/// for labeling (§2.2, footnote 3).
#[derive(Debug, Clone)]
pub struct IssueState<'m> {
    machine: &'m MachineConfig,
    reg_ready: HashMap<Reg, u64>,
    unit_free: [u64; FunctionalUnit::COUNT],
    store_done: Vec<(MemRef, u64)>,
    load_issued: Vec<(MemRef, u64)>,
    barrier_floor: u64,
    max_completion: u64,
    last_issue: u64,
    cur_cycle: u64,
    nonbranch_in_cycle: u32,
    branch_in_cycle: u32,
}

impl<'m> IssueState<'m> {
    /// A fresh state (cycle 0, all units free).
    pub fn new(machine: &'m MachineConfig) -> IssueState<'m> {
        IssueState {
            machine,
            reg_ready: HashMap::new(),
            unit_free: [0; FunctionalUnit::COUNT],
            store_done: Vec::new(),
            load_issued: Vec::new(),
            barrier_floor: 0,
            max_completion: 0,
            last_issue: 0,
            cur_cycle: 0,
            nonbranch_in_cycle: 0,
            branch_in_cycle: 0,
        }
    }

    /// Completion cycle of the latest-finishing instruction issued so far.
    pub fn completion_time(&self) -> u64 {
        self.max_completion
    }

    /// Rewinds to a fresh state (cycle 0, all units free) without
    /// dropping container capacity, so a long-lived state can be reused
    /// across blocks with no steady-state allocation.
    pub fn reset(&mut self) {
        self.reg_ready.clear();
        self.unit_free = [0; FunctionalUnit::COUNT];
        self.store_done.clear();
        self.load_issued.clear();
        self.barrier_floor = 0;
        self.max_completion = 0;
        self.last_issue = 0;
        self.cur_cycle = 0;
        self.nonbranch_in_cycle = 0;
        self.branch_in_cycle = 0;
    }

    /// Resets, then issues every instruction in order; returns the
    /// sequence's completion time. The allocation-free equivalent of
    /// [`CostModel::sequence_cycles`].
    pub fn replay(&mut self, insts: &[Inst]) -> u64 {
        self.reset();
        for inst in insts {
            self.issue(inst);
        }
        self.completion_time()
    }

    /// Cycle when `inst`'s data and ordering constraints are satisfied
    /// (not yet accounting for issue slots or functional units).
    fn ready_cycle(&self, inst: &Inst) -> u64 {
        let mut ready = self.barrier_floor;
        for u in inst.uses() {
            if let Some(&t) = self.reg_ready.get(u) {
                ready = ready.max(t);
            }
        }
        let op = inst.opcode();
        if let Some(m) = inst.mem_ref() {
            for &(w, done) in &self.store_done {
                if m.may_alias(w) {
                    ready = ready.max(done);
                }
            }
            if op.is_store() {
                for &(r, issued) in &self.load_issued {
                    if m.may_alias(r) {
                        ready = ready.max(issued);
                    }
                }
            }
        }
        if is_serializing(op) {
            ready = ready.max(self.max_completion);
        }
        ready
    }

    /// Finds the earliest `(cycle, unit)` at which `inst` could issue next.
    fn find_slot(&self, inst: &Inst) -> (u64, FunctionalUnit) {
        let op = inst.opcode();
        let is_branch_unit = op.unit_class() == UnitClass::Branch;
        let units = self.machine.units_for(op.unit_class());
        let mut c = self.ready_cycle(inst).max(self.last_issue);
        loop {
            let width_ok = if c > self.cur_cycle {
                true
            } else if is_branch_unit {
                self.branch_in_cycle < self.machine.branch_width()
            } else {
                self.nonbranch_in_cycle < self.machine.issue_width()
            };
            if width_ok {
                if let Some(u) = units.iter().find(|u| self.unit_free[u.index()] <= c) {
                    return (c, u);
                }
            }
            c += 1;
        }
    }

    /// Earliest cycle at which `inst` could issue if it were chosen next.
    pub fn earliest_issue(&self, inst: &Inst) -> u64 {
        self.find_slot(inst).0
    }

    /// Issues `inst` as the next instruction; returns its issue cycle.
    pub fn issue(&mut self, inst: &Inst) -> u64 {
        let op = inst.opcode();
        let (c, unit) = self.find_slot(inst);
        if c > self.cur_cycle {
            self.cur_cycle = c;
            self.nonbranch_in_cycle = 0;
            self.branch_in_cycle = 0;
        }
        if op.unit_class() == UnitClass::Branch {
            self.branch_in_cycle += 1;
        } else {
            self.nonbranch_in_cycle += 1;
        }
        let lat = self.machine.latencies().latency(op) as u64;
        let occupancy = self.machine.latencies().unit_occupancy(op) as u64;
        self.unit_free[unit.index()] = c + occupancy;
        self.last_issue = c;
        let done = c + lat;
        self.max_completion = self.max_completion.max(done);
        for &d in inst.defs() {
            self.reg_ready.insert(d, done);
        }
        if let Some(m) = inst.mem_ref() {
            if op.is_store() {
                self.store_done.push((m, done));
                self.load_issued.clear();
            } else {
                self.load_issued.push((m, c));
            }
        }
        if is_serializing(op) {
            self.barrier_floor = done;
        }
        c
    }
}

/// Estimates the cycle count of a basic block executed *in order* on the
/// modelled machine.
///
/// The model tracks per-register value availability, per-unit occupancy,
/// memory ordering between may-aliasing accesses, issue-width limits and
/// serializing instructions (syncs and calls). It deliberately ignores
/// dynamic effects (caches beyond a fixed load latency, branch prediction,
/// out-of-order recovery): the paper argues the estimate "needs only to
/// give a good sense of the difference in timing between two versions of
/// the same block" (§2.2).
///
/// # Examples
///
/// ```
/// use wts_ir::{BasicBlock, Inst, Opcode, Reg};
/// use wts_machine::{CostModel, MachineConfig};
///
/// let m = MachineConfig::ppc7410();
/// let cm = CostModel::new(&m);
/// let mut chain = BasicBlock::new(0);
/// chain.push(Inst::new(Opcode::Fadd).def(Reg::fpr(1)).use_(Reg::fpr(0)).use_(Reg::fpr(0)));
/// chain.push(Inst::new(Opcode::Fadd).def(Reg::fpr(2)).use_(Reg::fpr(1)).use_(Reg::fpr(1)));
/// // The dependent chain pays both latencies.
/// assert!(cm.block_cycles(&chain) >= 8);
/// ```
#[derive(Debug, Clone)]
pub struct CostModel<'m> {
    machine: &'m MachineConfig,
}

impl<'m> CostModel<'m> {
    /// A cost model for the given machine.
    pub fn new(machine: &'m MachineConfig) -> CostModel<'m> {
        CostModel { machine }
    }

    /// The machine being modelled.
    pub fn machine(&self) -> &MachineConfig {
        self.machine
    }

    /// Estimated cycles to execute `block` in its current order.
    pub fn block_cycles(&self, block: &BasicBlock) -> u64 {
        self.sequence_cycles(block.insts())
    }

    /// Estimated cycles for an explicit instruction sequence.
    pub fn sequence_cycles(&self, insts: &[Inst]) -> u64 {
        IssueState::new(self.machine).replay(insts)
    }

    /// A lower bound on any order's cycle count: the length (in latency) of
    /// the longest dependence chain through registers and memory, ignoring
    /// resources.
    ///
    /// Useful as a property-test oracle: no schedule can beat it.
    pub fn dependence_height(&self, insts: &[Inst]) -> u64 {
        let mut def_done: HashMap<Reg, u64> = HashMap::new();
        let mut best = 0u64;
        let mut store_done: Vec<(MemRef, u64)> = Vec::new();
        for inst in insts {
            let mut start = 0u64;
            for u in inst.uses() {
                if let Some(&t) = def_done.get(u) {
                    start = start.max(t);
                }
            }
            if let Some(m) = inst.mem_ref() {
                for &(w, done) in &store_done {
                    if m.may_alias(w) {
                        start = start.max(done);
                    }
                }
            }
            let done = start + self.machine.latencies().latency(inst.opcode()) as u64;
            for &d in inst.defs() {
                def_done.insert(d, done);
            }
            if inst.opcode().is_store() {
                if let Some(m) = inst.mem_ref() {
                    store_done.push((m, done));
                }
            }
            best = best.max(done);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::MemSpace;

    fn m() -> MachineConfig {
        MachineConfig::ppc7410()
    }

    fn cycles(insts: Vec<Inst>) -> u64 {
        let m = m();
        CostModel::new(&m).sequence_cycles(&insts)
    }

    #[test]
    fn empty_block_is_free() {
        assert_eq!(cycles(vec![]), 0);
    }

    #[test]
    fn single_add_takes_its_latency() {
        let got = cycles(vec![Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(2)).use_(Reg::gpr(3))]);
        assert_eq!(got, 1);
    }

    #[test]
    fn dependent_chain_serializes() {
        // fadd f1<-f0; fadd f2<-f1 : 4 + 4 cycles.
        let got = cycles(vec![
            Inst::new(Opcode::Fadd).def(Reg::fpr(1)).use_(Reg::fpr(0)).use_(Reg::fpr(0)),
            Inst::new(Opcode::Fadd).def(Reg::fpr(2)).use_(Reg::fpr(1)).use_(Reg::fpr(1)),
        ]);
        assert_eq!(got, 8);
    }

    #[test]
    fn independent_ints_dual_issue() {
        // Two independent adds can share a cycle on the two integer units.
        let got = cycles(vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(5)).use_(Reg::gpr(6)),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(7)).use_(Reg::gpr(8)),
        ]);
        assert_eq!(got, 1);
    }

    #[test]
    fn issue_width_limits_triples() {
        // Three independent adds: only two non-branch issues per cycle.
        let got = cycles(vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(5)).use_(Reg::gpr(6)),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(7)).use_(Reg::gpr(8)),
            Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(9)).use_(Reg::gpr(10)),
        ]);
        assert_eq!(got, 2);
    }

    #[test]
    fn branch_issues_alongside_ints() {
        let got = cycles(vec![
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(5)).use_(Reg::gpr(6)),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(7)).use_(Reg::gpr(8)),
            Inst::new(Opcode::B),
        ]);
        assert_eq!(got, 1, "2 ints + 1 branch fit in one cycle on the 7410");
    }

    #[test]
    fn complex_int_unit_is_contended() {
        // Two independent multiplies share the single complex-int unit, but
        // it is pipelined: second issues one cycle later.
        let got = cycles(vec![
            Inst::new(Opcode::Mullw).def(Reg::gpr(1)).use_(Reg::gpr(5)).use_(Reg::gpr(6)),
            Inst::new(Opcode::Mullw).def(Reg::gpr(2)).use_(Reg::gpr(7)).use_(Reg::gpr(8)),
        ]);
        assert_eq!(got, 5); // issue at 0 and 1, done at 4 and 5
    }

    #[test]
    fn divide_hogs_its_unit() {
        let lat = m().latency(Opcode::Divw) as u64;
        let got = cycles(vec![
            Inst::new(Opcode::Divw).def(Reg::gpr(1)).use_(Reg::gpr(5)).use_(Reg::gpr(6)),
            Inst::new(Opcode::Divw).def(Reg::gpr(2)).use_(Reg::gpr(7)).use_(Reg::gpr(8)),
        ]);
        assert_eq!(got, 2 * lat, "non-pipelined divides serialize on the unit");
    }

    #[test]
    fn store_load_aliasing_orders_memory() {
        let slot = MemRef::slot(MemSpace::Heap, 0);
        let store_lat = m().latency(Opcode::Stw) as u64;
        let load_lat = m().latency(Opcode::Lwz) as u64;
        let got = cycles(vec![
            Inst::new(Opcode::Stw).use_(Reg::gpr(1)).use_(Reg::gpr(2)).mem(slot),
            Inst::new(Opcode::Lwz).def(Reg::gpr(3)).use_(Reg::gpr(2)).mem(slot),
        ]);
        assert_eq!(got, store_lat + load_lat, "load waits for the aliasing store");
    }

    #[test]
    fn disjoint_slots_do_not_order() {
        let a = MemRef::slot(MemSpace::Stack, 0);
        let b = MemRef::slot(MemSpace::Stack, 8);
        let got = cycles(vec![
            Inst::new(Opcode::Stw).use_(Reg::gpr(1)).use_(Reg::gpr(2)).mem(a),
            Inst::new(Opcode::Lwz).def(Reg::gpr(3)).use_(Reg::gpr(4)).mem(b),
        ]);
        // Single LSU: load issues the next cycle, overlapping the store.
        assert_eq!(got, 1 + m().latency(Opcode::Lwz) as u64);
    }

    #[test]
    fn sync_serializes_everything() {
        let got = cycles(vec![
            Inst::new(Opcode::Fadd).def(Reg::fpr(1)).use_(Reg::fpr(0)).use_(Reg::fpr(0)),
            Inst::new(Opcode::Sync),
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(5)).use_(Reg::gpr(6)),
        ]);
        let m = m();
        let expect = m.latency(Opcode::Fadd) as u64 + m.latency(Opcode::Sync) as u64 + m.latency(Opcode::Add) as u64;
        assert_eq!(got, expect);
    }

    #[test]
    fn call_is_serializing() {
        let got = cycles(vec![
            Inst::new(Opcode::Lwz).def(Reg::gpr(3)).use_(Reg::gpr(4)).mem(MemRef::unknown(MemSpace::Heap)),
            Inst::new(Opcode::Bl).def(Reg::lr()),
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(3)).use_(Reg::gpr(3)),
        ]);
        let m = m();
        let expect = m.latency(Opcode::Lwz) as u64 + m.latency(Opcode::Bl) as u64 + m.latency(Opcode::Add) as u64;
        assert_eq!(got, expect);
    }

    #[test]
    fn reordering_independent_work_hides_latency() {
        // Bad order: load; use; unrelated adds — use stalls on the load.
        let slot = MemRef::slot(MemSpace::Heap, 0);
        let bad = vec![
            Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9)).mem(slot),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)),
            Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(7)).use_(Reg::gpr(8)),
            Inst::new(Opcode::Add).def(Reg::gpr(4)).use_(Reg::gpr(7)).use_(Reg::gpr(8)),
        ];
        let good = vec![bad[0], bad[2], bad[3], bad[1]];
        assert!(cycles(good) < cycles(bad));
    }

    #[test]
    fn dependence_height_is_a_lower_bound() {
        let m = m();
        let cm = CostModel::new(&m);
        let insts = vec![
            Inst::new(Opcode::Lfd).def(Reg::fpr(1)).use_(Reg::gpr(1)).mem(MemRef::slot(MemSpace::Heap, 0)),
            Inst::new(Opcode::Fmul).def(Reg::fpr(2)).use_(Reg::fpr(1)).use_(Reg::fpr(1)),
            Inst::new(Opcode::Fadd).def(Reg::fpr(3)).use_(Reg::fpr(2)).use_(Reg::fpr(2)),
        ];
        let h = cm.dependence_height(&insts);
        assert_eq!(h, (m.latency(Opcode::Lfd) + m.latency(Opcode::Fmul) + m.latency(Opcode::Fadd)) as u64);
        assert!(cm.sequence_cycles(&insts) >= h);
    }

    #[test]
    fn reset_state_replays_like_fresh() {
        let mach = m();
        let warm = vec![
            Inst::new(Opcode::Stw).use_(Reg::gpr(1)).use_(Reg::gpr(2)).mem(MemRef::slot(MemSpace::Heap, 0)),
            Inst::new(Opcode::Fadd).def(Reg::fpr(1)).use_(Reg::fpr(0)).use_(Reg::fpr(0)),
            Inst::new(Opcode::Sync),
        ];
        let probe = vec![
            Inst::new(Opcode::Lwz).def(Reg::gpr(3)).use_(Reg::gpr(4)).mem(MemRef::slot(MemSpace::Heap, 0)),
            Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(3)).use_(Reg::gpr(3)),
        ];
        let mut st = IssueState::new(&mach);
        st.replay(&warm);
        assert_eq!(st.replay(&probe), CostModel::new(&mach).sequence_cycles(&probe), "no state may leak through reset");
    }

    #[test]
    fn earliest_issue_matches_commit() {
        let mach = m();
        let mut st = IssueState::new(&mach);
        let a = Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9)).mem(MemRef::slot(MemSpace::Heap, 0));
        let b = Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1));
        let ea = st.earliest_issue(&a);
        assert_eq!(st.issue(&a), ea);
        let eb = st.earliest_issue(&b);
        assert_eq!(eb, mach.latency(Opcode::Lwz) as u64, "consumer waits for the load");
        assert_eq!(st.issue(&b), eb);
        assert_eq!(st.completion_time(), eb + mach.latency(Opcode::Add) as u64);
    }

    #[test]
    fn earliest_issue_is_monotone_across_issues() {
        let mach = m();
        let mut st = IssueState::new(&mach);
        let adds: Vec<Inst> = (0..6u16)
            .map(|i| Inst::new(Opcode::Add).def(Reg::gpr(i + 10)).use_(Reg::gpr(1)).use_(Reg::gpr(2)))
            .collect();
        let mut last = 0;
        for a in &adds {
            let e = st.earliest_issue(a);
            assert!(e >= last);
            last = st.issue(a);
        }
    }
}
