//! The named machine-model registry.
//!
//! The paper's central claim is that should-we-schedule filters are
//! cheap to *re-derive* when the target machine changes. Testing that
//! claim needs more than one target, so every machine model this
//! reproduction knows about is registered here by name — the
//! cross-machine [`ExperimentMatrix`] in `wts-core` and the `repro`
//! binary enumerate the registry rather than hard-coding a config.
//!
//! Adding a machine is two steps:
//!
//! 1. Write a constructor on [`MachineConfig`] (usually a handful of
//!    [`MachineConfig::builder`] overrides plus a [`LatencyTable`]
//!    profile — see `MachineConfig::wide4` for the pattern).
//! 2. Add a `(name, constructor)` row to [`REGISTRY`].
//!
//! [`LatencyTable`]: crate::LatencyTable
//! [`ExperimentMatrix`]: https://docs.rs/wts-core
//!
//! # Examples
//!
//! ```
//! use wts_machine::{registry, MachineConfig};
//!
//! assert!(registry().len() >= 6);
//! let m = MachineConfig::by_name("wide4").unwrap();
//! assert_eq!(m.issue_width(), 4);
//! assert!(MachineConfig::by_name("nonesuch").is_none());
//! ```

use crate::MachineConfig;

/// One registry row: a machine's name and its constructor.
pub type MachineEntry = (&'static str, fn() -> MachineConfig);

/// Every registered machine, as `(name, constructor)` rows. The name in
/// each row equals `constructor().name()`; [`registry_names`] and
/// [`MachineConfig::by_name`] key off it without building configs.
pub const REGISTRY: [MachineEntry; 6] = [
    ("ppc7410", MachineConfig::ppc7410),
    ("simple-scalar", MachineConfig::simple_scalar),
    ("deep-fp", MachineConfig::deep_fp),
    ("wide4", MachineConfig::wide4),
    ("embedded", MachineConfig::embedded),
    ("deep-pipe", MachineConfig::deep_pipe),
];

/// Builds every registered machine, in registry order (the paper's
/// ppc7410 first).
pub fn registry() -> Vec<MachineConfig> {
    REGISTRY.iter().map(|(_, build)| build()).collect()
}

/// The registered machine names, in registry order.
pub fn registry_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|(name, _)| *name).collect()
}

impl MachineConfig {
    /// Builds the registered machine with the given name, if any.
    pub fn by_name(name: &str) -> Option<MachineConfig> {
        REGISTRY.iter().find(|(n, _)| *n == name).map(|(_, build)| build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_match_machine_names() {
        for (name, build) in REGISTRY {
            assert_eq!(build().name(), name, "registry key must equal the machine's own name");
        }
        assert_eq!(registry().len(), REGISTRY.len());
        assert_eq!(registry_names().len(), REGISTRY.len());
    }

    #[test]
    fn names_are_unique() {
        let mut names = registry_names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len());
    }

    #[test]
    fn by_name_roundtrips() {
        for name in registry_names() {
            let m = MachineConfig::by_name(name).expect("registered name must resolve");
            assert_eq!(m.name(), name);
        }
        assert!(MachineConfig::by_name("not-a-machine").is_none());
    }

    #[test]
    fn registry_spans_the_dynamism_spectrum() {
        let machines = registry();
        let widths: Vec<u32> = machines.iter().map(|m| m.issue_width()).collect();
        assert!(widths.contains(&1) && widths.contains(&4), "narrow and wide targets: {widths:?}");
        let windows: Vec<usize> = machines.iter().map(|m| m.window()).collect();
        assert!(windows.contains(&1) && windows.iter().any(|&w| w >= 32), "in-order and deep-OoO: {windows:?}");
    }
}
