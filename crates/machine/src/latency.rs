//! Per-opcode latency tables.

use wts_ir::Opcode;

/// Execution latencies (in cycles) for every [`Opcode`], plus the set of
/// opcodes that are *not pipelined* (they occupy their unit for the whole
/// latency, e.g. divides on the 7410).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyTable {
    latency: [u32; Opcode::COUNT],
    non_pipelined: [bool; Opcode::COUNT],
}

impl LatencyTable {
    /// A table where every opcode takes `default` cycles, fully pipelined.
    pub fn uniform(default: u32) -> LatencyTable {
        LatencyTable { latency: [default; Opcode::COUNT], non_pipelined: [false; Opcode::COUNT] }
    }

    /// The PowerPC 7410-flavoured table used throughout the reproduction.
    ///
    /// Simple integer ops take a cycle; multiplies a few; divides many and
    /// hog their unit; loads hit the L1 in 3 cycles; floating point is
    /// 3–5 cycles with a long, non-pipelined divide. Exact values matter
    /// less than the *relative* pattern (paper §2.2): long-latency FP and
    /// loads are what scheduling hides.
    pub fn ppc7410() -> LatencyTable {
        let mut t = LatencyTable::uniform(1);
        use Opcode::*;
        for (ops, cycles) in [
            (&[Li, Mr, Addi, Add, Subf, Neg, And, Or, Xor][..], 1),
            (&[Slw, Srw, Sraw, Rlwinm, Extsb, Extsh, Cntlzw][..], 1),
            (&[Cmp, Cmpl][..], 1),
            (&[Mullw, Mulhw][..], 4),
            (&[Divw, Divwu][..], 19),
            (&[Lwz, Lbz, Lhz, Lha][..], 3),
            (&[Lfs, Lfd][..], 4),
            (&[Stw, Stb, Sth, Stfs, Stfd][..], 3),
            (&[Fadd, Fsub][..], 4),
            (&[Fmul][..], 4),
            (&[Fmadd][..], 5),
            (&[Fdiv][..], 33),
            (&[Fneg, Fabs][..], 3),
            (&[Frsp, Fctiw][..], 3),
            (&[Fcmpu][..], 3),
            (&[B, Bc, Bctr, Blr][..], 1),
            (&[Bl, Bctrl][..], 2),
            (&[Mfspr, Mtspr][..], 3),
            (&[Sync][..], 8),
            (&[Isync][..], 6),
            (&[Tw, NullCheck, BoundsCheck][..], 1),
            (&[GcSafepoint, ThreadSwitchPoint, YieldPoint][..], 2),
        ] {
            for &op in ops {
                t.set(op, cycles);
            }
        }
        for op in [Divw, Divwu, Fdiv, Sync, Isync] {
            t.set_non_pipelined(op, true);
        }
        t
    }

    /// A wide, fast-cache superscalar table: loads hit in 2 cycles,
    /// multiplies in 3, and divides are shorter — the profile of a core
    /// that spends its transistors on bandwidth rather than depth.
    pub fn wide4() -> LatencyTable {
        let mut t = LatencyTable::ppc7410();
        use Opcode::*;
        for (ops, cycles) in [
            (&[Lwz, Lbz, Lhz, Lha][..], 2),
            (&[Lfs, Lfd][..], 3),
            (&[Stw, Stb, Sth, Stfs, Stfd][..], 2),
            (&[Mullw, Mulhw][..], 3),
            (&[Divw, Divwu][..], 12),
            (&[Fdiv][..], 24),
        ] {
            for &op in ops {
                t.set(op, cycles);
            }
        }
        t
    }

    /// A single-issue embedded-core table dominated by its memory system:
    /// no L1 to speak of, so loads take 8–10 cycles and stores 6, with
    /// slow multi-cycle FP. Long load-use distances are exactly what list
    /// scheduling hides, so this profile makes the filter's LS class big.
    pub fn embedded() -> LatencyTable {
        let mut t = LatencyTable::ppc7410();
        use Opcode::*;
        for (ops, cycles) in [
            (&[Lwz, Lbz, Lhz, Lha][..], 8),
            (&[Lfs, Lfd][..], 10),
            (&[Stw, Stb, Sth, Stfs, Stfd][..], 6),
            (&[Mullw, Mulhw][..], 6),
            (&[Divw, Divwu][..], 34),
            (&[Fadd, Fsub, Fmul][..], 8),
            (&[Fmadd][..], 10),
            (&[Fdiv][..], 48),
        ] {
            for &op in ops {
                t.set(op, cycles);
            }
        }
        t
    }

    /// A deep-pipeline table: taken control transfers pay a heavy
    /// front-end refill (5-cycle branches, 8-cycle calls) and every
    /// multi-cycle op stretches a little — the profile of a
    /// high-frequency design with a long fetch/decode pipe.
    pub fn deep_pipe() -> LatencyTable {
        let mut t = LatencyTable::ppc7410();
        use Opcode::*;
        for (ops, cycles) in [
            (&[B, Bc, Bctr, Blr][..], 5),
            (&[Bl, Bctrl][..], 8),
            (&[Lwz, Lbz, Lhz, Lha][..], 4),
            (&[Lfs, Lfd][..], 5),
            (&[Fadd, Fsub, Fmul][..], 6),
            (&[Fmadd][..], 7),
            (&[Mullw, Mulhw][..], 5),
        ] {
            for &op in ops {
                t.set(op, cycles);
            }
        }
        t
    }

    /// Latency of `op` in cycles (always at least 1).
    pub fn latency(&self, op: Opcode) -> u32 {
        self.latency[op.index()]
    }

    /// Sets the latency of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero; a zero-latency instruction would let the
    /// simulators schedule dependent work in the same cycle it issues.
    pub fn set(&mut self, op: Opcode, cycles: u32) {
        assert!(cycles >= 1, "latency must be at least one cycle");
        self.latency[op.index()] = cycles;
    }

    /// True when `op` occupies its functional unit for its whole latency.
    pub fn is_non_pipelined(&self, op: Opcode) -> bool {
        self.non_pipelined[op.index()]
    }

    /// Marks `op` (non-)pipelined.
    pub fn set_non_pipelined(&mut self, op: Opcode, v: bool) {
        self.non_pipelined[op.index()] = v;
    }

    /// Cycles the functional unit stays busy after `op` issues.
    pub fn unit_occupancy(&self, op: Opcode) -> u32 {
        if self.is_non_pipelined(op) {
            self.latency(op)
        } else {
            1
        }
    }

    /// Returns a copy with every floating-point latency multiplied by
    /// `factor` (used by the `deep_fp` ablation machine).
    pub fn with_scaled_float(&self, factor: u32) -> LatencyTable {
        let mut t = self.clone();
        for &op in Opcode::ALL {
            if op.is_float_unit() {
                t.set(op, self.latency(op).saturating_mul(factor).max(1));
            }
        }
        t
    }
}

impl Default for LatencyTable {
    fn default() -> LatencyTable {
        LatencyTable::ppc7410()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_opcode_has_positive_latency() {
        let t = LatencyTable::ppc7410();
        for &op in Opcode::ALL {
            assert!(t.latency(op) >= 1, "{op} has zero latency");
        }
    }

    #[test]
    fn relative_pattern_holds() {
        let t = LatencyTable::ppc7410();
        assert!(t.latency(Opcode::Add) < t.latency(Opcode::Mullw));
        assert!(t.latency(Opcode::Mullw) < t.latency(Opcode::Divw));
        assert!(t.latency(Opcode::Lwz) > t.latency(Opcode::Add));
        assert!(t.latency(Opcode::Fdiv) > t.latency(Opcode::Fmul));
        assert!(t.latency(Opcode::Fadd) > t.latency(Opcode::Add));
    }

    #[test]
    fn divides_are_non_pipelined() {
        let t = LatencyTable::ppc7410();
        assert!(t.is_non_pipelined(Opcode::Divw));
        assert!(t.is_non_pipelined(Opcode::Fdiv));
        assert!(!t.is_non_pipelined(Opcode::Fmul));
        assert_eq!(t.unit_occupancy(Opcode::Fdiv), t.latency(Opcode::Fdiv));
        assert_eq!(t.unit_occupancy(Opcode::Fmul), 1);
    }

    #[test]
    fn uniform_table() {
        let t = LatencyTable::uniform(2);
        for &op in Opcode::ALL {
            assert_eq!(t.latency(op), 2);
            assert!(!t.is_non_pipelined(op));
        }
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_latency_rejected() {
        LatencyTable::uniform(1).set(Opcode::Add, 0);
    }

    #[test]
    fn profile_tables_keep_their_signature_shapes() {
        let base = LatencyTable::ppc7410();
        let wide = LatencyTable::wide4();
        let emb = LatencyTable::embedded();
        let deep = LatencyTable::deep_pipe();
        for t in [&wide, &emb, &deep] {
            for &op in Opcode::ALL {
                assert!(t.latency(op) >= 1, "{op} has zero latency");
            }
            assert!(t.is_non_pipelined(Opcode::Fdiv), "divides stay non-pipelined in every profile");
        }
        assert!(wide.latency(Opcode::Lwz) < base.latency(Opcode::Lwz), "wide4 has the fast cache");
        assert!(emb.latency(Opcode::Lwz) > base.latency(Opcode::Lwz), "embedded pays for memory");
        assert!(deep.latency(Opcode::Bc) > base.latency(Opcode::Bc), "deep pipe pays for branches");
        assert_eq!(deep.latency(Opcode::Add), base.latency(Opcode::Add), "simple ALU stays single-cycle");
    }

    #[test]
    fn scaled_float_only_touches_fp() {
        let t = LatencyTable::ppc7410();
        let s = t.with_scaled_float(2);
        assert_eq!(s.latency(Opcode::Fadd), 2 * t.latency(Opcode::Fadd));
        assert_eq!(s.latency(Opcode::Add), t.latency(Opcode::Add));
        assert_eq!(s.latency(Opcode::Lwz), t.latency(Opcode::Lwz));
    }
}
