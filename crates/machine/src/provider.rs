//! [`CostProvider`]: one interface over the cheap estimator and the
//! detailed simulator.
//!
//! The paper's pipeline uses *two* notions of a block's cost: the cheap
//! in-order estimate that labels training instances and drives the
//! scheduler (§2.2), and the "real machine" timing that the evaluation
//! figures are computed against. The seed hard-coded which concrete
//! simulator played which role at every call site; `CostProvider`
//! abstracts that choice so tracing, labeling and evaluation can swap
//! estimators — e.g. labeling against the detailed model, or measuring
//! on a different machine description — without touching the pipeline.

use crate::{CostModel, MachineConfig, PipelineSim};
use wts_ir::{BasicBlock, Inst};

/// A source of cycle counts for instruction sequences.
///
/// Implementations must be cheap to query repeatedly and deterministic:
/// the same sequence always costs the same. `Sync` is required so one
/// provider can serve every shard of a parallel trace collection.
pub trait CostProvider: Sync {
    /// Cycles to execute `insts` in the given order.
    fn sequence_cycles(&self, insts: &[Inst]) -> u64;

    /// Cycles to execute `block` in its current order.
    fn block_cycles(&self, block: &BasicBlock) -> u64 {
        self.sequence_cycles(block.insts())
    }

    /// Short name for reports ("cheap", "pipeline", ...).
    fn provider_name(&self) -> &'static str;
}

impl CostProvider for CostModel<'_> {
    fn sequence_cycles(&self, insts: &[Inst]) -> u64 {
        CostModel::sequence_cycles(self, insts)
    }

    fn provider_name(&self) -> &'static str {
        "cheap"
    }
}

impl CostProvider for PipelineSim<'_> {
    fn sequence_cycles(&self, insts: &[Inst]) -> u64 {
        PipelineSim::sequence_cycles(self, insts)
    }

    fn provider_name(&self) -> &'static str {
        "pipeline"
    }
}

/// Blanket impl so `&provider` can stand in anywhere a provider is taken
/// by value-like generic.
impl<P: CostProvider + ?Sized> CostProvider for &P {
    fn sequence_cycles(&self, insts: &[Inst]) -> u64 {
        (**self).sequence_cycles(insts)
    }

    fn block_cycles(&self, block: &BasicBlock) -> u64 {
        (**self).block_cycles(block)
    }

    fn provider_name(&self) -> &'static str {
        (**self).provider_name()
    }
}

/// Which concrete [`CostProvider`] to build from a [`MachineConfig`].
///
/// This is the configuration-level handle the pipeline stores: it names
/// a provider without borrowing the machine, and materializes one on
/// demand with [`EstimatorKind::provider`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorKind {
    /// The paper's simplified machine simulator ([`CostModel`]).
    #[default]
    Cheap,
    /// The detailed out-of-order simulator ([`PipelineSim`]), standing in
    /// for real hardware.
    Detailed,
}

impl EstimatorKind {
    /// Builds the provider this kind names, borrowing `machine`.
    pub fn provider<'m>(self, machine: &'m MachineConfig) -> Box<dyn CostProvider + 'm> {
        match self {
            EstimatorKind::Cheap => Box::new(CostModel::new(machine)),
            EstimatorKind::Detailed => Box::new(PipelineSim::new(machine)),
        }
    }
}

impl std::fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimatorKind::Cheap => write!(f, "cheap"),
            EstimatorKind::Detailed => write!(f, "detailed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::{Inst, MemRef, MemSpace, Opcode, Reg};

    fn body() -> Vec<Inst> {
        vec![
            Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9)).mem(MemRef::slot(MemSpace::Heap, 0)),
            Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)),
            Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(8)).use_(Reg::gpr(8)),
        ]
    }

    #[test]
    fn providers_agree_with_their_concrete_models() {
        let m = MachineConfig::ppc7410();
        let insts = body();
        let cheap = EstimatorKind::Cheap.provider(&m);
        let detailed = EstimatorKind::Detailed.provider(&m);
        assert_eq!(cheap.sequence_cycles(&insts), CostModel::new(&m).sequence_cycles(&insts));
        assert_eq!(detailed.sequence_cycles(&insts), PipelineSim::new(&m).sequence_cycles(&insts));
        assert_eq!(cheap.provider_name(), "cheap");
        assert_eq!(detailed.provider_name(), "pipeline");
    }

    #[test]
    fn block_cycles_defaults_to_sequence() {
        let m = MachineConfig::ppc7410();
        let mut b = wts_ir::BasicBlock::new(0);
        for i in body() {
            b.push(i);
        }
        let p = EstimatorKind::Cheap.provider(&m);
        assert_eq!(p.block_cycles(&b), p.sequence_cycles(b.insts()));
    }

    #[test]
    fn detailed_never_slower_than_cheap_on_straightline() {
        let m = MachineConfig::ppc7410();
        let insts = body();
        let cheap = EstimatorKind::Cheap.provider(&m);
        let detailed = EstimatorKind::Detailed.provider(&m);
        assert!(detailed.sequence_cycles(&insts) <= cheap.sequence_cycles(&insts));
    }
}
