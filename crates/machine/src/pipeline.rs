//! The detailed out-of-order pipeline simulator (hardware stand-in).

use crate::{FunctionalUnit, MachineConfig};
use std::collections::HashMap;
use wts_ir::{BasicBlock, Inst, Opcode, Reg, UnitClass};

/// A more detailed simulator than [`CostModel`](crate::CostModel): it
/// models a small out-of-order window (the 7410's limited dynamic
/// scheduling), in-order fetch/retire, per-unit contention and the
/// machine's issue-width rules.
///
/// In the reproduction this plays the role of *the real machine*: the
/// application-running-time figures (Figures 1(b), 2(b), 3(b)) are
/// computed against it, while training labels come from the cheap
/// [`CostModel`](crate::CostModel). Because the window recovers part of
/// the stalls a bad order causes, measured improvements are smaller than
/// predicted ones — the same gap the paper reports between Table 4 and its
/// measured figures.
///
/// # Examples
///
/// ```
/// use wts_ir::{BasicBlock, Inst, Opcode, Reg};
/// use wts_machine::{MachineConfig, PipelineSim};
///
/// let m = MachineConfig::ppc7410();
/// let mut b = BasicBlock::new(0);
/// b.push(Inst::new(Opcode::Add).def(Reg::gpr(1)).use_(Reg::gpr(2)).use_(Reg::gpr(3)));
/// assert!(PipelineSim::new(&m).block_cycles(&b) >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineSim<'m> {
    machine: &'m MachineConfig,
}

/// Dependence edges precomputed from program order.
#[derive(Debug, Default, Clone)]
struct SimDeps {
    /// Predecessors whose *completion* must precede our issue.
    completion: Vec<Vec<u32>>,
    /// Predecessors whose *issue* must precede-or-equal our issue.
    issue: Vec<Vec<u32>>,
}

fn is_serializing(op: Opcode) -> bool {
    matches!(op, Opcode::Sync | Opcode::Isync) || op.is_call()
}

fn scan_deps(insts: &[Inst]) -> SimDeps {
    let n = insts.len();
    let mut deps = SimDeps { completion: vec![Vec::new(); n], issue: vec![Vec::new(); n] };
    let mut last_def: HashMap<Reg, u32> = HashMap::new();
    let mut uses_since_def: HashMap<Reg, Vec<u32>> = HashMap::new();
    let mut stores: Vec<u32> = Vec::new();
    let mut loads_since_store: Vec<u32> = Vec::new();
    let mut last_barrier: Option<u32> = None;
    let mut since_barrier: Vec<u32> = Vec::new();

    for (idx, inst) in insts.iter().enumerate() {
        let i = u32::try_from(idx).expect("simulated blocks are far below u32::MAX insts");
        let op = inst.opcode();
        // True data dependences.
        for u in inst.uses() {
            if let Some(&d) = last_def.get(u) {
                deps.completion[idx].push(d);
            }
            uses_since_def.entry(*u).or_default().push(i);
        }
        // Output and anti dependences on registers.
        for d in inst.defs() {
            if let Some(&p) = last_def.get(d) {
                deps.issue[idx].push(p);
            }
            if let Some(readers) = uses_since_def.get(d) {
                for &r in readers {
                    if r != i {
                        deps.issue[idx].push(r);
                    }
                }
            }
        }
        // Memory ordering.
        if let Some(m) = inst.mem_ref() {
            for &s in &stores {
                let sm = insts[s as usize].mem_ref().expect("stores carry mem refs");
                if m.may_alias(sm) {
                    deps.completion[idx].push(s);
                }
            }
            if op.is_store() {
                for &l in &loads_since_store {
                    let lm = insts[l as usize].mem_ref().expect("loads carry mem refs");
                    if m.may_alias(lm) {
                        deps.issue[idx].push(l);
                    }
                }
            }
        }
        // Serializing instructions.
        if let Some(b) = last_barrier {
            deps.completion[idx].push(b);
        }
        if is_serializing(op) {
            for &p in &since_barrier {
                deps.completion[idx].push(p);
            }
            last_barrier = Some(i);
            since_barrier.clear();
        } else {
            since_barrier.push(i);
        }
        // Update write state last.
        for d in inst.defs() {
            last_def.insert(*d, i);
            uses_since_def.insert(*d, Vec::new());
        }
        if op.is_store() {
            stores.push(i);
            loads_since_store.clear();
        } else if op.is_load() {
            loads_since_store.push(i);
        }
    }
    deps
}

impl<'m> PipelineSim<'m> {
    /// A pipeline simulator for the given machine.
    pub fn new(machine: &'m MachineConfig) -> PipelineSim<'m> {
        PipelineSim { machine }
    }

    /// The machine being modelled.
    pub fn machine(&self) -> &MachineConfig {
        self.machine
    }

    /// Simulated cycles to execute `block` in its current order.
    pub fn block_cycles(&self, block: &BasicBlock) -> u64 {
        self.sequence_cycles(block.insts())
    }

    /// Simulated cycles for an explicit instruction sequence.
    pub fn sequence_cycles(&self, insts: &[Inst]) -> u64 {
        let n = insts.len();
        if n == 0 {
            return 0;
        }
        let deps = scan_deps(insts);
        let lat = self.machine.latencies();
        let window = self.machine.window();
        let fetch_bw = (self.machine.issue_width() + self.machine.branch_width()) as usize;

        let mut issue: Vec<Option<u64>> = vec![None; n];
        let mut done: Vec<u64> = vec![0; n];
        let mut unit_free = [0u64; FunctionalUnit::COUNT];
        let mut oldest = 0usize; // first unissued instruction
        let mut cycle: u64 = 0;
        let mut max_done: u64 = 0;
        let _ = fetch_bw;

        // Cap runaway loops: every instruction must issue within a bounded
        // horizon (sum of all latencies plus the block length is a safe
        // over-estimate).
        let horizon: u64 = insts.iter().map(|i| lat.latency(i.opcode()) as u64).sum::<u64>() + n as u64 + 64;

        while oldest < n {
            assert!(cycle <= horizon, "pipeline simulator failed to make progress");
            let mut nonbranch_budget = self.machine.issue_width();
            let mut branch_budget = self.machine.branch_width();
            // The selector may look `window` instructions past the oldest
            // unissued one; issuing the oldest slides the window within
            // the same cycle (in-order front end, OoO selection).
            let mut progress = true;
            while progress && (nonbranch_budget > 0 || branch_budget > 0) && oldest < n {
                progress = false;
                let limit = (oldest + window).min(n);
                for i in oldest..limit {
                    if issue[i].is_some() {
                        continue;
                    }
                    let op = insts[i].opcode();
                    let is_branch_unit = op.unit_class() == UnitClass::Branch;
                    let budget = if is_branch_unit { &mut branch_budget } else { &mut nonbranch_budget };
                    if *budget == 0 {
                        continue;
                    }
                    let ready =
                        deps.completion[i].iter().all(|&p| issue[p as usize].is_some() && done[p as usize] <= cycle)
                            && deps.issue[i].iter().all(|&p| issue[p as usize].is_some());
                    if !ready {
                        continue;
                    }
                    let units = self.machine.units_for(op.unit_class());
                    let Some(u) = units.iter().find(|u| unit_free[u.index()] <= cycle) else {
                        continue;
                    };
                    issue[i] = Some(cycle);
                    done[i] = cycle + lat.latency(op) as u64;
                    max_done = max_done.max(done[i]);
                    unit_free[u.index()] = cycle + lat.unit_occupancy(op) as u64;
                    *budget -= 1;
                    progress = true;
                }
                while oldest < n && issue[oldest].is_some() {
                    oldest += 1;
                }
            }
            cycle += 1;
        }
        max_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;
    use wts_ir::{MemRef, MemSpace};

    fn m() -> MachineConfig {
        MachineConfig::ppc7410()
    }

    fn sim(insts: &[Inst]) -> u64 {
        let mach = m();
        PipelineSim::new(&mach).sequence_cycles(insts)
    }

    fn load(def: u16, slot: u32) -> Inst {
        Inst::new(Opcode::Lwz).def(Reg::gpr(def)).use_(Reg::gpr(30)).mem(MemRef::slot(MemSpace::Heap, slot))
    }

    fn add(def: u16, a: u16, b: u16) -> Inst {
        Inst::new(Opcode::Add).def(Reg::gpr(def)).use_(Reg::gpr(a)).use_(Reg::gpr(b))
    }

    #[test]
    fn empty_sequence_is_free() {
        assert_eq!(sim(&[]), 0);
    }

    #[test]
    fn single_instruction_latency() {
        assert_eq!(sim(&[add(1, 2, 3)]), 1);
        assert_eq!(sim(&[load(1, 0)]), m().latency(Opcode::Lwz) as u64);
    }

    #[test]
    fn window_recovers_bad_order() {
        // use-of-load immediately after load, independent adds after: the
        // OoO window issues the adds while the load completes.
        let bad = [load(1, 0), add(2, 1, 1), add(3, 7, 8), add(4, 7, 8)];
        let mach = m();
        let ooo = PipelineSim::new(&mach).sequence_cycles(&bad);
        let inorder = CostModel::new(&mach).sequence_cycles(&bad);
        assert!(ooo <= inorder, "window must not be slower than in-order");
        assert!(ooo < inorder, "window should hide part of the load stall");
    }

    #[test]
    fn dependences_still_respected() {
        let chain = [
            Inst::new(Opcode::Fadd).def(Reg::fpr(1)).use_(Reg::fpr(0)).use_(Reg::fpr(0)),
            Inst::new(Opcode::Fadd).def(Reg::fpr(2)).use_(Reg::fpr(1)).use_(Reg::fpr(1)),
        ];
        assert_eq!(sim(&chain), 2 * m().latency(Opcode::Fadd) as u64);
    }

    #[test]
    fn aliasing_store_load_ordered() {
        let slot = MemRef::slot(MemSpace::Heap, 4);
        let seq = [
            Inst::new(Opcode::Stw).use_(Reg::gpr(1)).use_(Reg::gpr(2)).mem(slot),
            Inst::new(Opcode::Lwz).def(Reg::gpr(3)).use_(Reg::gpr(2)).mem(slot),
        ];
        let mach = m();
        assert_eq!(sim(&seq), (mach.latency(Opcode::Stw) + mach.latency(Opcode::Lwz)) as u64);
    }

    #[test]
    fn anti_dependence_not_violated() {
        // r1 is read by the add, then overwritten by the load: the load may
        // not complete before... (we model: load issues >= add's issue).
        let seq = [add(2, 1, 1), load(1, 0), add(3, 2, 2)];
        // Sanity: simulation terminates and cost >= dependence height.
        let mach = m();
        let h = CostModel::new(&mach).dependence_height(&seq);
        assert!(sim(&seq) >= h);
    }

    #[test]
    fn window_bounded_by_in_order_cost() {
        // For a purely serial chain, OoO equals in-order.
        let mach = m();
        let chain: Vec<Inst> = (1..6u16)
            .map(|i| Inst::new(Opcode::Mullw).def(Reg::gpr(i)).use_(Reg::gpr(i - 1)).use_(Reg::gpr(i - 1)))
            .collect();
        assert_eq!(PipelineSim::new(&mach).sequence_cycles(&chain), CostModel::new(&mach).sequence_cycles(&chain));
    }

    #[test]
    fn serializing_call_orders_window() {
        let seq = [load(1, 0), Inst::new(Opcode::Bl).def(Reg::lr()), add(2, 7, 8)];
        let mach = m();
        let expect = (mach.latency(Opcode::Lwz) + mach.latency(Opcode::Bl) + mach.latency(Opcode::Add)) as u64;
        assert_eq!(sim(&seq), expect);
    }

    #[test]
    fn window_one_behaves_in_order() {
        let mach = MachineConfig::simple_scalar();
        let seq = [load(1, 0), add(2, 1, 1), add(3, 7, 8), add(4, 7, 8)];
        let ooo = PipelineSim::new(&mach).sequence_cycles(&seq);
        let ino = CostModel::new(&mach).sequence_cycles(&seq);
        assert_eq!(ooo, ino, "window=1 must match the in-order model");
    }

    #[test]
    fn scheduling_still_helps_but_less_than_in_order_predicts() {
        // The key methodological property: improvements measured on the
        // detailed machine are smaller than CostModel predicts.
        let bad = [
            load(1, 0),
            add(2, 1, 1),
            load(3, 8),
            add(4, 3, 3),
            load(5, 16),
            add(6, 5, 5),
            add(7, 20, 21),
            add(8, 22, 23),
        ];
        let good = [bad[0], bad[2], bad[4], bad[6], bad[1], bad[3], bad[7], bad[5]];
        let mach = m();
        let cm = CostModel::new(&mach);
        let ps = PipelineSim::new(&mach);
        let pred_gain = cm.sequence_cycles(&bad) as i64 - cm.sequence_cycles(&good) as i64;
        let meas_gain = ps.sequence_cycles(&bad) as i64 - ps.sequence_cycles(&good) as i64;
        assert!(pred_gain > 0);
        assert!(meas_gain >= 0);
        assert!(meas_gain <= pred_gain, "dynamic hardware recovers part of the stall");
    }
}
