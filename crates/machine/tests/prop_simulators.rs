//! Property-based tests for the two simulators: bounds, monotonicity and
//! order sensitivity.

use proptest::prelude::*;
use wts_ir::{Inst, MemRef, MemSpace, Opcode, Reg};
use wts_machine::{CostModel, MachineConfig, PipelineSim};

/// Straight-line instruction generator: ALU ops, loads, stores over a
/// small register/slot pool (no control flow, so any order is legal
/// timing-wise).
fn arb_body(max: usize) -> impl Strategy<Value = Vec<Inst>> {
    prop::collection::vec(
        (0u8..6, 0u16..6, 0u16..6, 0u32..3).prop_map(|(kind, a, b, slot)| match kind {
            0 => Inst::new(Opcode::Add).def(Reg::gpr(a + 10)).use_(Reg::gpr(b)).use_(Reg::gpr(a)),
            1 => Inst::new(Opcode::Mullw).def(Reg::gpr(a + 10)).use_(Reg::gpr(b)).use_(Reg::gpr(a)),
            2 => Inst::new(Opcode::Fadd).def(Reg::fpr(a + 1)).use_(Reg::fpr(b)).use_(Reg::fpr(a)),
            3 => Inst::new(Opcode::Lwz).def(Reg::gpr(a + 10)).use_(Reg::gpr(b)).mem(MemRef::slot(MemSpace::Heap, slot)),
            4 => Inst::new(Opcode::Stw).use_(Reg::gpr(a)).use_(Reg::gpr(b)).mem(MemRef::slot(MemSpace::Heap, slot)),
            _ => Inst::new(Opcode::Lfd).def(Reg::fpr(a + 1)).use_(Reg::gpr(b)).mem(MemRef::slot(MemSpace::Stack, slot)),
        }),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cost_is_at_least_dependence_height(insts in arb_body(16)) {
        let m = MachineConfig::ppc7410();
        let cm = CostModel::new(&m);
        let h = cm.dependence_height(&insts);
        prop_assert!(cm.sequence_cycles(&insts) >= h);
        prop_assert!(PipelineSim::new(&m).sequence_cycles(&insts) >= h);
    }

    #[test]
    fn cost_is_at_most_serial_sum(insts in arb_body(16)) {
        // No schedule can be slower than "one instruction at a time,
        // each waiting for everything before it to complete".
        let m = MachineConfig::ppc7410();
        let serial: u64 = insts.iter().map(|i| m.latency(i.opcode()) as u64).sum();
        prop_assert!(CostModel::new(&m).sequence_cycles(&insts) <= serial.max(1) * 2,
            "in-order cost wildly exceeds serial sum");
        prop_assert!(PipelineSim::new(&m).sequence_cycles(&insts) <= serial.max(1) * 2);
    }

    #[test]
    fn adding_an_instruction_never_speeds_the_block_up(insts in arb_body(12)) {
        prop_assume!(!insts.is_empty());
        let m = MachineConfig::ppc7410();
        let cm = CostModel::new(&m);
        let full = cm.sequence_cycles(&insts);
        let prefix = cm.sequence_cycles(&insts[..insts.len() - 1]);
        prop_assert!(full >= prefix, "{full} < {prefix}");
    }

    #[test]
    fn identical_independent_ops_are_order_invariant(n in 1usize..10, seed in 0u64..100) {
        // n adds over disjoint registers: any permutation costs the same.
        let m = MachineConfig::ppc7410();
        let insts: Vec<Inst> = (0..u16::try_from(n).unwrap())
            .map(|i| Inst::new(Opcode::Add).def(Reg::gpr(10 + i)).use_(Reg::gpr(1)).use_(Reg::gpr(2)))
            .collect();
        let mut shuffled = insts.clone();
        let mut s = seed + 1;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (s >> 33) as usize % (i + 1));
        }
        let cm = CostModel::new(&m);
        prop_assert_eq!(cm.sequence_cycles(&insts), cm.sequence_cycles(&shuffled));
    }

    #[test]
    fn pipeline_window_one_matches_in_order(insts in arb_body(12)) {
        let m = MachineConfig::simple_scalar();
        prop_assert_eq!(
            PipelineSim::new(&m).sequence_cycles(&insts),
            CostModel::new(&m).sequence_cycles(&insts)
        );
    }

    #[test]
    fn wider_window_never_hurts(insts in arb_body(14)) {
        // ppc7410 (window 8) vs the same machine fully in-order.
        let wide = MachineConfig::ppc7410();
        let ooo = PipelineSim::new(&wide).sequence_cycles(&insts);
        let inorder = CostModel::new(&wide).sequence_cycles(&insts);
        prop_assert!(ooo <= inorder, "window made things slower: {ooo} > {inorder}");
    }

    #[test]
    fn simulators_are_deterministic(insts in arb_body(14)) {
        let m = MachineConfig::ppc7410();
        let cm = CostModel::new(&m);
        let ps = PipelineSim::new(&m);
        prop_assert_eq!(cm.sequence_cycles(&insts), cm.sequence_cycles(&insts));
        prop_assert_eq!(ps.sequence_cycles(&insts), ps.sequence_cycles(&insts));
    }
}
