//! Minimal aligned-text table rendering for paper-style output.

use std::fmt;

/// A titled table with a header row and labelled rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table; `headers` includes the label column.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Table {
        Table { title: title.into(), headers, rows: Vec::new() }
    }

    /// Adds a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (row, column) for tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Header accessor for tests.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i == 0 {
                    write!(f, "{:<w$}", cells[i], w = widths[i])?;
                } else {
                    write!(f, "{:>w$}", cells[i], w = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (the paper's table style).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals (used for time ratios).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", vec!["name".into(), "x".into()]);
        t.push_row(vec!["alpha".into(), "1.00".into()]);
        t.push_row(vec!["b".into(), "10.25".into()]);
        let s = t.to_string();
        assert!(s.starts_with("== demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "title, header, rule, two rows");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", vec!["a".into(), "b".into()]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn accessors() {
        let mut t = Table::new("demo", vec!["a".into(), "b".into()]);
        t.push_row(vec!["x".into(), "y".into()]);
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.cell(0, 1), "y");
        assert_eq!(t.headers().len(), 2);
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(7.855), "7.86");
        assert_eq!(f3(0.9791), "0.979");
    }
}
