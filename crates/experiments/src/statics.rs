//! The paper's descriptive tables (1, 2 and 7), reproduced from the
//! system itself rather than hard-coded prose where possible.

use crate::table::Table;
use wts_features::FeatureKind;
use wts_jit::Suite;

/// Table 1: the features of a basic block. The paper's table lists the
/// thirteen block features; the four trace-shape features belong to the
/// superblock scope extension (`repro superblock`) and are excluded
/// here on purpose.
pub fn table1() -> Table {
    let mut t =
        Table::new("Table 1: Features of a basic block", vec!["Feature".into(), "Type".into(), "Meaning".into()]);
    for k in FeatureKind::ALL.into_iter().filter(|k| !k.is_trace_shape()) {
        let (ty, meaning) = match k {
            FeatureKind::BbLen => ("BB size", "Number of instructions in the block".to_string()),
            FeatureKind::Branches => ("Op kind", "Fraction that are branches".to_string()),
            FeatureKind::Calls => ("Op kind", "Fraction that are calls".to_string()),
            FeatureKind::Loads => ("Op kind", "Fraction that are loads".to_string()),
            FeatureKind::Stores => ("Op kind", "Fraction that are stores".to_string()),
            FeatureKind::Returns => ("Op kind", "Fraction that are returns".to_string()),
            FeatureKind::Integers => ("FU use", "Fraction using an integer functional unit".to_string()),
            FeatureKind::Floats => ("FU use", "Fraction using a floating point functional unit".to_string()),
            FeatureKind::Systems => ("FU use", "Fraction using a system functional unit".to_string()),
            FeatureKind::Peis => ("Hazard", "Fraction that are potentially excepting".to_string()),
            FeatureKind::GcPoints => ("Hazard", "Fraction that are garbage collection points".to_string()),
            FeatureKind::TsPoints => ("Hazard", "Fraction that are thread switch points".to_string()),
            FeatureKind::YieldPoints => ("Hazard", "Fraction that are yield points".to_string()),
            trace => unreachable!("trace-shape feature {trace} filtered above"),
        };
        t.push_row(vec![k.rule_name().to_string(), ty.to_string(), meaning]);
    }
    t
}

fn suite_table(title: &str, suite: &Suite) -> Table {
    let mut t = Table::new(title, vec!["Benchmark".into(), "Description".into()]);
    for b in suite.benchmarks() {
        t.push_row(vec![b.name().to_string(), b.description().to_string()]);
    }
    t
}

/// Table 2: the SPECjvm98 benchmarks.
pub fn table2() -> Table {
    suite_table("Table 2: Characteristics of the SPECjvm98 benchmarks", &Suite::specjvm98(0.001))
}

/// Table 7: the floating-point suite.
pub fn table7() -> Table {
    suite_table("Table 7: Characteristics of a set of benchmarks that benefit from scheduling", &Suite::fp(0.001))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_thirteen_features() {
        let t = table1();
        assert_eq!(t.row_count(), 13);
        assert_eq!(t.cell(0, 0), "bbLen");
        assert_eq!(t.cell(12, 0), "yieldpoints");
        assert!(t.to_string().contains("Hazard"));
    }

    #[test]
    fn table2_has_the_seven_jvm98_rows() {
        let t = table2();
        assert_eq!(t.row_count(), 7);
        assert_eq!(t.cell(0, 0), "compress");
        assert!(t.cell(1, 1).contains("CLIPS"));
    }

    #[test]
    fn table7_has_the_six_fp_rows() {
        let t = table7();
        assert_eq!(t.row_count(), 6);
        assert_eq!(t.cell(5, 0), "scimark");
    }
}
