//! Tables 3–6: the quantitative jvm98 artifacts, as views over the
//! jvm98 [`ExperimentRun`](wts_core::ExperimentRun).

use crate::table::{f2, Table};
use crate::{Experiments, SuiteKind, THRESHOLDS};
use wts_ripper::geometric_mean;

impl Experiments {
    /// Table 3: classification error rates (percent misclassified) per
    /// benchmark for each threshold, with the geometric mean.
    pub fn table3(&self) -> Table {
        let run = self.run(SuiteKind::Jvm98);
        let mut headers = vec!["Threshold".to_string()];
        headers.extend(run.names().iter().cloned());
        headers.push("Geo. mean".into());
        let mut t = Table::new("Table 3: Classification error rates (percent misclassified)", headers);
        for &th in &THRESHOLDS {
            let mut row = vec![format!("{th}%")];
            let mut errs = Vec::new();
            for name in run.names() {
                let err = run.classification(th, name).error_percent();
                errs.push(err);
                row.push(f2(err));
            }
            row.push(f2(geometric_mean(&errs)));
            t.push_row(row);
        }
        t
    }

    /// Table 4: predicted execution times (cheap-estimator weighted time
    /// under the filter, percent of never-scheduling) per benchmark and
    /// threshold.
    pub fn table4(&self) -> Table {
        let run = self.run(SuiteKind::Jvm98);
        let mut headers = vec!["Threshold".to_string()];
        headers.extend(run.names().iter().cloned());
        headers.push("Geo. mean".into());
        let mut t = Table::new("Table 4: Predicted execution times (percent of no-scheduling)", headers);
        for &th in &THRESHOLDS {
            let mut row = vec![format!("{th}%")];
            let mut ratios = Vec::new();
            for name in run.names() {
                let r = run.predicted_time(th, name);
                ratios.push(r);
                row.push(f2(r));
            }
            row.push(f2(geometric_mean(&ratios)));
            t.push_row(row);
        }
        t
    }

    /// Table 5: training-set sizes — LS instance counts per threshold
    /// (NS is constant by construction and reported in the title row).
    pub fn table5(&self) -> Table {
        let run = self.run(SuiteKind::Jvm98);
        let ns_count = run.ns_instances();
        let mut headers = vec!["Label".to_string()];
        headers.extend(THRESHOLDS.iter().map(|t| format!("t={t}")));
        let mut t =
            Table::new(format!("Table 5: Effect of t on training set size (NS constant at {ns_count})"), headers);
        let mut row = vec!["LS".to_string()];
        for &th in &THRESHOLDS {
            row.push(run.ls_instances(th).to_string());
        }
        t.push_row(row);
        t
    }

    /// Table 6: run-time classification of blocks by the induced filters
    /// (sums across benchmarks of each benchmark's own LOOCV filter).
    pub fn table6(&self) -> Table {
        let run = self.run(SuiteKind::Jvm98);
        let mut headers = vec!["Label".to_string()];
        headers.extend(THRESHOLDS.iter().map(|t| format!("t={t}")));
        let mut t = Table::new(
            format!("Table 6: Effect of t on run time classification ({} blocks total)", run.all_traces().len()),
            headers,
        );
        let mut ns_row = vec!["NS".to_string()];
        let mut ls_row = vec!["LS".to_string()];
        for &th in &THRESHOLDS {
            let mut ls = 0usize;
            let mut ns = 0usize;
            for name in run.names() {
                let c = run.runtime_counts(th, name);
                ls += c.ls;
                ns += c.ns;
            }
            ns_row.push(ns.to_string());
            ls_row.push(ls.to_string());
        }
        t.push_row(ns_row);
        t.push_row(ls_row);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Experiments {
        Experiments::new(0.02)
    }

    #[test]
    fn table3_shape_and_error_trend() {
        let e = harness();
        let t = e.table3();
        assert_eq!(t.row_count(), THRESHOLDS.len());
        assert_eq!(t.headers().len(), 9, "threshold + 7 benchmarks + geomean");
        // Error rate at t=50 should be no worse than at t=0 (fewer, easier LS).
        let first: f64 = t.cell(0, 8).parse().unwrap();
        let last: f64 = t.cell(10, 8).parse().unwrap();
        assert!(last <= first + 1.0, "error should shrink with t: {first} -> {last}");
    }

    #[test]
    fn table4_ratios_are_sane() {
        let e = harness();
        let t = e.table4();
        for row in 0..t.row_count() {
            for col in 1..=7 {
                let v: f64 = t.cell(row, col).parse().unwrap();
                assert!((50.0..=100.5).contains(&v), "ratio {v} out of range");
            }
        }
    }

    #[test]
    fn table5_ls_counts_decrease() {
        let e = harness();
        let t = e.table5();
        let counts: Vec<usize> = (1..=THRESHOLDS.len()).map(|c| t.cell(0, c).parse().unwrap()).collect();
        for w in counts.windows(2) {
            assert!(w[1] <= w[0], "LS counts must fall as t grows: {counts:?}");
        }
        assert!(counts[0] > 0);
    }

    #[test]
    fn table6_rows_sum_to_total() {
        let e = harness();
        let total = e.run(SuiteKind::Jvm98).all_traces().len();
        let t = e.table6();
        for c in 1..=THRESHOLDS.len() {
            let ns: usize = t.cell(0, c).parse().unwrap();
            let ls: usize = t.cell(1, c).parse().unwrap();
            assert_eq!(ns + ls, total);
        }
    }
}
