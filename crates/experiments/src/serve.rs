//! The serving-layer load generator: spin up a `wts-serve` instance
//! over a traced suite, hammer it from concurrent clients while the
//! retrainer hot-swaps filters underneath, and tabulate what happened.

use crate::table::Table;
use crate::{Experiments, SuiteKind};
use std::time::Instant;
use wts_core::LearnerKind;
use wts_serve::{Response, ServeClient, ServeConfig, Server};

/// How one load run is shaped.
#[derive(Debug, Clone, Copy)]
pub struct ServeLoad {
    /// Concurrent client connections.
    pub clients: usize,
    /// Batches each client sends (round-robin over the suite's
    /// benchmarks, one benchmark's methods per batch).
    pub rounds: usize,
    /// Worker threads in the serving instance.
    pub workers: usize,
    /// Job-queue bound (a full queue sheds batches with a busy frame).
    pub queue_depth: usize,
    /// Retrain cadence in observed records (0 leaves the seed filter in
    /// place for the whole run).
    pub retrain_every: usize,
}

impl Default for ServeLoad {
    fn default() -> ServeLoad {
        ServeLoad { clients: 4, rounds: 8, workers: 2, queue_depth: 64, retrain_every: 512 }
    }
}

impl Experiments {
    /// Runs the serving-layer load scenario over the jvm98 suite: the
    /// suite's own trace corpus seeds the epoch-1 filter, `clients`
    /// connections stream method batches concurrently, and the
    /// retrainer folds served observations back into hot-swapped
    /// filters while the load is running.
    ///
    /// Every batch is answered (shed batches retry with backoff), and
    /// the drain accounting is printed so a reader can check nothing
    /// was lost: absorbed records equal served units.
    pub fn serve(&self, load: ServeLoad) -> Table {
        let run = self.run(SuiteKind::Jvm98);
        let mut config = ServeConfig::new(self.machine().clone(), run.all_traces().to_vec());
        // The stump retrains in microseconds, so the cadence — not the
        // learner — dominates how often the epoch advances under load.
        config.learner = LearnerKind::Stump;
        config.workers = load.workers;
        config.queue_depth = load.queue_depth;
        config.retrain_every = load.retrain_every;
        let handle = Server::bind("127.0.0.1:0", config).expect("bind the load-generator server");
        let addr = handle.local_addr();

        let programs = run.programs();
        let started = Instant::now();
        let per_client: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..load.clients)
                .map(|c| {
                    s.spawn(move || {
                        let mut client = ServeClient::connect(addr).expect("connect load client");
                        let (mut units, mut first_epoch, mut last_epoch) = (0u64, 0u64, 0u64);
                        for r in 0..load.rounds {
                            let program = &programs[(c + r) % programs.len()];
                            let batch_id = (c * load.rounds + r) as u64;
                            let resp = client
                                .request_with_retry(batch_id, program.name(), program.methods(), 12)
                                .expect("serve a load batch");
                            let Response::Batch(batch) = resp else { panic!("retry exhausted: {resp:?}") };
                            units += batch.totals.total_blocks as u64;
                            if first_epoch == 0 {
                                first_epoch = batch.epoch;
                            }
                            last_epoch = batch.epoch;
                        }
                        (units, first_epoch, last_epoch)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("load client panicked")).collect()
        });
        let elapsed = started.elapsed().as_secs_f64();
        let report = handle.shutdown();

        let units: u64 = per_client.iter().map(|&(u, _, _)| u).sum();
        let first_epoch = per_client.iter().map(|&(_, f, _)| f).min().unwrap_or(0);
        let last_epoch = per_client.iter().map(|&(_, _, l)| l).max().unwrap_or(0);
        let mut t = Table::new(
            format!(
                "Serving layer under load ({} clients x {} batches, {} workers, retrain every {} records)",
                load.clients, load.rounds, load.workers, load.retrain_every
            ),
            ["metric", "value"].map(String::from).to_vec(),
        );
        let stats = report.stats;
        let blocks_per_sec = if elapsed > 0.0 { units as f64 / elapsed } else { 0.0 };
        for (metric, value) in [
            ("batches served", stats.batches_served.to_string()),
            ("batches shed (busy)", stats.batches_shed.to_string()),
            ("units served", stats.units_served.to_string()),
            ("units scheduled", stats.units_scheduled.to_string()),
            ("blocks/sec (client-observed)", format!("{blocks_per_sec:.0}")),
            ("epoch span observed", format!("{first_epoch}..{last_epoch}")),
            ("retrain folds", report.retrain.retrains.to_string()),
            ("records absorbed", report.retrain.records_absorbed.to_string()),
            ("drain lossless", (report.retrain.records_absorbed == stats.units_served).to_string()),
        ] {
            t.push_row(vec![metric.to_string(), value]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_run_is_lossless_and_swaps_under_load() {
        let e = Experiments::new(0.02);
        let load = ServeLoad { clients: 3, rounds: 4, workers: 2, queue_depth: 8, retrain_every: 64 };
        let t = e.serve(load);
        let cell = |name: &str| {
            (0..t.row_count())
                .find(|&r| t.cell(r, 0) == name)
                .map(|r| t.cell(r, 1).to_string())
                .expect("metric row present")
        };
        assert_eq!(cell("drain lossless"), "true");
        assert_eq!(cell("batches served"), (load.clients * load.rounds).to_string());
        let span = cell("epoch span observed");
        let (first, last) = span.split_once("..").expect("a..b");
        assert!(first.parse::<u64>().expect("first") >= 1);
        assert!(last.parse::<u64>().expect("last") >= first.parse::<u64>().expect("first"));
        assert_eq!(cell("records absorbed"), cell("units served"));
    }
}
