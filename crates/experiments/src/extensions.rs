//! Extension experiments: calibration, learner comparison, machine
//! sensitivity and scheduler-policy ablations (DESIGN.md §5).

use crate::table::{f2, f3, Table};
use crate::{Experiments, SuiteKind};
use wts_core::{app_time_ratio, classification_matrix, predicted_time_ratio, train_filter, TrainConfig};
use wts_core::{AlwaysSchedule, Experiment, Filter, LabelConfig};
use wts_jit::{app_cycles, superblock_gain, CompileSession};
use wts_machine::MachineConfig;
use wts_ripper::leave_one_group_out;
use wts_ripper::{
    geometric_mean, Classifier, ConfusionMatrix, DecisionStump, MajorityLearner, OneR, RipperConfig, ShallowTree,
};
use wts_sched::SchedulePolicy;

impl Experiments {
    /// Corpus calibration statistics, used to verify the synthetic suites
    /// match the population structure the paper reports (Table 5's ~18%
    /// of blocks benefiting, small app-level wins on jvm98, larger on FP).
    pub fn calibrate(&self) -> Table {
        let mut t = Table::new(
            "Calibration: corpus shape vs paper",
            vec![
                "Suite".into(),
                "Blocks".into(),
                "LS% (t=0)".into(),
                "LS% (t=20)".into(),
                "Pred LS".into(),
                "App LS".into(),
                "feat ns/blk".into(),
                "sched ns/blk".into(),
            ],
        );
        for kind in [SuiteKind::Jvm98, SuiteKind::Fp] {
            let run = self.run(kind);
            let total = run.all_traces().len();
            let ls0 = run.ls_instances(0);
            let ls20 = run.ls_instances(20);
            let pred: Vec<f64> = run.traces().iter().map(|tr| predicted_time_ratio(tr, &AlwaysSchedule)).collect();
            let app: Vec<f64> = run.traces().iter().map(|tr| app_time_ratio(tr, &AlwaysSchedule)).collect();
            let feat_ns: u64 = run.all_traces().iter().map(|r| r.feature_ns).sum::<u64>() / total as u64;
            let sched_ns: u64 = run.all_traces().iter().map(|r| r.sched_ns).sum::<u64>() / total as u64;
            t.push_row(vec![
                match kind {
                    SuiteKind::Jvm98 => "SPECjvm98".into(),
                    SuiteKind::Fp => "FP".into(),
                },
                total.to_string(),
                f2(100.0 * ls0 as f64 / total as f64),
                f2(100.0 * ls20 as f64 / total as f64),
                f2(geometric_mean(&pred)),
                f3(geometric_mean(&app)),
                feat_ns.to_string(),
                sched_ns.to_string(),
            ]);
        }
        t
    }

    /// Learner comparison at a given threshold: RIPPER versus the
    /// baselines, leave-one-benchmark-out, geometric-mean error rate.
    pub fn learners(&self, t: u32) -> Table {
        let (dataset, _) = self.run(SuiteKind::Jvm98).dataset(t);
        let folds = leave_one_group_out(&dataset);

        let mut table = Table::new(
            format!("Extension: learner comparison at t={t} (geo. mean error %)"),
            vec!["Learner".into(), "Error %".into()],
        );
        let mut per_learner: Vec<(&str, Vec<f64>)> = vec![
            ("ripper", Vec::new()),
            ("tree(d=4)", Vec::new()),
            ("one-r", Vec::new()),
            ("stump", Vec::new()),
            ("majority", Vec::new()),
        ];
        for fold in &folds {
            let models: Vec<Box<dyn Classifier>> = vec![
                Box::new(RipperConfig::default().fit(&fold.train)),
                Box::new(ShallowTree::fit(&fold.train, 4, 16)),
                Box::new(OneR::fit(&fold.train, 10)),
                Box::new(DecisionStump::fit(&fold.train)),
                Box::new(MajorityLearner::fit(&fold.train)),
            ];
            for (slot, model) in per_learner.iter_mut().zip(&models) {
                let mut m = ConfusionMatrix::default();
                for inst in fold.test.instances() {
                    m.record(inst.positive, model.predict(&inst.values));
                }
                slot.1.push(m.error_percent());
            }
        }
        for (name, errs) in per_learner {
            table.push_row(vec![name.to_string(), f2(geometric_mean(&errs))]);
        }
        table
    }

    /// Machine-sensitivity ablation: how much always-scheduling helps on
    /// three machine models (paper §3.1's remark that older, less dynamic
    /// processors gain more from static scheduling).
    pub fn machines(&self) -> Table {
        let mut t = Table::new(
            "Extension: scheduling benefit by machine model (LS vs NS)",
            vec!["Machine".into(), "Pred LS %".into(), "App LS".into()],
        );
        for machine in [MachineConfig::ppc7410(), MachineConfig::simple_scalar(), MachineConfig::deep_fp()] {
            let pipeline = Experiment::new(machine);
            let mut pred = Vec::new();
            let mut app = Vec::new();
            for program in self.run(SuiteKind::Fp).programs() {
                let traces = pipeline.trace(program);
                pred.push(predicted_time_ratio(&traces, &AlwaysSchedule));
                app.push(app_time_ratio(&traces, &AlwaysSchedule));
            }
            t.push_row(vec![
                pipeline.machine().name().to_string(),
                f2(geometric_mean(&pred)),
                f3(geometric_mean(&app)),
            ]);
        }
        t
    }

    /// Scheduler-policy ablation: the filter technique presumes a
    /// competent scheduler; this quantifies the policies.
    pub fn policies(&self) -> Table {
        let mut t = Table::new(
            "Extension: scheduler policy ablation (FP suite, LS vs NS)",
            vec!["Policy".into(), "Pred LS %".into(), "App LS".into()],
        );
        for policy in [
            SchedulePolicy::CriticalPath,
            SchedulePolicy::EarliestStart,
            SchedulePolicy::CriticalPathOnly,
            SchedulePolicy::Random(7),
        ] {
            let pipeline = Experiment::new(self.machine().clone()).with_policy(policy);
            let mut pred = Vec::new();
            let mut app = Vec::new();
            for program in self.run(SuiteKind::Fp).programs() {
                let traces = pipeline.trace(program);
                pred.push(predicted_time_ratio(&traces, &AlwaysSchedule));
                app.push(app_time_ratio(&traces, &AlwaysSchedule));
            }
            t.push_row(vec![policy.to_string(), f2(geometric_mean(&pred)), f3(geometric_mean(&app))]);
        }
        t
    }
}

impl Experiments {
    /// Superblock-scheduling extension (paper §3.1, footnote 6): the
    /// additional application-level improvement of speculative trace
    /// scheduling over per-block scheduling, per FP benchmark. The paper
    /// reports "slight (1–2%) additional improvement".
    pub fn superblocks(&self) -> Table {
        let mut t = Table::new(
            "Extension: superblock vs local scheduling (FP suite)",
            vec!["Benchmark".into(), "Local/NS %".into(), "Super/NS %".into(), "Extra %".into(), "Traces".into()],
        );
        let run = self.run(SuiteKind::Fp);
        for (name, program) in run.names().iter().zip(run.programs()) {
            let g = superblock_gain(program, self.machine(), crate::SUPERBLOCK_RATIO);
            let local = 100.0 * g.local as f64 / g.unscheduled.max(1) as f64;
            let sup = 100.0 * g.superblock as f64 / g.unscheduled.max(1) as f64;
            t.push_row(vec![
                name.clone(),
                f2(local),
                f2(sup),
                f2(100.0 * g.extra_improvement()),
                g.merged_traces.to_string(),
            ]);
        }
        t
    }

    /// Adaptive-JIT extension (paper §3.1): apply the optimizing path —
    /// and therefore the filter — only to profile-hot methods. Filters
    /// still save most scheduling effort inside the optimized subset.
    pub fn adaptive(&self, hot_cutoff: u64) -> Table {
        let mut t = Table::new(
            format!("Extension: adaptive JIT (hot methods only, cutoff {hot_cutoff})"),
            vec!["Strategy".into(), "Scheduled".into(), "Pass µs".into(), "App/NS".into()],
        );
        let run = self.run(SuiteKind::Jvm98);
        let filter = run.factory_filter(20);
        let session = CompileSession::new(self.machine());

        let mut rows: Vec<(String, usize, u64, f64)> = Vec::new();
        for (label, adaptive, f) in [
            ("LS everywhere", false, &AlwaysSchedule as &dyn Filter),
            ("LS hot methods", true, &AlwaysSchedule as &dyn Filter),
            ("L/N hot methods", true, &filter as &dyn Filter),
        ] {
            let mut scheduled = 0;
            let mut pass_ns = 0;
            let mut base = 0u64;
            let mut cycles = 0u64;
            for program in run.programs() {
                let (compiled, stats) = if adaptive {
                    session.compile_adaptive(program, f, hot_cutoff)
                } else {
                    session.compile(program, f)
                };
                scheduled += stats.scheduled_blocks;
                pass_ns += stats.pass_ns();
                base += app_cycles(program, self.machine());
                cycles += app_cycles(&compiled, self.machine());
            }
            rows.push((label.to_string(), scheduled, pass_ns, cycles as f64 / base as f64));
        }
        for (label, scheduled, pass_ns, ratio) in rows {
            t.push_row(vec![label, scheduled.to_string(), format!("{:.0}", pass_ns as f64 / 1000.0), f3(ratio)]);
        }
        t
    }

    /// User-retraining extension (paper footnote 4): training on a
    /// program's own blocks and testing on that same program gives "a
    /// kind of upper bound on how much improvement you could get by
    /// retraining". Compares self-trained against leave-one-out filters.
    pub fn selftrain(&self, t: u32) -> Table {
        let run = self.run(SuiteKind::Jvm98);
        let mut table = Table::new(
            format!("Extension: self-training upper bound at t={t} (error %)"),
            vec!["Benchmark".into(), "LOOCV".into(), "Self-trained".into()],
        );
        for name in run.names() {
            let loocv = run.filter_for(t, name);
            let own = run.trace_for(name);
            let selftrained = train_filter(own, &TrainConfig::with_threshold(t));
            let e_loocv = classification_matrix(own, &loocv, LabelConfig::new(t)).error_percent();
            let e_self = classification_matrix(own, &selftrained, LabelConfig::new(t)).error_percent();
            table.push_row(vec![name.clone(), f2(e_loocv), f2(e_self)]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Experiments {
        Experiments::new(0.02)
    }

    #[test]
    fn superblocks_show_small_extra_gain() {
        let e = harness();
        let t = e.superblocks();
        assert_eq!(t.row_count(), 6);
        for row in 0..t.row_count() {
            let extra: f64 = t.cell(row, 3).parse().unwrap();
            assert!((0.0..25.0).contains(&extra), "extra gain {extra}% implausible");
            let local: f64 = t.cell(row, 1).parse().unwrap();
            let sup: f64 = t.cell(row, 2).parse().unwrap();
            assert!(sup <= local + 1e-9);
        }
    }

    #[test]
    fn adaptive_schedules_fewer_blocks() {
        let e = harness();
        let t = e.adaptive(100);
        let full: usize = t.cell(0, 1).parse().unwrap();
        let hot_ls: usize = t.cell(1, 1).parse().unwrap();
        let hot_ln: usize = t.cell(2, 1).parse().unwrap();
        assert!(hot_ls < full);
        assert!(hot_ln <= hot_ls);
    }

    #[test]
    fn selftraining_is_at_least_competitive() {
        let e = harness();
        let t = e.selftrain(20);
        let mut loocv = Vec::new();
        let mut selft = Vec::new();
        for row in 0..t.row_count() {
            loocv.push(t.cell(row, 1).parse::<f64>().unwrap());
            selft.push(t.cell(row, 2).parse::<f64>().unwrap());
        }
        // On average, training on the test program itself should not be
        // (much) worse than generalizing from the others.
        let gl = geometric_mean(&loocv);
        let gs = geometric_mean(&selft);
        assert!(gs <= gl * 1.5 + 1.0, "self-trained {gs} vs loocv {gl}");
    }

    #[test]
    fn calibrate_reports_both_suites() {
        let e = harness();
        let t = e.calibrate();
        assert_eq!(t.row_count(), 2);
        let jvm_ls: f64 = t.cell(0, 2).parse().unwrap();
        assert!(jvm_ls > 3.0 && jvm_ls < 60.0, "LS fraction {jvm_ls}% looks off");
    }

    #[test]
    fn learners_table_includes_ripper_and_majority() {
        let e = harness();
        let t = e.learners(20);
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.cell(0, 0), "ripper");
        let ripper_err: f64 = t.cell(0, 1).parse().unwrap();
        let majority_err: f64 = t.cell(4, 1).parse().unwrap();
        assert!(ripper_err <= majority_err + 1.0, "ripper {ripper_err} vs majority {majority_err}");
    }

    #[test]
    fn policies_cps_beats_random() {
        let e = harness();
        let t = e.policies();
        let cps: f64 = t.cell(0, 1).parse().unwrap();
        let random: f64 = t.cell(3, 1).parse().unwrap();
        assert!(cps <= random, "CPS predicted time {cps}% must beat random {random}%");
    }

    #[test]
    fn machines_simple_scalar_gains_most() {
        let e = harness();
        let t = e.machines();
        let ppc: f64 = t.cell(0, 2).parse().unwrap();
        let scalar: f64 = t.cell(1, 2).parse().unwrap();
        assert!(scalar <= ppc + 0.02, "in-order machine should gain at least as much: {scalar} vs {ppc}");
    }
}
