//! `repro` — regenerates every table and figure of Cavazos & Moss 2004.
//!
//! ```text
//! repro [--scale X] [ARTIFACT...]
//!
//! ARTIFACTs: table1 table2 table3 table4 table5 table6 table7
//!            fig1 fig2 fig3 fig4
//!            calibrate learners machines policies factory serve
//!            superblocks superblock adaptive selftrain matrix portfolio
//!            verify lint
//!            all          (default: everything above)
//! ```
//!
//! `superblocks` is the per-benchmark gain table; `superblock` is the
//! cross-machine *scope* scenario — the full pipeline per registry
//! machine at block and superblock scope side by side.
//!
//! `serve` (like `factory`, not part of `all`) runs the serving-layer
//! load generator: a live `wts-serve` instance under concurrent
//! clients with online retraining hot-swapping the filter.

use std::process::ExitCode;
use wts_experiments::{
    table1, table2, table7, Experiments, ServeLoad, CALIBRATION_OPERATING_POINT, PORTFOLIO_TOLERANCE,
};

const USAGE: &str = "usage: repro [--scale X] [table1..table7|fig1..fig4|calibrate|learners|machines|policies|factory|serve|superblocks|superblock|adaptive|selftrain|matrix|portfolio|verify|lint|all]...";

fn main() -> ExitCode {
    let mut scale = 1.0f64;
    let mut artifacts: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--scale needs a positive number\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                scale = v;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => artifacts.push(other.to_string()),
        }
    }
    if scale <= 0.0 {
        eprintln!("scale must be positive\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if artifacts.is_empty() {
        artifacts.push("all".into());
    }
    let all = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "calibrate",
        "learners",
        "machines",
        "policies",
        "superblocks",
        "superblock",
        "adaptive",
        "selftrain",
        "matrix",
        "portfolio",
        "verify",
        "lint",
    ];
    if artifacts.iter().any(|a| a == "all") {
        artifacts = all.iter().map(|s| s.to_string()).collect();
    }
    for a in &artifacts {
        if !all.contains(&a.as_str()) && a != "factory" && a != "serve" {
            eprintln!("unknown artifact: {a}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    // Static tables need no harness.
    let needs_harness = artifacts.iter().any(|a| !matches!(a.as_str(), "table1" | "table2" | "table7"));
    eprintln!("# repro: scale={scale} artifacts={artifacts:?}");
    let harness = if needs_harness {
        eprintln!("# generating suites and tracing (this is the expensive step)...");
        Some(Experiments::new(scale))
    } else {
        None
    };

    // The registry sweep is the most expensive phase; `matrix` and
    // `portfolio` both derive from one shared MatrixRun.
    let mut matrix_run: Option<wts_core::MatrixRun> = None;

    for a in &artifacts {
        match a.as_str() {
            "table1" => println!("{}", table1()),
            "table2" => println!("{}", table2()),
            "table7" => println!("{}", table7()),
            name => {
                let e = harness.as_ref().expect("harness built");
                match name {
                    "table3" => println!("{}", e.table3()),
                    "table4" => println!("{}", e.table4()),
                    "table5" => println!("{}", e.table5()),
                    "table6" => println!("{}", e.table6()),
                    "fig1" => println!("{}", e.fig1()),
                    "fig2" => println!("{}", e.fig2()),
                    "fig3" => println!("{}", e.fig3()),
                    "fig4" => println!("{}", e.fig4()),
                    "calibrate" => println!("{}", e.calibrate()),
                    "learners" => println!("{}", e.learners(20)),
                    "machines" => println!("{}", e.machines()),
                    "policies" => println!("{}", e.policies()),
                    "superblocks" => println!("{}", e.superblocks()),
                    "verify" => {
                        eprintln!("# checking the pipeline on every registry machine x policy x scope...");
                        println!("{}", e.verify());
                    }
                    "lint" => {
                        let m = matrix_run.get_or_insert_with(|| {
                            eprintln!("# tracing the FP suite on every registry machine...");
                            e.matrix()
                        });
                        eprintln!("# linting every machine x learner x scope filter and the protocol machines...");
                        let sb = e.superblock_matrix();
                        println!("{}", e.lint(m, &sb));
                    }
                    "superblock" => {
                        let m = matrix_run.get_or_insert_with(|| {
                            eprintln!("# tracing the FP suite on every registry machine...");
                            e.matrix()
                        });
                        eprintln!("# re-tracing at superblock scope on every registry machine...");
                        let sb = e.superblock_matrix();
                        println!("{}", e.superblock_scope(m, &sb, 0));
                    }
                    "adaptive" => println!("{}", e.adaptive(100)),
                    "selftrain" => println!("{}", e.selftrain(20)),
                    "matrix" => {
                        let m = matrix_run.get_or_insert_with(|| {
                            eprintln!("# tracing the FP suite on every registry machine...");
                            e.matrix()
                        });
                        println!("{}", e.machine_sweep(m));
                        println!("{}", e.cross_machine(m, 0));
                        println!("{}", e.filter_overhead(m, 0));
                        println!("{}", e.calibration(m, 0, CALIBRATION_OPERATING_POINT));
                    }
                    "portfolio" => {
                        let m = matrix_run.get_or_insert_with(|| {
                            eprintln!("# tracing the FP suite on every registry machine...");
                            e.matrix()
                        });
                        eprintln!("# training every backend on every machine...");
                        println!("{}", e.portfolio(m, 0, PORTFOLIO_TOLERANCE));
                        println!("{}", e.calibration(m, 0, CALIBRATION_OPERATING_POINT));
                    }
                    "factory" => println!("{}", e.factory_filter(20)),
                    "serve" => {
                        eprintln!("# serving the jvm98 suite under concurrent load with online retraining...");
                        println!("{}", e.serve(ServeLoad::default()));
                    }
                    _ => unreachable!("validated above"),
                }
            }
        }
    }
    ExitCode::SUCCESS
}
