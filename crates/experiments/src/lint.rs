//! `repro lint`: the model-artifact and protocol static-analysis sweep.
//!
//! Where `repro verify` audits *schedules* (dependence, timing,
//! speculation), `repro lint` audits the *learned artifacts and the
//! machinery that serves them*: every filter the pipeline can produce —
//! each registry machine × each [`LearnerKind::portfolio`] backend ×
//! both scopes, every LOOCV fold plus the factory rule set — is lowered
//! and run through the `wts-verify` model lint and the hard-threshold
//! equivalence proof, and the `FilterStore` swap protocol and the
//! `wts-serve` frame exchange are model-checked by bounded-exhaustive
//! state-space exploration. A healthy pipeline prints all-zero
//! diagnostic columns and a `held` proof on every row; anything else is
//! a bug in the learners, the lowering or the serving layer, and the
//! offending diagnostics are echoed to stderr.

use crate::table::Table;
use crate::Experiments;
use wts_core::{Filter, LearnedFilter, Learner, LearnerKind, MatrixRun};
use wts_verify::{
    check_serve_protocol, check_store_protocol, lint_model, prove_hard_threshold, render, Diagnostic, ModelTable,
    ServeProtoConfig, Severity, StoreProtoConfig,
};

/// One machine's tally over every backend × scope × fold.
#[derive(Default)]
struct LintRow {
    filters: usize,
    errors: usize,
    warnings: usize,
    proofs_held: usize,
}

impl LintRow {
    fn absorb(&mut self, diags: &[Diagnostic], proof_held: bool) {
        self.filters += 1;
        self.errors += diags.iter().filter(|d| d.severity == Severity::Error).count();
        self.warnings += diags.iter().filter(|d| d.severity == Severity::Warning).count();
        self.proofs_held += usize::from(proof_held);
    }
}

/// Lints one trained filter exactly the way the `verify`-feature hook
/// inside `train_filter` does, plus the threshold-equivalence proof.
fn lint_filter(artifact: &str, filter: &LearnedFilter) -> (Vec<Diagnostic>, bool) {
    let compiled = filter.compile();
    let table = ModelTable::from_rule_set(filter.rules(), compiled.demand(), artifact);
    let diags = lint_model(&table);
    let held = prove_hard_threshold(&table).holds();
    (diags, held)
}

impl Experiments {
    /// The `repro lint` table: one row per registry machine tallying the
    /// model lint over every pipeline-producible filter on that machine
    /// (both scope matrices, every portfolio backend, every t=0 LOOCV
    /// fold plus the factory filter), followed by one row per protocol
    /// state machine with the explored state count in the `linted`
    /// column.
    ///
    /// # Panics
    ///
    /// Panics if the two matrices cover different machine lists.
    pub fn lint(&self, block: &MatrixRun, superblock: &MatrixRun) -> Table {
        assert_eq!(block.machine_names(), superblock.machine_names(), "matrices must sweep the same registry");
        let mut table = Table::new(
            format!("wts-lint: filters x registry x learner x scope, plus protocol machines (scale {})", self.scale()),
            vec![
                "artifact".into(),
                "linted".into(),
                "errors".into(),
                "warnings".into(),
                "proof".into(),
                "total".into(),
            ],
        );
        for name in block.machine_names() {
            let mut row = LintRow::default();
            for (scope_tag, matrix) in [("blk", block), ("sb", superblock)] {
                let run = matrix.run_for(name);
                for learner in LearnerKind::portfolio() {
                    for (bench, filter) in run.loocv_filters_for(0, &learner).iter() {
                        let artifact = format!("{name}/{scope_tag}/{}/{bench}", learner.name());
                        let (diags, held) = lint_filter(&artifact, filter);
                        if !diags.is_empty() {
                            eprintln!("{}", render(&diags));
                        }
                        row.absorb(&diags, held);
                    }
                    let artifact = format!("{name}/{scope_tag}/{}/factory", learner.name());
                    let (diags, held) = lint_filter(&artifact, &run.factory_filter_for(0, &learner));
                    if !diags.is_empty() {
                        eprintln!("{}", render(&diags));
                    }
                    row.absorb(&diags, held);
                }
            }
            table.push_row(vec![
                name.to_string(),
                row.filters.to_string(),
                row.errors.to_string(),
                row.warnings.to_string(),
                format!("{}/{}", row.proofs_held, row.filters),
                (row.errors + row.warnings).to_string(),
            ]);
        }
        for report in
            [check_store_protocol(StoreProtoConfig::default()), check_serve_protocol(ServeProtoConfig::default())]
        {
            if !report.is_clean() {
                eprintln!("{}", render(&report.diagnostics));
            }
            let errors = report.diagnostics.iter().filter(|d| d.severity == Severity::Error).count();
            let warnings = report.diagnostics.len() - errors;
            table.push_row(vec![
                report.machine.clone(),
                report.states.to_string(),
                errors.to_string(),
                warnings.to_string(),
                "-".into(),
                report.diagnostics.len().to_string(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_machine::registry_names;

    #[test]
    fn the_lint_sweep_is_all_clean_with_proofs_held() {
        let e = Experiments::new(0.02);
        let table = e.lint(&e.matrix(), &e.superblock_matrix());
        let machines = registry_names().len();
        assert_eq!(table.row_count(), machines + 2, "one row per machine plus the two protocol machines");
        for row in 0..machines {
            assert_eq!(table.cell(row, 0), registry_names()[row]);
            let linted: usize = table.cell(row, 1).parse().unwrap();
            assert!(linted > 0, "{}: sweep linted no filters", table.cell(row, 0));
            let total: usize = table.cell(row, 5).parse().unwrap();
            assert_eq!(total, 0, "{}: {total} diagnostics on untampered artifacts", table.cell(row, 0));
            let proof = table.cell(row, 4);
            assert_eq!(proof, format!("{linted}/{linted}"), "{}: proof must hold everywhere", table.cell(row, 0));
        }
        for (row, machine) in [(machines, "filter-store"), (machines + 1, "wts-serve")] {
            assert_eq!(table.cell(row, 0), machine);
            let states: usize = table.cell(row, 1).parse().unwrap();
            assert!(states > 10, "{machine}: the explorer visited a real state space, got {states}");
            assert_eq!(table.cell(row, 5), "0", "{machine}: protocol diagnostics on the faithful model");
        }
    }
}
