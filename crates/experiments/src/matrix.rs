//! Cross-machine artifacts: the machine registry pushed through the
//! full pipeline, the induced rule sets compared side by side, and the
//! transfer table answering the reproduction's re-derivation question —
//! does a rule set induced for one machine work on another, or must the
//! filter be retrained per target (paper §4)?

use crate::table::{f2, f3, Table};
use crate::{Experiments, SuiteKind, SUPERBLOCK_RATIO, THRESHOLDS};
use wts_core::{Experiment, ExperimentMatrix, LearnerKind, MatrixRun, ScopeKind, TimingMode};
use wts_jit::{superblock_gain, SuperblockGain};

/// The default error tolerance (percentage points) of the portfolio-best
/// pick: a backend whose LOOCV error is within this many points of the
/// machine's best error is eligible, and the cheapest eligible backend
/// (by its own filter + extraction work) wins. Two points is well inside
/// the paper's run-to-run noise on the small suites, so the pick never
/// trades real accuracy for overhead savings.
pub const PORTFOLIO_TOLERANCE: f64 = 2.0;

/// The default operating point of the calibration table: one unit of
/// compile-time work (filter conditions, masked extraction, scheduling
/// proxy) priced at one application cycle. A JIT under compile-time
/// pressure would deploy a higher value; `repro`'s tables use this
/// neutral point so the policies are compared on the same footing.
pub const CALIBRATION_OPERATING_POINT: f64 = 1.0;

impl Experiments {
    /// Runs the full pipeline for every registry machine over the FP
    /// suite's programs, sharding the machines×methods product across
    /// all cores. The result feeds [`cross_machine`] and
    /// [`machine_sweep`]; build it once and derive both tables.
    ///
    /// Deterministic timing keeps the sweep reproducible — no published
    /// artifact reads the matrix's wall-clock channels.
    ///
    /// [`cross_machine`]: Experiments::cross_machine
    /// [`machine_sweep`]: Experiments::machine_sweep
    pub fn matrix(&self) -> MatrixRun {
        let template = Experiment::new(self.machine().clone()).with_timing(TimingMode::Deterministic);
        ExperimentMatrix::over_registry().with_template(template).run(self.run(SuiteKind::Fp).programs())
    }

    /// The transfer table: train the t=`t` factory rule set on the row
    /// machine's labels, score it on the column machine's labels. The
    /// diagonal is self-error; a large off-diagonal excess is the
    /// paper's case for re-deriving the filter per target machine.
    pub fn cross_machine(&self, matrix: &MatrixRun, t: u32) -> Table {
        let names = matrix.machine_names();
        let mut headers = vec![format!("Train\\Eval (t={t})")];
        headers.extend(names.iter().map(|n| n.to_string()));
        let mut table = Table::new("Cross-machine transfer: classification error % of induced rule sets", headers);
        for (name, row) in names.iter().zip(matrix.transfer_errors(t)) {
            let mut cells = vec![name.to_string()];
            cells.extend(row.iter().map(|&e| f2(e)));
            table.push_row(cells);
        }
        table
    }

    /// The filter-cost table: per registry machine, the honest overhead
    /// of the threshold-`t` LOOCV filters — conditions actually
    /// evaluated (short-circuit aware) and demand-masked extraction
    /// work — as absolute work units and as a fraction of the machine's
    /// full always-schedule cost. The paper's premise (and Chmiela's and
    /// Streeter's, for selectors in general) is that this fraction stays
    /// near zero on every target; this table is where the reproduction
    /// shows it.
    pub fn filter_overhead(&self, matrix: &MatrixRun, t: u32) -> Table {
        let headers = vec![
            format!("Machine (t={t})"),
            "Filter work".into(),
            "Feature work".into(),
            "Sched work (LS)".into(),
            "Overhead %".into(),
            "Work ratio".into(),
        ];
        let mut table = Table::new("Filter overhead as a fraction of scheduling work, per machine", headers);
        for (name, times) in matrix.filter_cost(t) {
            table.push_row(vec![
                name,
                times.filter_work.to_string(),
                times.feature_work.to_string(),
                times.always_work.to_string(),
                f2(times.overhead_fraction() * 100.0),
                f2(times.work_ratio()),
            ]);
        }
        table
    }

    /// The learner portfolio table: per registry machine, every
    /// [`LearnerKind::portfolio`] backend's aggregate LOOCV
    /// classification error, geometric-mean predicted/app time ratios,
    /// lowered model size, and honest filter + extraction overhead (the
    /// PR 3 work accounting) at threshold `t` — followed by one
    /// `best=<learner>` row per machine repeating the portfolio-best
    /// pick: the cheapest backend within `tolerance_percent` points of
    /// the machine's best error (the Streeter/Chmiela selection rule —
    /// accuracy buys nothing once errors are indistinguishable, so
    /// minimize selector spend). Use [`PORTFOLIO_TOLERANCE`] unless an
    /// experiment sweeps the tolerance itself.
    pub fn portfolio(&self, matrix: &MatrixRun, t: u32, tolerance_percent: f64) -> Table {
        let headers = vec![
            format!("Machine (t={t})"),
            "Learner".into(),
            "Error %".into(),
            "Predicted %".into(),
            "App ratio".into(),
            "Conds".into(),
            "Overhead %".into(),
            "Work ratio".into(),
        ];
        let mut table = Table::new(
            format!("Learner portfolio: per-machine backend comparison (best = cheapest within {tolerance_percent} error pts)"),
            headers,
        );
        for mp in matrix.portfolio(t, &LearnerKind::portfolio(), tolerance_percent) {
            for entry in &mp.entries {
                table.push_row(portfolio_cells(&mp.machine, &entry.learner, entry));
            }
            let best = mp.best_entry();
            table.push_row(portfolio_cells(&mp.machine, &format!("best={}", best.learner), best));
        }
        table
    }

    /// The calibration table: per registry machine, the threshold-`t`
    /// LOOCV filters evaluated under both decision policies, bracketed
    /// by the per-unit oracle. Columns are expected net application
    /// cycles ([`EvalTimes::net_cycles`](wts_core::EvalTimes::net_cycles)
    /// at `cycles_per_work`) and scheduled-unit counts for:
    ///
    /// * **hard** — the paper's fixed operating point (schedule iff a
    ///   rule fired), bit-identical to the boolean seam;
    /// * **eb** — the expected-benefit policy, each fold deciding with a
    ///   [`BenefitModel`](wts_core::BenefitModel) calibrated on the
    ///   *other* benchmarks (the LOOCV protocol applied to calibration);
    /// * **oracle** — schedules exactly the units whose measured benefit
    ///   beats their own scheduling spend, charging no filter. The
    ///   non-deployable ceiling.
    ///
    /// The `Δ(eb−hard)` column is the headline: where it is positive,
    /// cost-sensitive decisions recover cycles the fixed threshold
    /// leaves on the table — without retraining anything.
    pub fn calibration(&self, matrix: &MatrixRun, t: u32, cycles_per_work: f64) -> Table {
        let headers = vec![
            format!("Machine (t={t}, c={cycles_per_work})"),
            "Rate".into(),
            "Hard net".into(),
            "EB net".into(),
            "Oracle net".into(),
            "Δ(eb−hard)".into(),
            "Sched hard".into(),
            "Sched eb".into(),
            "Sched oracle".into(),
        ];
        let mut table =
            Table::new("Calibration: expected net application cycles per decision policy, per machine", headers);
        for row in matrix.calibration(t, cycles_per_work) {
            let hard = row.baseline.net_cycles(cycles_per_work);
            let eb = row.expected_benefit.net_cycles(cycles_per_work);
            table.push_row(vec![
                row.machine,
                f3(row.model.saved_per_inst),
                format!("{hard:.0}"),
                format!("{eb:.0}"),
                format!("{:.0}", row.oracle.net_cycles(cycles_per_work)),
                format!("{:.0}", eb - hard),
                row.baseline.scheduled_blocks.to_string(),
                row.expected_benefit.scheduled_blocks.to_string(),
                row.oracle.scheduled_blocks.to_string(),
            ]);
        }
        table
    }

    /// The superblock-scope registry sweep: the same FP corpus pushed
    /// through the full pipeline on every registry machine, but with
    /// tracing, labeling, training and evaluation operating per formed
    /// superblock trace (ratio [`SUPERBLOCK_RATIO`]) instead of per
    /// basic block. Pair it with [`matrix`](Experiments::matrix) (the
    /// block-scope sweep) and feed both to
    /// [`superblock_scope`](Experiments::superblock_scope).
    pub fn superblock_matrix(&self) -> MatrixRun {
        let template = Experiment::new(self.machine().clone())
            .with_timing(TimingMode::Deterministic)
            .with_scope(ScopeKind::Superblock(SUPERBLOCK_RATIO));
        ExperimentMatrix::over_registry().with_template(template).run(self.run(SuiteKind::Fp).programs())
    }

    /// The `repro superblock` table: per registry machine, the paper's
    /// filter question answered at both scopes side by side — LOOCV
    /// classification error, deterministic scheduling-work ratio and
    /// honest filter + extraction overhead for block versus superblock
    /// scope — plus the paper's "extra 1–2%" column (the additional
    /// application-level gain of speculative trace scheduling over
    /// local scheduling on that machine) and the features the
    /// superblock-scope factory rule set actually consults (the
    /// trace-shape features showing up here is the point of the new
    /// scenario).
    ///
    /// # Panics
    ///
    /// Panics if the two matrices cover different machine lists.
    pub fn superblock_scope(&self, block: &MatrixRun, superblock: &MatrixRun, t: u32) -> Table {
        assert_eq!(block.machine_names(), superblock.machine_names(), "matrices must sweep the same registry");
        let headers = vec![
            format!("Machine (t={t})"),
            "Err% blk".into(),
            "Err% sb".into(),
            "Ratio blk".into(),
            "Ratio sb".into(),
            "Ovh% blk".into(),
            "Ovh% sb".into(),
            "Extra %".into(),
            "SB filter reads".into(),
        ];
        let mut table =
            Table::new(format!("Scope scenario: block vs superblock (ratio {SUPERBLOCK_RATIO}%) per machine"), headers);
        let learner = LearnerKind::default();
        let programs = self.run(SuiteKind::Fp).programs();
        for (machine, name) in block.machines().iter().zip(block.machine_names()) {
            let b = block.run_for(name).learner_eval(t, &learner);
            let s = superblock.run_for(name).learner_eval(t, &learner);
            let mut gain = SuperblockGain::default();
            for program in programs {
                gain.accumulate(&superblock_gain(program, machine, SUPERBLOCK_RATIO));
            }
            let reads = superblock.run_for(name).factory_filter(t).rules().referenced_attr_names().join(",");
            table.push_row(vec![
                name.to_string(),
                f2(b.error_percent),
                f2(s.error_percent),
                f3(b.times.work_ratio()),
                f3(s.times.work_ratio()),
                f2(b.times.overhead_fraction() * 100.0),
                f2(s.times.overhead_fraction() * 100.0),
                f2(100.0 * gain.extra_improvement()),
                if reads.is_empty() { "-".into() } else { reads },
            ]);
        }
        table
    }

    /// Per-machine threshold sweep, side by side: LS instance counts at
    /// every paper threshold (Table 5 per machine), plus each machine's
    /// induced t=0 rule count — how much structure there is to learn on
    /// each target.
    pub fn machine_sweep(&self, matrix: &MatrixRun) -> Table {
        let mut headers = vec!["Machine".to_string()];
        headers.extend(THRESHOLDS.iter().map(|t| format!("t={t}")));
        headers.push("Rules(t=0)".into());
        let mut table = Table::new("Cross-machine threshold sweep: LS instances per machine", headers);
        let sweep = matrix.ls_sweep(&THRESHOLDS);
        let filters = matrix.factory_filters(0);
        for ((name, counts), (_, filter)) in sweep.iter().zip(&filters) {
            let mut cells = vec![name.clone()];
            cells.extend(counts.iter().map(|c| c.to_string()));
            cells.push(filter.rules().len().to_string());
            table.push_row(cells);
        }
        table
    }
}

/// One portfolio table row: the shared cell layout of the per-learner
/// rows and the `best=` summary row.
fn portfolio_cells(machine: &str, learner: &str, e: &wts_core::PortfolioEntry) -> Vec<String> {
    vec![
        machine.to_string(),
        learner.to_string(),
        f2(e.error_percent),
        f2(e.predicted_percent),
        f3(e.app_ratio),
        e.conditions.to_string(),
        f2(e.times.overhead_fraction() * 100.0),
        f3(e.times.work_ratio()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_core::Learner;
    use wts_machine::registry_names;

    fn harness() -> Experiments {
        Experiments::new(0.02)
    }

    #[test]
    fn cross_machine_table_is_square_over_the_registry() {
        let e = harness();
        let m = e.matrix();
        let t = e.cross_machine(&m, 0);
        let n = registry_names().len();
        assert_eq!(t.row_count(), n);
        assert_eq!(t.headers().len(), n + 1);
        for row in 0..n {
            assert_eq!(t.cell(row, 0), registry_names()[row]);
            for col in 1..=n {
                let e: f64 = t.cell(row, col).parse().unwrap();
                assert!((0.0..=100.0).contains(&e), "error {e}% out of range");
            }
        }
    }

    #[test]
    fn machine_sweep_counts_fall_with_threshold() {
        let e = harness();
        let m = e.matrix();
        let t = e.machine_sweep(&m);
        assert_eq!(t.row_count(), registry_names().len());
        for row in 0..t.row_count() {
            let counts: Vec<usize> = (1..=THRESHOLDS.len()).map(|c| t.cell(row, c).parse().unwrap()).collect();
            for w in counts.windows(2) {
                assert!(w[1] <= w[0], "LS counts must fall with t: {counts:?}");
            }
        }
    }

    #[test]
    fn filter_overhead_table_shows_small_fractions_everywhere() {
        let e = harness();
        let m = e.matrix();
        let t = e.filter_overhead(&m, 0);
        assert_eq!(t.row_count(), registry_names().len());
        for row in 0..t.row_count() {
            assert_eq!(t.cell(row, 0), registry_names()[row]);
            let overhead: f64 = t.cell(row, 4).parse().unwrap();
            assert!((0.0..50.0).contains(&overhead), "overhead {overhead}% should be far below scheduling cost");
            let ratio: f64 = t.cell(row, 5).parse().unwrap();
            assert!(ratio < 1.0, "a filter must beat always-scheduling on work, got {ratio}");
        }
    }

    #[test]
    fn portfolio_table_covers_every_machine_and_backend() {
        let e = harness();
        let m = e.matrix();
        let t = e.portfolio(&m, 0, PORTFOLIO_TOLERANCE);
        let learners = LearnerKind::portfolio();
        let rows_per_machine = learners.len() + 1; // backends + the best= summary row
        assert_eq!(t.row_count(), registry_names().len() * rows_per_machine);
        for (i, name) in registry_names().iter().enumerate() {
            let base = i * rows_per_machine;
            for (j, learner) in learners.iter().enumerate() {
                assert_eq!(t.cell(base + j, 0), *name);
                assert_eq!(t.cell(base + j, 1), learner.name());
                let err: f64 = t.cell(base + j, 2).parse().unwrap();
                assert!((0.0..=100.0).contains(&err), "{name}/{}: error {err}%", learner.name());
            }
            let best = t.cell(base + learners.len(), 1);
            assert!(
                learners.iter().any(|l| best == format!("best={}", l.name())),
                "{name}: best row '{best}' must name a portfolio backend"
            );
        }
    }

    #[test]
    fn portfolio_best_rows_repeat_an_existing_entry() {
        let e = harness();
        let m = e.matrix();
        let t = e.portfolio(&m, 0, PORTFOLIO_TOLERANCE);
        let rows_per_machine = LearnerKind::portfolio().len() + 1;
        for i in 0..registry_names().len() {
            let base = i * rows_per_machine;
            let best_row: Vec<&str> = (1..t.headers().len()).map(|c| t.cell(base + rows_per_machine - 1, c)).collect();
            let matched = (0..rows_per_machine - 1).any(|j| {
                let name_matches = format!("best={}", t.cell(base + j, 1)) == best_row[0];
                let cells_match = (2..t.headers().len()).all(|c| t.cell(base + j, c) == best_row[c - 1]);
                name_matches && cells_match
            });
            assert!(matched, "machine {i}: the best= row must repeat one backend's cells verbatim");
        }
    }

    #[test]
    fn calibration_table_brackets_policies_and_pays_off_somewhere() {
        let e = harness();
        let m = e.matrix();
        let t = e.calibration(&m, 0, CALIBRATION_OPERATING_POINT);
        assert_eq!(t.row_count(), registry_names().len());
        let mut eb_wins = 0usize;
        for row in 0..t.row_count() {
            assert_eq!(t.cell(row, 0), registry_names()[row]);
            let hard: f64 = t.cell(row, 2).parse().unwrap();
            let eb: f64 = t.cell(row, 3).parse().unwrap();
            let oracle: f64 = t.cell(row, 4).parse().unwrap();
            assert!(oracle >= hard && oracle >= eb, "row {row}: the oracle is the ceiling");
            let delta: f64 = t.cell(row, 5).parse().unwrap();
            assert!((delta - (eb - hard)).abs() <= 1.0, "row {row}: Δ column disagrees with its operands");
            if eb >= hard {
                eb_wins += 1;
            }
            let sched_hard: usize = t.cell(row, 6).parse().unwrap();
            let sched_eb: usize = t.cell(row, 7).parse().unwrap();
            assert!(sched_hard > 0 && sched_eb > 0, "row {row}: both policies must schedule something");
        }
        assert!(eb_wins >= 1, "expected-benefit must reach the fixed threshold on at least one machine");
    }

    #[test]
    fn superblock_scope_table_covers_every_machine_with_sane_cells() {
        let e = harness();
        let block = e.matrix();
        let sb = e.superblock_matrix();
        let t = e.superblock_scope(&block, &sb, 0);
        assert_eq!(t.row_count(), registry_names().len());
        for row in 0..t.row_count() {
            assert_eq!(t.cell(row, 0), registry_names()[row]);
            for col in 1..=2 {
                let err: f64 = t.cell(row, col).parse().unwrap();
                assert!((0.0..=100.0).contains(&err), "error {err}% out of range");
            }
            for col in 3..=4 {
                let ratio: f64 = t.cell(row, col).parse().unwrap();
                assert!(ratio < 1.0, "a filter must beat always-scheduling on work, got {ratio}");
            }
            let extra: f64 = t.cell(row, 7).parse().unwrap();
            assert!((0.0..25.0).contains(&extra), "extra gain {extra}% implausible");
            assert!(!t.cell(row, 8).is_empty(), "the SB demand column always prints something");
        }
    }

    #[test]
    fn superblock_matrix_decides_over_fewer_coarser_units() {
        let e = harness();
        let block = e.matrix();
        let sb = e.superblock_matrix();
        assert_eq!(sb.scope(), ScopeKind::Superblock(SUPERBLOCK_RATIO));
        for name in registry_names() {
            let b = block.run_for(name).all_traces().len();
            let s = sb.run_for(name).all_traces().len();
            assert!(s < b, "{name}: superblock scope must merge units ({s} vs {b})");
            assert!(
                sb.run_for(name)
                    .all_traces()
                    .iter()
                    .any(|r| r.features.get(wts_features::FeatureKind::TraceWidth) > 1.0),
                "{name}: some traces must actually merge"
            );
        }
    }

    #[test]
    fn scheduling_pays_off_more_on_the_embedded_core() {
        let e = harness();
        let m = e.matrix();
        let sweep = m.ls_sweep(&[0]);
        let count_for = |name: &str| sweep.iter().find(|(n, _)| n == name).map(|(_, c)| c[0]).unwrap();
        // The slow-memory in-order core leaves far more blocks worth
        // scheduling than the wide OoO machine recovers on its own.
        assert!(
            count_for("embedded") >= count_for("wide4"),
            "embedded {} vs wide4 {}",
            count_for("embedded"),
            count_for("wide4")
        );
    }
}
