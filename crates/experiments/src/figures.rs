//! Figures 1–4: efficiency/effectiveness series and the sample filter,
//! as views over the suite [`ExperimentRun`](wts_core::ExperimentRun)s.

use crate::table::{f3, Table};
use crate::{Experiments, SuiteKind, THRESHOLDS};
use wts_core::AlwaysSchedule;
use wts_ripper::geometric_mean;

/// The (a)/(b) pair of one figure: scheduling time and application time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigurePair {
    /// (a): scheduling time relative to always-scheduling.
    pub sched_time: Table,
    /// (b): application running time relative to never-scheduling.
    pub app_time: Table,
}

impl std::fmt::Display for FigurePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.sched_time)?;
        writeln!(f, "{}", self.app_time)
    }
}

impl Experiments {
    fn figure_pair(&self, kind: SuiteKind, title_a: &str, title_b: &str) -> FigurePair {
        let run = self.run(kind);
        let mut headers = vec!["Threshold".to_string()];
        headers.extend(run.names().iter().cloned());
        headers.push("Geo. mean".into());

        let mut sched_headers = headers.clone();
        sched_headers.push("Measured gm".into());
        let mut sched = Table::new(title_a, sched_headers);
        let mut app = Table::new(title_b, headers);

        // Reference row: the fixed LS strategy (ratio 1.0 by definition
        // for scheduling time; measured ratio for app time).
        let mut ls_row = vec!["LS".to_string()];
        let mut ls_ratios = Vec::new();
        for name in run.names() {
            let r = run.app_time_with(name, &AlwaysSchedule);
            ls_ratios.push(r);
            ls_row.push(f3(r));
        }
        ls_row.push(f3(geometric_mean(&ls_ratios)));
        app.push_row(ls_row);

        for &th in &THRESHOLDS {
            let mut srow = vec![format!("t={th}")];
            let mut arow = vec![format!("L/N t={th}")];
            let mut sratios = Vec::new();
            let mut mratios = Vec::new();
            let mut aratios = Vec::new();
            for name in run.names() {
                let times = run.sched_time(th, name);
                let s = times.work_ratio();
                sratios.push(s);
                mratios.push(times.measured_ratio());
                srow.push(f3(s));
                let a = run.app_time(th, name);
                aratios.push(a);
                arow.push(f3(a));
            }
            srow.push(f3(geometric_mean(&sratios)));
            srow.push(f3(geometric_mean(&mratios)));
            arow.push(f3(geometric_mean(&aratios)));
            sched.push_row(srow);
            app.push_row(arow);
        }
        FigurePair { sched_time: sched, app_time: app }
    }

    /// Figure 1: efficiency and effectiveness of the t=0 filter on
    /// SPECjvm98, per benchmark (the paper's bar charts, as a table; the
    /// full threshold sweep of Figure 2 is included for context).
    pub fn fig1(&self) -> FigurePair {
        self.figure_pair(
            SuiteKind::Jvm98,
            "Figure 1(a): Scheduling time relative to LS (t=0 row)",
            "Figure 1(b): Application running time relative to NS (t=0 row)",
        )
    }

    /// Figure 2: the threshold sweep on SPECjvm98.
    pub fn fig2(&self) -> FigurePair {
        self.figure_pair(
            SuiteKind::Jvm98,
            "Figure 2(a): Scheduling time relative to LS, sweeping t",
            "Figure 2(b): Application running time relative to NS, sweeping t",
        )
    }

    /// Figure 3: the threshold sweep on the floating-point suite.
    pub fn fig3(&self) -> FigurePair {
        self.figure_pair(
            SuiteKind::Fp,
            "Figure 3(a): Scheduling time relative to LS (FP suite)",
            "Figure 3(b): Application running time relative to NS (FP suite)",
        )
    }

    /// Figure 4: a sample induced filter, trained on six of the seven
    /// SPECjvm98 benchmarks (the first LOOCV fold) at the paper's best
    /// threshold t=20, printed in Ripper's format.
    pub fn fig4(&self) -> String {
        let run = self.run(SuiteKind::Jvm98);
        let held_out = &run.names()[0];
        let filter = run.filter_for(20, held_out);
        format!("Figure 4: Induced heuristic (trained on SPECjvm98 minus {held_out}, t=20)\n{}", filter.rules())
    }

    /// Trains one filter on the *whole* jvm98 corpus at threshold `t` and
    /// renders it (the "at the factory" deliverable).
    pub fn factory_filter(&self, t: u32) -> String {
        let filter = self.run(SuiteKind::Jvm98).factory_filter(t);
        format!("Factory filter (all SPECjvm98, t={t})\n{}", filter.rules())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Experiments {
        Experiments::new(0.02)
    }

    #[test]
    fn fig2_sched_time_filter_is_cheaper_than_ls() {
        let e = harness();
        let pair = e.fig2();
        // Every threshold's geometric-mean work ratio must be below 1.
        let cols = pair.sched_time.headers().len();
        for row in 0..pair.sched_time.row_count() {
            let v: f64 = pair.sched_time.cell(row, cols - 1).parse().unwrap();
            assert!(v < 1.0, "filtered scheduling must beat always-scheduling, got {v}");
        }
    }

    #[test]
    fn fig2_app_time_between_ls_and_ns() {
        let e = harness();
        let pair = e.fig2();
        let cols = pair.app_time.headers().len();
        let ls: f64 = pair.app_time.cell(0, cols - 1).parse().unwrap();
        assert!(ls < 1.0, "always-scheduling should improve app time");
        for row in 1..pair.app_time.row_count() {
            let v: f64 = pair.app_time.cell(row, cols - 1).parse().unwrap();
            assert!(v <= 1.005, "filters must not noticeably degrade app time, got {v}");
            assert!(v >= ls - 0.01, "filters cannot beat LS by construction margin, got {v} vs {ls}");
        }
    }

    #[test]
    fn fig3_fp_suite_benefits_more() {
        let e = harness();
        let jvm = e.fig2();
        let fp = e.fig3();
        let jc = jvm.app_time.headers().len();
        let fc = fp.app_time.headers().len();
        let jvm_ls: f64 = jvm.app_time.cell(0, jc - 1).parse().unwrap();
        let fp_ls: f64 = fp.app_time.cell(0, fc - 1).parse().unwrap();
        assert!(fp_ls < jvm_ls, "FP suite should gain more from scheduling ({fp_ls} vs {jvm_ls})");
    }

    #[test]
    fn fig4_is_ripper_format() {
        let e = harness();
        let s = e.fig4();
        assert!(s.contains("list :-") || s.contains("orig :- (default)"), "got: {s}");
    }
}
