//! Regeneration of every table and figure in Cavazos & Moss (PLDI 2004).
//!
//! [`Experiments`] generates the two benchmark suites and hands each to
//! a [`wts_core::Experiment`] pipeline, which traces (method-sharded
//! across threads), labels, trains (fold-sharded LOOCV, cached per
//! threshold) and evaluates. Every table/figure method is a thin view
//! over the resulting [`ExperimentRun`]s. The `repro` binary drives it:
//!
//! ```text
//! repro --scale 1.0 all          # everything, paper-sized corpus
//! repro table3                   # one artifact
//! repro --scale 0.1 fig2         # quick look
//! repro --scale 0.1 matrix       # cross-machine sweep over the registry
//! ```
//!
//! Methods return [`Table`]s (or strings for Figure 4) so tests can assert
//! on cells; `Display` renders the paper-style text.

mod extensions;
mod figures;
mod lint;
mod matrix;
mod serve;
mod statics;
mod table;
mod tables;
mod verify;

pub use matrix::{CALIBRATION_OPERATING_POINT, PORTFOLIO_TOLERANCE};
pub use serve::ServeLoad;
pub use statics::{table1, table2, table7};
pub use table::Table;

use wts_core::{Experiment, ExperimentRun};
use wts_jit::Suite;
use wts_machine::MachineConfig;

/// The threshold sweep of the paper: 0..=50 percent in steps of 5.
pub const THRESHOLDS: [u32; 11] = [0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

/// The superblock formation ratio (percent) every scope artifact uses:
/// a successor within `0.70×..1/0.70×` of the trace entry's count
/// extends the trace.
pub const SUPERBLOCK_RATIO: u32 = 70;

/// Which suite an artifact is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SuiteKind {
    /// The SPECjvm98-like suite (Tables 2–6, Figures 1, 2, 4).
    Jvm98,
    /// The floating-point suite (Table 7, Figure 3).
    Fp,
}

/// The experiment harness: one completed pipeline run per suite.
pub struct Experiments {
    machine: MachineConfig,
    scale: f64,
    jvm98: ExperimentRun,
    fp: ExperimentRun,
}

impl Experiments {
    /// Builds the harness at the given corpus scale (1.0 = paper-sized,
    /// ~45k jvm98 blocks; tests use 0.02–0.1). LOOCV training shards
    /// across all cores; tracing stays serial so the wall-clock `*_ns`
    /// channels behind the calibrate table and the figures' measured
    /// column are free of multi-worker contention noise.
    pub fn new(scale: f64) -> Experiments {
        let machine = MachineConfig::ppc7410();
        let pipeline = Experiment::new(machine.clone()).with_trace_threads(1);
        let jvm98 = pipeline.run(suite_programs(&Suite::specjvm98(scale)));
        let fp = pipeline.run(suite_programs(&Suite::fp(scale)));
        Experiments { machine, scale, jvm98, fp }
    }

    /// The corpus scale this harness was built at.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The modelled machine.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The completed pipeline run for one suite.
    pub fn run(&self, kind: SuiteKind) -> &ExperimentRun {
        match kind {
            SuiteKind::Jvm98 => &self.jvm98,
            SuiteKind::Fp => &self.fp,
        }
    }
}

fn suite_programs(suite: &Suite) -> Vec<wts_ir::Program> {
    suite.benchmarks().iter().map(|b| b.program().clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn harness() -> Experiments {
        Experiments::new(0.02)
    }

    #[test]
    fn builds_both_suites() {
        let e = harness();
        assert_eq!(e.run(SuiteKind::Jvm98).names().len(), 7);
        assert_eq!(e.run(SuiteKind::Fp).names().len(), 6);
        assert!(e.run(SuiteKind::Jvm98).all_traces().len() > 100);
        assert!((e.scale() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn loocv_is_cached() {
        let e = harness();
        let a = e.run(SuiteKind::Jvm98).loocv_filters(0);
        let b = e.run(SuiteKind::Jvm98).loocv_filters(0);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn filter_for_each_benchmark_exists() {
        let e = harness();
        let run = e.run(SuiteKind::Jvm98);
        for name in run.names().to_vec() {
            let f = run.filter_for(0, &name);
            assert_eq!(f.threshold_percent(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "no filter for benchmark")]
    fn unknown_benchmark_panics() {
        let e = harness();
        e.run(SuiteKind::Jvm98).filter_for(0, "nope");
    }
}
