//! Regeneration of every table and figure in Cavazos & Moss (PLDI 2004).
//!
//! [`Experiments`] generates the two benchmark suites, runs the
//! instrumented scheduling pass once per benchmark, caches leave-one-out
//! filters per threshold, and exposes one method per table/figure. The
//! `repro` binary drives it:
//!
//! ```text
//! repro --scale 1.0 all          # everything, paper-sized corpus
//! repro table3                   # one artifact
//! repro --scale 0.1 fig2         # quick look
//! ```
//!
//! Methods return [`Table`]s (or strings for Figure 4) so tests can assert
//! on cells; `Display` renders the paper-style text.

mod extensions;
mod figures;
mod statics;
mod table;
mod tables;

pub use statics::{table1, table2, table7};
pub use table::Table;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use wts_core::{collect_trace, LearnedFilter, TraceRecord, TrainConfig, train_loocv};
use wts_ir::Program;
use wts_jit::Suite;
use wts_machine::MachineConfig;

/// The threshold sweep of the paper: 0..=50 percent in steps of 5.
pub const THRESHOLDS: [u32; 11] = [0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

/// Which suite an artifact is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SuiteKind {
    /// The SPECjvm98-like suite (Tables 2–6, Figures 1, 2, 4).
    Jvm98,
    /// The floating-point suite (Table 7, Figure 3).
    Fp,
}

pub(crate) struct SuiteData {
    pub names: Vec<String>,
    pub programs: Vec<Program>,
    pub traces: Vec<Vec<TraceRecord>>,
    pub all_traces: Vec<TraceRecord>,
}

impl SuiteData {
    fn build(suite: &Suite, machine: &MachineConfig) -> SuiteData {
        let mut names = Vec::new();
        let mut programs = Vec::new();
        let mut traces = Vec::new();
        let mut all_traces = Vec::new();
        for b in suite.benchmarks() {
            names.push(b.name().to_string());
            programs.push(b.program().clone());
            let t = collect_trace(b.program(), machine);
            all_traces.extend(t.iter().cloned());
            traces.push(t);
        }
        SuiteData { names, programs, traces, all_traces }
    }
}

/// Name-sorted `(benchmark, filter)` pairs from one LOOCV training run.
type LoocvFilters = Rc<Vec<(String, LearnedFilter)>>;

/// The experiment harness: generated suites, traces and cached filters.
pub struct Experiments {
    machine: MachineConfig,
    scale: f64,
    jvm98: SuiteData,
    fp: SuiteData,
    loocv_cache: RefCell<BTreeMap<(SuiteKind, u32), LoocvFilters>>,
}

impl Experiments {
    /// Builds the harness at the given corpus scale (1.0 = paper-sized,
    /// ~45k jvm98 blocks; tests use 0.02–0.1).
    pub fn new(scale: f64) -> Experiments {
        let machine = MachineConfig::ppc7410();
        let jvm98 = SuiteData::build(&Suite::specjvm98(scale), &machine);
        let fp = SuiteData::build(&Suite::fp(scale), &machine);
        Experiments { machine, scale, jvm98, fp, loocv_cache: RefCell::new(BTreeMap::new()) }
    }

    /// The corpus scale this harness was built at.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The modelled machine.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    pub(crate) fn suite(&self, kind: SuiteKind) -> &SuiteData {
        match kind {
            SuiteKind::Jvm98 => &self.jvm98,
            SuiteKind::Fp => &self.fp,
        }
    }

    /// Leave-one-benchmark-out filters for a suite at threshold `t`,
    /// cached across artifacts (name-sorted pairs).
    pub(crate) fn loocv(&self, kind: SuiteKind, t: u32) -> LoocvFilters {
        if let Some(hit) = self.loocv_cache.borrow().get(&(kind, t)) {
            return Rc::clone(hit);
        }
        let data = self.suite(kind);
        let filters = Rc::new(train_loocv(&data.all_traces, &TrainConfig::with_threshold(t)));
        self.loocv_cache.borrow_mut().insert((kind, t), Rc::clone(&filters));
        filters
    }

    /// The filter trained for (i.e. *excluding*) the named benchmark.
    pub(crate) fn filter_for(&self, kind: SuiteKind, t: u32, bench: &str) -> LearnedFilter {
        let filters = self.loocv(kind, t);
        filters
            .iter()
            .find(|(n, _)| n == bench)
            .map(|(_, f)| f.clone())
            .unwrap_or_else(|| panic!("no filter for benchmark {bench}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Experiments {
        Experiments::new(0.02)
    }

    #[test]
    fn builds_both_suites() {
        let e = harness();
        assert_eq!(e.suite(SuiteKind::Jvm98).names.len(), 7);
        assert_eq!(e.suite(SuiteKind::Fp).names.len(), 6);
        assert!(e.suite(SuiteKind::Jvm98).all_traces.len() > 100);
        assert!((e.scale() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn loocv_is_cached() {
        let e = harness();
        let a = e.loocv(SuiteKind::Jvm98, 0);
        let b = e.loocv(SuiteKind::Jvm98, 0);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn filter_for_each_benchmark_exists() {
        let e = harness();
        for name in &e.suite(SuiteKind::Jvm98).names.clone() {
            let f = e.filter_for(SuiteKind::Jvm98, 0, name);
            assert_eq!(f.threshold_percent(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "no filter for benchmark")]
    fn unknown_benchmark_panics() {
        let e = harness();
        e.filter_for(SuiteKind::Jvm98, 0, "nope");
    }
}
