//! `repro verify`: the pipeline-wide static-checker sweep.
//!
//! Runs the full `wts-verify` pass — dependence soundness against the
//! O(n²) oracle, timing legality against the independent re-simulation,
//! speculation safety for superblock traces — over the generated FP
//! corpus on **every registry machine × every scheduling policy × both
//! scopes**, and folds the result into one diagnostics row per machine.
//! A healthy pipeline prints all-zero diagnostic columns; anything else
//! is a bug in `wts-deps`, `wts-sched` or `wts-machine`, and the
//! offending diagnostics are echoed to stderr.

use crate::table::Table;
use crate::{Experiments, SuiteKind, SUPERBLOCK_RATIO};
use wts_ir::ScopeKind;
use wts_machine::registry;
use wts_sched::SchedulePolicy;
use wts_verify::{render, verify_program, Analysis, VerifyReport};

/// The policies the sweep exercises: every deterministic heuristic plus
/// one seeded random policy (the adversarial one — any ordering the
/// ready-queue can legally emit must verify).
pub(crate) fn sweep_policies() -> [SchedulePolicy; 4] {
    [
        SchedulePolicy::CriticalPath,
        SchedulePolicy::EarliestStart,
        SchedulePolicy::CriticalPathOnly,
        SchedulePolicy::Random(0x5EED),
    ]
}

/// Both scope axes: per-block and speculative superblock traces at the
/// standard formation ratio.
pub(crate) fn sweep_scopes() -> [ScopeKind; 2] {
    [ScopeKind::Block, ScopeKind::Superblock(SUPERBLOCK_RATIO)]
}

impl Experiments {
    /// The per-machine diagnostics table of the checker sweep.
    pub fn verify(&self) -> Table {
        let mut table = Table::new(
            format!("wts-verify: corpus x registry x policy x scope (scale {})", self.scale()),
            vec![
                "machine".into(),
                "units".into(),
                "changed".into(),
                "structure".into(),
                "dependence".into(),
                "timing".into(),
                "speculation".into(),
                "total".into(),
            ],
        );
        let programs = self.run(SuiteKind::Fp).programs();
        for machine in registry() {
            let mut merged: Option<VerifyReport> = None;
            for policy in sweep_policies() {
                for scope in sweep_scopes() {
                    for program in programs {
                        let report = verify_program(program, &machine, policy, scope);
                        match merged.as_mut() {
                            Some(m) => m.merge(report),
                            None => merged = Some(report),
                        }
                    }
                }
            }
            let report = merged.expect("registry sweep covers at least one program");
            if !report.is_clean() {
                eprintln!("{}", render(&report.diagnostics));
            }
            table.push_row(vec![
                report.machine.clone(),
                report.units.to_string(),
                report.changed.to_string(),
                report.count(Analysis::Structure).to_string(),
                report.count(Analysis::Dependence).to_string(),
                report.count(Analysis::Timing).to_string(),
                report.count(Analysis::Speculation).to_string(),
                report.diagnostics.len().to_string(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_sweep_reports_zero_diagnostics_per_registry_machine() {
        let e = Experiments::new(0.02);
        let table = e.verify();
        assert_eq!(table.row_count(), registry().len(), "one row per registry machine");
        for row in 0..table.row_count() {
            let units: usize = table.cell(row, 1).parse().unwrap();
            assert!(units > 0, "{}: sweep examined no units", table.cell(row, 0));
            let total: usize = table.cell(row, 7).parse().unwrap();
            assert_eq!(total, 0, "{}: {} diagnostics on the untampered pipeline", table.cell(row, 0), total);
        }
    }
}
