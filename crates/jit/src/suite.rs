//! The two benchmark suites of the paper (Tables 2 and 7).

use crate::spec::{BenchmarkSpec, OpMix};
use wts_ir::Program;

/// A generated benchmark: its spec plus the concrete program.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    spec: BenchmarkSpec,
    program: Program,
}

impl Benchmark {
    /// Generates the benchmark at the given scale.
    pub fn generate(spec: BenchmarkSpec, scale: f64) -> Benchmark {
        let program = spec.generate(scale);
        // Same eager structural gate as `generate_program`: a benchmark
        // entering a suite is valid IR or the debug build stops here.
        #[cfg(debug_assertions)]
        if let Err(e) = program.validate() {
            panic!("suite generation produced structurally invalid IR for {}: {e}", spec.name);
        }
        Benchmark { spec, program }
    }

    /// The benchmark's name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Its one-line description (Table 2 / Table 7 text).
    pub fn description(&self) -> &str {
        &self.spec.description
    }

    /// The generating spec.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// The generated program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// A named collection of benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct Suite {
    name: String,
    benchmarks: Vec<Benchmark>,
}

impl Suite {
    /// The SPECjvm98-like suite (paper Table 2), generated at `scale`
    /// (1.0 reproduces the paper's ~45k-block corpus).
    pub fn specjvm98(scale: f64) -> Suite {
        Suite {
            name: "SPECjvm98".into(),
            benchmarks: specjvm98_specs().into_iter().map(|s| Benchmark::generate(s, scale)).collect(),
        }
    }

    /// The floating-point suite (paper Table 7).
    pub fn fp(scale: f64) -> Suite {
        Suite { name: "FP".into(), benchmarks: fp_specs().into_iter().map(|s| Benchmark::generate(s, scale)).collect() }
    }

    /// Builds a suite from explicit specs.
    pub fn from_specs(name: impl Into<String>, specs: Vec<BenchmarkSpec>, scale: f64) -> Suite {
        Suite { name: name.into(), benchmarks: specs.into_iter().map(|s| Benchmark::generate(s, scale)).collect() }
    }

    /// Suite name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The benchmarks.
    pub fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Total basic blocks across the suite.
    pub fn block_count(&self) -> usize {
        self.benchmarks.iter().map(|b| b.program.block_count()).sum()
    }
}

fn base(name: &str, description: &str, seed: u64) -> BenchmarkSpec {
    BenchmarkSpec {
        name: name.into(),
        description: description.into(),
        methods: 1080,
        blocks_per_method: (2, 10),
        block_len_mean: 6.0,
        block_len_max: 45,
        mix: OpMix::integer(),
        chain_bias: 0.64,
        pei_prob: 0.30,
        alias_unknown_prob: 0.25,
        mem_slots: 16,
        hot_fraction: 0.08,
        hot_multiplier: (100, 600),
        seed,
    }
}

/// The seven SPECjvm98 benchmark specs (descriptions from Table 2).
pub(crate) fn specjvm98_specs() -> Vec<BenchmarkSpec> {
    let mut compress = base("compress", "Java version of 129.compress from the SPEC CPU95 suite", 0xC0);
    compress.block_len_mean = 7.5;
    compress.chain_bias = 0.56;
    compress.mix.int_load = 0.26;
    compress.mix.int_store = 0.12;
    compress.mix.call = 0.025;
    compress.pei_prob = 0.24;
    compress.hot_fraction = 0.12;

    let mut jess = base("jess", "Puzzle solving expert system shell based on NASA's CLIPS system", 0xC1);
    jess.block_len_mean = 4.6;
    jess.chain_bias = 0.70;
    jess.mix.call = 0.085;
    jess.mix.int_load = 0.24;
    jess.pei_prob = 0.36;

    let mut db = base("db", "Builds an in-memory database and performs various operations on it", 0xC2);
    db.block_len_mean = 5.2;
    db.chain_bias = 0.68;
    db.mix.int_load = 0.30;
    db.mix.int_store = 0.13;
    db.mix.call = 0.06;
    db.pei_prob = 0.38;

    let mut javac = base("javac", "A Java source code to bytecode compiler from JDK 1.0.2", 0xC3);
    javac.block_len_mean = 4.5;
    javac.chain_bias = 0.72;
    javac.mix.call = 0.095;
    javac.pei_prob = 0.40;

    let mut mpegaudio = base("mpegaudio", "Decodes an MPEG-3 audio file", 0xC4);
    mpegaudio.block_len_mean = 11.0;
    mpegaudio.block_len_max = 60;
    mpegaudio.chain_bias = 0.42;
    mpegaudio.mix = OpMix {
        simple_int: 0.22,
        complex_int: 0.02,
        float_arith: 0.24,
        int_load: 0.10,
        float_load: 0.14,
        int_store: 0.04,
        float_store: 0.08,
        call: 0.02,
        safepoint: 0.02,
        system: 0.01,
    };
    mpegaudio.pei_prob = 0.12;
    mpegaudio.hot_fraction = 0.15;

    let mut raytrace = base("raytrace", "A raytracer that works on a scene depicting a dinosaur", 0xC5);
    raytrace.block_len_mean = 8.0;
    raytrace.chain_bias = 0.54;
    raytrace.mix.float_arith = 0.16;
    raytrace.mix.float_load = 0.09;
    raytrace.mix.float_store = 0.04;
    raytrace.mix.simple_int = 0.28;
    raytrace.mix.int_load = 0.16;
    raytrace.pei_prob = 0.18;

    let mut jack = base("jack", "A Java parser generator with lexical analysis", 0xC6);
    jack.block_len_mean = 4.8;
    jack.chain_bias = 0.68;
    jack.mix.call = 0.07;
    jack.mix.int_load = 0.22;
    jack.mix.int_store = 0.11;
    jack.pei_prob = 0.36;

    vec![compress, jess, db, javac, mpegaudio, raytrace, jack]
}

/// The six FP-suite specs (descriptions from Table 7). Numerically
/// intensive code with long FP latencies — the programs for which
/// scheduling matters most on this architecture.
pub(crate) fn fp_specs() -> Vec<BenchmarkSpec> {
    fn fp_base(name: &str, description: &str, seed: u64) -> BenchmarkSpec {
        let mut s = base(name, description, seed);
        s.mix = OpMix::floating_point();
        s.block_len_mean = 13.0;
        s.block_len_max = 70;
        s.chain_bias = 0.40;
        s.pei_prob = 0.12;
        s.hot_fraction = 0.18;
        s.hot_multiplier = (80, 600);
        s.methods = 700;
        s
    }

    let mut linpack = fp_base(
        "linpack",
        "A numerically intensive program used to measure floating point performance of computers",
        0xF0,
    );
    linpack.block_len_mean = 16.0;
    linpack.chain_bias = 0.34;

    let mut power = fp_base("power", "Power pricing system optimization problem solver", 0xF1);
    power.mix.simple_int = 0.24;
    power.mix.float_arith = 0.24;
    power.block_len_mean = 10.0;
    power.chain_bias = 0.48;

    let mut bh = fp_base("bh", "Barnes and Hut N-body force computation algorithm", 0xF2);
    bh.block_len_mean = 11.0;
    bh.chain_bias = 0.46;

    let mut voronoi =
        fp_base("voronoi", "Computes the voronoi diagram of a set of points recursively on the tree", 0xF3);
    voronoi.block_len_mean = 8.0;
    voronoi.chain_bias = 0.54;
    voronoi.mix.call = 0.05;
    voronoi.pei_prob = 0.2;

    let mut aes = fp_base("aes", "A program to test vectors from the NIST standard encryption tests", 0xF4);
    aes.mix = OpMix {
        simple_int: 0.52,
        complex_int: 0.02,
        float_arith: 0.01,
        int_load: 0.20,
        float_load: 0.01,
        int_store: 0.08,
        float_store: 0.01,
        call: 0.01,
        safepoint: 0.02,
        system: 0.02,
    };
    aes.block_len_mean = 15.0;
    aes.chain_bias = 0.36;
    aes.pei_prob = 0.08;

    let mut scimark = fp_base("scimark", "A program for scientific and numerical computation", 0xF5);
    scimark.block_len_mean = 14.0;
    scimark.chain_bias = 0.38;

    vec![linpack, power, bh, voronoi, aes, scimark]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specjvm98_has_seven_benchmarks() {
        let s = Suite::specjvm98(0.02);
        let names: Vec<&str> = s.benchmarks().iter().map(Benchmark::name).collect();
        assert_eq!(names, vec!["compress", "jess", "db", "javac", "mpegaudio", "raytrace", "jack"]);
        assert_eq!(s.name(), "SPECjvm98");
    }

    #[test]
    fn fp_suite_has_six_benchmarks() {
        let s = Suite::fp(0.02);
        let names: Vec<&str> = s.benchmarks().iter().map(Benchmark::name).collect();
        assert_eq!(names, vec!["linpack", "power", "bh", "voronoi", "aes", "scimark"]);
    }

    #[test]
    fn full_scale_corpus_is_paper_sized() {
        // Block counts at scale 1.0: about 6.5k per jvm98 benchmark,
        // ~45k total (the paper's Table 6 total is 45,453).
        let specs = specjvm98_specs();
        let total: usize = specs.iter().map(|s| s.approx_blocks(1.0)).sum();
        assert!((35_000..60_000).contains(&total), "approx total {total}");
    }

    #[test]
    fn suites_are_deterministic() {
        assert_eq!(Suite::specjvm98(0.02), Suite::specjvm98(0.02));
        assert_eq!(Suite::fp(0.02), Suite::fp(0.02));
    }

    #[test]
    fn all_programs_validate() {
        for b in Suite::specjvm98(0.02).benchmarks() {
            b.program().validate().expect("valid IR");
        }
        for b in Suite::fp(0.02).benchmarks() {
            b.program().validate().expect("valid IR");
        }
    }

    #[test]
    fn descriptions_come_from_the_paper() {
        let s = Suite::specjvm98(0.01);
        assert!(s.benchmarks()[0].description().contains("129.compress"));
        let f = Suite::fp(0.01);
        assert!(f.benchmarks()[2].description().contains("Barnes and Hut"));
    }
}
