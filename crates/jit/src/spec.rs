//! Benchmark specifications: the knobs that shape a synthetic program.

use crate::blockgen;
use wts_ir::Program;

/// Relative frequencies of instruction kinds in a benchmark's blocks.
///
/// Weights need not sum to one; they are normalized when sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Simple integer ALU ops (add/logic/shift/compare/move).
    pub simple_int: f64,
    /// Integer multiply/divide.
    pub complex_int: f64,
    /// Floating-point arithmetic.
    pub float_arith: f64,
    /// Integer loads.
    pub int_load: f64,
    /// Floating-point loads.
    pub float_load: f64,
    /// Integer stores.
    pub int_store: f64,
    /// Floating-point stores.
    pub float_store: f64,
    /// Calls (direct and virtual).
    pub call: f64,
    /// JIT safepoints (yield points).
    pub safepoint: f64,
    /// Other system-unit work (SPR moves, explicit checks).
    pub system: f64,
}

impl OpMix {
    /// The weights as a slice, in a fixed order used by the generator.
    pub(crate) fn weights(&self) -> [f64; 10] {
        [
            self.simple_int,
            self.complex_int,
            self.float_arith,
            self.int_load,
            self.float_load,
            self.int_store,
            self.float_store,
            self.call,
            self.safepoint,
            self.system,
        ]
    }

    /// An integer-program mix (the SPECjvm98 default flavour).
    pub fn integer() -> OpMix {
        OpMix {
            simple_int: 0.40,
            complex_int: 0.03,
            float_arith: 0.02,
            int_load: 0.22,
            float_load: 0.01,
            int_store: 0.10,
            float_store: 0.01,
            call: 0.05,
            safepoint: 0.055,
            system: 0.03,
        }
    }

    /// A floating-point-kernel mix (the Table 7 suite flavour).
    pub fn floating_point() -> OpMix {
        OpMix {
            simple_int: 0.16,
            complex_int: 0.02,
            float_arith: 0.32,
            int_load: 0.06,
            float_load: 0.18,
            int_store: 0.03,
            float_store: 0.09,
            call: 0.015,
            safepoint: 0.02,
            system: 0.01,
        }
    }
}

/// Everything needed to generate one synthetic benchmark program.
///
/// The fields control the joint distribution of (features, scheduling
/// benefit) the learner sees; DESIGN.md §2 explains why matching that
/// distribution is the right substitution for the unavailable SPECjvm98.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (as it appears in the paper's tables).
    pub name: String,
    /// One-line description (Table 2 / Table 7 text).
    pub description: String,
    /// Methods generated at scale 1.0.
    pub methods: usize,
    /// Min/max blocks per method (uniform).
    pub blocks_per_method: (usize, usize),
    /// Mean block length (geometric-flavoured distribution).
    pub block_len_mean: f64,
    /// Hard cap on block length.
    pub block_len_max: usize,
    /// Instruction-kind mix.
    pub mix: OpMix,
    /// Probability that an operand chains on the most recent def
    /// (1.0 = fully serial code, 0.0 = maximally parallel).
    pub chain_bias: f64,
    /// Probability that a load/store is potentially excepting.
    pub pei_prob: f64,
    /// Probability that a memory access is not disambiguated.
    pub alias_unknown_prob: f64,
    /// Size of the per-method pool of distinct memory slots.
    pub mem_slots: u32,
    /// Fraction of blocks that are hot.
    pub hot_fraction: f64,
    /// Execution-count multiplier range for hot blocks.
    pub hot_multiplier: (u64, u64),
    /// Generation seed (distinct per benchmark).
    pub seed: u64,
}

impl BenchmarkSpec {
    /// Generates the program at the given scale (1.0 = paper-sized corpus,
    /// roughly 6,500 blocks; tests use small scales).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn generate(&self, scale: f64) -> Program {
        assert!(scale > 0.0, "scale must be positive");
        blockgen::generate_program(self, scale)
    }

    /// Expected block count at the given scale (approximate).
    pub fn approx_blocks(&self, scale: f64) -> usize {
        let methods = ((self.methods as f64 * scale) as usize).max(1);
        methods * (self.blocks_per_method.0 + self.blocks_per_method.1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "toy".into(),
            description: "toy spec".into(),
            methods: 10,
            blocks_per_method: (2, 4),
            block_len_mean: 6.0,
            block_len_max: 30,
            mix: OpMix::integer(),
            chain_bias: 0.5,
            pei_prob: 0.2,
            alias_unknown_prob: 0.2,
            mem_slots: 16,
            hot_fraction: 0.1,
            hot_multiplier: (50, 200),
            seed: 42,
        }
    }

    #[test]
    fn generate_produces_valid_program() {
        let p = spec().generate(1.0);
        assert_eq!(p.name(), "toy");
        assert_eq!(p.methods().len(), 10);
        assert!(p.block_count() >= 20);
        p.validate().expect("generated IR must validate");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate(1.0);
        let b = spec().generate(1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = spec();
        s2.seed = 43;
        assert_ne!(spec().generate(1.0), s2.generate(1.0));
    }

    #[test]
    fn scale_shrinks_method_count() {
        let p = spec().generate(0.3);
        assert_eq!(p.methods().len(), 3);
        assert!(spec().approx_blocks(0.3) >= p.methods().len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        spec().generate(0.0);
    }

    #[test]
    fn mixes_have_positive_mass() {
        for mix in [OpMix::integer(), OpMix::floating_point()] {
            assert!(mix.weights().iter().sum::<f64>() > 0.9);
        }
        assert!(OpMix::floating_point().float_arith > OpMix::integer().float_arith);
    }
}
