//! The JIT scheduling pass: features → filter → decision policy →
//! (maybe) schedule.
//!
//! The filter is lowered once per compile ([`Filter::compile`]) and every
//! block then runs the deployed fast path: one demand-masked feature
//! pass over exactly the features the compiled rules read, then the flat
//! condition table, which now yields a calibrated
//! [`FilterScore`](wts_core::FilterScore). The schedule/skip call is
//! made by the session's [`DecisionPolicy`] — under the default
//! [`HardThreshold`](DecisionPolicy::HardThreshold) it is bit-identical
//! to the interpreted boolean filter, so the output program is
//! unchanged; an [`ExpectedBenefit`](DecisionPolicy::ExpectedBenefit)
//! session weighs each block's calibrated probability and hotness
//! against the compile spend instead.

use std::sync::Arc;
use std::time::Instant;
use wts_core::{
    CompiledFilter, DecisionPolicy, Filter, FilterKey, FilterSnapshot, FilterStore, LearnedFilter, UnitEconomics,
};
use wts_features::FeatureVector;
use wts_ir::Program;
use wts_machine::{CostModel, MachineConfig, PipelineSim};
use wts_sched::{ListScheduler, SchedScratch, ScheduleOutcome, SchedulePolicy};

/// Timing and counts for one compile of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileStats {
    /// Blocks seen.
    pub total_blocks: usize,
    /// Blocks the filter sent to the scheduler.
    pub scheduled_blocks: usize,
    /// Nanoseconds extracting features.
    pub feature_ns: u64,
    /// Nanoseconds evaluating the filter.
    pub filter_ns: u64,
    /// Nanoseconds scheduling.
    pub sched_ns: u64,
}

impl CompileStats {
    /// Total time attributed to the scheduling pass (the paper charges
    /// feature and filter time to scheduling, §3.1).
    pub fn pass_ns(&self) -> u64 {
        self.feature_ns + self.filter_ns + self.sched_ns
    }

    /// Accumulates another shard's stats into this one.
    fn merge(&mut self, other: CompileStats) {
        self.total_blocks += other.total_blocks;
        self.scheduled_blocks += other.scheduled_blocks;
        self.feature_ns += other.feature_ns;
        self.filter_ns += other.filter_ns;
        self.sched_ns += other.sched_ns;
    }
}

/// A JIT compile session: holds the machine, scheduling policy and a
/// [`FilterStore`], and compiles programs under a given filter — passed
/// explicitly, or deployed (and hot-swappable) in the store.
#[derive(Debug, Clone)]
pub struct CompileSession<'m> {
    machine: &'m MachineConfig,
    policy: SchedulePolicy,
    decision: DecisionPolicy,
    store: Arc<FilterStore>,
}

impl<'m> CompileSession<'m> {
    /// A session with the default CPS scheduler, the hard-threshold
    /// decision policy (the paper's operating point) and a fresh private
    /// [`FilterStore`].
    pub fn new(machine: &'m MachineConfig) -> CompileSession<'m> {
        CompileSession::with_policy(machine, SchedulePolicy::CriticalPath)
    }

    /// A session with an explicit scheduling policy.
    pub fn with_policy(machine: &'m MachineConfig, policy: SchedulePolicy) -> CompileSession<'m> {
        CompileSession { machine, policy, decision: DecisionPolicy::HardThreshold, store: FilterStore::shared() }
    }

    /// Selects how the session turns filter scores into schedule/skip
    /// calls. The default [`DecisionPolicy::HardThreshold`] reproduces
    /// the boolean filter bit-for-bit; an expected-benefit policy makes
    /// the compile cost-sensitive without retraining the filter.
    pub fn with_decision_policy(mut self, decision: DecisionPolicy) -> CompileSession<'m> {
        self.decision = decision;
        self
    }

    /// Re-seats the session on a shared [`FilterStore`] — typically the
    /// store an [`ExperimentRun`](wts_core::ExperimentRun) or a serving
    /// daemon publishes into, so filters trained there deploy here
    /// without copying.
    pub fn with_store(mut self, store: Arc<FilterStore>) -> CompileSession<'m> {
        self.store = store;
        self
    }

    /// The target machine.
    pub fn machine(&self) -> &MachineConfig {
        self.machine
    }

    /// The session's decision policy.
    pub fn decision_policy(&self) -> &DecisionPolicy {
        &self.decision
    }

    /// The session's filter store.
    pub fn store(&self) -> &Arc<FilterStore> {
        &self.store
    }

    /// Publishes (or hot-swaps) `filter` under `key` in the session's
    /// store and returns the new epoch-tagged snapshot. Compiles in
    /// flight against the previous snapshot finish under it; the next
    /// [`compile_stored`](CompileSession::compile_stored) sees the new
    /// epoch.
    pub fn deploy(&self, key: FilterKey, filter: LearnedFilter) -> Arc<FilterSnapshot> {
        self.store.swap(key, filter)
    }

    /// Compiles `program` under `filter`: every block gets features
    /// extracted and the filter consulted; selected blocks are list
    /// scheduled. Returns the (possibly reordered) program and stats.
    pub fn compile(&self, program: &Program, filter: &dyn Filter) -> (Program, CompileStats) {
        self.compile_where(program, filter, |_| true, 1)
    }

    /// [`compile`](CompileSession::compile) with the program's methods
    /// sharded across `threads` scoped worker threads (`0` = one per
    /// available core, `1` = serial). Methods are compiled independently
    /// and reassembled in order, so the output program is identical to
    /// the serial path; only the wall-clock stats channels vary.
    pub fn compile_sharded(&self, program: &Program, filter: &dyn Filter, threads: usize) -> (Program, CompileStats) {
        self.compile_where(program, filter, |_| true, threads)
    }

    /// The *adaptive-JIT* variant the paper discusses in §3.1: only
    /// methods the profile marks hot (peak block execution count at least
    /// `hot_cutoff`) go through the optimizing path at all; cold methods
    /// are left baseline-compiled (unscheduled, and unfiltered — the
    /// filter's cost is skipped too).
    pub fn compile_adaptive(&self, program: &Program, filter: &dyn Filter, hot_cutoff: u64) -> (Program, CompileStats) {
        self.compile_where(
            program,
            filter,
            |m| m.blocks().iter().map(|b| b.exec_count()).max().unwrap_or(0) >= hot_cutoff,
            1,
        )
    }

    /// Compiles one (cloned) method in place, accumulating stats. The
    /// scratch state (scheduler buffers, outcome, permute buffer) is
    /// reused across every block of the shard, so the steady-state pass
    /// allocates nothing per block.
    #[allow(clippy::too_many_arguments)]
    fn compile_method(
        &self,
        scheduler: &ListScheduler<'m>,
        scratch: &mut SchedScratch<'m>,
        outcome: &mut ScheduleOutcome,
        permute_buf: &mut Vec<wts_ir::Inst>,
        method: &mut wts_ir::Method,
        filter: &CompiledFilter,
        optimize: bool,
        stats: &mut CompileStats,
    ) {
        for block in method.blocks_mut() {
            stats.total_blocks += 1;
            if !optimize {
                continue;
            }

            let t0 = Instant::now();
            let features = FeatureVector::extract_masked(block, filter.demand());
            stats.feature_ns += t0.elapsed().as_nanos() as u64;

            let t1 = Instant::now();
            let insts = block.insts().len() as u64;
            let (score, conditions) = filter.score_counted(features.as_slice());
            let unit = UnitEconomics {
                insts,
                exec_count: block.exec_count(),
                filter_work: conditions,
                extraction_work: filter.extraction_work(insts),
            };
            let decision = self.decision.decide(score, &unit);
            stats.filter_ns += t1.elapsed().as_nanos() as u64;

            if decision {
                let t2 = Instant::now();
                scheduler.schedule_block_into(block, scratch, outcome);
                // With the `verify` feature, the schedule is checked by
                // wts-verify before it is applied (debug builds only).
                #[cfg(all(feature = "verify", debug_assertions))]
                {
                    let diags = wts_verify::verify_unit(self.machine, block.insts(), false, outcome);
                    assert!(
                        diags.is_empty(),
                        "the compile session produced an unverifiable schedule:\n{}",
                        wts_verify::render(&diags)
                    );
                }
                outcome.apply_in_place(block, permute_buf);
                stats.sched_ns += t2.elapsed().as_nanos() as u64;
                stats.scheduled_blocks += 1;
            }
        }
    }

    /// Compiles `program` under the filter deployed at `key` in the
    /// session's store, returning the program, the stats and the epoch
    /// of the snapshot the whole compile ran against (one snapshot is
    /// loaded up front, so a concurrent hot-swap never splits a
    /// compile across filter versions). Returns `None` when nothing is
    /// deployed under `key`.
    pub fn compile_stored(
        &self,
        program: &Program,
        key: &FilterKey,
        threads: usize,
    ) -> Option<(Program, CompileStats, u64)> {
        let snapshot = self.store.get(key)?;
        let (out, stats) = self.compile_snapshot(program, &snapshot, threads);
        Some((out, stats, snapshot.epoch()))
    }

    /// Compiles `program` under an explicit store snapshot — the
    /// serving path: the caller pins one epoch for a whole batch and
    /// reports it alongside the schedules.
    pub fn compile_snapshot(
        &self,
        program: &Program,
        snapshot: &FilterSnapshot,
        threads: usize,
    ) -> (Program, CompileStats) {
        self.compile_engine(program, snapshot.compiled(), |_| true, threads)
    }

    fn compile_where(
        &self,
        program: &Program,
        filter: &dyn Filter,
        optimize_method: impl Fn(&wts_ir::Method) -> bool + Sync,
        threads: usize,
    ) -> (Program, CompileStats) {
        // Lower the filter once; every shard shares the flat table. The
        // store path arrives pre-lowered (the snapshot carries its
        // engine) and joins at `compile_engine`.
        let engine = filter.compile();
        self.compile_engine(program, &engine, optimize_method, threads)
    }

    fn compile_engine(
        &self,
        program: &Program,
        engine: &CompiledFilter,
        optimize_method: impl Fn(&wts_ir::Method) -> bool + Sync,
        threads: usize,
    ) -> (Program, CompileStats) {
        // Methods shard into contiguous chunks; each worker clones and
        // compiles its chunk, and the chunks are reassembled in method
        // order, so the result is identical whatever the thread count.
        let shards = wts_core::parallel::shard_map(program.methods(), threads, |slice| {
            let scheduler = ListScheduler::with_policy(self.machine, self.policy);
            let mut scratch = SchedScratch::new(self.machine);
            let mut outcome = ScheduleOutcome::default();
            let mut permute_buf = Vec::new();
            let mut stats = CompileStats::default();
            let mut compiled = slice.to_vec();
            for method in &mut compiled {
                let optimize = optimize_method(method);
                self.compile_method(
                    &scheduler,
                    &mut scratch,
                    &mut outcome,
                    &mut permute_buf,
                    method,
                    engine,
                    optimize,
                    &mut stats,
                );
            }
            (compiled, stats)
        });

        let mut out = Program::new(program.name());
        let mut stats = CompileStats::default();
        for (compiled, shard_stats) in shards {
            for method in compiled {
                out.push_method(method);
            }
            stats.merge(shard_stats);
        }
        (out, stats)
    }
}

/// Weighted application cycles of `program` under the detailed pipeline
/// simulator: `SIM(P) = Σ_b exec(b) · cycles(b)` (paper §4.2, with the
/// detailed model standing in for the real machine).
pub fn app_cycles(program: &Program, machine: &MachineConfig) -> u64 {
    let sim = PipelineSim::new(machine);
    program.iter_blocks().map(|(_, b)| b.exec_count() * sim.block_cycles(b)).sum()
}

/// Weighted cycles under the cheap estimator (the paper's simulated
/// metric of Table 4).
pub fn predicted_cycles(program: &Program, machine: &MachineConfig) -> u64 {
    let cm = CostModel::new(machine);
    program.iter_blocks().map(|(_, b)| b.exec_count() * cm.block_cycles(b)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Suite;
    use wts_core::{AlwaysSchedule, NeverSchedule, SizeThresholdFilter};

    fn machine() -> MachineConfig {
        MachineConfig::ppc7410()
    }

    #[test]
    fn never_schedule_leaves_program_unchanged() {
        let m = machine();
        let suite = Suite::specjvm98(0.01);
        let p = suite.benchmarks()[0].program();
        let (out, stats) = CompileSession::new(&m).compile(p, &NeverSchedule);
        assert_eq!(&out, p);
        assert_eq!(stats.scheduled_blocks, 0);
        assert_eq!(stats.sched_ns, 0);
        assert_eq!(stats.total_blocks, p.block_count());
    }

    #[test]
    fn always_schedule_touches_every_block_and_helps() {
        let m = machine();
        let suite = Suite::fp(0.02);
        let p = suite.benchmarks()[0].program();
        let (out, stats) = CompileSession::new(&m).compile(p, &AlwaysSchedule);
        assert_eq!(stats.scheduled_blocks, stats.total_blocks);
        out.validate().expect("scheduled program remains valid");
        // Predicted (cheap-model) time must not degrade; on an FP-heavy
        // benchmark it should strictly improve.
        assert!(predicted_cycles(&out, &m) < predicted_cycles(p, &m));
        // The detailed machine should agree directionally.
        assert!(app_cycles(&out, &m) <= app_cycles(p, &m));
    }

    #[test]
    fn filter_cost_structure() {
        let m = machine();
        let suite = Suite::specjvm98(0.01);
        let p = suite.benchmarks()[1].program();
        let session = CompileSession::new(&m);
        let (_, ls) = session.compile(p, &AlwaysSchedule);
        let (_, filtered) = session.compile(p, &SizeThresholdFilter::new(8));
        assert!(filtered.scheduled_blocks < ls.scheduled_blocks);
        assert!(filtered.scheduled_blocks > 0);
        assert!(filtered.pass_ns() > 0);
    }

    #[test]
    fn sharded_compile_matches_serial() {
        let m = machine();
        let suite = Suite::specjvm98(0.02);
        let p = suite.benchmarks()[0].program();
        let session = CompileSession::new(&m);
        let filter = SizeThresholdFilter::new(5);
        let (serial, serial_stats) = session.compile(p, &filter);
        for threads in [0, 2, 5, 16] {
            let (sharded, stats) = session.compile_sharded(p, &filter, threads);
            assert_eq!(serial, sharded, "sharded compile ({threads} threads) must be identical");
            assert_eq!(stats.total_blocks, serial_stats.total_blocks);
            assert_eq!(stats.scheduled_blocks, serial_stats.scheduled_blocks);
        }
    }

    #[test]
    fn adaptive_compiles_only_hot_methods() {
        let m = machine();
        let suite = Suite::specjvm98(0.02);
        let p = suite.benchmarks()[0].program();
        let session = CompileSession::new(&m);
        let (full, full_stats) = session.compile(p, &AlwaysSchedule);
        let (adaptive, a_stats) = session.compile_adaptive(p, &AlwaysSchedule, 100);
        assert!(a_stats.scheduled_blocks < full_stats.scheduled_blocks);
        assert!(a_stats.scheduled_blocks > 0, "some methods must be hot");
        // Adaptive keeps part of the benefit at a fraction of the cost.
        let base = app_cycles(p, &m);
        let full_cycles = app_cycles(&full, &m);
        let adaptive_cycles = app_cycles(&adaptive, &m);
        assert!(adaptive_cycles <= base);
        assert!(adaptive_cycles >= full_cycles);
    }

    #[test]
    fn adaptive_with_huge_cutoff_is_a_noop() {
        let m = machine();
        let suite = Suite::specjvm98(0.01);
        let p = suite.benchmarks()[1].program();
        let (out, stats) = CompileSession::new(&m).compile_adaptive(p, &AlwaysSchedule, u64::MAX);
        assert_eq!(&out, p);
        assert_eq!(stats.scheduled_blocks, 0);
        assert_eq!(stats.pass_ns(), 0, "cold methods skip the whole pass");
    }

    #[test]
    fn default_session_is_hard_threshold() {
        let m = machine();
        assert_eq!(*CompileSession::new(&m).decision_policy(), DecisionPolicy::HardThreshold);
    }

    #[test]
    fn hard_threshold_session_is_bit_identical_to_the_boolean_seam() {
        let m = machine();
        let suite = Suite::specjvm98(0.02);
        let p = suite.benchmarks()[0].program();
        let filter = SizeThresholdFilter::new(5);
        let base = CompileSession::new(&m);
        let explicit = CompileSession::new(&m).with_decision_policy(DecisionPolicy::HardThreshold);
        let (a, a_stats) = base.compile(p, &filter);
        let (b, b_stats) = explicit.compile(p, &filter);
        assert_eq!(a, b, "an explicit hard policy must not change the output program");
        assert_eq!(a_stats.scheduled_blocks, b_stats.scheduled_blocks);
    }

    #[test]
    fn expected_benefit_session_skips_cold_blocks_a_rule_fired_on() {
        let m = machine();
        let suite = Suite::specjvm98(0.02);
        let p = suite.benchmarks()[0].program();
        // A stingy operating point with a modest savings rate: only hot
        // blocks can justify the quadratic scheduling estimate.
        let model = wts_core::BenefitModel { saved_per_inst: 0.5, cycles_per_work: 50.0 };
        let eb = CompileSession::new(&m).with_decision_policy(DecisionPolicy::ExpectedBenefit(model));
        let (out, stats) = eb.compile(p, &AlwaysSchedule);
        let (_, hard) = CompileSession::new(&m).compile(p, &AlwaysSchedule);
        assert!(stats.scheduled_blocks < hard.scheduled_blocks, "cost-sensitivity must skip some blocks");
        assert!(stats.scheduled_blocks > 0, "hot blocks still pay");
        out.validate().expect("policy-filtered program remains valid");
        // The punitive extreme schedules nothing and is a no-op.
        let punitive = wts_core::BenefitModel { saved_per_inst: 0.0, cycles_per_work: 1.0 };
        let none = CompileSession::new(&m).with_decision_policy(DecisionPolicy::ExpectedBenefit(punitive));
        let (unchanged, n_stats) = none.compile(p, &AlwaysSchedule);
        assert_eq!(&unchanged, p);
        assert_eq!(n_stats.scheduled_blocks, 0);
    }

    #[test]
    fn stored_compile_matches_the_direct_path_and_reports_the_epoch() {
        let m = machine();
        let suite = Suite::specjvm98(0.02);
        let p = suite.benchmarks()[0].program();
        let session = CompileSession::new(&m);
        // Train a real filter and deploy it in the session's store.
        let run =
            wts_core::Experiment::new(m.clone()).with_timing(wts_core::TimingMode::Deterministic).run(vec![p.clone()]);
        let filter = wts_core::train_filter(run.all_traces(), &run.train_config(0));
        let key = run.filter_key(0, run.learner());
        assert!(session.compile_stored(p, &key, 1).is_none(), "nothing deployed yet");
        session.deploy(key.clone(), filter.clone());
        let (stored, stored_stats, epoch) = session.compile_stored(p, &key, 1).expect("deployed");
        assert_eq!(epoch, 1);
        let (direct, direct_stats) = session.compile(p, &filter);
        assert_eq!(stored, direct, "store-deployed compile must match the explicit-filter path");
        assert_eq!(stored_stats.scheduled_blocks, direct_stats.scheduled_blocks);
        // Hot-swapping bumps the epoch the next compile reports.
        session.deploy(key.clone(), filter);
        let (_, _, epoch2) = session.compile_stored(p, &key, 1).expect("still deployed");
        assert_eq!(epoch2, 2);
    }

    #[test]
    fn sessions_share_a_store_when_re_seated() {
        let m = machine();
        let store = FilterStore::shared();
        let a = CompileSession::new(&m).with_store(Arc::clone(&store));
        let b = CompileSession::new(&m).with_store(Arc::clone(&store));
        assert!(Arc::ptr_eq(a.store(), b.store()));
        assert!(!Arc::ptr_eq(CompileSession::new(&m).store(), a.store()), "default store is private");
    }

    #[test]
    fn exec_counts_weight_app_cycles() {
        let m = machine();
        let suite = Suite::specjvm98(0.01);
        let p = suite.benchmarks()[2].program();
        let total = app_cycles(p, &m);
        let unweighted: u64 = p.iter_blocks().map(|(_, b)| PipelineSim::new(&m).block_cycles(b)).sum();
        assert!(total > unweighted, "hot blocks must weigh more than cold ones");
    }
}
