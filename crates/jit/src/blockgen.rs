//! Expansion of a [`BenchmarkSpec`] into concrete IR.

use crate::rng::Xoshiro256;
use crate::spec::BenchmarkSpec;
use wts_ir::{BasicBlock, Hazards, Inst, MemRef, MemSpace, Method, Opcode, Program, Reg};

/// Kinds drawn from the spec's [`OpMix`](crate::OpMix) weights; order
/// matches `OpMix::weights`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    SimpleInt,
    ComplexInt,
    FloatArith,
    IntLoad,
    FloatLoad,
    IntStore,
    FloatStore,
    Call,
    Safepoint,
    System,
}

const KINDS: [Kind; 10] = [
    Kind::SimpleInt,
    Kind::ComplexInt,
    Kind::FloatArith,
    Kind::IntLoad,
    Kind::FloatLoad,
    Kind::IntStore,
    Kind::FloatStore,
    Kind::Call,
    Kind::Safepoint,
    Kind::System,
];

/// Register state while generating one block: live values plus a cycling
/// allocator (register reuse produces realistic anti/output dependences).
struct RegState {
    live_gpr: Vec<u16>,
    live_fpr: Vec<u16>,
    next_gpr: u16,
    next_fpr: u16,
}

impl RegState {
    fn new() -> RegState {
        RegState { live_gpr: vec![3, 4, 5, 6, 7, 8], live_fpr: vec![1, 2], next_gpr: 9, next_fpr: 3 }
    }

    fn fresh_gpr(&mut self) -> Reg {
        let r = self.next_gpr;
        self.next_gpr = if self.next_gpr >= 25 { 9 } else { self.next_gpr + 1 };
        self.live_gpr.push(r);
        if self.live_gpr.len() > 12 {
            self.live_gpr.remove(0);
        }
        Reg::gpr(r)
    }

    fn fresh_fpr(&mut self) -> Reg {
        let r = self.next_fpr;
        self.next_fpr = if self.next_fpr >= 28 { 3 } else { self.next_fpr + 1 };
        self.live_fpr.push(r);
        if self.live_fpr.len() > 12 {
            self.live_fpr.remove(0);
        }
        Reg::fpr(r)
    }

    /// Picks a live GPR: the most recent def with probability
    /// `chain_bias` (serializing), otherwise uniformly (parallelism).
    fn pick_gpr(&self, rng: &mut Xoshiro256, chain_bias: f64) -> Reg {
        let v = &self.live_gpr;
        if rng.chance(chain_bias) {
            Reg::gpr(*v.last().expect("gpr pool never empty"))
        } else {
            Reg::gpr(v[rng.below(v.len())])
        }
    }

    fn pick_fpr(&self, rng: &mut Xoshiro256, chain_bias: f64) -> Reg {
        let v = &self.live_fpr;
        if rng.chance(chain_bias) {
            Reg::fpr(*v.last().expect("fpr pool never empty"))
        } else {
            Reg::fpr(v[rng.below(v.len())])
        }
    }
}

fn mem_ref(spec: &BenchmarkSpec, rng: &mut Xoshiro256) -> MemRef {
    let space = match rng.below(3) {
        0 => MemSpace::Stack,
        1 => MemSpace::Heap,
        _ => MemSpace::Static,
    };
    if rng.chance(spec.alias_unknown_prob) {
        MemRef::unknown(space)
    } else {
        MemRef::slot(space, rng.below(spec.mem_slots as usize) as u32)
    }
}

fn pei(spec: &BenchmarkSpec, rng: &mut Xoshiro256) -> Hazards {
    if rng.chance(spec.pei_prob) {
        Hazards::PEI
    } else {
        Hazards::NONE
    }
}

fn gen_inst(spec: &BenchmarkSpec, chain: f64, rng: &mut Xoshiro256, regs: &mut RegState) -> Inst {
    let weights = spec.mix.weights();
    match KINDS[rng.weighted(&weights)] {
        Kind::SimpleInt => {
            let choice = rng.below(10);
            match choice {
                0 => Inst::new(Opcode::Li).def(regs.fresh_gpr()).imm(rng.below(256) as i64),
                1 => {
                    let u = regs.pick_gpr(rng, chain);
                    Inst::new(Opcode::Addi).def(regs.fresh_gpr()).use_(u).imm(rng.below(64) as i64)
                }
                2 => {
                    let u = regs.pick_gpr(rng, chain);
                    Inst::new(Opcode::Rlwinm).def(regs.fresh_gpr()).use_(u).imm(rng.below(31) as i64)
                }
                3 => {
                    let a = regs.pick_gpr(rng, chain);
                    let b = regs.pick_gpr(rng, 0.0);
                    Inst::new(Opcode::Cmp).def(Reg::cr(0)).use_(a).use_(b)
                }
                _ => {
                    let op =
                        [Opcode::Add, Opcode::Subf, Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Slw][rng.below(6)];
                    let a = regs.pick_gpr(rng, chain);
                    let b = regs.pick_gpr(rng, 0.0);
                    Inst::new(op).def(regs.fresh_gpr()).use_(a).use_(b)
                }
            }
        }
        Kind::ComplexInt => {
            let op = if rng.chance(0.8) { Opcode::Mullw } else { Opcode::Divw };
            let a = regs.pick_gpr(rng, chain);
            let b = regs.pick_gpr(rng, 0.0);
            Inst::new(op).def(regs.fresh_gpr()).use_(a).use_(b)
        }
        Kind::FloatArith => {
            let roll = rng.next_f64();
            if roll < 0.15 {
                let a = regs.pick_fpr(rng, chain);
                let b = regs.pick_fpr(rng, 0.0);
                let c = regs.pick_fpr(rng, 0.0);
                Inst::new(Opcode::Fmadd).def(regs.fresh_fpr()).use_(a).use_(b).use_(c)
            } else if roll < 0.20 {
                let a = regs.pick_fpr(rng, chain);
                let b = regs.pick_fpr(rng, 0.0);
                Inst::new(Opcode::Fdiv).def(regs.fresh_fpr()).use_(a).use_(b)
            } else if roll < 0.28 {
                let a = regs.pick_fpr(rng, chain);
                Inst::new(if rng.chance(0.5) { Opcode::Fneg } else { Opcode::Fabs }).def(regs.fresh_fpr()).use_(a)
            } else {
                let op = [Opcode::Fadd, Opcode::Fsub, Opcode::Fmul][rng.below(3)];
                let a = regs.pick_fpr(rng, chain);
                let b = regs.pick_fpr(rng, 0.0);
                Inst::new(op).def(regs.fresh_fpr()).use_(a).use_(b)
            }
        }
        Kind::IntLoad => {
            let op = [Opcode::Lwz, Opcode::Lwz, Opcode::Lbz, Opcode::Lhz][rng.below(4)];
            let base = regs.pick_gpr(rng, 0.0);
            Inst::new(op).def(regs.fresh_gpr()).use_(base).mem(mem_ref(spec, rng)).hazard(pei(spec, rng))
        }
        Kind::FloatLoad => {
            let op = if rng.chance(0.7) { Opcode::Lfd } else { Opcode::Lfs };
            let base = regs.pick_gpr(rng, 0.0);
            Inst::new(op).def(regs.fresh_fpr()).use_(base).mem(mem_ref(spec, rng)).hazard(pei(spec, rng))
        }
        Kind::IntStore => {
            let op = [Opcode::Stw, Opcode::Stw, Opcode::Stb, Opcode::Sth][rng.below(4)];
            let val = regs.pick_gpr(rng, chain);
            let base = regs.pick_gpr(rng, 0.0);
            Inst::new(op).use_(val).use_(base).mem(mem_ref(spec, rng)).hazard(pei(spec, rng))
        }
        Kind::FloatStore => {
            let op = if rng.chance(0.7) { Opcode::Stfd } else { Opcode::Stfs };
            let val = regs.pick_fpr(rng, chain);
            let base = regs.pick_gpr(rng, 0.0);
            Inst::new(op).use_(val).use_(base).mem(mem_ref(spec, rng)).hazard(pei(spec, rng))
        }
        Kind::Call => {
            let op = if rng.chance(0.8) { Opcode::Bl } else { Opcode::Bctrl };
            let mut inst = Inst::new(op).def(Reg::lr()).hazard(Hazards::GC_POINT | Hazards::THREAD_SWITCH);
            if op == Opcode::Bctrl {
                inst = inst.use_(Reg::ctr());
            }
            for _ in 0..rng.range(0, 2) {
                inst = inst.use_(regs.pick_gpr(rng, 0.0));
            }
            inst
        }
        Kind::Safepoint => {
            Inst::new(Opcode::YieldPoint).hazard(Hazards::YIELD | Hazards::GC_POINT | Hazards::THREAD_SWITCH)
        }
        Kind::System => match rng.below(3) {
            0 => Inst::new(Opcode::Mfspr).def(regs.fresh_gpr()).use_(Reg::spr(2)),
            1 => Inst::new(Opcode::Mtspr).def(Reg::spr(2)).use_(regs.pick_gpr(rng, 0.0)),
            _ => {
                let op = if rng.chance(0.5) { Opcode::NullCheck } else { Opcode::BoundsCheck };
                Inst::new(op).use_(regs.pick_gpr(rng, 0.0)).hazard(Hazards::PEI)
            }
        },
    }
}

fn gen_block(spec: &BenchmarkSpec, rng: &mut Xoshiro256, id: u32, last_in_method: bool) -> BasicBlock {
    // Hot blocks model optimized loop bodies: the JIT unrolls and inlines
    // them, so they are larger and expose more parallelism. This couples
    // execution weight with scheduling benefit, as in the paper where a
    // small minority of blocks carries most of the achievable win (§4.4).
    let hot = rng.chance(spec.hot_fraction);
    let (len_mean, chain) = if hot {
        (spec.block_len_mean * 2.0, spec.chain_bias * 0.45)
    } else {
        (spec.block_len_mean * 0.92, (spec.chain_bias * 1.15).min(0.95))
    };
    let len = rng.skewed_len(len_mean.max(1.0), spec.block_len_max);
    // Loop bodies have their null/bounds checks hoisted by the optimizer,
    // so hot blocks carry fewer PEIs (and therefore reorder more freely).
    let mut spec = spec.clone();
    spec.pei_prob = if hot { spec.pei_prob * 0.4 } else { (spec.pei_prob * 1.15).min(0.9) };
    let spec = &spec;
    let mut regs = RegState::new();
    let mut b = BasicBlock::new(id);
    // Room for a terminator within the sampled length when one is added.
    let want_term = last_in_method || rng.chance(0.75);
    let body = if want_term && len > 1 { len - 1 } else { len };
    for _ in 0..body {
        b.push(gen_inst(spec, chain, rng, &mut regs));
    }
    if want_term {
        if last_in_method {
            b.push(Inst::new(Opcode::Blr).use_(Reg::lr()));
        } else if rng.chance(0.8) {
            b.push(Inst::new(Opcode::Bc).use_(Reg::cr(0)));
        } else {
            b.push(Inst::new(Opcode::B));
        }
    }
    // Hot/cold execution profile.
    let mut exec = rng.range(1, 20) as u64;
    if hot {
        exec *= rng.range(spec.hot_multiplier.0 as usize, spec.hot_multiplier.1 as usize) as u64;
    }
    b.set_exec_count(exec);
    b
}

pub(crate) fn generate_program(spec: &BenchmarkSpec, scale: f64) -> Program {
    let mut rng = Xoshiro256::new(spec.seed);
    let methods = ((spec.methods as f64 * scale) as usize).max(1);
    let mut program = Program::new(spec.name.clone());
    let mut block_id = 0u32;
    for mi in 0..methods {
        let mut method = Method::new(mi as u32, format!("{}::m{}", spec.name, mi));
        let nblocks = rng.range(spec.blocks_per_method.0, spec.blocks_per_method.1);
        for bi in 0..nblocks {
            let mut block = gen_block(spec, &mut rng, block_id, bi + 1 == nblocks);
            // Method prologues carry a yield point in Jikes RVM.
            if bi == 0 && rng.chance(0.6) {
                let mut insts =
                    vec![Inst::new(Opcode::YieldPoint)
                        .hazard(Hazards::YIELD | Hazards::GC_POINT | Hazards::THREAD_SWITCH)];
                insts.extend(block.insts().iter().cloned());
                let exec = block.exec_count();
                block = BasicBlock::from_insts(block_id, insts);
                block.set_exec_count(exec);
            }
            block_id += 1;
            method.push_block(block);
        }
        program.push_method(method);
    }
    // Synthetic corpora are structurally valid by construction; in debug
    // builds the generator enforces it eagerly so a bad generation rule
    // fails here, not deep inside tracing or scheduling.
    #[cfg(debug_assertions)]
    if let Err(e) = program.validate() {
        panic!("blockgen produced structurally invalid IR for {}: {e}", spec.name);
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OpMix;
    use wts_features::{FeatureKind, FeatureVector};

    fn spec(seed: u64) -> BenchmarkSpec {
        BenchmarkSpec {
            name: "gen-test".into(),
            description: String::new(),
            methods: 40,
            blocks_per_method: (2, 8),
            block_len_mean: 7.0,
            block_len_max: 40,
            mix: OpMix::integer(),
            chain_bias: 0.5,
            pei_prob: 0.25,
            alias_unknown_prob: 0.2,
            mem_slots: 16,
            hot_fraction: 0.1,
            hot_multiplier: (50, 300),
            seed,
        }
    }

    #[test]
    fn programs_validate() {
        let p = generate_program(&spec(1), 1.0);
        p.validate().expect("valid IR");
        assert!(p.block_count() >= 80);
    }

    #[test]
    fn generation_validates_eagerly_at_every_scale() {
        // The debug gate inside `generate_program` already ran; this
        // pins that the public validate() agrees with it at the scales
        // the pipeline actually uses.
        for scale in [0.01, 0.05, 1.0] {
            let p = generate_program(&spec(3), scale);
            p.validate().expect("generated corpora are structurally valid by construction");
        }
    }

    #[test]
    fn mix_shows_up_in_features() {
        let p = generate_program(&spec(2), 1.0);
        let mut loads = 0.0;
        let mut floats = 0.0;
        let mut n = 0.0;
        for (_, b) in p.iter_blocks() {
            let fv = FeatureVector::extract(b);
            loads += fv.get(FeatureKind::Loads);
            floats += fv.get(FeatureKind::Floats);
            n += 1.0;
        }
        let avg_loads = loads / n;
        let avg_floats = floats / n;
        assert!(avg_loads > 0.10, "integer mix should be loady: {avg_loads}");
        assert!(avg_floats < 0.10, "integer mix should be FP-light: {avg_floats}");
    }

    #[test]
    fn fp_mix_is_fp_heavy() {
        let mut s = spec(3);
        s.mix = OpMix::floating_point();
        let p = generate_program(&s, 1.0);
        let mut floats = 0.0;
        let mut n = 0.0;
        for (_, b) in p.iter_blocks() {
            floats += FeatureVector::extract(b).get(FeatureKind::Floats);
            n += 1.0;
        }
        assert!(floats / n > 0.2, "fp mix should be FP-heavy: {}", floats / n);
    }

    #[test]
    fn hot_blocks_exist_but_are_minority() {
        let p = generate_program(&spec(4), 1.0);
        let counts: Vec<u64> = p.iter_blocks().map(|(_, b)| b.exec_count()).collect();
        let hot = counts.iter().filter(|&&c| c >= 100).count();
        assert!(hot > 0, "some hot blocks");
        assert!(hot * 3 < counts.len(), "hot blocks are a minority");
    }

    #[test]
    fn method_last_block_returns() {
        let p = generate_program(&spec(5), 1.0);
        for m in p.methods() {
            let last = m.blocks().last().expect("methods have blocks");
            assert_eq!(last.insts().last().expect("non-empty").opcode(), Opcode::Blr);
        }
    }

    #[test]
    fn block_lengths_have_small_and_large() {
        let p = generate_program(&spec(6), 1.0);
        let lens: Vec<usize> = p.iter_blocks().map(|(_, b)| b.len()).collect();
        assert!(lens.iter().any(|&l| l <= 3), "small blocks exist");
        assert!(lens.iter().any(|&l| l >= 15), "large blocks exist");
    }
}
