//! Superblock scheduling gain measurement (the paper's deferred
//! extension).
//!
//! The paper investigated superblock scheduling and reports it adds only
//! 1–2% over local scheduling in their setting, deferring the
//! combination with filters to future work (§3.1, footnote 6).
//! *Formation* now lives in [`wts_ir::superblock`] (re-exported here),
//! where the whole pipeline can reach it; this module keeps the
//! gain-measurement harness: three treatments of a program's traces —
//! no scheduling, local per-block scheduling, speculative superblock
//! scheduling — weighted by profile counts.

use std::collections::HashMap;
use wts_machine::{IssueState, MachineConfig};
use wts_sched::{ListScheduler, SchedScratch, ScheduleOutcome};

use wts_ir::Program;
pub use wts_ir::{form_superblocks, ScopeKind, Superblock};

/// Cycle totals comparing three treatments of a program's superblock
/// traces, weighted by trace execution counts: no scheduling, local
/// (per-block) scheduling, and speculative superblock scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuperblockGain {
    /// Weighted cycles with no scheduling at all.
    pub unscheduled: u64,
    /// Weighted cycles with each block scheduled locally.
    pub local: u64,
    /// Weighted cycles with whole traces scheduled speculatively.
    pub superblock: u64,
    /// Number of traces that merged at least two blocks.
    pub merged_traces: usize,
}

impl SuperblockGain {
    /// Additional improvement of superblock over local scheduling, as a
    /// fraction of the local cycles (the paper's "slight 1–2%").
    pub fn extra_improvement(&self) -> f64 {
        if self.local == 0 {
            return 0.0;
        }
        (self.local as f64 - self.superblock as f64) / self.local as f64
    }

    /// Accumulates another program's totals (the per-machine rollup of
    /// the scope table).
    pub fn accumulate(&mut self, other: &SuperblockGain) {
        self.unscheduled += other.unscheduled;
        self.local += other.local;
        self.superblock += other.superblock;
        self.merged_traces += other.merged_traces;
    }
}

/// Measures [`SuperblockGain`] over a whole program at the given
/// formation ratio (percent, as in [`form_superblocks`]).
///
/// Blocks inside a trace are costed as one straight-line unit (the trace
/// executes end-to-end when the side exits are not taken, which is the
/// hot case the profile certifies); all three treatments use the same
/// accounting so the comparison is apples-to-apples.
pub fn superblock_gain(program: &Program, machine: &MachineConfig, ratio_percent: u32) -> SuperblockGain {
    let scheduler = ListScheduler::new(machine);
    // One set of reusable buffers serves every trace of the program:
    // scheduler scratch, the outcome, the local-concatenation buffer and
    // the costing simulator all stay allocated across iterations.
    let mut scratch = SchedScratch::new(machine);
    let mut out = ScheduleOutcome::default();
    let mut cost_state = IssueState::new(machine);
    let mut local_insts = Vec::new();
    let mut gain = SuperblockGain::default();
    for method in program.methods() {
        // One id → layout-index map per method; the old per-constituent
        // linear `blocks().iter().find(...)` made this loop O(B²) per
        // method.
        let index: HashMap<u32, usize> = method.blocks().iter().enumerate().map(|(i, b)| (b.id().0, i)).collect();
        for sb in form_superblocks(method, ratio_percent) {
            let unsched = cost_state.replay(&sb.insts);
            // Local: schedule each constituent block separately, then
            // cost the concatenation of the scheduled blocks.
            local_insts.clear();
            local_insts.reserve(sb.insts.len());
            let mut offset = 0;
            for &bid in &sb.block_ids {
                let block = &method.blocks()[index[&bid]];
                scheduler.schedule_block_into(block, &mut scratch, &mut out);
                local_insts.extend(out.order.iter().map(|&k| block.insts()[k]));
                offset += block.len();
            }
            debug_assert_eq!(offset, sb.insts.len());
            let local = cost_state.replay(&local_insts);
            scheduler.schedule_superblock_into(&sb.insts, &mut scratch, &mut out);

            gain.unscheduled += sb.exec_count * unsched;
            gain.local += sb.exec_count * local;
            // Guard as the scheduler does: never accept a worse order.
            gain.superblock += sb.exec_count * out.cycles_after.min(local);
            if sb.width() > 1 {
                gain.merged_traces += 1;
            }
        }
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Suite;

    #[test]
    fn gain_is_nonnegative_and_small_on_real_corpus() {
        let machine = MachineConfig::ppc7410();
        let suite = Suite::fp(0.03);
        for bench in suite.benchmarks() {
            let g = superblock_gain(bench.program(), &machine, 70);
            assert!(g.superblock <= g.local, "superblock scheduling must not lose to local");
            assert!(g.local <= g.unscheduled, "local scheduling must not lose to nothing");
            let extra = g.extra_improvement();
            assert!((0.0..0.25).contains(&extra), "extra gain {extra} out of plausible range");
            assert!(g.merged_traces > 0, "the corpus should contain mergeable traces");
        }
    }

    #[test]
    fn gain_accumulates_across_programs() {
        let machine = MachineConfig::ppc7410();
        let suite = Suite::fp(0.02);
        let mut total = SuperblockGain::default();
        let mut merged = 0;
        for bench in suite.benchmarks() {
            let g = superblock_gain(bench.program(), &machine, 70);
            merged += g.merged_traces;
            total.accumulate(&g);
        }
        assert_eq!(total.merged_traces, merged);
        assert!(total.superblock <= total.local && total.local <= total.unscheduled);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn bad_ratio_rejected() {
        let suite = Suite::fp(0.01);
        superblock_gain(suite.benchmarks()[0].program(), &MachineConfig::ppc7410(), 0);
    }
}
