//! Superblock formation and scheduling (the paper's deferred extension).
//!
//! The paper investigated superblock scheduling and reports it adds only
//! 1–2% over local scheduling in their setting, deferring the combination
//! with filters to future work (§3.1, footnote 6). This module implements
//! the mechanism: consecutive blocks whose profile counts indicate the
//! fall-through path is hot are merged into a straight-line *trace*; the
//! scheduler may then move pure computation across the internal side
//! exits (speculation, modelled by the speculative dependence graph).

use wts_ir::{BasicBlock, Inst, Method, Opcode, Program};
use wts_machine::{CostModel, MachineConfig};
use wts_sched::ListScheduler;

/// A formed superblock: the trace's instructions plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Superblock {
    /// Ids of the merged blocks, in trace order.
    pub block_ids: Vec<u32>,
    /// The concatenated instructions.
    pub insts: Vec<Inst>,
    /// Profile weight of the trace (the entry block's count).
    pub exec_count: u64,
}

impl Superblock {
    /// Number of merged blocks.
    pub fn width(&self) -> usize {
        self.block_ids.len()
    }
}

/// Forms superblocks from a method's layout-order blocks.
///
/// A trace grows while the current block ends in a conditional branch or
/// plain fall-through (never a return or computed jump) and the next
/// block's execution count is within `ratio` of the trace entry's —
/// the profile evidence that the fall-through edge is the hot path.
///
/// # Panics
///
/// Panics if `ratio` is not within `(0, 1]`.
pub fn form_superblocks(method: &Method, ratio: f64) -> Vec<Superblock> {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
    let blocks = method.blocks();
    let mut out = Vec::new();
    let mut i = 0;
    while i < blocks.len() {
        let entry = &blocks[i];
        let mut sb =
            Superblock { block_ids: vec![entry.id().0], insts: entry.insts().to_vec(), exec_count: entry.exec_count() };
        let mut j = i;
        while j + 1 < blocks.len() && extends(&blocks[j], &blocks[j + 1], entry.exec_count(), ratio) {
            j += 1;
            sb.block_ids.push(blocks[j].id().0);
            sb.insts.extend(blocks[j].insts().iter().cloned());
        }
        out.push(sb);
        i = j + 1;
    }
    out
}

fn extends(cur: &BasicBlock, next: &BasicBlock, entry_exec: u64, ratio: f64) -> bool {
    let continues = match cur.insts().last().map(Inst::opcode) {
        Some(Opcode::Blr) | Some(Opcode::Bctr) => false,
        Some(op) if op.is_terminator() => true, // conditional/unconditional side exit
        _ => true,                              // fall-through
    };
    let lo = (entry_exec as f64 * ratio) as u64;
    let hi = (entry_exec as f64 / ratio) as u64;
    continues && next.exec_count() >= lo && next.exec_count() <= hi
}

/// Cycle totals comparing three treatments of a program's superblock
/// traces, weighted by trace execution counts: no scheduling, local
/// (per-block) scheduling, and speculative superblock scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuperblockGain {
    /// Weighted cycles with no scheduling at all.
    pub unscheduled: u64,
    /// Weighted cycles with each block scheduled locally.
    pub local: u64,
    /// Weighted cycles with whole traces scheduled speculatively.
    pub superblock: u64,
    /// Number of traces that merged at least two blocks.
    pub merged_traces: usize,
}

impl SuperblockGain {
    /// Additional improvement of superblock over local scheduling, as a
    /// fraction of the local cycles (the paper's "slight 1–2%").
    pub fn extra_improvement(&self) -> f64 {
        if self.local == 0 {
            return 0.0;
        }
        (self.local as f64 - self.superblock as f64) / self.local as f64
    }
}

/// Measures [`SuperblockGain`] over a whole program.
///
/// Blocks inside a trace are costed as one straight-line unit (the trace
/// executes end-to-end when the side exits are not taken, which is the
/// hot case the profile certifies); all three treatments use the same
/// accounting so the comparison is apples-to-apples.
pub fn superblock_gain(program: &Program, machine: &MachineConfig, ratio: f64) -> SuperblockGain {
    let scheduler = ListScheduler::new(machine);
    let cost = CostModel::new(machine);
    let mut gain = SuperblockGain::default();
    for method in program.methods() {
        for sb in form_superblocks(method, ratio) {
            let unsched = cost.sequence_cycles(&sb.insts);
            // Local: schedule each constituent block separately, then
            // cost the concatenation of the scheduled blocks.
            let mut local_insts = Vec::with_capacity(sb.insts.len());
            let mut offset = 0;
            for &bid in &sb.block_ids {
                let block =
                    method.blocks().iter().find(|b| b.id().0 == bid).expect("superblock ids come from this method");
                let out = scheduler.schedule_block(block);
                local_insts.extend(out.order.iter().map(|&k| block.insts()[k].clone()));
                offset += block.len();
            }
            debug_assert_eq!(offset, sb.insts.len());
            let local = cost.sequence_cycles(&local_insts);
            let merged = scheduler.schedule_superblock(&sb.insts);

            gain.unscheduled += sb.exec_count * unsched;
            gain.local += sb.exec_count * local;
            // Guard as the scheduler does: never accept a worse order.
            gain.superblock += sb.exec_count * merged.cycles_after.min(local);
            if sb.width() > 1 {
                gain.merged_traces += 1;
            }
        }
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Suite;
    use wts_ir::Reg;

    fn block(id: u32, exec: u64, term: Option<Opcode>) -> BasicBlock {
        let mut b = BasicBlock::new(id);
        b.push(Inst::new(Opcode::Add).def(Reg::gpr(10)).use_(Reg::gpr(1)).use_(Reg::gpr(2)));
        if let Some(t) = term {
            let mut i = Inst::new(t);
            if t == Opcode::Bc {
                i = i.use_(Reg::cr(0));
            }
            if t == Opcode::Blr {
                i = i.use_(Reg::lr());
            }
            b.push(i);
        }
        b.set_exec_count(exec);
        b
    }

    fn method(blocks: Vec<BasicBlock>) -> Method {
        let mut m = Method::new(0, "m");
        for b in blocks {
            m.push_block(b);
        }
        m
    }

    #[test]
    fn merges_equal_weight_fallthrough_chain() {
        let m = method(vec![
            block(0, 100, Some(Opcode::Bc)),
            block(1, 95, Some(Opcode::Bc)),
            block(2, 90, Some(Opcode::Blr)),
        ]);
        let sbs = form_superblocks(&m, 0.7);
        assert_eq!(sbs.len(), 1);
        assert_eq!(sbs[0].block_ids, vec![0, 1, 2]);
        assert_eq!(sbs[0].exec_count, 100);
        assert_eq!(sbs[0].width(), 3);
    }

    #[test]
    fn cold_successor_breaks_the_trace() {
        let m = method(vec![
            block(0, 100, Some(Opcode::Bc)),
            block(1, 10, Some(Opcode::Bc)), // taken branch dominates: cold fall-through
            block(2, 10, Some(Opcode::Blr)),
        ]);
        let sbs = form_superblocks(&m, 0.7);
        assert_eq!(sbs.len(), 2);
        assert_eq!(sbs[0].block_ids, vec![0]);
        assert_eq!(sbs[1].block_ids, vec![1, 2]);
    }

    #[test]
    fn returns_break_the_trace() {
        let m = method(vec![block(0, 100, Some(Opcode::Blr)), block(1, 100, Some(Opcode::Blr))]);
        let sbs = form_superblocks(&m, 0.7);
        assert_eq!(sbs.len(), 2);
    }

    #[test]
    fn much_hotter_successor_breaks_the_trace() {
        // A loop head entered from below: successor is far hotter than
        // the entry; merging would mis-weight it.
        let m = method(vec![block(0, 10, Some(Opcode::Bc)), block(1, 500, Some(Opcode::Blr))]);
        let sbs = form_superblocks(&m, 0.7);
        assert_eq!(sbs.len(), 2);
    }

    #[test]
    fn gain_is_nonnegative_and_small_on_real_corpus() {
        let machine = MachineConfig::ppc7410();
        let suite = Suite::fp(0.03);
        for bench in suite.benchmarks() {
            let g = superblock_gain(bench.program(), &machine, 0.7);
            assert!(g.superblock <= g.local, "superblock scheduling must not lose to local");
            assert!(g.local <= g.unscheduled, "local scheduling must not lose to nothing");
            let extra = g.extra_improvement();
            assert!((0.0..0.25).contains(&extra), "extra gain {extra} out of plausible range");
            assert!(g.merged_traces > 0, "the corpus should contain mergeable traces");
        }
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn bad_ratio_rejected() {
        form_superblocks(&method(vec![block(0, 1, None)]), 0.0);
    }
}
