//! Synthetic JIT workloads and the compile pipeline.
//!
//! The paper's corpus is SPECjvm98 plus a floating-point-heavy suite,
//! compiled by Jikes RVM on a PowerPC 7410. Neither the benchmarks nor
//! the VM are available here, so this crate builds the closest synthetic
//! equivalent (see DESIGN.md §2):
//!
//! * [`BenchmarkSpec`] describes a program's *population of basic blocks*
//!   — instruction-category mix, block-size distribution, dependence
//!   density (how chain-like the code is), memory-aliasing behaviour,
//!   hazard rates and a hot/cold execution profile;
//! * [`generate`](BenchmarkSpec::generate) expands a spec into a concrete
//!   [`Program`](wts_ir::Program) with a deterministic PRNG, so every table in the
//!   reproduction is bit-stable;
//! * [`Suite::specjvm98`] and [`Suite::fp`] wire up one spec per paper
//!   benchmark (Tables 2 and 7);
//! * [`CompileSession`] is the JIT scheduling pass: per block it extracts
//!   features, consults a [`Filter`](wts_core::Filter), and (maybe)
//!   schedules, with wall-clock timing of each stage.
//!
//! # Examples
//!
//! ```
//! use wts_core::AlwaysSchedule;
//! use wts_jit::{CompileSession, Suite};
//! use wts_machine::MachineConfig;
//!
//! let machine = MachineConfig::ppc7410();
//! let suite = Suite::specjvm98(0.01); // 1% scale for a quick check
//! let session = CompileSession::new(&machine);
//! let (scheduled, stats) = session.compile(&suite.benchmarks()[0].program(), &AlwaysSchedule);
//! assert_eq!(stats.scheduled_blocks, stats.total_blocks);
//! assert_eq!(scheduled.block_count(), stats.total_blocks);
//! ```

mod blockgen;
mod compiler;
mod rng;
mod spec;
mod suite;
mod superblock;

pub use compiler::{app_cycles, predicted_cycles, CompileSession, CompileStats};
pub use rng::Xoshiro256;
pub use spec::{BenchmarkSpec, OpMix};
pub use suite::{Benchmark, Suite};
pub use superblock::{form_superblocks, superblock_gain, ScopeKind, Superblock, SuperblockGain};
