//! Deterministic PRNG for workload generation.
//!
//! A hand-rolled xoshiro256** (seeded via SplitMix64) instead of the
//! `rand` crate, so that generated corpora — and therefore every number in
//! EXPERIMENTS.md — are bit-stable across `rand` major versions. See
//! DESIGN.md §2 for the justification.

/// xoshiro256** by Blackman & Vigna; state seeded with SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// A generator seeded deterministically from `seed`.
    pub fn new(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "range must be non-empty");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform integer in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Index drawn proportionally to `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Geometric-flavoured positive integer with the given mean, capped.
    ///
    /// Used for block lengths: many small blocks, a tail of large ones.
    pub fn skewed_len(&mut self, mean: f64, max: usize) -> usize {
        debug_assert!(mean >= 1.0);
        let u = self.next_f64().max(1e-12);
        let len = 1.0 + (-u.ln()) * (mean - 1.0);
        (len as usize).clamp(1, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256::new(7);
        let mut b = Xoshiro256::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::new(8);
        assert_ne!(Xoshiro256::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::new(1);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = Xoshiro256::new(2);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
        }
        assert_eq!(r.range(4, 4), 4);
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let mut r = Xoshiro256::new(3);
        for _ in 0..500 {
            let i = r.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_roughly_proportional() {
        let mut r = Xoshiro256::new(4);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[r.weighted(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((0.70..0.80).contains(&frac), "got {frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn skewed_len_mean_and_bounds() {
        let mut r = Xoshiro256::new(6);
        let n = 20_000;
        let mut sum = 0usize;
        for _ in 0..n {
            let l = r.skewed_len(8.0, 40);
            assert!((1..=40).contains(&l));
            sum += l;
        }
        let mean = sum as f64 / n as f64;
        assert!((6.0..10.0).contains(&mean), "mean {mean} drifted");
    }
}
