//! Property tests pinning the scheduler's incremental ready-list
//! bookkeeping to the dependence graph's declarative
//! [`DepGraph::ready`]: replaying any schedule the list scheduler emits
//! while maintaining `remaining_preds` counters exactly as the
//! scheduler does must, at every step, agree with `ready(&mask)`
//! recomputed from scratch — on random instruction sequences, for every
//! machine in the registry.

use proptest::prelude::*;
use wts_deps::DepGraph;
use wts_ir::{Hazards, Inst, MemRef, MemSpace, Opcode, Reg};
use wts_machine::registry;
use wts_sched::{ListScheduler, SchedulePolicy};

/// Blocks mixing ALU/memory/hazard/control instructions (same mix as the
/// scheduler's own property tests).
fn arb_block(max: usize) -> impl Strategy<Value = Vec<Inst>> {
    prop::collection::vec(
        (0u8..8, 0u16..6, 0u16..6, 0u32..3, prop::bool::ANY).prop_map(|(kind, a, b, slot, pei)| match kind {
            0 | 1 => Inst::new(Opcode::Add).def(Reg::gpr(a + 10)).use_(Reg::gpr(b)).use_(Reg::gpr(a)),
            2 => Inst::new(Opcode::Fmul).def(Reg::fpr(a + 1)).use_(Reg::fpr(b)).use_(Reg::fpr(a)),
            3 => {
                let mut i = Inst::new(Opcode::Lwz)
                    .def(Reg::gpr(a + 10))
                    .use_(Reg::gpr(b))
                    .mem(MemRef::slot(MemSpace::Heap, slot));
                if pei {
                    i = i.hazard(Hazards::PEI);
                }
                i
            }
            4 => Inst::new(Opcode::Stw).use_(Reg::gpr(a)).use_(Reg::gpr(b)).mem(MemRef::slot(MemSpace::Heap, slot)),
            5 => Inst::new(Opcode::Divw).def(Reg::gpr(a + 10)).use_(Reg::gpr(b)).use_(Reg::gpr(a)),
            6 => Inst::new(Opcode::Bc).use_(Reg::cr(0)),
            _ => Inst::new(Opcode::YieldPoint).hazard(Hazards::YIELD | Hazards::GC_POINT),
        }),
        0..max,
    )
}

/// Replays `order`, maintaining the scheduler's incremental bookkeeping
/// (`remaining_preds` counters + an unordered ready list), and checks it
/// against `DepGraph::ready` recomputed from the scheduled mask at every
/// step. Returns an error description on the first disagreement.
fn check_replay(graph: &DepGraph, order: &[usize]) -> Result<(), String> {
    let n = graph.len();
    let mut scheduled = vec![false; n];
    let mut remaining_preds: Vec<usize> = (0..n).map(|i| graph.preds(i).len()).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();

    for (step, &chosen) in order.iter().enumerate() {
        let mut incremental = ready.clone();
        incremental.sort_unstable();
        let declarative = graph.ready(&scheduled);
        if incremental != declarative {
            return Err(format!("step {step}: incremental {incremental:?} != declarative {declarative:?}"));
        }
        let Some(pos) = ready.iter().position(|&i| i == chosen) else {
            return Err(format!("step {step}: scheduler chose {chosen} which is not ready"));
        };
        ready.swap_remove(pos);
        scheduled[chosen] = true;
        for &(s, _) in graph.succs(chosen) {
            let s = s as usize;
            remaining_preds[s] -= 1;
            if remaining_preds[s] == 0 {
                ready.push(s);
            }
        }
    }
    if !graph.ready(&scheduled).is_empty() {
        return Err("instructions still ready after a complete schedule".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ready_agrees_with_incremental_bookkeeping_on_every_machine(insts in arb_block(12)) {
        let graph = DepGraph::build(&insts);
        for machine in registry() {
            for policy in [SchedulePolicy::CriticalPath, SchedulePolicy::EarliestStart, SchedulePolicy::Random(17)] {
                let out = ListScheduler::with_policy(&machine, policy).schedule_insts(&insts);
                if let Err(e) = check_replay(&graph, &out.order) {
                    prop_assert!(false, "{} / {policy}: {e}", machine.name());
                }
            }
        }
    }

    #[test]
    fn superblock_schedules_replay_against_the_speculative_graph(insts in arb_block(12)) {
        let graph = DepGraph::build_speculative(&insts);
        for machine in registry() {
            let out = ListScheduler::new(&machine).schedule_superblock(&insts);
            if let Err(e) = check_replay(&graph, &out.order) {
                prop_assert!(false, "{}: {e}", machine.name());
            }
        }
    }
}
