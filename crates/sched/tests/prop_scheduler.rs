//! Property-based tests for the list scheduler: every schedule is a
//! dependence-respecting permutation that the cost model rates no worse
//! than the original order, for every policy.

use proptest::prelude::*;
use wts_ir::{Hazards, Inst, MemRef, MemSpace, Opcode, Reg};
use wts_machine::{registry, CostModel, MachineConfig};
use wts_sched::{verify_schedule, ListScheduler, SchedScratch, ScheduleOutcome, SchedulePolicy};

/// Blocks mixing ALU/memory/hazard/control instructions; a terminator, if
/// generated, is forced to the end (as the IR requires).
fn arb_block(max: usize) -> impl Strategy<Value = Vec<Inst>> {
    let body = prop::collection::vec(
        (0u8..8, 0u16..6, 0u16..6, 0u32..3, prop::bool::ANY).prop_map(|(kind, a, b, slot, pei)| match kind {
            0 | 1 => Inst::new(Opcode::Add).def(Reg::gpr(a + 10)).use_(Reg::gpr(b)).use_(Reg::gpr(a)),
            2 => Inst::new(Opcode::Fmul).def(Reg::fpr(a + 1)).use_(Reg::fpr(b)).use_(Reg::fpr(a)),
            3 => {
                let mut i = Inst::new(Opcode::Lwz)
                    .def(Reg::gpr(a + 10))
                    .use_(Reg::gpr(b))
                    .mem(MemRef::slot(MemSpace::Heap, slot));
                if pei {
                    i = i.hazard(Hazards::PEI);
                }
                i
            }
            4 => Inst::new(Opcode::Stw).use_(Reg::gpr(a)).use_(Reg::gpr(b)).mem(MemRef::slot(MemSpace::Heap, slot)),
            5 => Inst::new(Opcode::Divw).def(Reg::gpr(a + 10)).use_(Reg::gpr(b)).use_(Reg::gpr(a)),
            6 => Inst::new(Opcode::Bl).def(Reg::lr()).hazard(Hazards::GC_POINT),
            _ => Inst::new(Opcode::YieldPoint).hazard(Hazards::YIELD | Hazards::GC_POINT),
        }),
        0..max,
    );
    (body, prop::option::of(prop::sample::select(vec![Opcode::B, Opcode::Bc, Opcode::Blr]))).prop_map(
        |(mut insts, term)| {
            if let Some(t) = term {
                let mut inst = Inst::new(t);
                if t == Opcode::Bc {
                    inst = inst.use_(Reg::cr(0));
                }
                if t == Opcode::Blr {
                    inst = inst.use_(Reg::lr());
                }
                insts.push(inst);
            }
            insts
        },
    )
}

fn policies() -> Vec<SchedulePolicy> {
    vec![
        SchedulePolicy::CriticalPath,
        SchedulePolicy::EarliestStart,
        SchedulePolicy::CriticalPathOnly,
        SchedulePolicy::Random(99),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn schedules_are_legal_permutations(insts in arb_block(14)) {
        let m = MachineConfig::ppc7410();
        for policy in policies() {
            let out = ListScheduler::with_policy(&m, policy).schedule_insts(&insts);
            prop_assert!(
                verify_schedule(&insts, &out.order).is_ok(),
                "{}: illegal schedule {:?}",
                policy,
                out.order
            );
        }
    }

    #[test]
    fn cps_never_degrades_the_estimate(insts in arb_block(14)) {
        let m = MachineConfig::ppc7410();
        let out = ListScheduler::new(&m).schedule_insts(&insts);
        prop_assert!(out.cycles_after <= out.cycles_before);
        // And the reported costs are truthful.
        let cm = CostModel::new(&m);
        prop_assert_eq!(out.cycles_before, cm.sequence_cycles(&insts));
        let scheduled: Vec<Inst> = out.order.iter().map(|&i| insts[i]).collect();
        prop_assert_eq!(out.cycles_after, cm.sequence_cycles(&scheduled));
    }

    #[test]
    fn schedule_cannot_beat_dependence_height(insts in arb_block(14)) {
        let m = MachineConfig::ppc7410();
        let cm = CostModel::new(&m);
        let out = ListScheduler::new(&m).schedule_insts(&insts);
        prop_assert!(out.cycles_after >= cm.dependence_height(&insts));
    }

    #[test]
    fn terminator_stays_terminal(insts in arb_block(12)) {
        prop_assume!(insts.last().is_some_and(|i| i.opcode().is_terminator()));
        let m = MachineConfig::ppc7410();
        for policy in policies() {
            let out = ListScheduler::with_policy(&m, policy).schedule_insts(&insts);
            prop_assert_eq!(*out.order.last().unwrap(), insts.len() - 1, "{}", policy);
        }
    }

    #[test]
    fn scheduling_is_idempotent_for_cps(insts in arb_block(14)) {
        // Re-scheduling an already-scheduled block must not change cost.
        let m = MachineConfig::ppc7410();
        let s = ListScheduler::new(&m);
        let once = s.schedule_insts(&insts);
        let scheduled: Vec<Inst> = once.order.iter().map(|&i| insts[i]).collect();
        let twice = s.schedule_insts(&scheduled);
        prop_assert_eq!(twice.cycles_after, once.cycles_after);
    }

    #[test]
    fn cps_at_least_matches_random(insts in arb_block(14)) {
        let m = MachineConfig::ppc7410();
        let cps = ListScheduler::new(&m).schedule_insts(&insts);
        let rand = ListScheduler::with_policy(&m, SchedulePolicy::Random(3)).schedule_insts(&insts);
        prop_assert!(cps.cycles_after <= rand.cycles_after.max(cps.cycles_before));
    }

    /// The allocation-free entry points are the hot path; they must be
    /// outcome-identical to the one-shot API on every registry machine
    /// and every policy — including `Random`, whose ready-queue draws
    /// would expose any divergence in graph slice order or scratch reuse.
    #[test]
    fn scratch_path_equals_one_shot_everywhere(blocks in prop::collection::vec(arb_block(12), 1..4), seed in 0u64..u64::MAX) {
        for m in registry() {
            for policy in [
                SchedulePolicy::CriticalPath,
                SchedulePolicy::EarliestStart,
                SchedulePolicy::CriticalPathOnly,
                SchedulePolicy::Random(seed),
            ] {
                let s = ListScheduler::with_policy(&m, policy);
                // One scratch/outcome pair survives the whole sequence,
                // so any state leaking between schedules diverges here.
                let mut scratch = SchedScratch::new(&m);
                let mut out = ScheduleOutcome::default();
                for insts in &blocks {
                    s.schedule_insts_into(insts, &mut scratch, &mut out);
                    prop_assert_eq!(&out, &s.schedule_insts(insts), "{} block path diverged", policy);
                    s.schedule_superblock_into(insts, &mut scratch, &mut out);
                    prop_assert_eq!(&out, &s.schedule_superblock(insts), "{} superblock path diverged", policy);
                }
            }
        }
    }
}
