//! Reusable scheduling buffers.

use wts_deps::{DepGraph, GraphBuilder};
use wts_machine::{IssueState, MachineConfig};

/// Scratch state for the list scheduler's hot loop.
///
/// One instance per worker (or per compile session), passed to the
/// [`ListScheduler`](crate::ListScheduler) `*_into` entry points and
/// reused across every block it schedules: the dependence-graph builder,
/// the graph storage, the critical-path / ready / in-degree buffers and
/// both machine-state simulators are all allocated once, so steady-state
/// scheduling performs no heap allocation.
///
/// A scratch is tied to the machine it was created for (it embeds
/// machine-state simulators); the scheduler debug-asserts that it is
/// only used with that same machine.
///
/// # Examples
///
/// ```
/// use wts_ir::{Inst, Opcode, Reg};
/// use wts_machine::MachineConfig;
/// use wts_sched::{ListScheduler, SchedScratch, ScheduleOutcome};
///
/// let m = MachineConfig::ppc7410();
/// let s = ListScheduler::new(&m);
/// let mut scratch = SchedScratch::new(&m);
/// let mut out = ScheduleOutcome::default();
/// let block = [Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(1)];
/// s.schedule_insts_into(&block, &mut scratch, &mut out);
/// assert_eq!(out.order, vec![0]);
/// ```
pub struct SchedScratch<'m> {
    pub(crate) machine: &'m MachineConfig,
    pub(crate) builder: GraphBuilder,
    pub(crate) graph: DepGraph,
    pub(crate) cp: Vec<u64>,
    pub(crate) remaining_preds: Vec<u32>,
    pub(crate) ready: Vec<usize>,
    pub(crate) before_state: IssueState<'m>,
    pub(crate) state: IssueState<'m>,
    pub(crate) last_edges: usize,
}

impl<'m> SchedScratch<'m> {
    /// Fresh scratch for scheduling against `machine`.
    pub fn new(machine: &'m MachineConfig) -> SchedScratch<'m> {
        SchedScratch {
            machine,
            builder: GraphBuilder::new(),
            graph: DepGraph::empty(),
            cp: Vec::new(),
            remaining_preds: Vec::new(),
            ready: Vec::new(),
            before_state: IssueState::new(machine),
            state: IssueState::new(machine),
            last_edges: 0,
        }
    }

    /// The machine this scratch was created for.
    pub fn machine(&self) -> &'m MachineConfig {
        self.machine
    }

    /// Edge count of the dependence graph behind the most recent
    /// `*_into` schedule (zero for blocks of at most one instruction,
    /// which need no graph). Lets work-proxy accounting reuse the graph
    /// the scheduler already built instead of rebuilding it.
    pub fn last_edge_count(&self) -> usize {
        self.last_edges
    }
}
