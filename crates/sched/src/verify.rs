//! Schedule verification: permutation + dependence preservation.

use std::fmt;
use wts_deps::DepGraph;
use wts_ir::Inst;

/// Why a proposed order is not a legal schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Order length differs from the instruction count.
    LengthMismatch {
        /// Instructions in the block.
        expected: usize,
        /// Entries in the order.
        got: usize,
    },
    /// Order is not a permutation (an index repeats or is out of range).
    NotAPermutation {
        /// The offending index value.
        index: usize,
    },
    /// A dependence edge is violated.
    DependenceViolated {
        /// Producer/earlier instruction (original index).
        from: usize,
        /// Consumer/later instruction (original index).
        to: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::LengthMismatch { expected, got } => {
                write!(f, "order has {got} entries but block has {expected} instructions")
            }
            VerifyError::NotAPermutation { index } => {
                write!(f, "order is not a permutation (index {index})")
            }
            VerifyError::DependenceViolated { from, to } => {
                write!(f, "dependence {from} -> {to} violated by order")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks that `order` is a dependence-respecting permutation of `insts`.
///
/// # Errors
///
/// Returns the first problem found: a length mismatch, a repeated or
/// out-of-range index, or a violated dependence edge.
pub fn verify_schedule(insts: &[Inst], order: &[usize]) -> Result<(), VerifyError> {
    let n = insts.len();
    if order.len() != n {
        return Err(VerifyError::LengthMismatch { expected: n, got: order.len() });
    }
    let mut pos = vec![usize::MAX; n];
    for (p, &i) in order.iter().enumerate() {
        if i >= n || pos[i] != usize::MAX {
            return Err(VerifyError::NotAPermutation { index: i });
        }
        pos[i] = p;
    }
    let graph = DepGraph::build(insts);
    for to in 0..n {
        for &(from, _) in graph.preds(to) {
            if pos[from as usize] > pos[to] {
                return Err(VerifyError::DependenceViolated { from: from as usize, to });
            }
        }
    }
    Ok(())
}

/// Like [`verify_schedule`], but collects *every* violation instead of
/// stopping at the first: the length mismatch (if any), every repeated or
/// out-of-range index, and every violated dependence edge. An empty vector
/// means the order is a legal schedule.
///
/// Builds a non-speculative dependence graph internally; callers holding
/// a graph (possibly speculative) should use [`verify_schedule_all_against`].
pub fn verify_schedule_all(insts: &[Inst], order: &[usize]) -> Vec<VerifyError> {
    verify_schedule_all_against(&DepGraph::build(insts), order)
}

/// Collects every violation of `order` against a prebuilt dependence
/// graph. This is the entry point `wts-verify` reuses so the same
/// permutation walk serves both the block graph and the speculative
/// superblock graph.
pub fn verify_schedule_all_against(graph: &DepGraph, order: &[usize]) -> Vec<VerifyError> {
    let n = graph.len();
    let mut errors = Vec::new();
    if order.len() != n {
        errors.push(VerifyError::LengthMismatch { expected: n, got: order.len() });
    }
    let mut pos = vec![usize::MAX; n];
    for (p, &i) in order.iter().enumerate() {
        if i >= n || pos[i] != usize::MAX {
            errors.push(VerifyError::NotAPermutation { index: i });
        } else {
            pos[i] = p;
        }
    }
    for to in 0..n {
        if pos[to] == usize::MAX {
            continue; // never placed: already reported above
        }
        for &(from, _) in graph.preds(to) {
            let from = from as usize;
            // An unplaced producer is a permutation error, not a
            // dependence one; only compare positions that exist.
            if pos[from] != usize::MAX && pos[from] > pos[to] {
                errors.push(VerifyError::DependenceViolated { from, to });
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::{Opcode, Reg};

    fn add(def: u16, a: u16) -> Inst {
        Inst::new(Opcode::Add).def(Reg::gpr(def)).use_(Reg::gpr(a)).use_(Reg::gpr(a))
    }

    #[test]
    fn accepts_identity_and_legal_swap() {
        let insts = vec![add(1, 9), add(2, 8)];
        assert!(verify_schedule(&insts, &[0, 1]).is_ok());
        assert!(verify_schedule(&insts, &[1, 0]).is_ok());
    }

    #[test]
    fn rejects_length_mismatch() {
        let insts = vec![add(1, 9)];
        assert_eq!(verify_schedule(&insts, &[]), Err(VerifyError::LengthMismatch { expected: 1, got: 0 }));
    }

    #[test]
    fn rejects_duplicates_and_out_of_range() {
        let insts = vec![add(1, 9), add(2, 8)];
        assert_eq!(verify_schedule(&insts, &[0, 0]), Err(VerifyError::NotAPermutation { index: 0 }));
        assert_eq!(verify_schedule(&insts, &[0, 5]), Err(VerifyError::NotAPermutation { index: 5 }));
    }

    #[test]
    fn rejects_dependence_violation() {
        let insts = vec![add(1, 9), add(2, 1)]; // 1 truly depends on 0
        assert_eq!(verify_schedule(&insts, &[1, 0]), Err(VerifyError::DependenceViolated { from: 0, to: 1 }));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = VerifyError::DependenceViolated { from: 2, to: 5 };
        assert!(e.to_string().contains("2 -> 5"));
    }

    #[test]
    fn all_reports_every_violation_not_just_the_first() {
        // 1 depends on 0 and 3 depends on 2; reversing both pairs breaks both.
        let insts = vec![add(1, 9), add(2, 1), add(3, 8), add(4, 3)];
        let errors = verify_schedule_all(&insts, &[1, 0, 3, 2]);
        assert!(errors.contains(&VerifyError::DependenceViolated { from: 0, to: 1 }));
        assert!(errors.contains(&VerifyError::DependenceViolated { from: 2, to: 3 }));
        assert_eq!(errors.len(), 2);
    }

    #[test]
    fn all_agrees_with_first_error_semantics() {
        let cases: Vec<(Vec<Inst>, Vec<usize>)> = vec![
            (vec![add(1, 9), add(2, 8)], vec![0, 1]),
            (vec![add(1, 9), add(2, 8)], vec![1, 0]),
            (vec![add(1, 9)], vec![]),
            (vec![add(1, 9), add(2, 8)], vec![0, 0]),
            (vec![add(1, 9), add(2, 8)], vec![0, 5]),
            (vec![add(1, 9), add(2, 1)], vec![1, 0]),
        ];
        for (insts, order) in cases {
            let all = verify_schedule_all(&insts, &order);
            match verify_schedule(&insts, &order) {
                Ok(()) => assert!(all.is_empty(), "{order:?}: all={all:?}"),
                Err(e) => assert_eq!(all.first(), Some(&e), "{order:?}: first error must agree"),
            }
        }
    }

    #[test]
    fn all_collects_duplicate_indices_alongside_the_length_mismatch() {
        let insts = vec![add(1, 9), add(2, 8), add(3, 7)];
        let errors = verify_schedule_all(&insts, &[0, 0]);
        assert!(errors.contains(&VerifyError::LengthMismatch { expected: 3, got: 2 }));
        assert!(errors.contains(&VerifyError::NotAPermutation { index: 0 }));
    }
}
