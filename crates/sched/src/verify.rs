//! Schedule verification: permutation + dependence preservation.

use std::fmt;
use wts_deps::DepGraph;
use wts_ir::Inst;

/// Why a proposed order is not a legal schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Order length differs from the instruction count.
    LengthMismatch {
        /// Instructions in the block.
        expected: usize,
        /// Entries in the order.
        got: usize,
    },
    /// Order is not a permutation (an index repeats or is out of range).
    NotAPermutation {
        /// The offending index value.
        index: usize,
    },
    /// A dependence edge is violated.
    DependenceViolated {
        /// Producer/earlier instruction (original index).
        from: usize,
        /// Consumer/later instruction (original index).
        to: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::LengthMismatch { expected, got } => {
                write!(f, "order has {got} entries but block has {expected} instructions")
            }
            VerifyError::NotAPermutation { index } => {
                write!(f, "order is not a permutation (index {index})")
            }
            VerifyError::DependenceViolated { from, to } => {
                write!(f, "dependence {from} -> {to} violated by order")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks that `order` is a dependence-respecting permutation of `insts`.
///
/// # Errors
///
/// Returns the first problem found: a length mismatch, a repeated or
/// out-of-range index, or a violated dependence edge.
pub fn verify_schedule(insts: &[Inst], order: &[usize]) -> Result<(), VerifyError> {
    let n = insts.len();
    if order.len() != n {
        return Err(VerifyError::LengthMismatch { expected: n, got: order.len() });
    }
    let mut pos = vec![usize::MAX; n];
    for (p, &i) in order.iter().enumerate() {
        if i >= n || pos[i] != usize::MAX {
            return Err(VerifyError::NotAPermutation { index: i });
        }
        pos[i] = p;
    }
    let graph = DepGraph::build(insts);
    for to in 0..n {
        for &(from, _) in graph.preds(to) {
            if pos[from as usize] > pos[to] {
                return Err(VerifyError::DependenceViolated { from: from as usize, to });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::{Opcode, Reg};

    fn add(def: u16, a: u16) -> Inst {
        Inst::new(Opcode::Add).def(Reg::gpr(def)).use_(Reg::gpr(a)).use_(Reg::gpr(a))
    }

    #[test]
    fn accepts_identity_and_legal_swap() {
        let insts = vec![add(1, 9), add(2, 8)];
        assert!(verify_schedule(&insts, &[0, 1]).is_ok());
        assert!(verify_schedule(&insts, &[1, 0]).is_ok());
    }

    #[test]
    fn rejects_length_mismatch() {
        let insts = vec![add(1, 9)];
        assert_eq!(verify_schedule(&insts, &[]), Err(VerifyError::LengthMismatch { expected: 1, got: 0 }));
    }

    #[test]
    fn rejects_duplicates_and_out_of_range() {
        let insts = vec![add(1, 9), add(2, 8)];
        assert_eq!(verify_schedule(&insts, &[0, 0]), Err(VerifyError::NotAPermutation { index: 0 }));
        assert_eq!(verify_schedule(&insts, &[0, 5]), Err(VerifyError::NotAPermutation { index: 5 }));
    }

    #[test]
    fn rejects_dependence_violation() {
        let insts = vec![add(1, 9), add(2, 1)]; // 1 truly depends on 0
        assert_eq!(verify_schedule(&insts, &[1, 0]), Err(VerifyError::DependenceViolated { from: 0, to: 1 }));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = VerifyError::DependenceViolated { from: 2, to: 5 };
        assert!(e.to_string().contains("2 -> 5"));
    }
}
