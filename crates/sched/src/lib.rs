//! The list scheduler.
//!
//! Implements the paper's scheduler: *critical path scheduling* (CPS) list
//! scheduling over basic blocks (§1.1). Starting from an empty schedule it
//! repeatedly appends a ready instruction — one whose dependence
//! predecessors are all scheduled. Among ready instructions CPS chooses
//! the one that can start soonest; ties go to the instruction with the
//! longest latency-weighted critical path to the end of the block.
//!
//! Alternative [`SchedulePolicy`] values exist for the ablation benches:
//! the filter technique should work with "any competent scheduler", and
//! the policies let us check how the trained filters interact with the
//! scheduler that produced their labels.
//!
//! # Examples
//!
//! ```
//! use wts_ir::{BasicBlock, Inst, MemRef, MemSpace, Opcode, Reg};
//! use wts_machine::MachineConfig;
//! use wts_sched::ListScheduler;
//!
//! let mut b = BasicBlock::new(0);
//! b.push(Inst::new(Opcode::Lwz).def(Reg::gpr(1)).use_(Reg::gpr(9))
//!     .mem(MemRef::slot(MemSpace::Heap, 0)));
//! b.push(Inst::new(Opcode::Add).def(Reg::gpr(2)).use_(Reg::gpr(1)).use_(Reg::gpr(1)));
//! b.push(Inst::new(Opcode::Add).def(Reg::gpr(3)).use_(Reg::gpr(8)).use_(Reg::gpr(8)));
//!
//! let m = MachineConfig::ppc7410();
//! let out = ListScheduler::new(&m).schedule_block(&b);
//! assert!(out.cycles_after <= out.cycles_before);
//! assert_eq!(out.order.len(), 3);
//! ```

mod list;
mod outcome;
mod policy;
mod scratch;
mod verify;

pub use list::ListScheduler;
pub use outcome::ScheduleOutcome;
pub use policy::SchedulePolicy;
pub use scratch::SchedScratch;
pub use verify::{verify_schedule, verify_schedule_all, verify_schedule_all_against, VerifyError};
