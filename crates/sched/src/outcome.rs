//! The result of scheduling one block.

use wts_ir::BasicBlock;

/// What the scheduler produced for one block.
///
/// `order[k]` is the original index of the instruction placed at position
/// `k` of the new schedule. Cycle counts come from the cheap in-order
/// cost model — the same estimator the paper uses for its labels.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleOutcome {
    /// New order, as original indices.
    pub order: Vec<usize>,
    /// Estimated cycles of the original order.
    pub cycles_before: u64,
    /// Estimated cycles of the scheduled order.
    pub cycles_after: u64,
}

impl ScheduleOutcome {
    /// Estimated improvement as a fraction of the original cost
    /// (0.10 = 10% faster). Negative when scheduling degraded the block;
    /// zero for empty blocks.
    pub fn improvement(&self) -> f64 {
        if self.cycles_before == 0 {
            return 0.0;
        }
        (self.cycles_before as f64 - self.cycles_after as f64) / self.cycles_before as f64
    }

    /// True when the new order differs from the original.
    pub fn changed(&self) -> bool {
        self.order.iter().enumerate().any(|(k, &i)| k != i)
    }

    /// Applies the schedule to `block`, returning the reordered block.
    ///
    /// # Panics
    ///
    /// Panics if the outcome was produced for a block of different length.
    pub fn apply(&self, block: &BasicBlock) -> BasicBlock {
        block.reordered(&self.order)
    }

    /// Applies the schedule to `block` in place, using `buf` as swap
    /// space (see [`BasicBlock::permute_in_place`]). Unlike
    /// [`ScheduleOutcome::apply`], no new block and no new instruction
    /// storage is allocated in steady state.
    ///
    /// # Panics
    ///
    /// Panics if the outcome was produced for a block of different length.
    pub fn apply_in_place(&self, block: &mut BasicBlock, buf: &mut Vec<wts_ir::Inst>) {
        block.permute_in_place(&self.order, buf);
    }

    /// Applies the schedule to a raw instruction slice (the superblock
    /// pipeline's unit — a trace has no single block to reorder).
    ///
    /// # Panics
    ///
    /// Panics if the outcome was produced for a slice of different length.
    pub fn permute(&self, insts: &[wts_ir::Inst]) -> Vec<wts_ir::Inst> {
        let mut out = Vec::new();
        self.permute_into(insts, &mut out);
        out
    }

    /// Like [`ScheduleOutcome::permute`], but fills a caller-provided
    /// buffer (contents discarded, allocation reused).
    ///
    /// # Panics
    ///
    /// Panics if the outcome was produced for a slice of different length.
    pub fn permute_into(&self, insts: &[wts_ir::Inst], out: &mut Vec<wts_ir::Inst>) {
        assert_eq!(self.order.len(), insts.len(), "schedule length must match the instruction slice");
        out.clear();
        out.extend(self.order.iter().map(|&i| insts[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wts_ir::{Inst, Opcode, Reg};

    fn outcome(before: u64, after: u64, order: Vec<usize>) -> ScheduleOutcome {
        ScheduleOutcome { order, cycles_before: before, cycles_after: after }
    }

    #[test]
    fn improvement_fraction() {
        assert!((outcome(10, 9, vec![0]).improvement() - 0.1).abs() < 1e-12);
        assert!(outcome(10, 11, vec![0]).improvement() < 0.0);
        assert_eq!(outcome(0, 0, vec![]).improvement(), 0.0);
    }

    #[test]
    fn changed_detects_identity() {
        assert!(!outcome(1, 1, vec![0, 1, 2]).changed());
        assert!(outcome(1, 1, vec![0, 2, 1]).changed());
    }

    #[test]
    fn apply_reorders_block() {
        let mut b = BasicBlock::new(0);
        b.push(Inst::new(Opcode::Li).def(Reg::gpr(1)).imm(1));
        b.push(Inst::new(Opcode::Li).def(Reg::gpr(2)).imm(2));
        let out = outcome(2, 2, vec![1, 0]);
        let r = out.apply(&b);
        assert_eq!(r.insts()[0], b.insts()[1]);
        assert_eq!(r.insts()[1], b.insts()[0]);
    }

    #[test]
    fn in_place_and_buffered_paths_match_the_allocating_ones() {
        let mut b = BasicBlock::new(4);
        b.set_exec_count(9);
        for v in 1..=3u16 {
            b.push(Inst::new(Opcode::Li).def(Reg::gpr(v)).imm(i64::from(v)));
        }
        let out = outcome(3, 3, vec![2, 0, 1]);
        let expect = out.apply(&b);
        let mut inplace = b.clone();
        let mut buf = Vec::new();
        out.apply_in_place(&mut inplace, &mut buf);
        assert_eq!(inplace, expect);
        assert_eq!(buf.len(), 3, "buf holds the block's previous storage");
        let mut v = Vec::new();
        out.permute_into(b.insts(), &mut v);
        assert_eq!(v, out.permute(b.insts()));
    }
}
