//! The CPS list scheduler.

use crate::policy::XorShift64;
use crate::{SchedScratch, ScheduleOutcome, SchedulePolicy};
use wts_deps::critical_paths_into;
use wts_ir::{BasicBlock, Inst};
use wts_machine::{IssueState, MachineConfig};

/// List scheduler over basic blocks.
///
/// The scheduler consults the same in-order cost estimator used for
/// labeling (via [`IssueState`]) to determine when each candidate could
/// start, exactly as the paper's scheduler consults its block timing
/// simulator while making decisions (§2.2, footnote 3).
#[derive(Debug, Clone)]
pub struct ListScheduler<'m> {
    machine: &'m MachineConfig,
    policy: SchedulePolicy,
}

impl<'m> ListScheduler<'m> {
    /// A CPS list scheduler for the given machine.
    pub fn new(machine: &'m MachineConfig) -> ListScheduler<'m> {
        ListScheduler { machine, policy: SchedulePolicy::CriticalPath }
    }

    /// A scheduler with an explicit selection policy.
    pub fn with_policy(machine: &'m MachineConfig, policy: SchedulePolicy) -> ListScheduler<'m> {
        ListScheduler { machine, policy }
    }

    /// The machine this scheduler targets.
    pub fn machine(&self) -> &MachineConfig {
        self.machine
    }

    /// The selection policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Schedules a block, returning the chosen order and the estimated
    /// cycle counts before and after.
    pub fn schedule_block(&self, block: &BasicBlock) -> ScheduleOutcome {
        self.schedule_insts(block.insts())
    }

    /// Schedules an explicit instruction sequence.
    pub fn schedule_insts(&self, insts: &[Inst]) -> ScheduleOutcome {
        self.one_shot(insts, false)
    }

    /// Schedules a *superblock*: a straight-line trace whose internal
    /// branches are side exits. Pure register computation may move across
    /// those exits (speculation with compensation, per Fisher's trace
    /// scheduling), which is what gives superblocks their edge over
    /// per-block scheduling (paper §3.1).
    pub fn schedule_superblock(&self, insts: &[Inst]) -> ScheduleOutcome {
        self.one_shot(insts, true)
    }

    /// Schedules a block into caller-provided buffers; see
    /// [`ListScheduler::schedule_insts_into`].
    pub fn schedule_block_into(&self, block: &BasicBlock, scratch: &mut SchedScratch<'m>, out: &mut ScheduleOutcome) {
        self.schedule_insts_into(block.insts(), scratch, out);
    }

    /// Schedules an instruction sequence into caller-provided buffers:
    /// the scratch's and outcome's allocations are reused, so batch
    /// callers schedule block after block with zero steady-state heap
    /// allocation. Produces bit-identical outcomes to
    /// [`ListScheduler::schedule_insts`].
    pub fn schedule_insts_into(&self, insts: &[Inst], scratch: &mut SchedScratch<'m>, out: &mut ScheduleOutcome) {
        self.schedule_core(insts, false, scratch, out);
    }

    /// Superblock counterpart of [`ListScheduler::schedule_insts_into`]
    /// (speculative dependence graph; see
    /// [`ListScheduler::schedule_superblock`]).
    pub fn schedule_superblock_into(&self, insts: &[Inst], scratch: &mut SchedScratch<'m>, out: &mut ScheduleOutcome) {
        self.schedule_core(insts, true, scratch, out);
    }

    fn one_shot(&self, insts: &[Inst], speculative: bool) -> ScheduleOutcome {
        let mut scratch = SchedScratch::new(self.machine);
        let mut out = ScheduleOutcome::default();
        self.schedule_core(insts, speculative, &mut scratch, &mut out);
        out
    }

    fn schedule_core(
        &self,
        insts: &[Inst],
        speculative: bool,
        scratch: &mut SchedScratch<'m>,
        out: &mut ScheduleOutcome,
    ) {
        debug_assert!(std::ptr::eq(self.machine, scratch.machine), "scratch was created for a different machine");
        let n = insts.len();
        let cycles_before = scratch.before_state.replay(insts);
        out.order.clear();
        out.cycles_before = cycles_before;
        if n <= 1 {
            out.order.extend(0..n);
            out.cycles_after = cycles_before;
            scratch.last_edges = 0;
            return;
        }

        scratch.builder.build_into(insts, speculative, &mut scratch.graph);
        scratch.last_edges = scratch.builder.last_edge_count();
        critical_paths_into(&scratch.graph, insts, self.machine, &mut scratch.cp);
        // The scheduler owns its rng unconditionally: every entry point
        // (blocks, explicit slices, superblocks) threads the same state,
        // so no path can reach the random policy without one. The
        // deterministic policies simply never draw from it.
        let mut rng = XorShift64::new(self.rng_seed());

        scratch.remaining_preds.clear();
        scratch
            .remaining_preds
            .extend((0..n).map(|i| u32::try_from(scratch.graph.preds(i).len()).expect("pred lists fit u32")));
        scratch.ready.clear();
        scratch.ready.extend((0..n).filter(|&i| scratch.remaining_preds[i] == 0));
        scratch.state.reset();

        while let Some(pos) = self.select(&scratch.ready, &scratch.cp, &scratch.state, insts, &mut rng) {
            let chosen = scratch.ready.swap_remove(pos);
            scratch.state.issue(&insts[chosen]);
            out.order.push(chosen);
            for &(s, _) in scratch.graph.succs(chosen) {
                let s = s as usize;
                scratch.remaining_preds[s] -= 1;
                if scratch.remaining_preds[s] == 0 {
                    scratch.ready.push(s);
                }
            }
        }
        debug_assert_eq!(out.order.len(), n, "scheduler must place every instruction");

        // The running state issued every instruction in the chosen order,
        // so its completion time *is* the new order's cost — no clone and
        // re-simulate pass (this is the hottest loop in trace collection).
        let cycles_after = scratch.state.completion_time();
        if cycles_after > cycles_before {
            // Greedy list scheduling is not optimal; when the estimator
            // rates the new order worse, keep the original (the estimate
            // is free — it was needed for the comparison anyway).
            out.order.clear();
            out.order.extend(0..n);
            out.cycles_after = cycles_before;
            return;
        }
        out.cycles_after = cycles_after;
    }

    /// Convenience: schedule and apply in one step.
    pub fn reschedule(&self, block: &BasicBlock) -> BasicBlock {
        self.schedule_block(block).apply(block)
    }

    /// The seed of the rng this scheduler owns: the random policy's
    /// seed, or a fixed constant the deterministic policies never draw
    /// from. (The old design threaded an `Option<XorShift64>` and
    /// `expect`ed it inside `select`, which panicked on any call path
    /// that reached the random policy without wiring an rng through.)
    fn rng_seed(&self) -> u64 {
        match self.policy {
            SchedulePolicy::Random(seed) => seed,
            _ => 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Picks the index *within `ready`* of the next instruction.
    fn select(
        &self,
        ready: &[usize],
        cp: &[u64],
        state: &IssueState<'_>,
        insts: &[Inst],
        rng: &mut XorShift64,
    ) -> Option<usize> {
        if ready.is_empty() {
            return None;
        }
        let pick = match self.policy {
            SchedulePolicy::Random(_) => rng.pick(ready.len()),
            SchedulePolicy::CriticalPath | SchedulePolicy::EarliestStart | SchedulePolicy::CriticalPathOnly => {
                let mut best = 0;
                let mut best_key = self.key(ready[0], cp, state, insts);
                for (k, &ki) in ready.iter().enumerate().skip(1) {
                    let key = self.key(ki, cp, state, insts);
                    if key < best_key {
                        best = k;
                        best_key = key;
                    }
                }
                best
            }
        };
        Some(pick)
    }

    /// The one selection key every deterministic policy minimizes:
    /// `(earliest start, Reverse(critical path), original index)`.
    ///
    /// `CriticalPath` uses all three components; `EarliestStart` ignores
    /// the critical path; `CriticalPathOnly` ignores the start time. The
    /// critical path is kept as `Reverse<u64>` — latency-weighted paths
    /// are `u64` and a negated `as i64` cast would wrap on pathological
    /// blocks, inverting the priority.
    fn key(
        &self,
        i: usize,
        cp: &[u64],
        state: &IssueState<'_>,
        insts: &[Inst],
    ) -> (u64, std::cmp::Reverse<u64>, usize) {
        let start = match self.policy {
            SchedulePolicy::CriticalPathOnly => 0,
            _ => state.earliest_issue(&insts[i]),
        };
        let prio = match self.policy {
            SchedulePolicy::EarliestStart => 0,
            _ => cp[i],
        };
        (start, std::cmp::Reverse(prio), i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_schedule;
    use wts_ir::{MemRef, MemSpace, Opcode, Reg};

    fn machine() -> MachineConfig {
        MachineConfig::ppc7410()
    }

    fn load(def: u16, slot: u32) -> Inst {
        Inst::new(Opcode::Lwz).def(Reg::gpr(def)).use_(Reg::gpr(30)).mem(MemRef::slot(MemSpace::Heap, slot))
    }

    fn add(def: u16, a: u16, b: u16) -> Inst {
        Inst::new(Opcode::Add).def(Reg::gpr(def)).use_(Reg::gpr(a)).use_(Reg::gpr(b))
    }

    #[test]
    fn empty_and_singleton_blocks() {
        let m = machine();
        let s = ListScheduler::new(&m);
        let out = s.schedule_insts(&[]);
        assert!(out.order.is_empty());
        let out = s.schedule_insts(&[add(1, 2, 3)]);
        assert_eq!(out.order, vec![0]);
        assert_eq!(out.cycles_before, out.cycles_after);
    }

    #[test]
    fn hides_load_latency() {
        let m = machine();
        let s = ListScheduler::new(&m);
        // load; immediate use; independent filler.
        let insts = vec![load(1, 0), add(2, 1, 1), add(3, 8, 8), add(4, 9, 9)];
        let out = s.schedule_insts(&insts);
        assert!(out.cycles_after < out.cycles_before, "filler should hide the load stall");
        assert!(verify_schedule(&insts, &out.order).is_ok());
        // The dependent add must still come after the load.
        let pos = |i: usize| out.order.iter().position(|&x| x == i).unwrap();
        assert!(pos(1) > pos(0));
    }

    #[test]
    fn never_degrades_on_these_cases_and_respects_deps() {
        let m = machine();
        let s = ListScheduler::new(&m);
        let cases: Vec<Vec<Inst>> = vec![
            vec![add(1, 9, 9), add(2, 1, 9), add(3, 2, 9)],
            vec![load(1, 0), load(2, 8), add(3, 1, 2)],
            vec![
                Inst::new(Opcode::Fdiv).def(Reg::fpr(1)).use_(Reg::fpr(2)).use_(Reg::fpr(3)),
                Inst::new(Opcode::Fadd).def(Reg::fpr(4)).use_(Reg::fpr(1)).use_(Reg::fpr(1)),
                add(1, 8, 8),
                add(2, 9, 9),
            ],
        ];
        for insts in cases {
            let out = s.schedule_insts(&insts);
            assert!(verify_schedule(&insts, &out.order).is_ok());
            // A competent scheduler should never pick an order the cost
            // model rates worse than the original.
            assert!(out.cycles_after <= out.cycles_before, "degraded: {insts:?}");
        }
    }

    #[test]
    fn terminator_stays_last() {
        let m = machine();
        let s = ListScheduler::new(&m);
        let insts = vec![add(1, 9, 9), load(2, 0), Inst::new(Opcode::Bc).use_(Reg::cr(0))];
        let out = s.schedule_insts(&insts);
        assert_eq!(*out.order.last().unwrap(), 2);
    }

    #[test]
    fn cps_beats_or_matches_earliest_start_on_cp_case() {
        let m = machine();
        // Two chains: a long FP chain and short int work. CPS should
        // prioritize starting the long chain.
        let insts = vec![
            Inst::new(Opcode::Lfd).def(Reg::fpr(1)).use_(Reg::gpr(1)).mem(MemRef::slot(MemSpace::Heap, 0)),
            Inst::new(Opcode::Fmul).def(Reg::fpr(2)).use_(Reg::fpr(1)).use_(Reg::fpr(1)),
            Inst::new(Opcode::Fadd).def(Reg::fpr(3)).use_(Reg::fpr(2)).use_(Reg::fpr(2)),
            add(2, 8, 8),
            add(3, 9, 9),
            add(4, 10, 10),
        ];
        let cps = ListScheduler::with_policy(&m, SchedulePolicy::CriticalPath).schedule_insts(&insts);
        let es = ListScheduler::with_policy(&m, SchedulePolicy::EarliestStart).schedule_insts(&insts);
        assert!(cps.cycles_after <= es.cycles_after);
    }

    #[test]
    fn tie_breaking_is_consistent_across_policies() {
        let m = machine();
        // Tie-heavy block: six independent single-cycle adds — identical
        // critical paths, identical start times. Every deterministic
        // policy must resolve the ties the same way (lowest original
        // index first), pinning the shared-key behaviour.
        let ties: Vec<Inst> = (0..6u16).map(|i| add(i + 1, 20 + i, 26 + i)).collect();
        for policy in [SchedulePolicy::CriticalPath, SchedulePolicy::EarliestStart, SchedulePolicy::CriticalPathOnly] {
            let out = ListScheduler::with_policy(&m, policy).schedule_insts(&ties);
            assert_eq!(out.order, vec![0, 1, 2, 3, 4, 5], "{policy} must break ties by original index");
        }
        // And when critical paths differ, both cp-aware policies agree on
        // pulling the long chain forward past an equal-start rival.
        let insts = vec![
            add(1, 20, 20),                                                               // short, independent
            Inst::new(Opcode::Fdiv).def(Reg::fpr(1)).use_(Reg::fpr(2)).use_(Reg::fpr(3)), // heads the long chain
            Inst::new(Opcode::Fadd).def(Reg::fpr(4)).use_(Reg::fpr(1)).use_(Reg::fpr(1)),
        ];
        for policy in [SchedulePolicy::CriticalPath, SchedulePolicy::CriticalPathOnly] {
            let out = ListScheduler::with_policy(&m, policy).schedule_insts(&insts);
            let pos = |i: usize| out.order.iter().position(|&x| x == i).unwrap();
            assert!(pos(1) < pos(0), "{policy} must start the critical chain first");
        }
    }

    /// Regression (PR 5): `select` used to `expect` an externally
    /// threaded rng for the random policy and panicked on any entry
    /// point that did not wire one through. The scheduler now owns its
    /// rng seed, so *every* public path — blocks, raw slices,
    /// superblocks, reschedule — serves the random policy without
    /// panicking, deterministically per seed.
    #[test]
    fn random_policy_never_panics_on_any_entry_point() {
        let m = machine();
        let s = ListScheduler::with_policy(&m, SchedulePolicy::Random(3));
        let insts = vec![load(1, 0), add(2, 1, 1), Inst::new(Opcode::Bc).use_(Reg::cr(0)), add(3, 8, 8), add(4, 9, 9)];
        let mut b = BasicBlock::new(0);
        for i in &insts {
            b.push(*i);
        }
        let from_block = s.schedule_block(&b);
        let from_slice = s.schedule_insts(&insts);
        let from_superblock = s.schedule_superblock(&insts);
        let rescheduled = s.reschedule(&b);
        for out in [&from_block, &from_slice] {
            assert!(verify_schedule(&insts, &out.order).is_ok());
        }
        // The superblock order follows the *speculative* graph (it may
        // hoist across the side exit), so check it against that graph.
        assert!(wts_deps::DepGraph::build_speculative(&insts).respects(&from_superblock.order));
        assert_eq!(from_block.order, from_slice.order, "same path, same draws");
        assert_eq!(rescheduled.len(), b.len());
        // Still deterministic per seed across entry points.
        let again = ListScheduler::with_policy(&m, SchedulePolicy::Random(3)).schedule_superblock(&insts);
        assert_eq!(from_superblock.order, again.order);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let m = machine();
        let insts = vec![add(1, 9, 9), add(2, 8, 8), add(3, 7, 7), load(4, 0), load(5, 8)];
        let a = ListScheduler::with_policy(&m, SchedulePolicy::Random(11)).schedule_insts(&insts);
        let b = ListScheduler::with_policy(&m, SchedulePolicy::Random(11)).schedule_insts(&insts);
        assert_eq!(a.order, b.order);
        assert!(verify_schedule(&insts, &a.order).is_ok());
    }

    #[test]
    fn schedules_are_permutations_even_with_barriers() {
        let m = machine();
        let s = ListScheduler::new(&m);
        let insts = vec![
            add(1, 9, 9),
            Inst::new(Opcode::Bl).def(Reg::lr()),
            add(2, 8, 8),
            Inst::new(Opcode::YieldPoint).hazard(wts_ir::Hazards::YIELD),
            add(3, 7, 7),
        ];
        let out = s.schedule_insts(&insts);
        assert!(verify_schedule(&insts, &out.order).is_ok());
        let pos = |i: usize| out.order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1) && pos(1) < pos(2) && pos(2) < pos(3) && pos(3) < pos(4));
    }

    #[test]
    fn superblock_scheduling_beats_local_when_exits_block_motion() {
        let m = machine();
        // Trace: [load; use; branch] ++ [independent adds]. Local
        // scheduling cannot hide the load stall (nothing independent in
        // the first block); the speculative superblock can hoist the
        // second block's adds above the side exit.
        let insts = vec![
            load(1, 0),
            add(2, 1, 1),
            Inst::new(Opcode::Bc).use_(Reg::cr(0)),
            add(3, 8, 8),
            add(4, 9, 9),
            add(5, 10, 10),
        ];
        let s = ListScheduler::new(&m);
        let local = s.schedule_insts(&insts);
        let superblock = s.schedule_superblock(&insts);
        assert!(superblock.cycles_after <= local.cycles_after);
        assert!(
            superblock.cycles_after < local.cycles_after,
            "speculation should hide the stall: {} vs {}",
            superblock.cycles_after,
            local.cycles_after
        );
    }

    #[test]
    fn superblock_schedule_respects_speculative_graph() {
        let m = machine();
        let insts = vec![
            Inst::new(Opcode::Stw).use_(Reg::gpr(1)).use_(Reg::gpr(30)).mem(MemRef::slot(MemSpace::Heap, 0)),
            Inst::new(Opcode::Bc).use_(Reg::cr(0)),
            add(3, 8, 8),
        ];
        let out = ListScheduler::new(&m).schedule_superblock(&insts);
        let pos = |i: usize| out.order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1), "store stays above the exit");
    }

    #[test]
    fn scratch_path_matches_one_shot_for_every_policy() {
        let m = machine();
        let blocks: Vec<Vec<Inst>> = vec![
            vec![],
            vec![add(1, 2, 3)],
            vec![load(1, 0), add(2, 1, 1), add(3, 8, 8), add(4, 9, 9)],
            vec![add(1, 9, 9), Inst::new(Opcode::Bl).def(Reg::lr()), add(2, 8, 8)],
            vec![load(1, 0), add(2, 1, 1), Inst::new(Opcode::Bc).use_(Reg::cr(0)), add(3, 8, 8)],
        ];
        for policy in [
            SchedulePolicy::CriticalPath,
            SchedulePolicy::EarliestStart,
            SchedulePolicy::CriticalPathOnly,
            SchedulePolicy::Random(7),
        ] {
            let s = ListScheduler::with_policy(&m, policy);
            // One scratch and one outcome reused across all blocks: no
            // state may leak from one schedule into the next.
            let mut scratch = SchedScratch::new(&m);
            let mut out = ScheduleOutcome::default();
            for insts in &blocks {
                s.schedule_insts_into(insts, &mut scratch, &mut out);
                assert_eq!(out, s.schedule_insts(insts), "{policy} block diverged");
                assert_eq!(
                    scratch.last_edge_count(),
                    if insts.len() <= 1 { 0 } else { wts_deps::DepGraph::build(insts).edge_count() }
                );
                s.schedule_superblock_into(insts, &mut scratch, &mut out);
                assert_eq!(out, s.schedule_superblock(insts), "{policy} superblock diverged");
            }
        }
    }

    #[test]
    fn reschedule_applies_order() {
        let m = machine();
        let s = ListScheduler::new(&m);
        let mut b = BasicBlock::new(3);
        for i in [load(1, 0), add(2, 1, 1), add(3, 8, 8)] {
            b.push(i);
        }
        b.set_exec_count(77);
        let nb = s.reschedule(&b);
        assert_eq!(nb.len(), 3);
        assert_eq!(nb.exec_count(), 77);
        assert_eq!(nb.id(), b.id());
    }
}
