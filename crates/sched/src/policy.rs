//! Instruction-selection policies for the list scheduler.

use std::fmt;

/// How the list scheduler picks among ready instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// The paper's CPS heuristic: earliest possible start time, ties
    /// broken by the longest latency-weighted critical path, then by
    /// original position (deterministic).
    #[default]
    CriticalPath,
    /// Earliest possible start time, ties broken by original position.
    /// A competent but weaker scheduler (no look-ahead priority).
    EarliestStart,
    /// Classic critical-path list scheduling: highest critical path first,
    /// ignoring when the instruction could actually start.
    CriticalPathOnly,
    /// Uniformly random choice among ready instructions, seeded for
    /// reproducibility. A deliberately incompetent baseline for ablations.
    Random(u64),
}

impl fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulePolicy::CriticalPath => write!(f, "cps"),
            SchedulePolicy::EarliestStart => write!(f, "earliest"),
            SchedulePolicy::CriticalPathOnly => write!(f, "cp-only"),
            SchedulePolicy::Random(seed) => write!(f, "random({seed})"),
        }
    }
}

/// Minimal deterministic PRNG (xorshift64*) for the random policy; kept
/// local so scheduling results are bit-stable regardless of `rand`
/// versions.
#[derive(Debug, Clone)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: seed.max(1) }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub(crate) fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        usize::try_from(self.next_u64() % n as u64).expect("residue mod a usize fits usize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_cps() {
        assert_eq!(SchedulePolicy::default(), SchedulePolicy::CriticalPath);
    }

    #[test]
    fn display_names() {
        assert_eq!(SchedulePolicy::CriticalPath.to_string(), "cps");
        assert_eq!(SchedulePolicy::Random(7).to_string(), "random(7)");
    }

    #[test]
    fn xorshift_is_deterministic_and_varied() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut uniq = va.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), va.len());
    }

    #[test]
    fn pick_stays_in_range() {
        let mut r = XorShift64::new(1);
        for _ in 0..100 {
            assert!(r.pick(7) < 7);
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
