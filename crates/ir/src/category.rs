//! The twelve possibly-overlapping instruction categories of Table 1.

use std::fmt;

/// One of the paper's twelve instruction categories.
///
/// Categories overlap: a load that may raise a null-pointer exception is in
/// both [`Category::Load`] and [`Category::Pei`]; a call is in
/// [`Category::Call`] and (being a GC point in a JVM) usually also in
/// [`Category::GcPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Branches (conditional or not, excluding calls/returns).
    Branch,
    /// Calls.
    Call,
    /// Loads from memory.
    Load,
    /// Stores to memory.
    Store,
    /// Method returns.
    Return,
    /// Uses an integer functional unit.
    Integer,
    /// Uses the floating-point functional unit.
    Float,
    /// Uses the system functional unit.
    System,
    /// Potentially-excepting instruction (hazard).
    Pei,
    /// Garbage-collection point (hazard).
    GcPoint,
    /// Thread-switch point (hazard).
    ThreadSwitch,
    /// Yield point (hazard).
    Yield,
}

impl Category {
    /// All twelve categories, in the order of the paper's Table 1.
    pub const ALL: [Category; 12] = [
        Category::Branch,
        Category::Call,
        Category::Load,
        Category::Store,
        Category::Return,
        Category::Integer,
        Category::Float,
        Category::System,
        Category::Pei,
        Category::GcPoint,
        Category::ThreadSwitch,
        Category::Yield,
    ];

    /// Short lowercase name as it appears in induced rules (Figure 4).
    pub fn rule_name(self) -> &'static str {
        match self {
            Category::Branch => "branches",
            Category::Call => "calls",
            Category::Load => "loads",
            Category::Store => "stores",
            Category::Return => "returns",
            Category::Integer => "integers",
            Category::Float => "floats",
            Category::System => "systems",
            Category::Pei => "peis",
            Category::GcPoint => "gcpoints",
            Category::ThreadSwitch => "tspoints",
            Category::Yield => "yieldpoints",
        }
    }

    /// True for the four hazard categories (unusual possible branches that
    /// disallow reordering around them).
    pub fn is_hazard(self) -> bool {
        matches!(self, Category::Pei | Category::GcPoint | Category::ThreadSwitch | Category::Yield)
    }

    fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.rule_name())
    }
}

/// A set of [`Category`] values, stored as a 12-bit mask.
///
/// # Examples
///
/// ```
/// use wts_ir::{Category, CategorySet};
/// let set = CategorySet::new().with(Category::Load).with(Category::Pei);
/// assert!(set.contains(Category::Load));
/// assert!(!set.contains(Category::Store));
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CategorySet(u16);

impl CategorySet {
    /// The empty set.
    pub fn new() -> CategorySet {
        CategorySet(0)
    }

    /// Set containing every category in `cats`.
    pub fn of(cats: &[Category]) -> CategorySet {
        let mut s = CategorySet::new();
        for &c in cats {
            s.insert(c);
        }
        s
    }

    /// Returns this set with `cat` added (builder style).
    pub fn with(mut self, cat: Category) -> CategorySet {
        self.insert(cat);
        self
    }

    /// Adds `cat` to the set.
    pub fn insert(&mut self, cat: Category) {
        self.0 |= cat.bit();
    }

    /// Removes `cat` from the set.
    pub fn remove(&mut self, cat: Category) {
        self.0 &= !cat.bit();
    }

    /// Membership test.
    pub fn contains(self, cat: Category) -> bool {
        self.0 & cat.bit() != 0
    }

    /// Number of categories in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no category is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two sets.
    pub fn union(self, other: CategorySet) -> CategorySet {
        CategorySet(self.0 | other.0)
    }

    /// Iterates over the categories present, in Table 1 order.
    pub fn iter(self) -> impl Iterator<Item = Category> {
        Category::ALL.into_iter().filter(move |c| self.contains(*c))
    }
}

impl FromIterator<Category> for CategorySet {
    fn from_iter<I: IntoIterator<Item = Category>>(iter: I) -> CategorySet {
        let mut s = CategorySet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<Category> for CategorySet {
    fn extend<I: IntoIterator<Item = Category>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl fmt::Display for CategorySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_categories() {
        assert_eq!(Category::ALL.len(), 12);
        let mut names: Vec<&str> = Category::ALL.iter().map(|c| c.rule_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12, "rule names must be unique");
    }

    #[test]
    fn hazards_are_the_last_four() {
        let hazards: Vec<Category> = Category::ALL.iter().copied().filter(|c| c.is_hazard()).collect();
        assert_eq!(hazards, vec![Category::Pei, Category::GcPoint, Category::ThreadSwitch, Category::Yield]);
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = CategorySet::new();
        assert!(s.is_empty());
        s.insert(Category::Branch);
        s.insert(Category::Float);
        assert!(s.contains(Category::Branch));
        assert!(s.contains(Category::Float));
        assert_eq!(s.len(), 2);
        s.remove(Category::Branch);
        assert!(!s.contains(Category::Branch));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_union_and_iteration_order() {
        let a = CategorySet::of(&[Category::Store, Category::Branch]);
        let b = CategorySet::of(&[Category::Store, Category::Pei]);
        let u = a.union(b);
        let got: Vec<Category> = u.iter().collect();
        assert_eq!(got, vec![Category::Branch, Category::Store, Category::Pei]);
    }

    #[test]
    fn from_iterator_collects() {
        let s: CategorySet = [Category::Load, Category::Load, Category::Yield].into_iter().collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_is_never_empty() {
        assert_eq!(CategorySet::new().to_string(), "{}");
        assert_eq!(CategorySet::of(&[Category::Call, Category::GcPoint]).to_string(), "{calls,gcpoints}");
    }
}
